//! Workspace smoke test: the facade re-exports resolve and the
//! documented quickstart path runs end to end.
//!
//! This is the test a newcomer's first `cargo test` exercises; it fails
//! loudly if a facade re-export is renamed or the README quickstart
//! drifts from the real API.

use std::sync::Arc;

/// Every facade module documented in `src/lib.rs` resolves to the crate
/// it claims to re-export (checked by *using* one type from each).
#[test]
fn facade_reexports_resolve() {
    // xsearch::core
    let config = xsearch::core::config::XSearchConfig::default();
    assert!(config.k >= 1, "default obfuscation degree must be usable");
    // xsearch::baselines
    let _: &dyn Fn(u64) -> xsearch::baselines::tmn::TrackMeNot =
        &xsearch::baselines::tmn::TrackMeNot::new;
    // xsearch::attack
    let _ = xsearch::attack::simattack::SimAttack::new(0.5);
    // xsearch::sgx
    let ias = xsearch::sgx::attestation::AttestationService::from_seed(1);
    let _ = &ias;
    // xsearch::engine
    let corpus = xsearch::engine::corpus::CorpusConfig::default();
    assert!(corpus.docs_per_topic > 0);
    // xsearch::query_log
    let log =
        xsearch::query_log::synthetic::generate(&xsearch::query_log::synthetic::SyntheticConfig {
            num_users: 4,
            ..Default::default()
        });
    assert!(!log.is_empty());
    // xsearch::crypto
    let digest = xsearch::crypto::sha256::Sha256::digest(b"smoke");
    assert_eq!(digest.len(), 32);
    // xsearch::text
    assert_eq!(xsearch::text::nb_common_words("a b c", "b c d"), 2);
    // xsearch::metrics
    let mut hist = xsearch::metrics::LatencyHistogram::new();
    hist.record(250);
    assert_eq!(hist.count(), 1);
    // xsearch::net_sim
    let delay = xsearch::net_sim::DelayModel::constant_ms(1);
    let _ = &delay;
    // xsearch::workload
    let schedule = xsearch::workload::Schedule::new(1000.0);
    let _ = &schedule;
}

/// The quickstart from the README / `src/lib.rs` rustdoc, as a plain
/// integration test: launch proxy, attest, search, get results.
#[test]
fn quickstart_path_runs_end_to_end() {
    use xsearch::core::{broker::Broker, config::XSearchConfig, proxy::XSearchProxy};
    use xsearch::engine::{corpus::CorpusConfig, engine::SearchEngine};
    use xsearch::sgx::attestation::AttestationService;

    let engine = Arc::new(SearchEngine::build(&CorpusConfig {
        docs_per_topic: 25,
        ..Default::default()
    }));
    let ias = AttestationService::from_seed(1);
    let proxy = XSearchProxy::launch(
        XSearchConfig {
            k: 2,
            ..Default::default()
        },
        engine,
        &ias,
    );
    proxy.seed_history(["warm query one", "warm query two"]);

    let mut broker = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 42)
        .expect("attestation against the proxy's own measurement must succeed");
    let results = broker
        .search(&proxy, "cheap flights")
        .expect("attested search");
    assert!(!results.is_empty(), "quickstart search returned no results");
}
