//! Cross-crate integration: the full attested X-Search pipeline from
//! broker to engine and back.

use std::sync::Arc;
use xsearch::core::{broker::Broker, config::XSearchConfig, proxy::XSearchProxy};
use xsearch::engine::{corpus::CorpusConfig, engine::SearchEngine};
use xsearch::query_log::topics::TOPICS;
use xsearch::sgx::attestation::AttestationService;

fn setup(k: usize) -> (XSearchProxy, AttestationService, Arc<SearchEngine>) {
    let ias = AttestationService::from_seed(1);
    let engine = Arc::new(SearchEngine::build(&CorpusConfig {
        docs_per_topic: 50,
        ..Default::default()
    }));
    let proxy = XSearchProxy::launch(
        XSearchConfig {
            k,
            history_capacity: 10_000,
            ..Default::default()
        },
        engine.clone(),
        &ias,
    );
    (proxy, ias, engine)
}

fn topic_query(name: &str) -> String {
    let t = TOPICS.iter().find(|t| t.name == name).unwrap();
    format!("{} {} {}", t.terms[0], t.terms[1], t.terms[2])
}

#[test]
fn full_session_returns_filtered_relevant_results() {
    let (proxy, ias, engine) = setup(3);
    proxy.seed_history([
        topic_query("health").as_str(),
        topic_query("finance").as_str(),
        topic_query("sports").as_str(),
        topic_query("recipes").as_str(),
    ]);
    let mut broker = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 9).unwrap();

    let query = topic_query("travel");
    let results = broker.search(&proxy, &query).unwrap();
    assert!(!results.is_empty(), "travel query must return results");

    // The filtered results substantially overlap the unprotected ones.
    let direct: std::collections::HashSet<String> = engine
        .search(&query, 20)
        .into_iter()
        .map(|r| r.url)
        .collect();
    // Compare on redirect-stripped URLs.
    let stripped: std::collections::HashSet<String> = direct
        .iter()
        .map(|u| xsearch::core::redirect::strip_redirect(u))
        .collect();
    let overlap = results.iter().filter(|r| stripped.contains(&r.url)).count();
    assert!(
        overlap * 2 >= results.len(),
        "{overlap}/{} filtered results overlap the direct top-20",
        results.len()
    );
}

#[test]
fn results_never_carry_tracker_redirections() {
    let (proxy, ias, _) = setup(2);
    proxy.seed_history(["a b c", "d e f", "g h i"]);
    let mut broker = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 10).unwrap();
    for topic in ["travel", "health", "cars", "music"] {
        let results = broker.search(&proxy, &topic_query(topic)).unwrap();
        for r in &results {
            assert!(
                !r.url.contains("redirect.tracker.com"),
                "tracker URL leaked: {}",
                r.url
            );
        }
    }
}

#[test]
fn many_sequential_queries_grow_the_history() {
    let (proxy, ias, _) = setup(2);
    proxy.seed_history(["warm one", "warm two"]);
    let mut broker = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 11).unwrap();
    let before = proxy.history_len();
    for i in 0..10 {
        let q = topic_query(TOPICS[i % TOPICS.len()].name);
        let _ = broker.search(&proxy, &q).unwrap();
    }
    assert_eq!(
        proxy.history_len(),
        before + 10,
        "every query lands in the table"
    );
}

#[test]
fn concurrent_brokers_share_one_proxy() {
    let (proxy, ias, _) = setup(1);
    proxy.seed_history(["seed one", "seed two", "seed three"]);
    let proxy = Arc::new(proxy);
    let measurement = proxy.expected_measurement();

    let handles: Vec<_> = (0..8)
        .map(|i| {
            let proxy = proxy.clone();
            let ias = ias.clone();
            std::thread::spawn(move || {
                let mut broker = Broker::attach(&proxy, &ias, measurement, 100 + i).unwrap();
                for round in 0..5 {
                    let q = topic_query(TOPICS[(i as usize + round) % TOPICS.len()].name);
                    broker.search(&proxy, &q).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no broker thread may fail");
    }
    assert!(proxy.history_len() >= 3 + 8 * 5);
}

#[test]
fn echo_mode_is_crypto_complete() {
    // Echo mode still exercises the full decrypt → obfuscate → filter →
    // encrypt path; the tunnel counters must stay in lockstep.
    let (proxy, ias, _) = setup(3);
    proxy.seed_history(["w1", "w2", "w3", "w4"]);
    let mut broker = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 12).unwrap();
    for _ in 0..50 {
        let results = broker.search_echo(&proxy, "ping").unwrap();
        assert!(results.is_empty());
    }
}
