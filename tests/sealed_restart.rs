//! Cross-crate integration: sealed history persistence across proxy
//! restarts (the extension documented in DESIGN.md §8).

use rand::rngs::StdRng;
use rand::SeedableRng;
use xsearch::core::history::QueryHistory;
use xsearch::core::persistence::{restore_history, seal_history};
use xsearch::sgx::epc::EpcGauge;
use xsearch::sgx::error::SgxError;
use xsearch::sgx::measurement::MeasurementBuilder;
use xsearch::sgx::sealed::SealingPlatform;

fn proxy_measurement(code: &[u8]) -> xsearch::sgx::measurement::Measurement {
    let mut b = MeasurementBuilder::new();
    b.add_region(code);
    b.finalize()
}

#[test]
fn restart_preserves_decoy_pool() {
    let platform = SealingPlatform::from_seed(2017);
    let m = proxy_measurement(b"xsearch-proxy-v1");
    let mut rng = StdRng::seed_from_u64(1);

    // First proxy lifetime: traffic accumulates.
    let first = QueryHistory::new(10_000, EpcGauge::new());
    for i in 0..500 {
        first.push(&format!("user query number {i}"));
    }
    let blob = seal_history(&first, &platform, &m, &mut rng);
    drop(first); // "crash"

    // Second lifetime, same code + platform: the pool survives.
    let second = QueryHistory::new(10_000, EpcGauge::new());
    let restored = restore_history(&second, &platform, &m, &blob).unwrap();
    assert_eq!(restored, 500);
    assert_eq!(second.len(), 500);

    // And it is immediately usable for obfuscation.
    let mut rng = StdRng::seed_from_u64(2);
    let obfuscated = xsearch::core::obfuscate::obfuscate("fresh query", &second, 3, &mut rng);
    assert_eq!(obfuscated.subqueries.len(), 4);
}

#[test]
fn modified_proxy_code_cannot_read_the_pool() {
    let platform = SealingPlatform::from_seed(2017);
    let mut rng = StdRng::seed_from_u64(3);
    let honest = proxy_measurement(b"xsearch-proxy-v1");
    let evil = proxy_measurement(b"xsearch-proxy-evil");

    let history = QueryHistory::new(100, EpcGauge::new());
    history.push("identifying medical query");
    let blob = seal_history(&history, &platform, &honest, &mut rng);

    let stolen = QueryHistory::new(100, EpcGauge::new());
    assert_eq!(
        restore_history(&stolen, &platform, &evil, &blob),
        Err(SgxError::UnsealFailed),
        "a different enclave must not decrypt the query pool"
    );
}

#[test]
fn another_platform_cannot_read_the_pool() {
    let mut rng = StdRng::seed_from_u64(4);
    let m = proxy_measurement(b"xsearch-proxy-v1");
    let history = QueryHistory::new(100, EpcGauge::new());
    history.push("query");
    let blob = seal_history(&history, &SealingPlatform::from_seed(1), &m, &mut rng);
    let other = SealingPlatform::from_seed(2);
    let target = QueryHistory::new(100, EpcGauge::new());
    assert_eq!(
        restore_history(&target, &other, &m, &blob),
        Err(SgxError::UnsealFailed)
    );
}

#[test]
fn restored_window_respects_capacity_accounting() {
    let platform = SealingPlatform::from_seed(5);
    let m = proxy_measurement(b"proxy");
    let mut rng = StdRng::seed_from_u64(6);

    let big = QueryHistory::new(1_000, EpcGauge::new());
    for i in 0..1_000 {
        big.push(&format!("q{i}"));
    }
    let blob = seal_history(&big, &platform, &m, &mut rng);

    let gauge = EpcGauge::new();
    let small = QueryHistory::new(100, gauge.clone());
    restore_history(&small, &platform, &m, &blob).unwrap();
    assert_eq!(small.len(), 100);
    assert_eq!(
        small.memory_bytes(),
        gauge.used(),
        "accounting survives restore"
    );
    // The newest entries won.
    assert_eq!(small.snapshot().last().map(String::as_str), Some("q999"));
}
