//! Cross-crate integration: the baseline systems' full protocol paths
//! against the shared engine, and the knowledge split each one promises.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;
use xsearch::baselines::peas::{
    CooccurrenceMatrix, PeasClient, PeasFakeGenerator, PeasIssuer, PeasReceiver,
};
use xsearch::baselines::system::PrivateSearchSystem;
use xsearch::baselines::tor::network::TorNetwork;
use xsearch::engine::{corpus::CorpusConfig, engine::SearchEngine};
use xsearch::query_log::record::UserId;
use xsearch::query_log::synthetic::{generate, SyntheticConfig};

fn engine() -> Arc<SearchEngine> {
    Arc::new(SearchEngine::build(&CorpusConfig {
        docs_per_topic: 40,
        ..Default::default()
    }))
}

fn training() -> Vec<String> {
    generate(&SyntheticConfig {
        num_users: 40,
        seed: 8,
        ..Default::default()
    })
    .into_iter()
    .map(|r| r.query)
    .collect()
}

#[test]
fn tor_carries_real_searches_end_to_end() {
    let engine = engine();
    let mut rng = StdRng::seed_from_u64(1);
    let network = TorNetwork::new(6, Duration::ZERO, &mut rng);
    let mut circuit = network.build_circuit(&mut rng);
    let response = network
        .round_trip(&mut circuit, b"flights hotel vacation", |req| {
            let query = String::from_utf8_lossy(req);
            xsearch::core::wire::encode_results(&engine.search(&query, 10))
        })
        .unwrap();
    let results = xsearch::core::wire::decode_results(&response).unwrap();
    assert!(!results.is_empty());
}

#[test]
fn peas_full_crypto_path_returns_filtered_results() {
    let engine = engine();
    let train = training();
    let mut issuer = PeasIssuer::new(
        PeasFakeGenerator::new(CooccurrenceMatrix::build(&train), 2),
        2,
    );
    issuer.set_k(3);
    let receiver = PeasReceiver::new();
    let mut client = PeasClient::new(UserId(1), issuer.public_key(), 3);
    let results = client
        .search(&receiver, &issuer, "flights hotel vacation", |subs, k| {
            assert_eq!(subs.len(), 4, "k=3 fakes plus the original");
            engine.search_merged(subs, k)
        })
        .unwrap();
    assert!(!results.is_empty());
    assert_eq!(receiver.relayed(), 1);
}

#[test]
fn every_obfuscating_system_contains_the_original_exactly_once() {
    let train = training();
    let user = UserId(3);
    let query = "paris hotel cheap";

    let mut systems: Vec<Box<dyn PrivateSearchSystem>> = vec![
        Box::new(xsearch::baselines::direct::Direct::new()),
        Box::new(xsearch::baselines::tor::TorSystem::new()),
        Box::new(xsearch::baselines::tmn::TrackMeNot::new(4)),
        Box::new(xsearch::baselines::goopir::GooPir::new(3, 4)),
        Box::new(xsearch::baselines::peas::PeasSystem::new(&train, 3, 4)),
        {
            let xs = xsearch::baselines::xsearch_system::XSearchSystem::new(3, 100_000, 4);
            xs.warm(train.iter().map(String::as_str));
            Box::new(xs)
        },
    ];
    for system in &mut systems {
        let exposure = system.protect(user, query);
        let count = exposure.subqueries.iter().filter(|q| *q == query).count();
        assert_eq!(
            count,
            1,
            "{}: original must appear exactly once",
            system.name()
        );
        assert!(!exposure.subqueries.is_empty());
    }
}

#[test]
fn identity_exposure_matches_the_paper_taxonomy() {
    let train = training();
    let user = UserId(9);
    // (system, hides identity?)
    let expectations: Vec<(Box<dyn PrivateSearchSystem>, bool)> = vec![
        (Box::new(xsearch::baselines::direct::Direct::new()), false),
        (Box::new(xsearch::baselines::tor::TorSystem::new()), true),
        (Box::new(xsearch::baselines::tmn::TrackMeNot::new(1)), false),
        (
            Box::new(xsearch::baselines::goopir::GooPir::new(2, 1)),
            false,
        ),
        (
            Box::new(xsearch::baselines::peas::PeasSystem::new(&train, 2, 1)),
            true,
        ),
        (
            Box::new(xsearch::baselines::xsearch_system::XSearchSystem::new(
                2, 1_000, 1,
            )),
            true,
        ),
    ];
    for (mut system, hides) in expectations {
        let exposure = system.protect(user, "a query");
        assert_eq!(
            exposure.identity.is_none(),
            hides,
            "{}: identity exposure mismatch",
            system.name()
        );
    }
}
