//! Cross-crate integration: the privacy evaluation pipeline — synthetic
//! log → profiles → SimAttack vs protected exposures — reproducing the
//! paper's qualitative ordering on a small dataset.

use xsearch::attack::eval::reidentification_rate;
use xsearch::attack::profile::ProfileSet;
use xsearch::attack::simattack::SimAttack;
use xsearch::baselines::peas::PeasSystem;
use xsearch::baselines::system::PrivateSearchSystem;
use xsearch::baselines::xsearch_system::XSearchSystem;
use xsearch::query_log::split::{top_active_users, train_test_split};
use xsearch::query_log::synthetic::{generate, SyntheticConfig};

struct Pipeline {
    profiles: ProfileSet,
    train: Vec<String>,
    test: Vec<xsearch::query_log::record::QueryRecord>,
}

fn pipeline() -> Pipeline {
    let log = generate(&SyntheticConfig {
        num_users: 80,
        seed: 31,
        ..Default::default()
    });
    let top = top_active_users(&log, 40);
    let split = train_test_split(&log, &top, 2.0 / 3.0);
    let train = split.train.iter().map(|r| r.query.clone()).collect();
    let test = split.test.iter().take(400).cloned().collect();
    Pipeline {
        profiles: ProfileSet::build(&split.train),
        train,
        test,
    }
}

#[test]
fn unprotected_traffic_is_substantially_reidentifiable() {
    let p = pipeline();
    let rate = reidentification_rate(&p.profiles, &SimAttack::default(), &p.test, |r| {
        vec![r.query.clone()]
    });
    assert!(
        (0.2..=0.7).contains(&rate),
        "unprotected re-identification rate {rate} outside the plausible band"
    );
}

#[test]
fn xsearch_reduces_reidentification_below_unprotected() {
    let p = pipeline();
    let attack = SimAttack::default();
    let unprotected =
        reidentification_rate(&p.profiles, &attack, &p.test, |r| vec![r.query.clone()]);
    let mut xsearch = XSearchSystem::new(3, 1_000_000, 17);
    xsearch.warm(p.train.iter().map(String::as_str));
    let protected = reidentification_rate(&p.profiles, &attack, &p.test, |r| {
        xsearch.protect(r.user, &r.query).subqueries
    });
    assert!(
        protected < unprotected * 0.6,
        "x-search must cut re-identification strongly: {protected} vs {unprotected}"
    );
}

#[test]
fn xsearch_beats_peas_at_equal_k() {
    let p = pipeline();
    let attack = SimAttack::default();
    let k = 3;

    let mut xsearch = XSearchSystem::new(k, 1_000_000, 23);
    xsearch.warm(p.train.iter().map(String::as_str));
    let xs = reidentification_rate(&p.profiles, &attack, &p.test, |r| {
        xsearch.protect(r.user, &r.query).subqueries
    });

    let mut peas = PeasSystem::new(&p.train, k, 23);
    let pe = reidentification_rate(&p.profiles, &attack, &p.test, |r| {
        peas.protect(r.user, &r.query).subqueries
    });

    assert!(
        xs < pe,
        "x-search ({xs}) must beat peas ({pe}) — the paper's Fig 3 ordering"
    );
}

#[test]
fn protection_improves_with_k() {
    let p = pipeline();
    let attack = SimAttack::default();
    let rate_at = |k: usize| {
        let mut xsearch = XSearchSystem::new(k, 1_000_000, 29);
        xsearch.warm(p.train.iter().map(String::as_str));
        reidentification_rate(&p.profiles, &attack, &p.test, |r| {
            xsearch.protect(r.user, &r.query).subqueries
        })
    };
    let r1 = rate_at(1);
    let r7 = rate_at(7);
    assert!(r7 <= r1, "more fakes cannot hurt: k=7 {r7} vs k=1 {r1}");
}
