//! Cross-crate integration: EPC accounting and enclave-boundary behavior
//! under memory pressure and adversarial conditions.

use std::sync::Arc;
use xsearch::core::history::QueryHistory;
use xsearch::core::{broker::Broker, config::XSearchConfig, proxy::XSearchProxy};
use xsearch::engine::{corpus::CorpusConfig, engine::SearchEngine};
use xsearch::query_log::synthetic::unique_queries;
use xsearch::sgx::attestation::AttestationService;
use xsearch::sgx::epc::EpcGauge;

#[test]
fn a_million_queries_fit_the_usable_epc() {
    // The Fig 6 claim as an invariant: 1M realistic queries stay inside
    // the 90 MiB usable EPC (checked on a 100k sample scaled ×10 to keep
    // the test fast; the fig6 harness does the full million).
    let queries = unique_queries(100_000, 42);
    let gauge = EpcGauge::new();
    let history = QueryHistory::new(1_000_000, gauge.clone());
    for q in &queries {
        history.push(q);
    }
    let projected = gauge.used() * 10;
    assert!(
        projected < gauge.limit(),
        "projected 1M-query footprint {projected} exceeds usable EPC {}",
        gauge.limit()
    );
    assert_eq!(gauge.paged_pages(), 0);
}

#[test]
fn exceeding_the_epc_charges_paging() {
    let gauge = EpcGauge::with_limit(64 * 1024); // tiny enclave
    let history = QueryHistory::new(100_000, gauge.clone());
    for i in 0..3_000 {
        history.push(&format!("padding query number {i} with extra words"));
    }
    assert!(!gauge.within_limit());
    assert!(gauge.paged_pages() > 0, "overflow must page");
    assert!(gauge.paging_cost().as_nanos() > 0);
}

#[test]
fn sliding_window_keeps_memory_bounded() {
    let gauge = EpcGauge::new();
    let history = QueryHistory::new(1_000, gauge.clone());
    for i in 0..10_000 {
        history.push(&format!("query {i}"));
    }
    assert_eq!(history.len(), 1_000);
    // Memory stays proportional to the window, not to total traffic.
    assert!(gauge.used() < 100 * 1_000);
    assert_eq!(history.memory_bytes(), gauge.used());
}

#[test]
fn proxy_rejects_replayed_ciphertext() {
    let ias = AttestationService::from_seed(3);
    let engine = Arc::new(SearchEngine::build(&CorpusConfig {
        docs_per_topic: 10,
        ..Default::default()
    }));
    let proxy = XSearchProxy::launch(XSearchConfig::default(), engine, &ias);
    proxy.seed_history(["a", "b", "c"]);
    let mut broker = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 4).unwrap();

    // A legitimate search, captured by the adversary...
    let _ = broker.search_echo(&proxy, "victim query").unwrap();
    // ...cannot be replayed: the untrusted host replays the same
    // ciphertext, but the channel counter has advanced.
    let ct = {
        // Forge a stale ciphertext by building a parallel broker and
        // never delivering its message.
        let mut other = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 5).unwrap();
        let _ = other.search_echo(&proxy, "fresh").unwrap();
        // Replaying arbitrary junk on the existing session must fail too.
        vec![0u8; 64]
    };
    let err = proxy.request_echo(broker.client_pub().as_bytes(), &ct);
    assert!(err.is_err(), "junk/replayed ciphertext must be rejected");
}

#[test]
fn boundary_counters_reflect_traffic_shape() {
    let ias = AttestationService::from_seed(6);
    let engine = Arc::new(SearchEngine::build(&CorpusConfig {
        docs_per_topic: 10,
        ..Default::default()
    }));
    let proxy = XSearchProxy::launch(
        XSearchConfig {
            k: 2,
            ..Default::default()
        },
        engine,
        &ias,
    );
    proxy.seed_history(["x", "y", "z"]);
    let mut broker = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 7).unwrap();

    let before = proxy.boundary().ocalls();
    let n = 5;
    for _ in 0..n {
        let _ = broker.search(&proxy, "query").unwrap();
    }
    // Exactly 4 ocalls per request: sock_connect, send, recv, close.
    assert_eq!(proxy.boundary().ocalls() - before, 4 * n);
    assert!(proxy.boundary().modeled_overhead().as_micros() > 0);
}
