//! # X-Search — private web search using (simulated) Intel SGX
//!
//! A full Rust reproduction of *"X-Search: Revisiting Private Web Search
//! using Intel SGX"* (Ben Mokhtar et al., ACM Middleware 2017). This
//! facade crate re-exports every subsystem and hosts the runnable
//! examples and cross-crate integration tests.
//!
//! The interesting entry points:
//!
//! * [`core`] — the X-Search proxy itself: obfuscation (Algorithm 1),
//!   filtering (Algorithm 2), the in-enclave application, broker and
//!   attested channel;
//! * [`cluster`] — the fleet tier: attested replica registry, routing
//!   policies, health checking and failover with sealed-history
//!   migration;
//! * [`baselines`] — Tor, PEAS, TrackMeNot, GooPIR and Direct;
//! * [`attack`] — the SimAttack re-identification adversary;
//! * [`sgx`] — the SGX model (EPC, measurement, attestation, sealing);
//! * [`engine`] — the simulated search engine;
//! * [`query_log`] — AOL-schema logs (parser + calibrated synthesizer);
//! * [`telemetry`] — the lock-free observability layer: sharded metrics
//!   registry, trust-boundary-aware [`telemetry::EnclaveScope`], and the
//!   flight recorder the chaos harness dumps on failure.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use xsearch::core::{broker::Broker, config::XSearchConfig, proxy::XSearchProxy};
//! use xsearch::engine::{corpus::CorpusConfig, engine::SearchEngine};
//! use xsearch::sgx::attestation::AttestationService;
//!
//! let engine = Arc::new(SearchEngine::build(&CorpusConfig { docs_per_topic: 25, ..Default::default() }));
//! let ias = AttestationService::from_seed(1);
//! let proxy = XSearchProxy::launch(XSearchConfig { k: 2, ..Default::default() }, engine, &ias);
//! proxy.seed_history(["warm query one", "warm query two"]);
//!
//! let mut broker = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 42).unwrap();
//! let results = broker.search(&proxy, "cheap flights").unwrap();
//! assert!(!results.is_empty());
//! ```

#![deny(missing_docs)]

// Compile and run every fenced Rust block in README.md as a doctest, so
// the README can never drift from the real API.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;

pub use xsearch_attack as attack;
pub use xsearch_baselines as baselines;
pub use xsearch_cluster as cluster;
pub use xsearch_core as core;
pub use xsearch_crypto as crypto;
pub use xsearch_engine as engine;
pub use xsearch_metrics as metrics;
pub use xsearch_net_sim as net_sim;
pub use xsearch_query_log as query_log;
pub use xsearch_sgx_sim as sgx;
pub use xsearch_telemetry as telemetry;
pub use xsearch_text as text;
pub use xsearch_workload as workload;
