//! A full private session, step by step: attestation handshake, what a
//! *malicious* proxy looks like to the broker, and what the untrusted
//! world observes while a user searches.
//!
//! Run with: `cargo run --release --example private_session`

use std::sync::Arc;
use xsearch::core::{broker::Broker, config::XSearchConfig, proxy::XSearchProxy};
use xsearch::engine::{corpus::CorpusConfig, engine::SearchEngine};
use xsearch::sgx::attestation::AttestationService;

fn main() {
    let ias = AttestationService::from_seed(2017);
    let engine = Arc::new(SearchEngine::build(&CorpusConfig {
        docs_per_topic: 60,
        ..Default::default()
    }));

    // --- Step 1: the genuine proxy and its measurement ---------------
    let proxy = XSearchProxy::launch(
        XSearchConfig {
            k: 3,
            ..Default::default()
        },
        engine.clone(),
        &ias,
    );
    let pinned = proxy.expected_measurement();
    println!("step 1: proxy enclave measurement {pinned}");

    // --- Step 2: attestation rejects a wrong measurement -------------
    let mut tampered = pinned;
    tampered.0[0] ^= 0xff;
    match Broker::attach(&proxy, &ias, tampered, 1) {
        Err(e) => println!("step 2: broker pinned a different measurement → rejected ({e})"),
        Ok(_) => unreachable!("attestation must fail"),
    }

    // --- Step 3: genuine attestation succeeds ------------------------
    let mut broker = Broker::attach(&proxy, &ias, pinned, 1).expect("genuine proxy attests fine");
    println!("step 3: quote verified, measurement matches, channel keys bound into quote");

    // --- Step 4: searching through the tunnel ------------------------
    proxy.seed_history([
        "stomach pain causes",
        "divorce lawyer fees",
        "lottery results 649",
        "knitting patterns free",
        "college scholarship application",
        "used truck dealer",
    ]);
    let sensitive = "diabetes symptoms blood sugar";
    let results = broker.search(&proxy, sensitive).expect("tunnel search");
    println!(
        "\nstep 4: searched {sensitive:?} privately → {} filtered results",
        results.len()
    );
    for r in results.iter().take(5) {
        println!("   - {}", r.title);
    }

    // --- Step 5: what the adversary saw -------------------------------
    println!("\nstep 5: the observable world:");
    println!("   * the engine saw ONE obfuscated query: 4 sub-queries OR-ed,");
    println!("     3 of them real past queries of other users;");
    println!("   * the proxy host saw only AEAD ciphertext and that query;");
    println!("   * the history table now also stores the user's query for");
    println!(
        "     future obfuscations ({} entries).",
        proxy.history_len()
    );
    let b = proxy.boundary();
    println!(
        "   * boundary traffic: {} ecalls / {} ocalls, {} B in, {} B out",
        b.ecalls(),
        b.ocalls(),
        b.bytes_in(),
        b.bytes_out()
    );
}
