//! Quickstart: launch an attested X-Search proxy, connect a broker, and
//! run one private search.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use xsearch::core::{broker::Broker, config::XSearchConfig, proxy::XSearchProxy};
use xsearch::engine::{corpus::CorpusConfig, engine::SearchEngine};
use xsearch::sgx::attestation::AttestationService;

fn main() {
    // ---- Cloud side -------------------------------------------------
    // A search engine (Bing stand-in: 40 topics × 100 documents) and an
    // X-Search proxy whose enclave hides each query among k = 3 real
    // past queries.
    let engine = Arc::new(SearchEngine::build(&CorpusConfig {
        docs_per_topic: 100,
        ..Default::default()
    }));
    let ias = AttestationService::from_seed(7);
    let config = XSearchConfig {
        k: 3,
        ..Default::default()
    };
    let proxy = XSearchProxy::launch(config, engine, &ias);

    // Warm the past-query table (in production it fills with real
    // traffic from all users).
    proxy.seed_history([
        "diabetes symptoms treatment",
        "nfl playoffs schedule",
        "mortgage refinance rates",
        "chicken casserole recipe",
        "cheap hotel rome",
    ]);
    println!(
        "proxy launched; enclave measurement = {}",
        proxy.expected_measurement()
    );

    // ---- Client side ------------------------------------------------
    // The broker attests the enclave (quote verified against the
    // attestation service, measurement pinned) and opens the encrypted
    // tunnel terminating inside it.
    let mut broker = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 42)
        .expect("attestation succeeds against a genuine proxy");
    println!("broker attached: enclave attested, tunnel established\n");

    let query = "cheap flights paris";
    let results = broker.search(&proxy, query).expect("search succeeds");

    println!("query: {query:?}");
    println!("results after obfuscation + filtering ({}):", results.len());
    for (i, r) in results.iter().take(10).enumerate() {
        println!("  {:2}. {}  [{}]", i + 1, r.title, r.url);
    }

    // What crossed the enclave boundary, and what it cost.
    let boundary = proxy.boundary();
    println!(
        "\nenclave boundary: {} ecalls, {} ocalls, modeled overhead {:?}",
        boundary.ecalls(),
        boundary.ocalls(),
        boundary.modeled_overhead()
    );
    println!("history size now: {} queries", proxy.history_len());
}
