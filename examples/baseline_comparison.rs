//! Side-by-side comparison of what every system exposes to the search
//! engine for the same stream of queries — the qualitative version of
//! the paper's Table-free §2 comparison.
//!
//! Run with: `cargo run --release --example baseline_comparison`

use xsearch::baselines::direct::Direct;
use xsearch::baselines::goopir::GooPir;
use xsearch::baselines::peas::PeasSystem;
use xsearch::baselines::system::PrivateSearchSystem;
use xsearch::baselines::tmn::TrackMeNot;
use xsearch::baselines::tor::TorSystem;
use xsearch::baselines::xsearch_system::XSearchSystem;
use xsearch::query_log::record::UserId;
use xsearch::query_log::synthetic::{generate, SyntheticConfig};

fn show(system: &mut dyn PrivateSearchSystem, user: UserId, query: &str) {
    let exposure = system.protect(user, query);
    let identity = match exposure.identity {
        Some(u) => format!("identity EXPOSED ({u})"),
        None => "identity hidden".to_owned(),
    };
    println!("{:<12} {}", system.name(), identity);
    for (i, q) in exposure.subqueries.iter().enumerate() {
        let marker = if q == query { " ← original" } else { "" };
        println!("             [{i}] {q:?}{marker}");
    }
    println!();
}

fn main() {
    // Shared history/training data for the history- and matrix-based
    // systems.
    let log = generate(&SyntheticConfig {
        num_users: 60,
        seed: 5,
        ..Default::default()
    });
    let past: Vec<String> = log.iter().map(|r| r.query.clone()).collect();

    let user = UserId(17);
    let query = "diabetes symptoms blood sugar";
    println!("user {user} queries {query:?}\n");

    let mut direct = Direct::new();
    show(&mut direct, user, query);

    let mut tor = TorSystem::new();
    show(&mut tor, user, query);

    let mut tmn = TrackMeNot::new(5);
    show(&mut tmn, user, query);

    let mut goopir = GooPir::new(3, 5);
    show(&mut goopir, user, query);

    let mut peas = PeasSystem::new(&past, 3, 5);
    show(&mut peas, user, query);

    let mut xsearch = XSearchSystem::new(3, 1_000_000, 5);
    xsearch.warm(past.iter().map(String::as_str));
    show(&mut xsearch, user, query);

    println!("note how X-Search's decoys are verbatim queries of other");
    println!("users, while PEAS/GooPIR/TMN decoys are synthetic text that a");
    println!("profile-matching adversary can discard (Fig 1 / Fig 3).");
}
