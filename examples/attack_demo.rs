//! Attack demo: run SimAttack against unprotected traffic, then against
//! the same traffic protected by X-Search, and watch the
//! re-identification rate collapse.
//!
//! Run with: `cargo run --release --example attack_demo`

use xsearch::attack::eval::reidentification_rate;
use xsearch::attack::profile::ProfileSet;
use xsearch::attack::simattack::SimAttack;
use xsearch::baselines::system::PrivateSearchSystem;
use xsearch::baselines::xsearch_system::XSearchSystem;
use xsearch::query_log::split::{top_active_users, train_test_split};
use xsearch::query_log::synthetic::{generate, SyntheticConfig};

fn main() {
    // An AOL-like synthetic log; the adversary (the search engine) knows
    // each user's past queries — the training split.
    let log = generate(&SyntheticConfig {
        num_users: 120,
        seed: 99,
        ..Default::default()
    });
    let top = top_active_users(&log, 50);
    let split = train_test_split(&log, &top, 2.0 / 3.0);
    println!(
        "dataset: {} users, {} training queries (adversary knowledge), {} test queries",
        top.len(),
        split.train.len(),
        split.test.len()
    );

    let profiles = ProfileSet::build(&split.train);
    let attack = SimAttack::default();
    let test: Vec<_> = split.test.iter().take(600).cloned().collect();

    // Unprotected (identity hidden, query in the clear — what Tor gives).
    let unprotected = reidentification_rate(&profiles, &attack, &test, |r| vec![r.query.clone()]);
    println!(
        "\nunlinkability only (Tor-like): {:.1}% of queries re-identified",
        unprotected * 100.0
    );

    // X-Search with growing k.
    for k in [1usize, 3, 7] {
        let mut xsearch = XSearchSystem::new(k, 1_000_000, 7);
        xsearch.warm(split.train.iter().map(|r| r.query.as_str()));
        let rate = reidentification_rate(&profiles, &attack, &test, |r| {
            xsearch.protect(r.user, &r.query).subqueries
        });
        println!("x-search k={k}: {:.1}% re-identified", rate * 100.0);
    }

    println!("\nwhy it works: every fake is a real past query, so the attack");
    println!("keeps matching decoys to other users' profiles and must abstain.");
}
