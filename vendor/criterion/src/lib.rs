//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use — [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — backed by a simple calibrated wall-clock timer instead of
//! criterion's statistical machinery.
//!
//! Behaviour under `cargo test`: benchmark executables built with
//! `harness = false` are run by `cargo test` like any other test binary;
//! this harness detects the `--test` flag cargo passes and runs each
//! benchmark exactly once (a smoke run), keeping `cargo test -q` fast
//! while `cargo bench` still produces timing numbers.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
}

/// Timing state handed to the benchmark closure.
pub struct Bencher {
    smoke: bool,
    measurement_time: Duration,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Call `routine` repeatedly and record its mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            std::hint::black_box(routine());
            return;
        }
        // Warm up, then run for roughly the configured measurement time.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measurement_time || iters >= u64::MAX / 2 {
                self.result = Some((elapsed, iters));
                return;
            }
            let per_iter = elapsed.checked_div(iters as u32).unwrap_or_default();
            iters = if per_iter.is_zero() {
                iters.saturating_mul(8)
            } else {
                let want = self.measurement_time.as_nanos() / per_iter.as_nanos().max(1);
                (want as u64).clamp(iters + 1, iters.saturating_mul(16))
            };
        }
    }
}

/// Top-level benchmark driver (a registry of named benchmarks).
pub struct Criterion {
    smoke: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut smoke = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                // `cargo test` runs harness=false bench binaries with --test.
                "--test" => smoke = true,
                // Flags cargo/criterion accept that we can ignore.
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_owned()),
            }
        }
        Criterion { smoke, filter }
    }
}

impl Criterion {
    fn wants(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        measurement_time: Duration,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if !self.wants(id) {
            return;
        }
        let mut b = Bencher {
            smoke: self.smoke,
            measurement_time,
            result: None,
        };
        f(&mut b);
        if self.smoke {
            println!("bench {id} ... ok (smoke)");
            return;
        }
        match b.result {
            Some((elapsed, iters)) if iters > 0 => {
                let per = elapsed.as_nanos() as f64 / iters as f64;
                let rate = match throughput {
                    Some(Throughput::Bytes(n)) => {
                        format!("  {:.1} MiB/s", n as f64 / per * 1e9 / (1024.0 * 1024.0))
                    }
                    Some(Throughput::Elements(n)) => {
                        format!("  {:.0} elem/s", n as f64 / per * 1e9)
                    }
                    None => String::new(),
                };
                println!("bench {id:<50} {per:>12.1} ns/iter{rate}");
            }
            _ => println!("bench {id} ... no measurement"),
        }
    }

    /// Register and run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, None, Duration::from_millis(200), &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            measurement_time: Duration::from_millis(200),
        }
    }

    /// Final hook after all groups ran (criterion API compatibility).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the target sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set how long each benchmark should measure.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Register and run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion
            .run_one(&full, self.throughput, self.measurement_time, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Re-export of the standard black-box optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function list (criterion-compatible macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

/// Define the benchmark binary's `main` (criterion-compatible macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
