//! Offline stand-in for `crossbeam`.
//!
//! Provides [`channel`]: multi-producer multi-consumer channels with the
//! `crossbeam-channel` API shape (`bounded`, `unbounded`, cloneable
//! `Sender`/`Receiver`, `recv_timeout`, `try_send`). Built on
//! `Mutex` + `Condvar`; slower than the real lock-free implementation but
//! semantically equivalent for the workloads in this workspace.

#![deny(missing_docs)]

pub mod channel;
