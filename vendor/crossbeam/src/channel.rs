//! MPMC channels with the `crossbeam-channel` API shape.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and currently full.
    Full(T),
    /// All receivers have been dropped.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// All senders have been dropped and the queue is drained.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the deadline.
    Timeout,
    /// All senders have been dropped and the queue is drained.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn disconnected_tx(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }
    fn disconnected_rx(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }
}

/// The sending half of a channel. Cloneable; the channel disconnects when
/// the last clone drops.
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half of a channel. Cloneable (MPMC); each message is
/// delivered to exactly one receiver.
pub struct Receiver<T>(Arc<Shared<T>>);

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.senders.fetch_add(1, Ordering::SeqCst);
        Sender(self.0.clone())
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver(self.0.clone())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Notify under the queue mutex: a peer that observed
            // senders > 0 is either still holding the lock (we block
            // until it parks on the condvar) or already parked — either
            // way the wakeup cannot fall between its check and its wait.
            let _q = self.0.queue.lock().unwrap();
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.0.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _q = self.0.queue.lock().unwrap();
            self.0.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Send `value`, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns the value back if all receivers are gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut q = self.0.queue.lock().unwrap();
        loop {
            if self.0.disconnected_rx() {
                return Err(SendError(value));
            }
            match self.0.cap {
                Some(cap) if q.len() >= cap => {
                    q = self.0.not_full.wait(q).unwrap();
                }
                _ => {
                    q.push_back(value);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Send without blocking.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when a bounded channel is at capacity,
    /// [`TrySendError::Disconnected`] when all receivers are gone.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut q = self.0.queue.lock().unwrap();
        if self.0.disconnected_rx() {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.0.cap {
            if q.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        q.push_back(value);
        self.0.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives.
    ///
    /// # Errors
    ///
    /// [`RecvError`] when the queue is empty and all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.0.queue.lock().unwrap();
        loop {
            if let Some(v) = q.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if self.0.disconnected_tx() {
                return Err(RecvError);
            }
            q = self.0.not_empty.wait(q).unwrap();
        }
    }

    /// Receive without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when no message is queued,
    /// [`TryRecvError::Disconnected`] when drained and all senders gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.0.queue.lock().unwrap();
        if let Some(v) = q.pop_front() {
            self.0.not_full.notify_one();
            return Ok(v);
        }
        if self.0.disconnected_tx() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Block up to `timeout` for a message.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] on expiry,
    /// [`RecvTimeoutError::Disconnected`] when drained and all senders gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.0.queue.lock().unwrap();
        loop {
            if let Some(v) = q.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if self.0.disconnected_tx() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self.0.not_empty.wait_timeout(q, deadline - now).unwrap();
            q = guard;
        }
    }
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender(shared.clone()), Receiver(shared))
}

/// Create a channel with a bounded queue of `cap` messages.
#[must_use]
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap))
}

/// Create a channel with an unbounded queue.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn roundtrip_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn disconnect_wakes_receivers() {
        let (tx, rx) = unbounded::<u8>();
        let h = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn mpmc_each_message_once() {
        let (tx, rx) = unbounded();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<u32> = workers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_never_lost_under_contention() {
        // Regression: dropping the last sender must not race a receiver
        // between its disconnect check and its condvar wait.
        for _ in 0..200 {
            let (tx, rx) = unbounded::<u8>();
            let h = thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
