//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (with both `name in strategy` and
//! `name: Type` parameter forms), [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assert_ne!`], [`strategy::Strategy`]
//! with `prop_map`, [`arbitrary::Arbitrary`] + [`any`], regex-like
//! string strategies (character classes and `{m,n}` quantifiers), and
//! [`collection::vec`].
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its deterministic case seed instead), and a fixed default of 64 cases
//! per property (`PROPTEST_CASES` overrides).

#![deny(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
mod string;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// Generate one value of `T` via its [`arbitrary::Arbitrary`] impl.
///
/// Returns a *strategy*; the macro (or [`strategy::Strategy::new_value`])
/// draws concrete values from it.
#[must_use]
pub fn any<T: arbitrary::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Per-block configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u64,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u64) -> Self {
        ProptestConfig { cases }
    }
}

#[doc(hidden)]
pub fn __run_cases(name: &str, case: impl FnMut(&mut TestRng)) {
    __run_cases_with(64, name, case);
}

#[doc(hidden)]
pub fn __run_cases_with(default_cases: u64, name: &str, mut case: impl FnMut(&mut TestRng)) {
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_cases);
    // Deterministic per-test seeding: test name + case index.
    let base = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    for i in 0..cases {
        let seed = base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(&mut rng);
        }));
        if let Err(payload) = outcome {
            eprintln!("proptest: property `{name}` failed at case {i} (seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// The prelude: everything a `proptest!` test module needs.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Skip the current case when its precondition does not hold.
///
/// Real proptest rejects and regenerates; this shim simply returns from
/// the case closure, which is equivalent for non-adversarial conditions.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Assert a property holds; failure aborts the current case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert two expressions are equal within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Assert two expressions are unequal within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr $(,)?) => {
        let $name = $crate::strategy::Strategy::new_value(&($strat), $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)+) => {
        let $name = $crate::strategy::Strategy::new_value(&($strat), $rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary($rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)+) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary($rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
}

/// Define property tests.
///
/// Each function body runs for many generated cases. Parameters are
/// either `name in strategy` (drawn from an explicit strategy) or
/// `name: Type` (drawn from the type's [`arbitrary::Arbitrary`] impl).
/// A leading `#![proptest_config(ProptestConfig::with_cases(n))]`
/// overrides the per-property case count for the whole block.
#[macro_export]
macro_rules! proptest {
    () => {};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_with_cfg! { ($cfg) $($rest)* }
    };
    ($(#[$attr:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            $crate::__run_cases(stringify!($name), |__pt_rng| {
                $crate::__proptest_bind!(__pt_rng, $($params)*);
                $body
            });
        }
        $crate::proptest! { $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_with_cfg {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$attr:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __pt_cfg: $crate::ProptestConfig = $cfg;
            $crate::__run_cases_with(__pt_cfg.cases, stringify!($name), |__pt_rng| {
                $crate::__proptest_bind!(__pt_rng, $($params)*);
                $body
            });
        }
        $crate::__proptest_with_cfg! { ($cfg) $($rest)* }
    };
}
