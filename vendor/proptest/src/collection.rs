//! Collection strategies.

use crate::strategy::{SizeRange, Strategy, VecStrategy};

/// Strategy for a `Vec` whose elements come from `element` and whose
/// length is drawn from `size` (a `usize`, `a..b`, or `a..=b`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
