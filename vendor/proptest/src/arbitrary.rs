//! Default value generation per type (the `any::<T>()` backend).

use crate::TestRng;
use rand::Rng;

/// Types with a default generation recipe.
pub trait Arbitrary: Sized {
    /// Generate one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix magnitudes and signs; keep values finite.
        let mag = 10f64.powf(rng.gen_range(-3.0f64..6.0));
        let v = rng.gen::<f64>() * mag;
        if rng.gen::<bool>() {
            v
        } else {
            -v
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII, with some multi-byte code points mixed in.
        if rng.gen_bool(0.8) {
            char::from(rng.gen_range(0x20u8..=0x7E))
        } else {
            ['é', 'ß', '中', '💡', '\n', '\t', 'Ω', 'я'][rng.gen_range(0usize..8)]
        }
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.gen_range(0usize..64);
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.gen_range(0usize..64);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.gen::<bool>() {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($t:ident),+))*) => {$(
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    )*};
}
impl_arbitrary_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}
