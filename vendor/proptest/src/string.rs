//! A tiny regex-subset interpreter for string strategies.
//!
//! Supports the patterns this workspace's tests use: literal characters,
//! `.` (any printable ASCII), character classes `[a-z0-9 /]` with ranges,
//! and `{m}` / `{m,n}` repetition. Unsupported syntax panics, which
//! surfaces immediately the first time a test runs.

use crate::TestRng;
use rand::Rng;

enum Atom {
    Literal(char),
    AnyChar,
    Class(Vec<(char, char)>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated class in regex {pattern:?}"))
                    + i
                    + 1;
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                i = close + 1;
                Atom::Class(ranges)
            }
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i + 1..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in regex {pattern:?}"))
                + i
                + 1;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad {m,n} lower bound"),
                    hi.trim().parse().expect("bad {m,n} upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad {n} count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::AnyChar => char::from(rng.gen_range(0x20u8..=0x7E)),
        Atom::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|&(lo, hi)| (hi as u32).saturating_sub(lo as u32) + 1)
                .sum();
            let mut pick = rng.gen_range(0..total);
            for &(lo, hi) in ranges {
                let span = (hi as u32) - (lo as u32) + 1;
                if pick < span {
                    return char::from_u32(lo as u32 + pick)
                        .expect("class range produced invalid char");
                }
                pick -= span;
            }
            unreachable!("class pick out of bounds")
        }
    }
}

pub(crate) fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = rng.gen_range(piece.min..=piece.max);
        for _ in 0..count {
            out.push(gen_char(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    fn sample(pattern: &str) -> Vec<String> {
        let mut rng = crate::TestRng::seed_from_u64(1);
        (0..200)
            .map(|_| super::generate(pattern, &mut rng))
            .collect()
    }

    #[test]
    fn class_with_range_and_literal() {
        for s in sample("[a-z ]{0,30}") {
            assert!(s.len() <= 30);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == ' '));
        }
    }

    #[test]
    fn printable_ascii_class() {
        for s in sample("[ -~]{0,50}") {
            assert!(s.len() <= 50);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literal_prefix_and_dot() {
        for s in sample("/[a-z0-9/]{0,20}") {
            assert!(s.starts_with('/'));
        }
        assert!(sample(".{0,30}").iter().all(|s| s.len() <= 30));
    }

    #[test]
    fn two_words_with_space() {
        for s in sample("[a-z]{2,8} [a-z]{2,8}") {
            let parts: Vec<&str> = s.split(' ').collect();
            assert_eq!(parts.len(), 2);
            assert!((2..=8).contains(&parts[0].len()));
            assert!((2..=8).contains(&parts[1].len()));
        }
    }
}
