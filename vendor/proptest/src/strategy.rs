//! Value-generation strategies.

use crate::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy produced by [`crate::any`].
pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Accepted size arguments for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for vectors built by [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}
