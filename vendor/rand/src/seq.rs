//! Sequence-related helpers (`SliceRandom`).

use crate::{Rng, RngCore};

/// Random operations over slices: choose, shuffle, sample-without-replacement.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Uniformly pick one element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Uniformly pick `amount` distinct elements (fewer if the slice is
    /// shorter), in random order.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        // Partial Fisher–Yates over an index vector.
        let n = self.len();
        let amount = amount.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(amount);
        idx.into_iter()
            .map(|i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}
