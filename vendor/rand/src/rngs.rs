//! Named generator types (`StdRng`).

use crate::{RngCore, SeedableRng};

/// The standard deterministic generator: xoshiro256++.
///
/// Mirrors the role of `rand::rngs::StdRng` — a seedable, high-quality,
/// non-cryptographic generator with a 256-bit state.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
