//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements the (small) subset of the `rand 0.8` API the
//! workspace uses: [`RngCore`], [`SeedableRng`], the extension trait
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`, `fill_bytes`), the seedable
//! [`rngs::StdRng`] generator (xoshiro256++ seeded via SplitMix64), and
//! [`seq::SliceRandom`] (`choose`, `shuffle`, `choose_multiple`).
//!
//! It is deterministic, fast, and statistically solid for simulation
//! purposes; it is **not** a cryptographic RNG (the workspace's crypto
//! lives in `xsearch-crypto` and never draws from here for secrets that
//! matter beyond reproducible experiments).

#![deny(missing_docs)]

pub mod rngs;
pub mod seq;

/// A low-level source of random 32/64-bit words and bytes.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create a generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly random value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize, T: Standard> Standard for [T; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample_standard(rng))
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        <f64 as Standard>::sample_standard(self) < p
    }

    /// Fill `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Convenience module mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(StdRng::seed_from_u64(9).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the vector in order");
    }

    #[test]
    fn choose_multiple_is_distinct_subset() {
        let mut rng = StdRng::seed_from_u64(5);
        let v: Vec<u32> = (0..50).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 7).copied().collect();
        assert_eq!(picked.len(), 7);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 7);
    }
}
