//! Interned sparse term vectors.
//!
//! User profiles (SimAttack) and TF-IDF document vectors (the search
//! engine) are bags of terms over a shared vocabulary; interning terms to
//! dense `u32` ids keeps those vectors cheap to store inside the simulated
//! enclave and fast to compare.

use std::collections::HashMap;

/// Maps terms to dense ids, shared across a corpus or a profile set.
///
/// # Example
///
/// ```
/// use xsearch_text::vector::TermInterner;
///
/// let mut interner = TermInterner::new();
/// let id = interner.intern("paris");
/// assert_eq!(interner.intern("paris"), id);
/// assert_eq!(interner.term(id), Some("paris"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TermInterner {
    ids: HashMap<String, u32>,
    terms: Vec<String>,
}

impl TermInterner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `term`, allocating one if needed.
    pub fn intern(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = u32::try_from(self.terms.len()).expect("vocabulary exceeds u32");
        self.ids.insert(term.to_owned(), id);
        self.terms.push(term.to_owned());
        id
    }

    /// Looks up an existing id without allocating.
    #[must_use]
    pub fn get(&self, term: &str) -> Option<u32> {
        self.ids.get(term).copied()
    }

    /// Reverse lookup.
    #[must_use]
    pub fn term(&self, id: u32) -> Option<&str> {
        self.terms.get(id as usize).map(String::as_str)
    }

    /// Number of distinct interned terms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether no term has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// A sparse vector over interned term ids, kept sorted by id.
///
/// # Example
///
/// ```
/// use xsearch_text::vector::SparseVector;
///
/// let a = SparseVector::from_pairs(vec![(1, 1.0), (2, 1.0)]);
/// let b = SparseVector::from_pairs(vec![(2, 1.0), (3, 1.0)]);
/// assert!((a.cosine(&b) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVector {
    /// (term id, weight), strictly increasing by id.
    entries: Vec<(u32, f64)>,
}

impl SparseVector {
    /// Creates an empty vector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vector from arbitrary (id, weight) pairs; duplicate ids are
    /// summed, zero weights dropped.
    #[must_use]
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(pairs.len());
        for (id, w) in pairs {
            match entries.last_mut() {
                Some(last) if last.0 == id => last.1 += w,
                _ => entries.push((id, w)),
            }
        }
        entries.retain(|&(_, w)| w != 0.0);
        SparseVector { entries }
    }

    /// Builds a term-frequency vector from tokens, interning as needed.
    #[must_use]
    pub fn term_frequencies(tokens: &[String], interner: &mut TermInterner) -> Self {
        let pairs = tokens.iter().map(|t| (interner.intern(t), 1.0)).collect();
        SparseVector::from_pairs(pairs)
    }

    /// Adds `weight` to the entry for `id`.
    pub fn add(&mut self, id: u32, weight: f64) {
        match self.entries.binary_search_by_key(&id, |&(i, _)| i) {
            Ok(pos) => self.entries[pos].1 += weight,
            Err(pos) => self.entries.insert(pos, (id, weight)),
        }
    }

    /// The weight for `id` (0.0 when absent).
    #[must_use]
    pub fn weight(&self, id: u32) -> f64 {
        self.entries
            .binary_search_by_key(&id, |&(i, _)| i)
            .map(|pos| self.entries[pos].1)
            .unwrap_or(0.0)
    }

    /// Number of non-zero entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over (id, weight) pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Dot product with another sparse vector (linear merge).
    #[must_use]
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            let (ida, wa) = self.entries[i];
            let (idb, wb) = other.entries[j];
            match ida.cmp(&idb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += wa * wb;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Euclidean norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Cosine similarity in [0, 1] for non-negative weights; 0.0 when
    /// either vector is empty.
    #[must_use]
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        self.dot(other) / denom
    }

    /// Accumulates `other` into `self` (profile building).
    pub fn merge(&mut self, other: &SparseVector) {
        for (id, w) in other.iter() {
            self.add(id, w);
        }
    }
}

impl FromIterator<(u32, f64)> for SparseVector {
    fn from_iter<T: IntoIterator<Item = (u32, f64)>>(iter: T) -> Self {
        SparseVector::from_pairs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interner_is_stable() {
        let mut i = TermInterner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_ne!(a, b);
        assert_eq!(i.intern("a"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.get("c"), None);
    }

    #[test]
    fn from_pairs_sums_duplicates() {
        let v = SparseVector::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 4.0)]);
        assert_eq!(v.weight(3), 5.0);
        assert_eq!(v.weight(1), 2.0);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn zero_weights_are_dropped() {
        let v = SparseVector::from_pairs(vec![(1, 0.0), (2, 1.0)]);
        assert_eq!(v.nnz(), 1);
    }

    #[test]
    fn dot_of_disjoint_is_zero() {
        let a = SparseVector::from_pairs(vec![(1, 1.0)]);
        let b = SparseVector::from_pairs(vec![(2, 1.0)]);
        assert_eq!(a.dot(&b), 0.0);
    }

    #[test]
    fn cosine_identical_is_one() {
        let a = SparseVector::from_pairs(vec![(1, 2.0), (5, 3.0)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_empty_is_zero() {
        let a = SparseVector::new();
        let b = SparseVector::from_pairs(vec![(1, 1.0)]);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn term_frequencies_count_tokens() {
        let mut interner = TermInterner::new();
        let tokens: Vec<String> = ["tie", "a", "tie"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let v = SparseVector::term_frequencies(&tokens, &mut interner);
        assert_eq!(v.weight(interner.get("tie").unwrap()), 2.0);
        assert_eq!(v.weight(interner.get("a").unwrap()), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SparseVector::from_pairs(vec![(1, 1.0)]);
        a.merge(&SparseVector::from_pairs(vec![(1, 1.0), (2, 3.0)]));
        assert_eq!(a.weight(1), 2.0);
        assert_eq!(a.weight(2), 3.0);
    }

    fn arb_vec() -> impl Strategy<Value = SparseVector> {
        proptest::collection::vec((0u32..64, 0.01f64..10.0), 0..16)
            .prop_map(SparseVector::from_pairs)
    }

    proptest! {
        #[test]
        fn dot_commutes(a in arb_vec(), b in arb_vec()) {
            prop_assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-9);
        }

        #[test]
        fn cosine_bounded(a in arb_vec(), b in arb_vec()) {
            let c = a.cosine(&b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c), "cosine {c}");
        }

        #[test]
        fn cauchy_schwarz(a in arb_vec(), b in arb_vec()) {
            prop_assert!(a.dot(&b) <= a.norm() * b.norm() + 1e-9);
        }

        #[test]
        fn entries_remain_sorted_after_add(a in arb_vec(), id: u32, w in 0.1f64..5.0) {
            let mut v = a;
            v.add(id, w);
            let ids: Vec<u32> = v.iter().map(|(i, _)| i).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(ids, sorted);
        }
    }
}
