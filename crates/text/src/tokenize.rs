//! Tokenization: lower-cased maximal runs of alphanumeric characters.
//!
//! This is deliberately the simplest credible web-search tokenizer — the
//! AOL log contains raw user keystrokes ("new york lottery", "myspace.com")
//! and both the paper's filter and SimAttack operate on word overlap, so
//! punctuation splitting plus case folding is the right granularity.

/// Splits `text` into lower-cased alphanumeric tokens.
///
/// Unicode letters are kept (case-folded); everything else separates
/// tokens. Empty inputs produce an empty vector.
///
/// # Example
///
/// ```
/// use xsearch_text::tokenize::tokenize;
/// assert_eq!(tokenize("Cheap FLIGHTS, to-Paris!"), vec!["cheap", "flights", "to", "paris"]);
/// ```
#[must_use]
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            // Case folding can expand to sequences containing combining
            // marks (e.g. 'İ' → "i\u{307}"); keep only alphanumerics so
            // tokens stay within the token alphabet.
            current.extend(ch.to_lowercase().filter(|c| c.is_alphanumeric()));
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Tokenizes and removes stopwords in one pass.
///
/// # Example
///
/// ```
/// use xsearch_text::tokenize::content_words;
/// assert_eq!(content_words("the best of the best"), vec!["best", "best"]);
/// ```
#[must_use]
pub fn content_words(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !crate::stopwords::is_stopword(t))
        .collect()
}

/// Tokenizes, removes stopwords and Porter-stems — the normalization
/// SimAttack applies before computing cosine similarity.
#[must_use]
pub fn normalized_terms(text: &str) -> Vec<String> {
    content_words(text)
        .into_iter()
        .map(|t| crate::porter::stem(&t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  \t ... ").is_empty());
    }

    #[test]
    fn case_folding() {
        assert_eq!(tokenize("HeLLo WoRLD"), vec!["hello", "world"]);
    }

    #[test]
    fn digits_are_tokens() {
        assert_eq!(
            tokenize("lottery 649 results"),
            vec!["lottery", "649", "results"]
        );
    }

    #[test]
    fn urls_split_into_words() {
        assert_eq!(tokenize("www.myspace.com"), vec!["www", "myspace", "com"]);
    }

    #[test]
    fn apostrophes_split() {
        assert_eq!(tokenize("o'reilly's"), vec!["o", "reilly", "s"]);
    }

    #[test]
    fn content_words_drop_stopwords() {
        assert_eq!(content_words("how to tie a tie"), vec!["tie", "tie"]);
    }

    #[test]
    fn normalized_terms_stem() {
        assert_eq!(normalized_terms("running shoes"), vec!["run", "shoe"]);
    }

    proptest! {
        #[test]
        fn tokens_are_lowercase_alphanumeric(text: String) {
            for tok in tokenize(&text) {
                prop_assert!(!tok.is_empty());
                prop_assert!(tok.chars().all(|c| c.is_alphanumeric()));
                // Case folding is a fixpoint: some uppercase letters (e.g.
                // '𝒥') have no lowercase mapping and pass through.
                prop_assert_eq!(tok.to_lowercase(), tok.clone());
            }
        }

        #[test]
        fn tokenize_is_idempotent_on_joined(text: String) {
            let once = tokenize(&text);
            let rejoined = once.join(" ");
            prop_assert_eq!(tokenize(&rejoined), once);
        }
    }
}
