//! The Porter stemming algorithm (M.F. Porter, "An algorithm for suffix
//! stripping", *Program* 14(3), 1980), as published — without the later
//! "departure" rules.
//!
//! The implementation mirrors the reference C program's structure: a byte
//! buffer, an end index `k`, and a suffix offset `j` shared between the
//! `ends`/measure helpers.

struct Stemmer {
    b: Vec<u8>,
    /// Index of the last valid byte.
    k: isize,
    /// Offset of the character before the candidate suffix (set by `ends`).
    j: isize,
}

impl Stemmer {
    fn cons(&self, i: isize) -> bool {
        match self.b[i as usize] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.cons(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Measures the number of consonant-vowel sequences in `b[0..=j]`.
    fn m(&self) -> usize {
        let mut n = 0;
        let mut i: isize = 0;
        loop {
            if i > self.j {
                return n;
            }
            if !self.cons(i) {
                break;
            }
            i += 1;
        }
        i += 1;
        loop {
            loop {
                if i > self.j {
                    return n;
                }
                if self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
            n += 1;
            loop {
                if i > self.j {
                    return n;
                }
                if !self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
        }
    }

    fn vowel_in_stem(&self) -> bool {
        (0..=self.j).any(|i| !self.cons(i))
    }

    fn double_consonant(&self, j: isize) -> bool {
        j >= 1 && self.b[j as usize] == self.b[(j - 1) as usize] && self.cons(j)
    }

    /// consonant–vowel–consonant ending at `i`, where the final consonant
    /// is not w, x or y (the `*o` condition).
    fn cvc(&self, i: isize) -> bool {
        if i < 2 || !self.cons(i) || self.cons(i - 1) || !self.cons(i - 2) {
            return false;
        }
        !matches!(self.b[i as usize], b'w' | b'x' | b'y')
    }

    fn ends(&mut self, s: &str) -> bool {
        let l = s.len() as isize;
        if l > self.k + 1 {
            return false;
        }
        let start = (self.k + 1 - l) as usize;
        if &self.b[start..=(self.k as usize)] != s.as_bytes() {
            return false;
        }
        self.j = self.k - l;
        true
    }

    fn set_to(&mut self, s: &str) {
        let start = (self.j + 1) as usize;
        self.b.truncate(start);
        self.b.extend_from_slice(s.as_bytes());
        self.k = self.j + s.len() as isize;
    }

    fn replace_if_measure(&mut self, s: &str) {
        if self.m() > 0 {
            self.set_to(s);
        }
    }

    /// Plurals and -ed/-ing.
    fn step1ab(&mut self) {
        if self.b[self.k as usize] == b's' {
            if self.ends("sses") {
                self.k -= 2;
            } else if self.ends("ies") {
                self.set_to("i");
            } else if self.b[(self.k - 1) as usize] != b's' {
                self.k -= 1;
            }
        }
        if self.ends("eed") {
            if self.m() > 0 {
                self.k -= 1;
            }
        } else if (self.ends("ed") || self.ends("ing")) && self.vowel_in_stem() {
            self.k = self.j;
            if self.ends("at") {
                self.set_to("ate");
            } else if self.ends("bl") {
                self.set_to("ble");
            } else if self.ends("iz") {
                self.set_to("ize");
            } else if self.double_consonant(self.k) {
                self.k -= 1;
                if matches!(self.b[self.k as usize], b'l' | b's' | b'z') {
                    self.k += 1;
                }
            } else if self.m() == 1 && self.cvc(self.k) {
                self.set_to("e");
            }
        }
    }

    /// Terminal y → i when there is another vowel in the stem.
    fn step1c(&mut self) {
        if self.ends("y") && self.vowel_in_stem() {
            self.b[self.k as usize] = b'i';
        }
    }

    /// Double to single suffixes, e.g. -ization → -ize.
    // The single-suffix arms mirror the multi-suffix ones: this is the
    // paper's rule table transcribed row by row, so keep the shape.
    #[allow(clippy::collapsible_match)]
    fn step2(&mut self) {
        if self.k < 1 {
            return;
        }
        match self.b[(self.k - 1) as usize] {
            b'a' => {
                if self.ends("ational") {
                    self.replace_if_measure("ate");
                } else if self.ends("tional") {
                    self.replace_if_measure("tion");
                }
            }
            b'c' => {
                if self.ends("enci") {
                    self.replace_if_measure("ence");
                } else if self.ends("anci") {
                    self.replace_if_measure("ance");
                }
            }
            b'e' => {
                if self.ends("izer") {
                    self.replace_if_measure("ize");
                }
            }
            b'l' => {
                if self.ends("abli") {
                    self.replace_if_measure("able");
                } else if self.ends("alli") {
                    self.replace_if_measure("al");
                } else if self.ends("entli") {
                    self.replace_if_measure("ent");
                } else if self.ends("eli") {
                    self.replace_if_measure("e");
                } else if self.ends("ousli") {
                    self.replace_if_measure("ous");
                }
            }
            b'o' => {
                if self.ends("ization") {
                    self.replace_if_measure("ize");
                } else if self.ends("ation") || self.ends("ator") {
                    // Both map to -ate; `ends` short-circuits, so `j` is
                    // set by whichever suffix matched.
                    self.replace_if_measure("ate");
                }
            }
            b's' => {
                if self.ends("alism") {
                    self.replace_if_measure("al");
                } else if self.ends("iveness") {
                    self.replace_if_measure("ive");
                } else if self.ends("fulness") {
                    self.replace_if_measure("ful");
                } else if self.ends("ousness") {
                    self.replace_if_measure("ous");
                }
            }
            b't' => {
                if self.ends("aliti") {
                    self.replace_if_measure("al");
                } else if self.ends("iviti") {
                    self.replace_if_measure("ive");
                } else if self.ends("biliti") {
                    self.replace_if_measure("ble");
                }
            }
            _ => {}
        }
    }

    /// -icate, -ative, -alize, ...
    // The single-suffix arms mirror the multi-suffix ones: this is the
    // paper's rule table transcribed row by row, so keep the shape.
    #[allow(clippy::collapsible_match)]
    fn step3(&mut self) {
        match self.b[self.k as usize] {
            b'e' => {
                if self.ends("icate") {
                    self.replace_if_measure("ic");
                } else if self.ends("ative") {
                    self.replace_if_measure("");
                } else if self.ends("alize") {
                    self.replace_if_measure("al");
                }
            }
            b'i' => {
                if self.ends("iciti") {
                    self.replace_if_measure("ic");
                }
            }
            b'l' => {
                if self.ends("ical") {
                    self.replace_if_measure("ic");
                } else if self.ends("ful") {
                    self.replace_if_measure("");
                }
            }
            b's' => {
                if self.ends("ness") {
                    self.replace_if_measure("");
                }
            }
            _ => {}
        }
    }

    /// Strips -ant, -ence, etc. when the measure exceeds 1.
    fn step4(&mut self) {
        if self.k < 1 {
            return;
        }
        let matched = match self.b[(self.k - 1) as usize] {
            b'a' => self.ends("al"),
            b'c' => self.ends("ance") || self.ends("ence"),
            b'e' => self.ends("er"),
            b'i' => self.ends("ic"),
            b'l' => self.ends("able") || self.ends("ible"),
            b'n' => self.ends("ant") || self.ends("ement") || self.ends("ment") || self.ends("ent"),
            b'o' => {
                (self.ends("ion") && self.j >= 0 && matches!(self.b[self.j as usize], b's' | b't'))
                    || self.ends("ou")
            }
            b's' => self.ends("ism"),
            b't' => self.ends("ate") || self.ends("iti"),
            b'u' => self.ends("ous"),
            b'v' => self.ends("ive"),
            b'z' => self.ends("ize"),
            _ => false,
        };
        if matched && self.m() > 1 {
            self.k = self.j;
        }
    }

    /// Removes a final -e and reduces -ll when the measure allows.
    fn step5(&mut self) {
        self.j = self.k;
        if self.b[self.k as usize] == b'e' {
            let a = self.m();
            if a > 1 || (a == 1 && !self.cvc(self.k - 1)) {
                self.k -= 1;
            }
        }
        if self.b[self.k as usize] == b'l' && self.double_consonant(self.k) && self.m() > 1 {
            self.k -= 1;
        }
    }
}

/// Stems a single lower-case word.
///
/// Words shorter than three characters, and words containing non-ASCII or
/// non-lowercase-alphabetic bytes, are returned unchanged (stemming is
/// defined over plain English words; query tokens like "649" pass through).
///
/// # Example
///
/// ```
/// use xsearch_text::porter::stem;
/// assert_eq!(stem("relational"), "relat");
/// assert_eq!(stem("ponies"), "poni");
/// assert_eq!(stem("sky"), "sky");
/// ```
#[must_use]
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_owned();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
        k: word.len() as isize - 1,
        j: 0,
    };
    s.step1ab();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5();
    s.b.truncate((s.k + 1) as usize);
    String::from_utf8(s.b).expect("ascii in, ascii out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Classic examples from Porter's 1980 paper, one per rule family.
    #[test]
    fn paper_examples() {
        let cases = [
            // Step 1a
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            // Step 1b
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            // Step 1c
            ("happy", "happi"),
            ("sky", "sky"),
            // Step 2
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            // Step 3
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            // Step 4
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            // Step 5
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, want) in cases {
            assert_eq!(stem(input), want, "stem({input:?})");
        }
    }

    #[test]
    fn short_words_unchanged() {
        for w in ["a", "is", "be", "ox"] {
            assert_eq!(stem(w), w);
        }
    }

    #[test]
    fn non_alphabetic_unchanged() {
        assert_eq!(stem("649"), "649");
        assert_eq!(stem("mp3"), "mp3");
        assert_eq!(stem("café"), "café");
    }

    #[test]
    fn common_query_words() {
        assert_eq!(stem("running"), "run");
        assert_eq!(stem("flights"), "flight");
        assert_eq!(stem("recipes"), "recip");
        assert_eq!(stem("lyrics"), "lyric");
    }

    proptest! {
        #[test]
        fn stem_output_is_lowercase_ascii(word in "[a-z]{3,15}") {
            // Note: Porter is *not* idempotent ("ease" → "eas" → "ea"),
            // so we check the output alphabet instead.
            let s = stem(&word);
            prop_assert!(!s.is_empty());
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn stem_never_longer_than_input(word in "[a-z]{3,20}") {
            prop_assert!(stem(&word).len() <= word.len() + 1,
                "only -i endings may grow via ies->i / y->i rules");
        }

        #[test]
        fn stem_never_panics(word: String) {
            let _ = stem(&word);
        }
    }
}
