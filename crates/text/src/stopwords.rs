//! A compact English stopword list.
//!
//! SimAttack and the synthetic-log calibration drop function words before
//! comparing queries; this list covers the classic closed-class English
//! vocabulary that appears in AOL-style queries ("how to ...", "what is
//! ...").

/// Sorted list of stopwords; lookup is by binary search.
static STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "s",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "t",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Returns `true` if `word` (expected lower-case) is an English stopword.
///
/// # Example
///
/// ```
/// use xsearch_text::stopwords::is_stopword;
/// assert!(is_stopword("the"));
/// assert!(!is_stopword("lottery"));
/// ```
#[must_use]
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Number of stopwords in the embedded list.
#[must_use]
pub fn len() -> usize {
    STOPWORDS.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_unique() {
        for pair in STOPWORDS.windows(2) {
            assert!(pair[0] < pair[1], "{} >= {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn common_function_words_present() {
        for w in ["the", "of", "and", "to", "in", "how", "what", "is"] {
            assert!(is_stopword(w), "{w} missing");
        }
    }

    #[test]
    fn content_words_absent() {
        for w in ["lottery", "flight", "cancer", "recipe", "google"] {
            assert!(!is_stopword(w), "{w} wrongly listed");
        }
    }

    #[test]
    fn lookup_is_case_sensitive_lowercase_contract() {
        assert!(!is_stopword("The"));
    }

    #[test]
    fn list_has_classic_coverage() {
        assert!(len() > 100, "list unexpectedly small: {}", len());
    }
}
