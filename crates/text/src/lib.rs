//! Text-processing substrate for the X-Search reproduction.
//!
//! Web search queries and result snippets are short keyword texts; both the
//! SimAttack re-identification attack and X-Search's own result filter
//! (Algorithm 2 of the paper) reduce to operations over bags of words. This
//! crate provides those operations:
//!
//! * [`mod@tokenize`] — lower-cased alphanumeric tokenization,
//! * [`stopwords`] — a compact English stopword list,
//! * [`porter`] — the Porter stemming algorithm (used when normalizing
//!   queries for profile similarity, as SimAttack does),
//! * [`vector`] — interned sparse term vectors,
//! * [`similarity`] — cosine similarity and the paper's `nbCommonWords`.
//!
//! # Example
//!
//! ```
//! use xsearch_text::similarity::{cosine_queries, nb_common_words};
//!
//! assert!(cosine_queries("cheap flight paris", "paris flight deals") > 0.3);
//! assert_eq!(nb_common_words("cheap flight paris", "flight to paris"), 2);
//! ```

#![deny(missing_docs)]

pub mod porter;
pub mod similarity;
pub mod stopwords;
pub mod tokenize;
pub mod vector;

pub use similarity::{cosine_queries, nb_common_words};
pub use tokenize::tokenize;
pub use vector::{SparseVector, TermInterner};
