//! Similarity metrics over short texts.
//!
//! Two metrics matter to the reproduction:
//!
//! * **cosine over normalized terms** — SimAttack's query↔profile metric
//!   (§5.3.1 of the paper) and the Fig 1 fake-query similarity measure;
//! * **`nbCommonWords`** — the word-overlap score of the result filter
//!   (Algorithm 2).

use crate::tokenize::{normalized_terms, tokenize};
use std::collections::HashSet;

/// Cosine similarity between two raw query strings after tokenization,
/// stopword removal and stemming (SimAttack's normalization).
///
/// Returns 0.0 when either query has no content terms.
///
/// # Example
///
/// ```
/// use xsearch_text::similarity::cosine_queries;
/// assert!(cosine_queries("cheap flights", "cheap flight") > 0.999);
/// assert_eq!(cosine_queries("cheap flights", "stomach pain"), 0.0);
/// ```
#[must_use]
pub fn cosine_queries(a: &str, b: &str) -> f64 {
    cosine_terms(&normalized_terms(a), &normalized_terms(b))
}

/// Cosine similarity between two pre-normalized term lists (term-frequency
/// weighted).
#[must_use]
pub fn cosine_terms(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    fn count(terms: &[String]) -> std::collections::HashMap<&str, f64> {
        let mut m = std::collections::HashMap::new();
        for t in terms {
            *m.entry(t.as_str()).or_insert(0.0) += 1.0;
        }
        m
    }
    let ca = count(a);
    let cb = count(b);
    let dot: f64 = ca
        .iter()
        .filter_map(|(t, wa)| cb.get(t).map(|wb| wa * wb))
        .sum();
    let na: f64 = ca.values().map(|w| w * w).sum::<f64>().sqrt();
    let nb: f64 = cb.values().map(|w| w * w).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// The distinct case-folded words of a text, as one pre-tokenized set.
/// Callers that score one text against many (Algorithm 2 scores every
/// sub-query against every result) tokenize each side once with this and
/// then count overlaps with [`common_words`], instead of re-tokenizing
/// per pair through [`nb_common_words`].
///
/// # Example
///
/// ```
/// use xsearch_text::similarity::{common_words, word_set};
/// let q = word_set("hotel cheap paris");
/// let e = word_set("Cheap Paris hotels");
/// assert_eq!(common_words(&q, &e), 2);
/// ```
#[must_use]
pub fn word_set(text: &str) -> HashSet<String> {
    tokenize(text).into_iter().collect()
}

/// Number of shared words between two pre-tokenized sets — the
/// tokenize-once form of [`nb_common_words`]. Iterates the smaller set.
#[must_use]
pub fn common_words(a: &HashSet<String>, b: &HashSet<String>) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small.iter().filter(|w| large.contains(*w)).count()
}

/// The paper's `nbCommonWords(q, e)`: the number of distinct words shared
/// by query `q` and element `e` (title or description), after case-folding
/// tokenization — no stemming, matching Algorithm 2's plain word overlap.
///
/// # Example
///
/// ```
/// use xsearch_text::similarity::nb_common_words;
/// assert_eq!(nb_common_words("hotel cheap paris", "Cheap Paris hotels"), 2);
/// ```
#[must_use]
pub fn nb_common_words(q: &str, e: &str) -> usize {
    common_words(&word_set(q), &word_set(e))
}

/// Jaccard similarity of the word sets of two texts — used by evaluation
/// code to compare result lists and query overlap.
#[must_use]
pub fn jaccard_words(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = tokenize(a).into_iter().collect();
    let sb: HashSet<String> = tokenize(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_queries_have_cosine_one() {
        assert!((cosine_queries("paris hotel", "paris hotel") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stemming_unifies_inflections() {
        assert!((cosine_queries("running shoes", "run shoe") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stopwords_do_not_contribute() {
        assert!((cosine_queries("the paris hotel", "paris hotel") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_is_between_zero_and_one() {
        let c = cosine_queries("cheap paris flight", "cheap rome flight");
        assert!(c > 0.0 && c < 1.0, "cosine {c}");
    }

    #[test]
    fn stopword_only_query_is_zero() {
        assert_eq!(cosine_queries("to be or not to be", "hamlet quote"), 0.0);
    }

    #[test]
    fn nb_common_words_counts_distinct() {
        // Repeated "tie" counts once; only {tie} is shared.
        assert_eq!(nb_common_words("tie a tie", "how to tie"), 1);
        // {paris, hotel} shared, repetition irrelevant.
        assert_eq!(nb_common_words("paris paris hotel", "hotel paris"), 2);
    }

    #[test]
    fn nb_common_words_case_insensitive() {
        assert_eq!(nb_common_words("PARIS hotel", "paris HOTEL guide"), 2);
    }

    #[test]
    fn nb_common_words_disjoint_is_zero() {
        assert_eq!(nb_common_words("alpha beta", "gamma delta"), 0);
    }

    #[test]
    fn jaccard_identical_is_one() {
        assert!((jaccard_words("a b c", "c b a") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_empty_is_zero() {
        assert_eq!(jaccard_words("", ""), 0.0);
    }

    proptest! {
        #[test]
        fn cosine_is_symmetric(a in "[a-z ]{0,40}", b in "[a-z ]{0,40}") {
            prop_assert!((cosine_queries(&a, &b) - cosine_queries(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn cosine_in_unit_interval(a in "[a-z ]{0,40}", b in "[a-z ]{0,40}") {
            let c = cosine_queries(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
        }

        #[test]
        fn common_words_bounded_by_smaller_set(a in "[a-z ]{0,40}", b in "[a-z ]{0,40}") {
            let n = nb_common_words(&a, &b);
            let qa: std::collections::HashSet<_> = tokenize(&a).into_iter().collect();
            let qb: std::collections::HashSet<_> = tokenize(&b).into_iter().collect();
            prop_assert!(n <= qa.len().min(qb.len()));
        }

        #[test]
        fn jaccard_symmetric(a in "[a-z ]{0,30}", b in "[a-z ]{0,30}") {
            prop_assert!((jaccard_words(&a, &b) - jaccard_words(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn pretokenized_overlap_matches_per_pair_form(a in "[a-zA-Z ]{0,40}", b in "[a-zA-Z ]{0,40}") {
            prop_assert_eq!(common_words(&word_set(&a), &word_set(&b)), nb_common_words(&a, &b));
        }
    }
}
