//! The Direct baseline: queries go straight to the engine (§5.2's
//! unprotected lower bound).

use crate::system::{Exposure, PrivateSearchSystem};
use xsearch_query_log::record::UserId;

/// No protection at all: identity and query are both exposed.
#[derive(Debug, Clone, Copy, Default)]
pub struct Direct;

impl Direct {
    /// Creates the baseline.
    #[must_use]
    pub fn new() -> Self {
        Direct
    }
}

impl PrivateSearchSystem for Direct {
    fn name(&self) -> &str {
        "Direct"
    }

    fn protect(&mut self, user: UserId, query: &str) -> Exposure {
        Exposure::single(query, Some(user))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposes_identity_and_query() {
        let mut d = Direct::new();
        let e = d.protect(UserId(7), "my secret query");
        assert_eq!(e.identity, Some(UserId(7)));
        assert_eq!(e.subqueries, vec!["my secret query"]);
    }
}
