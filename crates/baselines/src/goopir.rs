//! GooPIR (Domingo-Ferrer et al.): k dictionary-sourced fake queries
//! OR-ed with the real one (§2.1.2).
//!
//! Fakes are built from a flat dictionary of keywords, matched in word
//! count to the real query — plausible-looking but, like TMN's, drawn
//! from a distribution real users do not produce.

use crate::system::{Exposure, PrivateSearchSystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xsearch_query_log::record::UserId;
use xsearch_query_log::topics::TOPICS;

/// The GooPIR client.
#[derive(Debug)]
pub struct GooPir {
    rng: StdRng,
    k: usize,
    dictionary: Vec<&'static str>,
}

impl GooPir {
    /// Creates a GooPIR client that adds `k` fakes per query.
    #[must_use]
    pub fn new(k: usize, seed: u64) -> Self {
        // The dictionary: the union of all topic vocabularies, flattened —
        // GooPIR draws uniformly from a keyword dictionary.
        let dictionary: Vec<&'static str> = TOPICS
            .iter()
            .flat_map(|t| t.terms.iter().copied())
            .collect();
        GooPir {
            rng: StdRng::seed_from_u64(seed),
            k,
            dictionary,
        }
    }

    /// One dictionary fake with `words` keywords.
    fn fake_with_len(&mut self, words: usize) -> String {
        let picked: Vec<&str> = (0..words.max(1))
            .map(|_| self.dictionary[self.rng.gen_range(0..self.dictionary.len())])
            .collect();
        picked.join(" ")
    }
}

impl PrivateSearchSystem for GooPir {
    fn name(&self) -> &str {
        "GooPIR"
    }

    /// GooPIR runs client-side: identity stays exposed; the query is
    /// hidden among k same-length dictionary fakes.
    fn protect(&mut self, user: UserId, query: &str) -> Exposure {
        let len = query.split_whitespace().count();
        let mut subqueries: Vec<String> = (0..self.k).map(|_| self.fake_with_len(len)).collect();
        subqueries.insert(self.rng.gen_range(0..=subqueries.len()), query.to_owned());
        Exposure {
            subqueries,
            identity: Some(user),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adds_exactly_k_fakes() {
        let mut g = GooPir::new(3, 1);
        let e = g.protect(UserId(1), "paris hotel");
        assert_eq!(e.subqueries.len(), 4);
        assert_eq!(
            e.subqueries.iter().filter(|q| *q == "paris hotel").count(),
            1
        );
    }

    #[test]
    fn fakes_match_query_word_count() {
        let mut g = GooPir::new(5, 2);
        let e = g.protect(UserId(1), "three word query");
        for q in &e.subqueries {
            assert_eq!(q.split_whitespace().count(), 3, "{q:?}");
        }
    }

    #[test]
    fn identity_stays_exposed() {
        let mut g = GooPir::new(1, 3);
        assert_eq!(g.protect(UserId(9), "q").identity, Some(UserId(9)));
    }

    #[test]
    fn k_zero_is_just_the_query() {
        let mut g = GooPir::new(0, 4);
        assert_eq!(g.protect(UserId(1), "alone").subqueries, vec!["alone"]);
    }
}
