//! The comparison systems of the paper's evaluation.
//!
//! X-Search is compared against (§5.2):
//!
//! * [`direct`] — no protection: the engine sees identity and query;
//! * [`tor`] — unlinkability only: a 3-hop onion-routing circuit with
//!   per-hop layered AEAD over fixed-size cells;
//! * [`peas`] — unlinkability + indistinguishability via two
//!   *non-colluding* proxies (a receiver that sees identity but only
//!   ciphertext, and an issuer that sees the query but no identity) with
//!   fake queries generated from a term co-occurrence matrix;
//! * [`tmn`] — TrackMeNot: periodic RSS-sourced fake queries (Fig 1);
//! * [`goopir`] — GooPIR: dictionary-sourced fakes OR-ed with the query.
//!
//! [`system`] defines the common `PrivateSearchSystem` abstraction the
//! privacy experiments drive: every system turns `(user, query)` into the
//! *exposure* an honest-but-curious engine observes.

#![deny(missing_docs)]

pub mod direct;
pub mod goopir;
pub mod peas;
pub mod system;
pub mod tmn;
pub mod tor;
pub mod xsearch_system;

pub use system::{Exposure, PrivateSearchSystem};
