//! The common abstraction the privacy experiments drive.

use xsearch_query_log::record::UserId;

/// What the honest-but-curious search engine observes for one protected
/// query — the adversary's input for re-identification (§3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exposure {
    /// The candidate queries the engine sees. One entry for unlinkability
    /// systems (the query itself), `k + 1` for obfuscating systems.
    pub subqueries: Vec<String>,
    /// `Some(user)` when the system leaks the requester's identity
    /// (Direct); `None` when a proxy hides it.
    pub identity: Option<UserId>,
}

impl Exposure {
    /// An exposure consisting of a single plain query.
    #[must_use]
    pub fn single(query: &str, identity: Option<UserId>) -> Self {
        Exposure {
            subqueries: vec![query.to_owned()],
            identity,
        }
    }
}

/// A private web search mechanism, as the privacy evaluation sees it.
///
/// Implementations are stateful: X-Search's history fills with the
/// queries it protects, PEAS's co-occurrence matrix reflects its training
/// corpus, and so on.
pub trait PrivateSearchSystem {
    /// Display name ("X-Search", "PEAS", "Tor", "Direct").
    fn name(&self) -> &str;

    /// Protects one query, returning what the engine observes.
    fn protect(&mut self, user: UserId, query: &str) -> Exposure;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_exposure_shape() {
        let e = Exposure::single("q", Some(UserId(1)));
        assert_eq!(e.subqueries, vec!["q"]);
        assert_eq!(e.identity, Some(UserId(1)));
    }
}
