//! Fixed-size cells.
//!
//! Tor carries all traffic in fixed 512-byte cells so message sizes leak
//! nothing. A message is framed as a 4-byte length followed by payload,
//! split across as many cells as needed, zero-padded.

/// The classic Tor cell size.
pub const CELL_LEN: usize = 512;

/// Splits a message into padded cells.
#[must_use]
pub fn to_cells(payload: &[u8]) -> Vec<[u8; CELL_LEN]> {
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(payload);
    framed
        .chunks(CELL_LEN)
        .map(|chunk| {
            let mut cell = [0u8; CELL_LEN];
            cell[..chunk.len()].copy_from_slice(chunk);
            cell
        })
        .collect()
}

/// Reassembles a message from cells; `None` when the framing is invalid.
#[must_use]
pub fn from_cells(cells: &[[u8; CELL_LEN]]) -> Option<Vec<u8>> {
    let first = cells.first()?;
    let len = u32::from_le_bytes(first[..4].try_into().expect("4 bytes")) as usize;
    let available = cells.len() * CELL_LEN - 4;
    if len > available {
        return None;
    }
    let mut out = Vec::with_capacity(len);
    out.extend_from_slice(&first[4..CELL_LEN.min(4 + len)]);
    for cell in &cells[1..] {
        if out.len() >= len {
            break;
        }
        let take = (len - out.len()).min(CELL_LEN);
        out.extend_from_slice(&cell[..take]);
    }
    if out.len() == len {
        Some(out)
    } else {
        None
    }
}

/// Number of cells a message of `len` bytes occupies.
#[must_use]
pub fn cell_count(len: usize) -> usize {
    (len + 4).div_ceil(CELL_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_message_fits_one_cell() {
        let cells = to_cells(b"hello");
        assert_eq!(cells.len(), 1);
        assert_eq!(from_cells(&cells).unwrap(), b"hello");
    }

    #[test]
    fn empty_message_roundtrips() {
        let cells = to_cells(b"");
        assert_eq!(cells.len(), 1);
        assert_eq!(from_cells(&cells).unwrap(), b"");
    }

    #[test]
    fn exact_boundary_roundtrips() {
        let payload = vec![7u8; CELL_LEN - 4];
        let cells = to_cells(&payload);
        assert_eq!(cells.len(), 1);
        assert_eq!(from_cells(&cells).unwrap(), payload);
        let payload = vec![7u8; CELL_LEN - 3];
        assert_eq!(to_cells(&payload).len(), 2);
    }

    #[test]
    fn oversized_length_field_rejected() {
        let mut cell = [0u8; CELL_LEN];
        cell[..4].copy_from_slice(&(10_000u32).to_le_bytes());
        assert_eq!(from_cells(&[cell]), None);
    }

    #[test]
    fn no_cells_is_none() {
        assert_eq!(from_cells(&[]), None);
    }

    proptest! {
        #[test]
        fn roundtrip_any_payload(payload in proptest::collection::vec(any::<u8>(), 0..3000)) {
            let cells = to_cells(&payload);
            prop_assert_eq!(cells.len(), cell_count(payload.len()));
            prop_assert_eq!(from_cells(&cells).unwrap(), payload);
        }
    }
}
