//! Tor-style onion routing (§2.1.1): the unlinkability-only baseline.
//!
//! Three relays (guard, middle, exit); the client derives one symmetric
//! key per hop via X25519 and wraps each message in three AEAD layers
//! carried in fixed 512-byte cells. Forward traffic is peeled one layer
//! per relay; responses are wrapped one layer per relay and peeled by the
//! client. No relay sees both the client identity and the plaintext, and
//! the exit sees the plaintext query but not the client — which is why
//! re-identification attacks on query *content* (Fig 3, k = 0) still
//! succeed.

pub mod cell;
pub mod circuit;
pub mod network;
pub mod relay;

pub use circuit::ClientCircuit;
pub use network::TorNetwork;
pub use relay::Relay;

use crate::system::{Exposure, PrivateSearchSystem};
use xsearch_query_log::record::UserId;

/// Tor as the privacy experiments see it: identity hidden, query exposed
/// at the exit.
#[derive(Debug, Clone, Copy, Default)]
pub struct TorSystem;

impl TorSystem {
    /// Creates the baseline view.
    #[must_use]
    pub fn new() -> Self {
        TorSystem
    }
}

impl PrivateSearchSystem for TorSystem {
    fn name(&self) -> &str {
        "Tor"
    }

    fn protect(&mut self, _user: UserId, query: &str) -> Exposure {
        Exposure::single(query, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hides_identity_but_not_query() {
        let mut t = TorSystem::new();
        let e = t.protect(UserId(3), "revealing query");
        assert_eq!(e.identity, None);
        assert_eq!(e.subqueries, vec!["revealing query"]);
    }
}
