//! A Tor relay: holds an identity key and per-circuit hop state.

use parking_lot::Mutex;
use rand::RngCore;
use std::collections::HashMap;
use xsearch_crypto::aead::{counter_nonce, ChaCha20Poly1305, TAG_LEN};
use xsearch_crypto::hkdf;
use xsearch_crypto::x25519::{PublicKey, StaticSecret};

/// Errors from relay-side processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayError {
    /// The circuit id is unknown at this relay.
    UnknownCircuit,
    /// A layer failed to authenticate (tampered or mis-routed onion).
    BadOnion,
}

impl std::fmt::Display for RelayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelayError::UnknownCircuit => write!(f, "unknown circuit"),
            RelayError::BadOnion => write!(f, "onion layer failed to authenticate"),
        }
    }
}

impl std::error::Error for RelayError {}

struct HopState {
    aead: ChaCha20Poly1305,
    forward: u64,
    backward: u64,
}

/// One onion router.
pub struct Relay {
    id: usize,
    secret: StaticSecret,
    circuits: Mutex<HashMap<u64, HopState>>,
}

impl std::fmt::Debug for Relay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Relay").field("id", &self.id).finish()
    }
}

/// Derives the per-hop AEAD key from a DH shared secret (the ntor-style
/// key schedule, simplified).
pub(crate) fn hop_key(
    shared: &[u8; 32],
    client_eph: &PublicKey,
    relay_pub: &PublicKey,
) -> [u8; 32] {
    let mut salt = Vec::with_capacity(64);
    salt.extend_from_slice(client_eph.as_bytes());
    salt.extend_from_slice(relay_pub.as_bytes());
    hkdf::derive(&salt, shared, b"tor-sim-hop-v1", 32)
        .try_into()
        .expect("32 bytes requested")
}

impl Relay {
    /// Creates a relay with a fresh identity key.
    pub fn new<R: RngCore>(id: usize, rng: &mut R) -> Self {
        Relay {
            id,
            secret: StaticSecret::random(rng),
            circuits: Mutex::new(HashMap::new()),
        }
    }

    /// Relay index in the directory.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The relay's public identity key (published in the directory).
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        self.secret.public_key()
    }

    /// Handles a CREATE/EXTEND: derives the hop key for `circuit` from
    /// the client's ephemeral public key.
    pub fn extend(&self, circuit: u64, client_eph: &PublicKey) {
        let shared = self
            .secret
            .diffie_hellman(client_eph)
            .expect("client ephemeral keys are well-formed in this simulation");
        let key = hop_key(&shared, client_eph, &self.public_key());
        self.circuits.lock().insert(
            circuit,
            HopState {
                aead: ChaCha20Poly1305::new(&key),
                forward: 0,
                backward: 0,
            },
        );
    }

    /// Peels one forward layer (client → exit direction): one result
    /// allocation, verified and decrypted in place.
    ///
    /// # Errors
    ///
    /// [`RelayError::UnknownCircuit`] / [`RelayError::BadOnion`].
    pub fn peel_forward(&self, circuit: u64, onion: &[u8]) -> Result<Vec<u8>, RelayError> {
        let mut circuits = self.circuits.lock();
        let state = circuits
            .get_mut(&circuit)
            .ok_or(RelayError::UnknownCircuit)?;
        let nonce = counter_nonce(*b"torF", state.forward);
        let mut inner = onion.to_vec();
        state
            .aead
            .open_vec(&nonce, &[], &mut inner)
            .map_err(|_| RelayError::BadOnion)?;
        state.forward += 1;
        Ok(inner)
    }

    /// Wraps one backward layer (engine → client direction): the layer
    /// is sealed in place in a buffer with tag headroom.
    ///
    /// # Errors
    ///
    /// [`RelayError::UnknownCircuit`].
    pub fn wrap_backward(&self, circuit: u64, payload: &[u8]) -> Result<Vec<u8>, RelayError> {
        let mut circuits = self.circuits.lock();
        let state = circuits
            .get_mut(&circuit)
            .ok_or(RelayError::UnknownCircuit)?;
        let nonce = counter_nonce(*b"torB", state.backward);
        state.backward += 1;
        let mut out = Vec::with_capacity(payload.len() + TAG_LEN);
        out.extend_from_slice(payload);
        state.aead.seal_vec(&nonce, &[], &mut out);
        Ok(out)
    }

    /// Number of circuits currently extended through this relay.
    #[must_use]
    pub fn circuit_count(&self) -> usize {
        self.circuits.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn extend_then_peel_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let relay = Relay::new(0, &mut rng);
        let client_eph = StaticSecret::random(&mut rng);
        relay.extend(42, &client_eph.public_key());

        // The client derives the same key and seals a layer.
        let shared = client_eph.diffie_hellman(&relay.public_key()).unwrap();
        let key = hop_key(&shared, &client_eph.public_key(), &relay.public_key());
        let aead = ChaCha20Poly1305::new(&key);
        let onion = aead.seal(&counter_nonce(*b"torF", 0), &[], b"inner payload");

        assert_eq!(relay.peel_forward(42, &onion).unwrap(), b"inner payload");
    }

    #[test]
    fn unknown_circuit_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let relay = Relay::new(0, &mut rng);
        assert_eq!(relay.peel_forward(9, b"x"), Err(RelayError::UnknownCircuit));
        assert_eq!(
            relay.wrap_backward(9, b"x"),
            Err(RelayError::UnknownCircuit)
        );
    }

    #[test]
    fn tampered_onion_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let relay = Relay::new(0, &mut rng);
        let client_eph = StaticSecret::random(&mut rng);
        relay.extend(1, &client_eph.public_key());
        assert_eq!(relay.peel_forward(1, &[0u8; 64]), Err(RelayError::BadOnion));
    }

    #[test]
    fn circuits_are_isolated() {
        let mut rng = StdRng::seed_from_u64(4);
        let relay = Relay::new(0, &mut rng);
        let a = StaticSecret::random(&mut rng);
        let b = StaticSecret::random(&mut rng);
        relay.extend(1, &a.public_key());
        relay.extend(2, &b.public_key());
        assert_eq!(relay.circuit_count(), 2);

        let shared = a.diffie_hellman(&relay.public_key()).unwrap();
        let key = hop_key(&shared, &a.public_key(), &relay.public_key());
        let onion = ChaCha20Poly1305::new(&key).seal(&counter_nonce(*b"torF", 0), &[], b"p");
        // Circuit 2 cannot decrypt circuit 1's traffic.
        assert_eq!(relay.peel_forward(2, &onion), Err(RelayError::BadOnion));
        assert_eq!(relay.peel_forward(1, &onion).unwrap(), b"p");
    }
}
