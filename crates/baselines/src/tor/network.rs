//! The simulated Tor network: directory, circuit construction and full
//! round trips.

use super::cell::{from_cells, to_cells};
use super::circuit::ClientCircuit;
use super::relay::{Relay, RelayError};
use rand::seq::SliceRandom;
use rand::RngCore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xsearch_net_sim::station::busy_wait;

/// Errors from a Tor round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TorError {
    /// A relay rejected the onion.
    Relay(RelayError),
    /// The client could not open the response.
    BadResponse,
    /// Cell framing was violated.
    BadFraming,
}

impl std::fmt::Display for TorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TorError::Relay(e) => write!(f, "relay error: {e}"),
            TorError::BadResponse => write!(f, "client could not open response onion"),
            TorError::BadFraming => write!(f, "cell framing violated"),
        }
    }
}

impl std::error::Error for TorError {}

impl From<RelayError> for TorError {
    fn from(e: RelayError) -> Self {
        TorError::Relay(e)
    }
}

/// The directory plus the relays themselves.
pub struct TorNetwork {
    relays: Vec<Arc<Relay>>,
    next_circuit: AtomicU64,
    /// CPU-bound service time modeled per relay per message — the
    /// capacity term that makes Tor saturate near the paper's ~100 req/s
    /// (relays are shared, bandwidth-limited machines; see DESIGN.md).
    relay_service: Duration,
}

impl std::fmt::Debug for TorNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TorNetwork")
            .field("relays", &self.relays.len())
            .finish()
    }
}

/// A circuit bound to its path through the network.
#[derive(Debug)]
pub struct BoundCircuit {
    circuit: ClientCircuit,
    path: Vec<Arc<Relay>>,
}

impl TorNetwork {
    /// Spins up `n` relays with the given per-relay service time.
    pub fn new<R: RngCore>(n: usize, relay_service: Duration, rng: &mut R) -> Self {
        assert!(n >= 3, "need at least 3 relays for a circuit");
        let relays = (0..n).map(|i| Arc::new(Relay::new(i, rng))).collect();
        TorNetwork {
            relays,
            next_circuit: AtomicU64::new(1),
            relay_service,
        }
    }

    /// Number of relays in the consensus.
    #[must_use]
    pub fn relay_count(&self) -> usize {
        self.relays.len()
    }

    /// Builds a fresh 3-hop circuit over distinct relays.
    pub fn build_circuit<R: RngCore>(&self, rng: &mut R) -> BoundCircuit {
        let mut indices: Vec<usize> = (0..self.relays.len()).collect();
        indices.shuffle(rng);
        let path: Vec<Arc<Relay>> = indices
            .into_iter()
            .take(3)
            .map(|i| self.relays[i].clone())
            .collect();
        let keys: Vec<_> = path.iter().map(|r| r.public_key()).collect();
        let id = self.next_circuit.fetch_add(1, Ordering::Relaxed);
        let (circuit, ephemerals) = ClientCircuit::establish(id, &keys, rng);
        for (relay, eph) in path.iter().zip(&ephemerals) {
            relay.extend(id, eph);
        }
        BoundCircuit { circuit, path }
    }

    /// One full round trip: the request traverses guard → middle → exit
    /// (one layer peeled and one service time paid per relay), the exit
    /// hands the plaintext to `exit_fn` (the search engine), and the
    /// response is wrapped back hop by hop.
    ///
    /// # Errors
    ///
    /// Any [`TorError`] variant on authentication or framing failure.
    pub fn round_trip<F>(
        &self,
        bound: &mut BoundCircuit,
        request: &[u8],
        exit_fn: F,
    ) -> Result<Vec<u8>, TorError>
    where
        F: FnOnce(&[u8]) -> Vec<u8>,
    {
        // Client: frame into cells, then wrap the whole cell train.
        let cells = to_cells(request);
        let framed: Vec<u8> = cells.iter().flat_map(|c| c.iter().copied()).collect();
        let mut onion = bound.circuit.wrap_forward(&framed);

        for relay in &bound.path {
            busy_wait(self.relay_service);
            onion = relay.peel_forward(bound.circuit.id(), &onion)?;
        }
        // Exit: reassemble the request and query the engine.
        let cell_vec: Vec<[u8; super::cell::CELL_LEN]> = onion
            .chunks(super::cell::CELL_LEN)
            .map(|c| {
                let mut cell = [0u8; super::cell::CELL_LEN];
                cell[..c.len()].copy_from_slice(c);
                cell
            })
            .collect();
        let plain_request = from_cells(&cell_vec).ok_or(TorError::BadFraming)?;
        let response = exit_fn(&plain_request);

        // Backward: each relay wraps one layer, exit first.
        let resp_cells = to_cells(&response);
        let mut data: Vec<u8> = resp_cells.iter().flat_map(|c| c.iter().copied()).collect();
        for relay in bound.path.iter().rev() {
            busy_wait(self.relay_service);
            data = relay.wrap_backward(bound.circuit.id(), &data)?;
        }

        let framed_resp = bound
            .circuit
            .unwrap_backward(&data)
            .map_err(|_| TorError::BadResponse)?;
        let resp_cell_vec: Vec<[u8; super::cell::CELL_LEN]> = framed_resp
            .chunks(super::cell::CELL_LEN)
            .map(|c| {
                let mut cell = [0u8; super::cell::CELL_LEN];
                cell[..c.len()].copy_from_slice(c);
                cell
            })
            .collect();
        from_cells(&resp_cell_vec).ok_or(TorError::BadFraming)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn network(rng: &mut StdRng) -> TorNetwork {
        TorNetwork::new(9, Duration::ZERO, rng)
    }

    #[test]
    fn round_trip_delivers_query_and_response() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = network(&mut rng);
        let mut circuit = net.build_circuit(&mut rng);
        let response = net
            .round_trip(&mut circuit, b"cheap flights", |req| {
                assert_eq!(req, b"cheap flights");
                b"ten blue links".to_vec()
            })
            .unwrap();
        assert_eq!(response, b"ten blue links");
    }

    #[test]
    fn circuit_survives_multiple_round_trips() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = network(&mut rng);
        let mut circuit = net.build_circuit(&mut rng);
        for i in 0..5 {
            let req = format!("query {i}");
            let resp = net
                .round_trip(&mut circuit, req.as_bytes(), |r| r.to_vec())
                .unwrap();
            assert_eq!(resp, req.as_bytes());
        }
    }

    #[test]
    fn paths_use_three_distinct_relays() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = network(&mut rng);
        let bound = net.build_circuit(&mut rng);
        let ids: std::collections::HashSet<usize> = bound.path.iter().map(|r| r.id()).collect();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn exit_sees_plaintext_but_guard_does_not() {
        // Structural check: what the guard peels is still ciphertext
        // (two layers remain), so it cannot read the query.
        let mut rng = StdRng::seed_from_u64(4);
        let net = network(&mut rng);
        let mut bound = net.build_circuit(&mut rng);
        let cells = to_cells(b"the secret query");
        let framed: Vec<u8> = cells.iter().flat_map(|c| c.iter().copied()).collect();
        let onion = bound.circuit.wrap_forward(&framed);
        let after_guard = bound.path[0]
            .peel_forward(bound.circuit.id(), &onion)
            .unwrap();
        let needle = b"the secret query";
        let visible = after_guard.windows(needle.len()).any(|w| w == needle);
        assert!(!visible, "guard must not see the plaintext");
    }

    #[test]
    fn large_responses_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = network(&mut rng);
        let mut circuit = net.build_circuit(&mut rng);
        let big = vec![0x5au8; 10_000];
        let response = net.round_trip(&mut circuit, b"q", |_| big.clone()).unwrap();
        assert_eq!(response, big);
    }
}
