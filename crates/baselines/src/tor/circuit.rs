//! The client side of a 3-hop circuit.

use super::relay::hop_key;
use rand::RngCore;
use xsearch_crypto::aead::{counter_nonce, ChaCha20Poly1305, TAG_LEN};
use xsearch_crypto::x25519::{PublicKey, StaticSecret};

/// Errors from client-side onion processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitError {
    /// A response layer failed to authenticate.
    BadLayer,
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "response onion layer failed to authenticate")
    }
}

impl std::error::Error for CircuitError {}

struct ClientHop {
    aead: ChaCha20Poly1305,
    forward: u64,
    backward: u64,
}

/// Client-side key material for one circuit (guard first, exit last).
pub struct ClientCircuit {
    id: u64,
    hops: Vec<ClientHop>,
}

impl std::fmt::Debug for ClientCircuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientCircuit")
            .field("id", &self.id)
            .field("hops", &self.hops.len())
            .finish()
    }
}

impl ClientCircuit {
    /// Establishes client-side hop keys toward the given relay public
    /// keys, returning the circuit and the ephemeral public keys the
    /// relays need for their side of the handshake (in hop order).
    pub fn establish<R: RngCore>(
        id: u64,
        relay_keys: &[PublicKey],
        rng: &mut R,
    ) -> (Self, Vec<PublicKey>) {
        let mut hops = Vec::with_capacity(relay_keys.len());
        let mut ephemerals = Vec::with_capacity(relay_keys.len());
        for relay_pub in relay_keys {
            let eph = StaticSecret::random(rng);
            let shared = eph
                .diffie_hellman(relay_pub)
                .expect("directory keys are well-formed");
            let key = hop_key(&shared, &eph.public_key(), relay_pub);
            hops.push(ClientHop {
                aead: ChaCha20Poly1305::new(&key),
                forward: 0,
                backward: 0,
            });
            ephemerals.push(eph.public_key());
        }
        (ClientCircuit { id, hops }, ephemerals)
    }

    /// The circuit id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of hops (3 in the standard configuration).
    #[must_use]
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Builds the forward onion: innermost layer for the exit, outermost
    /// for the guard.
    ///
    /// All layers are applied in one buffer sized for the payload plus
    /// every hop's tag up front: each layer encrypts the accumulated
    /// onion in place and appends its detached tag, instead of the old
    /// allocate-and-copy per layer.
    pub fn wrap_forward(&mut self, payload: &[u8]) -> Vec<u8> {
        let mut onion = Vec::with_capacity(payload.len() + self.hops.len() * TAG_LEN);
        onion.extend_from_slice(payload);
        for hop in self.hops.iter_mut().rev() {
            let nonce = counter_nonce(*b"torF", hop.forward);
            hop.forward += 1;
            hop.aead.seal_vec(&nonce, &[], &mut onion);
        }
        onion
    }

    /// Peels a response onion (guard's layer outermost) — one buffer,
    /// each layer verified and decrypted in place, then truncated by
    /// its tag.
    ///
    /// # Errors
    ///
    /// [`CircuitError::BadLayer`] on tampering or desynchronization.
    pub fn unwrap_backward(&mut self, onion: &[u8]) -> Result<Vec<u8>, CircuitError> {
        let mut data = onion.to_vec();
        for hop in &mut self.hops {
            let nonce = counter_nonce(*b"torB", hop.backward);
            hop.aead
                .open_vec(&nonce, &[], &mut data)
                .map_err(|_| CircuitError::BadLayer)?;
            hop.backward += 1;
        }
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn relay_secrets(n: usize, rng: &mut StdRng) -> Vec<StaticSecret> {
        (0..n).map(|_| StaticSecret::random(rng)).collect()
    }

    #[test]
    fn onion_has_three_layers() {
        let mut rng = StdRng::seed_from_u64(1);
        let relays = relay_secrets(3, &mut rng);
        let keys: Vec<PublicKey> = relays.iter().map(StaticSecret::public_key).collect();
        let (mut circuit, ephs) = ClientCircuit::establish(1, &keys, &mut rng);
        assert_eq!(circuit.hop_count(), 3);
        assert_eq!(ephs.len(), 3);

        let onion = circuit.wrap_forward(b"query");
        // Each AEAD layer adds a 16-byte tag.
        assert_eq!(onion.len(), 5 + 3 * 16);
    }

    #[test]
    fn relays_peel_in_order() {
        let mut rng = StdRng::seed_from_u64(2);
        let relays = relay_secrets(3, &mut rng);
        let keys: Vec<PublicKey> = relays.iter().map(StaticSecret::public_key).collect();
        let (mut circuit, ephs) = ClientCircuit::establish(7, &keys, &mut rng);
        let onion = circuit.wrap_forward(b"to the exit");

        // Manually peel layer by layer with each relay's derived key.
        let mut data = onion;
        for (relay_secret, eph) in relays.iter().zip(&ephs) {
            let shared = relay_secret.diffie_hellman(eph).unwrap();
            let key = hop_key(&shared, eph, &relay_secret.public_key());
            let aead = ChaCha20Poly1305::new(&key);
            data = aead.open(&counter_nonce(*b"torF", 0), &[], &data).unwrap();
        }
        assert_eq!(data, b"to the exit");
    }

    #[test]
    fn backward_wrapping_unwraps_at_client() {
        let mut rng = StdRng::seed_from_u64(3);
        let relays = relay_secrets(3, &mut rng);
        let keys: Vec<PublicKey> = relays.iter().map(StaticSecret::public_key).collect();
        let (mut circuit, ephs) = ClientCircuit::establish(9, &keys, &mut rng);

        // Response wrapped by exit, middle, guard (reverse path).
        let mut data = b"response".to_vec();
        for (relay_secret, eph) in relays.iter().zip(&ephs).rev() {
            let shared = relay_secret.diffie_hellman(eph).unwrap();
            let key = hop_key(&shared, eph, &relay_secret.public_key());
            let aead = ChaCha20Poly1305::new(&key);
            data = aead.seal(&counter_nonce(*b"torB", 0), &[], &data);
        }
        assert_eq!(circuit.unwrap_backward(&data).unwrap(), b"response");
    }

    #[test]
    fn tampered_response_fails() {
        let mut rng = StdRng::seed_from_u64(4);
        let relays = relay_secrets(3, &mut rng);
        let keys: Vec<PublicKey> = relays.iter().map(StaticSecret::public_key).collect();
        let (mut circuit, _) = ClientCircuit::establish(1, &keys, &mut rng);
        assert_eq!(
            circuit.unwrap_backward(&[0u8; 80]),
            Err(CircuitError::BadLayer)
        );
    }
}
