//! X-Search as a [`PrivateSearchSystem`] — the lightweight obfuscation
//! view the privacy experiments (Fig 3) drive, without the crypto tunnel
//! (the adversary there sits at the search engine and only ever sees the
//! obfuscated sub-queries, so the tunnel is irrelevant to the attack).

use crate::system::{Exposure, PrivateSearchSystem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use xsearch_core::history::QueryHistory;
use xsearch_core::obfuscate::obfuscate;
use xsearch_query_log::record::UserId;
use xsearch_sgx_sim::epc::EpcGauge;

/// The obfuscation pipeline of the X-Search enclave, standalone.
#[derive(Debug)]
pub struct XSearchSystem {
    history: Arc<QueryHistory>,
    k: usize,
    rng: StdRng,
}

impl XSearchSystem {
    /// Creates the system with window size `history_capacity`.
    #[must_use]
    pub fn new(k: usize, history_capacity: usize, seed: u64) -> Self {
        XSearchSystem {
            history: Arc::new(QueryHistory::new(history_capacity, EpcGauge::new())),
            k,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Pre-fills the history (the warm state the paper assumes).
    pub fn warm<'a, I: IntoIterator<Item = &'a str>>(&self, queries: I) {
        for q in queries {
            self.history.push(q);
        }
    }

    /// Current history size.
    #[must_use]
    pub fn history_len(&self) -> usize {
        self.history.len()
    }
}

impl PrivateSearchSystem for XSearchSystem {
    fn name(&self) -> &str {
        "X-Search"
    }

    fn protect(&mut self, _user: UserId, query: &str) -> Exposure {
        let obfuscated = obfuscate(query, &self.history, self.k, &mut self.rng);
        Exposure {
            // The privacy experiments consume owned strings; this is the
            // cold evaluation path, so re-owning the Arc'd sub-queries
            // here keeps the hot path copy-free without rippling Arc
            // through the whole attack stack.
            subqueries: obfuscated
                .subqueries
                .iter()
                .map(|s| String::from(&**s))
                .collect(),
            identity: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposure_hides_identity_among_history_queries() {
        let mut xs = XSearchSystem::new(2, 1000, 1);
        xs.warm(["past one", "past two", "past three"]);
        let e = xs.protect(UserId(9), "fresh query");
        assert_eq!(e.identity, None);
        assert_eq!(e.subqueries.len(), 3);
        assert!(e.subqueries.contains(&"fresh query".to_owned()));
    }

    #[test]
    fn protected_queries_feed_the_history() {
        let mut xs = XSearchSystem::new(1, 1000, 2);
        assert_eq!(xs.history_len(), 0);
        let _ = xs.protect(UserId(1), "first");
        assert_eq!(xs.history_len(), 1);
        let e = xs.protect(UserId(2), "second");
        // The only possible fake is the first user's query: X-Search's
        // fakes are real queries from *other users*.
        assert!(e.subqueries.contains(&"first".to_owned()));
    }

    #[test]
    fn cold_start_exposes_query_alone() {
        let mut xs = XSearchSystem::new(3, 1000, 3);
        let e = xs.protect(UserId(1), "cold");
        assert_eq!(e.subqueries, vec!["cold"]);
    }
}
