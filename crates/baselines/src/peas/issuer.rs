//! The PEAS issuer proxy: decrypts queries (one asymmetric operation per
//! request — the Fig 5 cost), hides them among co-occurrence fakes,
//! queries the engine, filters, and encrypts the response.

use super::fakegen::PeasFakeGenerator;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xsearch_crypto::aead::ChaCha20Poly1305;
use xsearch_crypto::hybrid;
use xsearch_crypto::x25519::{PublicKey, StaticSecret};
use xsearch_crypto::CryptoError;
use xsearch_engine::engine::SearchResult;

/// The issuer's half of the PEAS proxy pair.
pub struct PeasIssuer {
    secret: StaticSecret,
    fakegen: Mutex<PeasFakeGenerator>,
    rng: Mutex<StdRng>,
    k: usize,
}

impl std::fmt::Debug for PeasIssuer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeasIssuer").field("k", &self.k).finish()
    }
}

/// Errors from issuer processing.
#[derive(Debug, Clone, PartialEq)]
pub enum IssuerError {
    /// The hybrid ciphertext did not decrypt.
    BadCiphertext(CryptoError),
    /// The decrypted payload was malformed.
    BadPayload,
}

impl std::fmt::Display for IssuerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IssuerError::BadCiphertext(e) => write!(f, "undecryptable request: {e}"),
            IssuerError::BadPayload => write!(f, "malformed request payload"),
        }
    }
}

impl std::error::Error for IssuerError {}

impl PeasIssuer {
    /// Creates an issuer with a fresh key pair and a trained fake-query
    /// generator.
    #[must_use]
    pub fn new(fakegen: PeasFakeGenerator, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        PeasIssuer {
            secret: StaticSecret::random(&mut rng),
            fakegen: Mutex::new(fakegen),
            rng: Mutex::new(rng),
            k: 3,
        }
    }

    /// Sets the number of fake queries per request.
    pub fn set_k(&mut self, k: usize) {
        self.k = k;
    }

    /// The issuer's public key, published to clients.
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        self.secret.public_key()
    }

    /// Handles one relayed request: decrypt, obfuscate, fetch, filter,
    /// encrypt back.
    ///
    /// The payload format (built by [`super::client::PeasClient`]) is
    /// `response_key (32 bytes) ‖ query (utf-8)`.
    ///
    /// # Errors
    ///
    /// [`IssuerError`] on undecryptable or malformed requests.
    pub fn handle<F>(&self, ciphertext: &[u8], fetch: F) -> Result<Vec<u8>, IssuerError>
    where
        F: FnOnce(&[String], usize) -> Vec<SearchResult>,
    {
        // The asymmetric operation Fig 5 charges per request.
        let payload = hybrid::open(&self.secret, ciphertext).map_err(IssuerError::BadCiphertext)?;
        if payload.len() < 33 {
            return Err(IssuerError::BadPayload);
        }
        let (key_bytes, query_bytes) = payload.split_at(32);
        let response_key: [u8; 32] = key_bytes.try_into().expect("split at 32");
        let query = std::str::from_utf8(query_bytes)
            .map_err(|_| IssuerError::BadPayload)?
            .to_owned();

        // Obfuscate with co-occurrence fakes at a random position.
        let mut subqueries = self.fakegen.lock().generate(self.k);
        let position = self.rng.lock().gen_range(0..=subqueries.len());
        subqueries.insert(position, query.clone());

        let results = fetch(&subqueries, 20);

        // Filter results for the original query (same word-overlap rule
        // X-Search uses; PEAS filters fake results before replying).
        let fakes: Vec<String> = subqueries
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != position)
            .map(|(_, q)| q.clone())
            .collect();
        let kept = xsearch_core::filter::filter_results(&query, &fakes, results);

        // Encrypt the response under the client's one-time key: the
        // result list serializes into one exactly-sized buffer (tag
        // headroom included) and is sealed in place — the same
        // zero-copy cipher path the X-Search proxy uses, so the Fig 5
        // comparison measures protocol differences, not codec ones.
        let aead = ChaCha20Poly1305::new(&response_key);
        let mut body = Vec::with_capacity(
            xsearch_core::wire::encoded_len(&kept) + xsearch_crypto::aead::TAG_LEN,
        );
        xsearch_core::wire::encode_results_into(&kept, &mut body);
        aead.seal_vec(&[0u8; 12], b"peas-response", &mut body);
        Ok(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peas::cooccurrence::CooccurrenceMatrix;
    use rand::RngCore;

    fn issuer() -> PeasIssuer {
        let matrix = CooccurrenceMatrix::build(&[
            "cheap flights paris".to_owned(),
            "hotel paris deals".to_owned(),
            "diabetes symptoms".to_owned(),
        ]);
        PeasIssuer::new(PeasFakeGenerator::new(matrix, 1), 2)
    }

    fn sealed_request(issuer: &PeasIssuer, query: &str) -> ([u8; 32], Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(9);
        let mut response_key = [0u8; 32];
        rng.fill_bytes(&mut response_key);
        let mut payload = response_key.to_vec();
        payload.extend_from_slice(query.as_bytes());
        (
            response_key,
            hybrid::seal(&mut rng, &issuer.public_key(), &payload),
        )
    }

    #[test]
    fn handle_decrypts_obfuscates_and_replies() {
        let issuer = issuer();
        let (response_key, ct) = sealed_request(&issuer, "my query");
        let mut seen = Vec::new();
        let resp = issuer
            .handle(&ct, |subqueries, _| {
                seen = subqueries.to_vec();
                Vec::new()
            })
            .unwrap();
        assert_eq!(seen.len(), 4, "k=3 fakes + original");
        assert!(seen.contains(&"my query".to_owned()));
        // The response decrypts under the one-time key.
        let aead = ChaCha20Poly1305::new(&response_key);
        let body = aead.open(&[0u8; 12], b"peas-response", &resp).unwrap();
        assert!(body.is_empty());
    }

    #[test]
    fn garbage_request_rejected() {
        let issuer = issuer();
        assert!(matches!(
            issuer.handle(&[0u8; 64], |_, _| Vec::new()),
            Err(IssuerError::BadCiphertext(_))
        ));
    }

    #[test]
    fn short_payload_rejected() {
        let issuer = issuer();
        let mut rng = StdRng::seed_from_u64(2);
        let ct = hybrid::seal(&mut rng, &issuer.public_key(), b"too short");
        assert_eq!(
            issuer.handle(&ct, |_, _| Vec::new()),
            Err(IssuerError::BadPayload)
        );
    }
}
