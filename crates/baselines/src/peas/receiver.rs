//! The PEAS receiver proxy: sees the client's identity, never the query.

use std::sync::atomic::{AtomicU64, Ordering};
use xsearch_query_log::record::UserId;

/// The receiver strips network identity and assigns opaque exchange ids;
/// everything it relays is ciphertext addressed to the issuer.
#[derive(Debug, Default)]
pub struct PeasReceiver {
    next_exchange: AtomicU64,
    relayed: AtomicU64,
}

/// What the receiver observed for one exchange — used by tests to check
/// the non-collusion split of knowledge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiverView {
    /// The requesting user's identity (the receiver *does* see this).
    pub user: UserId,
    /// Opaque exchange id replacing the identity toward the issuer.
    pub exchange_id: u64,
    /// The (still encrypted) payload length — all the receiver learns
    /// about the query.
    pub ciphertext_len: usize,
}

impl PeasReceiver {
    /// Creates a receiver.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Relays one encrypted request: replaces the identity with an
    /// exchange id and forwards the ciphertext untouched.
    pub fn relay(&self, user: UserId, ciphertext: &[u8]) -> (ReceiverView, Vec<u8>) {
        let exchange_id = self.next_exchange.fetch_add(1, Ordering::Relaxed);
        self.relayed.fetch_add(1, Ordering::Relaxed);
        (
            ReceiverView {
                user,
                exchange_id,
                ciphertext_len: ciphertext.len(),
            },
            ciphertext.to_vec(),
        )
    }

    /// Messages relayed so far.
    #[must_use]
    pub fn relayed(&self) -> u64 {
        self.relayed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_preserves_ciphertext_and_hides_only_identity() {
        let r = PeasReceiver::new();
        let (view, forwarded) = r.relay(UserId(3), b"opaque bytes");
        assert_eq!(forwarded, b"opaque bytes");
        assert_eq!(view.user, UserId(3));
        assert_eq!(view.ciphertext_len, 12);
    }

    #[test]
    fn exchange_ids_are_unique() {
        let r = PeasReceiver::new();
        let (v1, _) = r.relay(UserId(1), b"a");
        let (v2, _) = r.relay(UserId(1), b"b");
        assert_ne!(v1.exchange_id, v2.exchange_id);
        assert_eq!(r.relayed(), 2);
    }
}
