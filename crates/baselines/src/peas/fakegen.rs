//! PEAS fake-query generation: random walks over the co-occurrence
//! matrix.

use super::cooccurrence::CooccurrenceMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates fake queries from a trained co-occurrence matrix.
#[derive(Debug)]
pub struct PeasFakeGenerator {
    matrix: CooccurrenceMatrix,
    // Cached cumulative frequency table for seed-term sampling.
    terms: Vec<String>,
    cumulative: Vec<u64>,
    rng: StdRng,
}

impl PeasFakeGenerator {
    /// Wraps a matrix with a deterministic RNG.
    #[must_use]
    pub fn new(matrix: CooccurrenceMatrix, seed: u64) -> Self {
        let mut terms = Vec::new();
        let mut cumulative = Vec::new();
        let mut acc = 0;
        for (t, c) in matrix.terms() {
            acc += c;
            terms.push(t.to_owned());
            cumulative.push(acc);
        }
        PeasFakeGenerator {
            matrix,
            terms,
            cumulative,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The trained matrix.
    #[must_use]
    pub fn matrix(&self) -> &CooccurrenceMatrix {
        &self.matrix
    }

    /// Generates `k` fake queries.
    pub fn generate(&mut self, k: usize) -> Vec<String> {
        (0..k).map(|_| self.one_fake()).collect()
    }

    /// One fake query: a frequency-weighted seed term followed by a
    /// co-occurrence walk, with length drawn from the observed query
    /// length distribution.
    ///
    /// Walks that happen to reproduce an issued query verbatim are
    /// resampled: at AOL scale the space of term combinations is so much
    /// larger than the set of issued queries that random recombination
    /// never lands on one, and Fig 1's property ("almost all fake queries
    /// ... never appear in the AOL") is exactly that. The retry keeps the
    /// property in the small synthetic world (DESIGN.md).
    pub fn one_fake(&mut self) -> String {
        for _attempt in 0..6 {
            let words = self.walk();
            if words.is_empty() {
                return String::from("empty corpus");
            }
            if !self.matrix.is_observed_combination(&words) {
                return words.join(" ");
            }
            // Try to de-collide by extending the walk with one more term.
            if let Some(extended) = self.extend(&words) {
                if !self.matrix.is_observed_combination(&extended) {
                    return extended.join(" ");
                }
            }
        }
        // Pathologically dense corpus: emit the last walk regardless.
        let words = self.walk();
        words.join(" ")
    }

    fn walk(&mut self) -> Vec<String> {
        let Some(seed_term) = self.sample_seed() else {
            return Vec::new();
        };
        let target_len = self.sample_length();
        let mut words = vec![seed_term];
        while words.len() < target_len {
            match self.next_term(&words) {
                Some(t) => words.push(t),
                None => break,
            }
        }
        words
    }

    fn extend(&mut self, words: &[String]) -> Option<Vec<String>> {
        let mut extended = words.to_vec();
        let next = self.next_term(&extended)?;
        extended.push(next);
        Some(extended)
    }

    /// Samples the next walk term from the co-occurrence neighbors of the
    /// current last term, weighted by count, avoiding repeats.
    fn next_term(&mut self, words: &[String]) -> Option<String> {
        let current = words.last()?;
        let neighbors = self.matrix.neighbors(current);
        let candidates: Vec<(&str, u64)> = neighbors
            .into_iter()
            .filter(|(t, _)| !words.iter().any(|w| w == t))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let total: u64 = candidates.iter().map(|(_, c)| c).sum();
        let mut pick = self.rng.gen_range(0..total);
        for (t, c) in &candidates {
            if pick < *c {
                return Some((*t).to_owned());
            }
            pick -= c;
        }
        Some(candidates.last().expect("non-empty").0.to_owned())
    }

    fn sample_seed(&mut self) -> Option<String> {
        let total = *self.cumulative.last()?;
        let pick = self.rng.gen_range(0..total);
        let idx = self.cumulative.partition_point(|&c| c <= pick);
        Some(self.terms[idx.min(self.terms.len() - 1)].clone())
    }

    fn sample_length(&mut self) -> usize {
        let counts = self.matrix.length_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 2;
        }
        let mut pick = self.rng.gen_range(0..total);
        for (len, &c) in counts.iter().enumerate() {
            if pick < c {
                return len.max(1);
            }
            pick -= c;
        }
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsearch_query_log::synthetic::{generate as gen_log, SyntheticConfig};

    fn trained() -> PeasFakeGenerator {
        let log = gen_log(&SyntheticConfig {
            num_users: 40,
            ..Default::default()
        });
        let queries: Vec<String> = log.into_iter().map(|r| r.query).collect();
        PeasFakeGenerator::new(CooccurrenceMatrix::build(&queries), 7)
    }

    #[test]
    fn fakes_are_nonempty_and_plausible_length() {
        let mut g = trained();
        for fake in g.generate(100) {
            let words = fake.split_whitespace().count();
            assert!((1..=7).contains(&words), "{fake:?}");
        }
    }

    #[test]
    fn fakes_use_training_vocabulary() {
        let mut g = trained();
        let fakes = g.generate(50);
        for fake in &fakes {
            for word in fake.split_whitespace() {
                assert!(g.matrix().frequency(word) > 0, "{word:?} not in corpus");
            }
        }
    }

    #[test]
    fn consecutive_terms_cooccur_in_training() {
        let mut g = trained();
        for fake in g.generate(50) {
            let words: Vec<&str> = fake.split_whitespace().collect();
            for pair in words.windows(2) {
                assert!(
                    g.matrix().cooccurrence(pair[0], pair[1]) > 0,
                    "{} and {} never co-occurred",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let log = gen_log(&SyntheticConfig {
            num_users: 20,
            ..Default::default()
        });
        let queries: Vec<String> = log.into_iter().map(|r| r.query).collect();
        let mut a = PeasFakeGenerator::new(CooccurrenceMatrix::build(&queries), 3);
        let mut b = PeasFakeGenerator::new(CooccurrenceMatrix::build(&queries), 3);
        assert_eq!(a.generate(10), b.generate(10));
    }

    #[test]
    fn empty_corpus_degrades_gracefully() {
        let mut g = PeasFakeGenerator::new(CooccurrenceMatrix::build(&[]), 1);
        assert_eq!(g.one_fake(), "empty corpus");
    }
}
