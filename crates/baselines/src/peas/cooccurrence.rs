//! The term co-occurrence matrix PEAS builds from past queries.
//!
//! Two terms co-occur when they appear in the same query; fake queries
//! are random walks over this graph. The weakness Fig 1 exposes: the
//! walks produce term *combinations* that no real user ever issued, so
//! the fakes sit far from real queries in similarity space.

use std::collections::HashMap;
use xsearch_text::tokenize::content_words;

/// A sparse symmetric co-occurrence matrix with term frequencies.
#[derive(Debug, Clone, Default)]
pub struct CooccurrenceMatrix {
    /// term → total occurrences across queries.
    frequencies: HashMap<String, u64>,
    /// term → (co-term → co-occurrence count).
    pairs: HashMap<String, HashMap<String, u64>>,
    /// Observed query lengths (in content words), for realistic fakes.
    length_counts: Vec<u64>,
    /// Sorted term multisets of observed queries. In a real-scale corpus
    /// a random term recombination virtually never equals an issued
    /// query; the fake generator uses this set to preserve that property
    /// in the small synthetic world (see DESIGN.md).
    observed: std::collections::HashSet<Vec<String>>,
}

impl CooccurrenceMatrix {
    /// Builds the matrix from a corpus of past queries.
    #[must_use]
    pub fn build(queries: &[String]) -> Self {
        let mut m = CooccurrenceMatrix::default();
        for q in queries {
            let words = content_words(q);
            if words.is_empty() {
                continue;
            }
            let len = words.len().min(7);
            if m.length_counts.len() <= len {
                m.length_counts.resize(len + 1, 0);
            }
            m.length_counts[len] += 1;
            for w in &words {
                *m.frequencies.entry(w.clone()).or_insert(0) += 1;
            }
            let mut sorted = words.clone();
            sorted.sort_unstable();
            m.observed.insert(sorted);
            for i in 0..words.len() {
                for j in 0..words.len() {
                    if i != j {
                        *m.pairs
                            .entry(words[i].clone())
                            .or_default()
                            .entry(words[j].clone())
                            .or_insert(0) += 1;
                    }
                }
            }
        }
        m
    }

    /// Number of distinct terms observed.
    #[must_use]
    pub fn vocabulary_size(&self) -> usize {
        self.frequencies.len()
    }

    /// Total occurrences of `term`.
    #[must_use]
    pub fn frequency(&self, term: &str) -> u64 {
        self.frequencies.get(term).copied().unwrap_or(0)
    }

    /// Co-occurrence count of an ordered pair.
    #[must_use]
    pub fn cooccurrence(&self, a: &str, b: &str) -> u64 {
        self.pairs
            .get(a)
            .and_then(|m| m.get(b))
            .copied()
            .unwrap_or(0)
    }

    /// Terms co-occurring with `term`, with counts, in deterministic
    /// (lexicographic) order so sampling over them is reproducible.
    #[must_use]
    pub fn neighbors(&self, term: &str) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self
            .pairs
            .get(term)
            .map(|m| m.iter().map(|(t, &c)| (t.as_str(), c)).collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// All terms with their frequencies (deterministic order).
    #[must_use]
    pub fn terms(&self) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self
            .frequencies
            .iter()
            .map(|(t, &c)| (t.as_str(), c))
            .collect();
        v.sort_unstable();
        v
    }

    /// Histogram of observed query lengths (index = words).
    #[must_use]
    pub fn length_counts(&self) -> &[u64] {
        &self.length_counts
    }

    /// Whether some observed query consists of exactly these terms
    /// (order-insensitive, like cosine similarity).
    #[must_use]
    pub fn is_observed_combination(&self, terms: &[String]) -> bool {
        let mut sorted = terms.to_vec();
        sorted.sort_unstable();
        self.observed.contains(&sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> CooccurrenceMatrix {
        CooccurrenceMatrix::build(&[
            "cheap flights".to_owned(),
            "cheap hotel".to_owned(),
            "cheap flights paris".to_owned(),
            "the flights".to_owned(), // "the" is a stopword
        ])
    }

    #[test]
    fn frequencies_count_occurrences() {
        let m = matrix();
        assert_eq!(m.frequency("cheap"), 3);
        assert_eq!(m.frequency("flights"), 3);
        assert_eq!(m.frequency("paris"), 1);
        assert_eq!(m.frequency("unknown"), 0);
    }

    #[test]
    fn stopwords_are_excluded() {
        let m = matrix();
        assert_eq!(m.frequency("the"), 0);
    }

    #[test]
    fn cooccurrence_is_symmetric() {
        let m = matrix();
        assert_eq!(
            m.cooccurrence("cheap", "flights"),
            m.cooccurrence("flights", "cheap")
        );
        assert_eq!(m.cooccurrence("cheap", "flights"), 2);
        assert_eq!(m.cooccurrence("hotel", "paris"), 0);
    }

    #[test]
    fn neighbors_reflect_pairs() {
        let m = matrix();
        let n: std::collections::HashMap<&str, u64> = m.neighbors("cheap").into_iter().collect();
        assert_eq!(n.get("flights"), Some(&2));
        assert_eq!(n.get("hotel"), Some(&1));
        assert_eq!(n.get("paris"), Some(&1));
    }

    #[test]
    fn length_histogram_counts_queries() {
        let m = matrix();
        // lengths: 2, 2, 3, 1 → counts[1]=1, counts[2]=2, counts[3]=1.
        assert_eq!(m.length_counts()[1], 1);
        assert_eq!(m.length_counts()[2], 2);
        assert_eq!(m.length_counts()[3], 1);
    }

    #[test]
    fn empty_corpus_is_empty() {
        let m = CooccurrenceMatrix::build(&[]);
        assert_eq!(m.vocabulary_size(), 0);
        assert!(m.neighbors("x").is_empty());
    }
}
