//! The PEAS client: wraps queries for the issuer, unwraps responses.

use super::issuer::{IssuerError, PeasIssuer};
use super::receiver::PeasReceiver;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use xsearch_core::wire::{decode_results, WireResult};
use xsearch_crypto::aead::ChaCha20Poly1305;
use xsearch_crypto::hybrid;
use xsearch_crypto::x25519::PublicKey;
use xsearch_engine::engine::SearchResult;
use xsearch_query_log::record::UserId;

/// Errors from the client's side of a PEAS exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum PeasError {
    /// The issuer rejected the request.
    Issuer(IssuerError),
    /// The response did not decrypt or parse.
    BadResponse,
}

impl std::fmt::Display for PeasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeasError::Issuer(e) => write!(f, "issuer error: {e}"),
            PeasError::BadResponse => write!(f, "response failed to decrypt or parse"),
        }
    }
}

impl std::error::Error for PeasError {}

/// A PEAS end user.
#[derive(Debug)]
pub struct PeasClient {
    user: UserId,
    issuer_pub: PublicKey,
    rng: StdRng,
}

impl PeasClient {
    /// Creates a client that trusts `issuer_pub`.
    #[must_use]
    pub fn new(user: UserId, issuer_pub: PublicKey, seed: u64) -> Self {
        PeasClient {
            user,
            issuer_pub,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One full PEAS exchange: hybrid-encrypt the query + one-time
    /// response key for the issuer, relay through the receiver, have the
    /// issuer run its obfuscate-fetch-filter pipeline, and decrypt the
    /// response.
    ///
    /// # Errors
    ///
    /// [`PeasError`] on any crypto or protocol failure.
    pub fn search<F>(
        &mut self,
        receiver: &PeasReceiver,
        issuer: &PeasIssuer,
        query: &str,
        fetch: F,
    ) -> Result<Vec<WireResult>, PeasError>
    where
        F: FnOnce(&[String], usize) -> Vec<SearchResult>,
    {
        let mut response_key = [0u8; 32];
        self.rng.fill_bytes(&mut response_key);
        let mut payload = response_key.to_vec();
        payload.extend_from_slice(query.as_bytes());
        let ciphertext = hybrid::seal(&mut self.rng, &self.issuer_pub, &payload);

        // Receiver hop: identity replaced by an exchange id.
        let (_view, forwarded) = receiver.relay(self.user, &ciphertext);

        let sealed_response = issuer
            .handle(&forwarded, fetch)
            .map_err(PeasError::Issuer)?;

        // The response buffer is already owned: verify and decrypt it
        // where it lies instead of allocating a plaintext copy.
        let aead = ChaCha20Poly1305::new(&response_key);
        let mut body = sealed_response;
        aead.open_vec(&[0u8; 12], b"peas-response", &mut body)
            .map_err(|_| PeasError::BadResponse)?;
        decode_results(&body).map_err(|_| PeasError::BadResponse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peas::cooccurrence::CooccurrenceMatrix;
    use crate::peas::fakegen::PeasFakeGenerator;
    use std::sync::Arc;
    use xsearch_engine::corpus::CorpusConfig;
    use xsearch_engine::engine::SearchEngine;

    fn setup() -> (PeasReceiver, PeasIssuer, Arc<SearchEngine>) {
        let engine = Arc::new(SearchEngine::build(&CorpusConfig {
            docs_per_topic: 20,
            ..Default::default()
        }));
        let matrix = CooccurrenceMatrix::build(&[
            "cheap flights paris".to_owned(),
            "hotel rome deals".to_owned(),
            "nfl scores".to_owned(),
        ]);
        let issuer = PeasIssuer::new(PeasFakeGenerator::new(matrix, 2), 3);
        (PeasReceiver::new(), issuer, engine)
    }

    #[test]
    fn end_to_end_search_returns_results() {
        let (receiver, issuer, engine) = setup();
        let mut client = PeasClient::new(UserId(1), issuer.public_key(), 4);
        let results = client
            .search(&receiver, &issuer, "flights hotel vacation", |subs, k| {
                engine.search_merged(subs, k)
            })
            .unwrap();
        assert!(!results.is_empty());
        assert_eq!(receiver.relayed(), 1);
    }

    #[test]
    fn receiver_never_sees_plaintext() {
        let (receiver, issuer, _) = setup();
        let mut client = PeasClient::new(UserId(1), issuer.public_key(), 5);
        let query = "very identifying query text";
        // Capture what crosses the receiver by relaying manually.
        let mut response_key = [0u8; 32];
        let mut rng = StdRng::seed_from_u64(5);
        rng.fill_bytes(&mut response_key);
        let mut payload = response_key.to_vec();
        payload.extend_from_slice(query.as_bytes());
        let ct = hybrid::seal(&mut rng, &issuer.public_key(), &payload);
        let needle = query.as_bytes();
        assert!(
            !ct.windows(needle.len()).any(|w| w == needle),
            "ciphertext must not contain the query"
        );
        // And the normal path still works.
        let _ = client
            .search(&receiver, &issuer, query, |_, _| Vec::new())
            .unwrap();
    }

    #[test]
    fn wrong_issuer_key_fails() {
        let (receiver, issuer, _) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let other = xsearch_crypto::x25519::StaticSecret::random(&mut rng);
        let mut client = PeasClient::new(UserId(1), other.public_key(), 7);
        let err = client
            .search(&receiver, &issuer, "q", |_, _| Vec::new())
            .unwrap_err();
        assert!(matches!(
            err,
            PeasError::Issuer(IssuerError::BadCiphertext(_))
        ));
    }
}
