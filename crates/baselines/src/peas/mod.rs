//! PEAS (Petit et al., Trustcom 2015): the closest competitor (§5.2).
//!
//! PEAS combines unlinkability and indistinguishability under a *weaker*
//! adversary model than X-Search: two proxies assumed not to collude —
//! a **receiver** that sees who is asking but only ciphertext, and an
//! **issuer** that decrypts the query, hides it among `k` fake queries
//! generated from a term **co-occurrence matrix**, and talks to the
//! engine. If receiver and issuer collude, the user is fully exposed;
//! X-Search's enclave removes that assumption.
//!
//! The cryptographic path substitutes PEAS's RSA-hybrid wrapping with the
//! X25519 ECIES hybrid from `xsearch-crypto` (DESIGN.md): the cost
//! structure — one asymmetric operation per request at the issuer — is
//! what Fig 5 measures.

pub mod client;
pub mod cooccurrence;
pub mod fakegen;
pub mod issuer;
pub mod receiver;

pub use client::PeasClient;
pub use cooccurrence::CooccurrenceMatrix;
pub use fakegen::PeasFakeGenerator;
pub use issuer::PeasIssuer;
pub use receiver::PeasReceiver;

use crate::system::{Exposure, PrivateSearchSystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xsearch_query_log::record::UserId;

/// PEAS as the privacy experiments see it: identity hidden by the
/// receiver, query hidden among k co-occurrence fakes by the issuer.
#[derive(Debug)]
pub struct PeasSystem {
    fakegen: PeasFakeGenerator,
    k: usize,
    rng: StdRng,
}

impl PeasSystem {
    /// Builds the system with a co-occurrence matrix trained on
    /// `past_queries` (the issuer's view of historical traffic).
    #[must_use]
    pub fn new(past_queries: &[String], k: usize, seed: u64) -> Self {
        PeasSystem {
            fakegen: PeasFakeGenerator::new(CooccurrenceMatrix::build(past_queries), seed),
            k,
            rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9),
        }
    }
}

impl PrivateSearchSystem for PeasSystem {
    fn name(&self) -> &str {
        "PEAS"
    }

    fn protect(&mut self, _user: UserId, query: &str) -> Exposure {
        let mut subqueries = self.fakegen.generate(self.k);
        let position = self.rng.gen_range(0..=subqueries.len());
        subqueries.insert(position, query.to_owned());
        Exposure {
            subqueries,
            identity: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training() -> Vec<String> {
        vec![
            "cheap flights paris".into(),
            "paris hotel deals".into(),
            "flights to london".into(),
            "diabetes symptoms treatment".into(),
            "nfl football scores".into(),
        ]
    }

    #[test]
    fn exposure_hides_identity_and_adds_k_fakes() {
        let mut peas = PeasSystem::new(&training(), 3, 1);
        let e = peas.protect(UserId(5), "my real query");
        assert_eq!(e.identity, None);
        assert_eq!(e.subqueries.len(), 4);
        assert_eq!(
            e.subqueries
                .iter()
                .filter(|q| *q == "my real query")
                .count(),
            1
        );
    }

    #[test]
    fn k_zero_degenerates_to_unlinkability_only() {
        let mut peas = PeasSystem::new(&training(), 0, 2);
        let e = peas.protect(UserId(5), "q");
        assert_eq!(e.subqueries, vec!["q"]);
    }
}
