//! TrackMeNot: periodic fake queries sourced from RSS feeds
//! (Howe & Nissenbaum; §2.1.2 of the paper).
//!
//! The property Fig 1 demonstrates — and this model reproduces — is that
//! RSS-derived fakes come from a *different distribution* than real user
//! queries: news-headline phrases, longer, with vocabulary users rarely
//! search. SimAttack exploits exactly that gap.

use crate::system::{Exposure, PrivateSearchSystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xsearch_query_log::record::UserId;
use xsearch_query_log::topics::TOPICS;

/// Headline-flavoured connective vocabulary that user queries rarely
/// contain but RSS titles constantly do.
static HEADLINE_WORDS: &[&str] = &[
    "announces",
    "amid",
    "reportedly",
    "officials",
    "lawmakers",
    "unveils",
    "sparks",
    "criticism",
    "surge",
    "decline",
    "probe",
    "wake",
    "despite",
    "continues",
    "latest",
    "update",
    "exclusive",
    "analysis",
    "opinion",
    "watchdog",
    "regulators",
    "spokesman",
];

/// A simulated RSS-feed fake-query source.
#[derive(Debug)]
pub struct TrackMeNot {
    rng: StdRng,
    /// Ratio of fake queries to real ones (TMN sends fakes on a timer,
    /// independent of real traffic; 1.0 means one fake per real query).
    fakes_per_query: f64,
}

impl TrackMeNot {
    /// Creates the generator with a deterministic seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TrackMeNot {
            rng: StdRng::seed_from_u64(seed),
            fakes_per_query: 1.0,
        }
    }

    /// One RSS-headline-style fake query.
    pub fn fake_query(&mut self) -> String {
        let topic = &TOPICS[self.rng.gen_range(0..TOPICS.len())];
        let n_topic = self.rng.gen_range(2usize..=3);
        let n_headline = self.rng.gen_range(1usize..=2);
        let mut words: Vec<&str> = Vec::with_capacity(n_topic + n_headline);
        for _ in 0..n_topic {
            words.push(topic.terms[self.rng.gen_range(0..topic.terms.len())]);
        }
        for _ in 0..n_headline {
            words.push(HEADLINE_WORDS[self.rng.gen_range(0..HEADLINE_WORDS.len())]);
        }
        // Shuffle the composition so headline words are not positional.
        for i in (1..words.len()).rev() {
            words.swap(i, self.rng.gen_range(0..=i));
        }
        words.join(" ")
    }

    /// A batch of `n` fakes (Fig 1 samples these).
    pub fn fake_queries(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.fake_query()).collect()
    }
}

impl PrivateSearchSystem for TrackMeNot {
    fn name(&self) -> &str {
        "TrackMeNot"
    }

    /// TMN does not hide the identity (the browser talks to the engine
    /// directly); it interleaves fake queries with real traffic.
    fn protect(&mut self, user: UserId, query: &str) -> Exposure {
        let mut subqueries = vec![query.to_owned()];
        let fakes = self.fakes_per_query;
        let n = fakes as usize + usize::from(self.rng.gen_bool(fakes.fract()));
        for _ in 0..n {
            subqueries.push(self.fake_query());
        }
        Exposure {
            subqueries,
            identity: Some(user),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fakes_are_diverse() {
        let mut tmn = TrackMeNot::new(1);
        let fakes: HashSet<String> = tmn.fake_queries(200).into_iter().collect();
        assert!(fakes.len() > 150, "only {} distinct fakes", fakes.len());
    }

    #[test]
    fn fakes_use_headline_vocabulary() {
        let mut tmn = TrackMeNot::new(2);
        let with_headline = tmn
            .fake_queries(100)
            .iter()
            .filter(|q| q.split(' ').any(|w| HEADLINE_WORDS.contains(&w)))
            .count();
        assert_eq!(with_headline, 100, "every fake carries headline words");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TrackMeNot::new(3).fake_queries(10);
        let b = TrackMeNot::new(3).fake_queries(10);
        assert_eq!(a, b);
    }

    #[test]
    fn protect_keeps_identity_and_adds_fakes() {
        let mut tmn = TrackMeNot::new(4);
        let e = tmn.protect(UserId(1), "real query");
        assert_eq!(e.identity, Some(UserId(1)));
        assert!(e.subqueries.contains(&"real query".to_owned()));
        assert!(e.subqueries.len() >= 2);
    }
}
