//! X-Search configuration.

/// Configuration for an X-Search proxy node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XSearchConfig {
    /// Number of fake queries OR-ed with each original query
    /// (the paper evaluates k ∈ 0..=7; accuracy is still >80% at k = 2).
    pub k: usize,
    /// Sliding-window capacity `x` of the past-query table. The paper
    /// shows ~1M queries fit the usable EPC; the default keeps a
    /// substantial window while staying well inside it.
    pub history_capacity: usize,
    /// Results requested from the engine per (sub-)query; the paper's
    /// accuracy experiments consider the first 20 results.
    pub results_per_query: usize,
    /// RNG seed for the enclave's sampling (obfuscation positions and
    /// fake-query choice). Reproducible runs use a fixed seed.
    pub seed: u64,
}

impl Default for XSearchConfig {
    fn default() -> Self {
        XSearchConfig {
            k: 3,
            history_capacity: 1_000_000,
            results_per_query: 20,
            seed: 0x5eed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_scale() {
        let c = XSearchConfig::default();
        assert!(c.k <= 7);
        assert_eq!(c.history_capacity, 1_000_000);
        assert_eq!(c.results_per_query, 20);
    }
}
