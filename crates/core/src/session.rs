//! The attested encrypted channel between broker and enclave.
//!
//! §4.2: "the user sends her query to the proxy node through an encrypted
//! tunnel with an end point inside the SGX enclave". The tunnel here is
//! X25519 ECDH (the enclave's key bound into its attestation quote) →
//! HKDF-SHA-256 → per-direction ChaCha20-Poly1305 with counter nonces.

use crate::error::XSearchError;
use xsearch_crypto::aead::{counter_nonce, ChaCha20Poly1305, TAG_LEN};
use xsearch_crypto::hkdf;
use xsearch_crypto::sha256::Sha256;
use xsearch_crypto::x25519::PublicKey;

const CHANNEL_INFO: &[u8] = b"xsearch-channel-v1";
const CLIENT_DOMAIN: [u8; 4] = *b"c2s:";
const SERVER_DOMAIN: [u8; 4] = *b"s2c:";

/// Which side of the channel we are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The broker (client daemon).
    Client,
    /// The enclave.
    Server,
}

/// One direction's cipher state.
struct Directed {
    aead: ChaCha20Poly1305,
    domain: [u8; 4],
    counter: u64,
}

/// An established secure channel.
pub struct SecureChannel {
    send: Directed,
    recv: Directed,
}

impl std::fmt::Debug for SecureChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureChannel")
            .field("sent", &self.send.counter)
            .field("received", &self.recv.counter)
            .finish()
    }
}

impl SecureChannel {
    /// Derives the channel from the DH shared secret and both public keys
    /// (which salt the KDF, binding the channel to this key pair).
    #[must_use]
    pub fn establish(
        side: Side,
        shared: &[u8; 32],
        client_pub: &PublicKey,
        server_pub: &PublicKey,
    ) -> Self {
        let mut salt = Vec::with_capacity(64);
        salt.extend_from_slice(client_pub.as_bytes());
        salt.extend_from_slice(server_pub.as_bytes());
        let okm = hkdf::derive(&salt, shared, CHANNEL_INFO, 64);
        let c2s: [u8; 32] = okm[..32].try_into().expect("64-byte okm");
        let s2c: [u8; 32] = okm[32..].try_into().expect("64-byte okm");
        let (send_key, recv_key, send_domain, recv_domain) = match side {
            Side::Client => (c2s, s2c, CLIENT_DOMAIN, SERVER_DOMAIN),
            Side::Server => (s2c, c2s, SERVER_DOMAIN, CLIENT_DOMAIN),
        };
        SecureChannel {
            send: Directed {
                aead: ChaCha20Poly1305::new(&send_key),
                domain: send_domain,
                counter: 0,
            },
            recv: Directed {
                aead: ChaCha20Poly1305::new(&recv_key),
                domain: recv_domain,
                counter: 0,
            },
        }
    }

    /// Encrypts `buf` in place — plaintext in, `ciphertext ‖ tag` out —
    /// with this session's next outbound nonce. The zero-copy half of
    /// the hot path: the enclave serializes a response straight into a
    /// buffer with tag headroom and seals it where it lies.
    pub fn seal_in_place(&mut self, aad: &[u8], buf: &mut Vec<u8>) {
        let nonce = counter_nonce(self.send.domain, self.send.counter);
        self.send.counter += 1;
        self.send.aead.seal_vec(&nonce, aad, buf);
    }

    /// Encrypts `plaintext` into `out` (cleared first), reusing `out`'s
    /// capacity — a steady-state caller allocates nothing.
    pub fn seal_into(&mut self, aad: &[u8], plaintext: &[u8], out: &mut Vec<u8>) {
        out.clear();
        out.reserve(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        self.seal_in_place(aad, out);
    }

    /// Encrypts the next outbound message.
    ///
    /// Allocating wrapper over [`SecureChannel::seal_in_place`]; the hot
    /// paths use the buffer-reuse variants.
    pub fn seal(&mut self, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.seal_into(aad, plaintext, &mut out);
        out
    }

    /// Decrypts the next inbound message into `out` (cleared first),
    /// reusing `out`'s capacity.
    ///
    /// # Errors
    ///
    /// [`XSearchError::Crypto`] when authentication fails (tampering,
    /// reordering or a desynchronized counter); the receive counter does
    /// not advance, and `out` holds no plaintext, in that case.
    pub fn open_into(
        &mut self,
        aad: &[u8],
        sealed: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), XSearchError> {
        let nonce = counter_nonce(self.recv.domain, self.recv.counter);
        out.clear();
        out.extend_from_slice(sealed);
        self.recv.aead.open_vec(&nonce, aad, out)?;
        self.recv.counter += 1;
        Ok(())
    }

    /// Decrypts the next inbound message.
    ///
    /// Allocating wrapper over [`SecureChannel::open_into`].
    ///
    /// # Errors
    ///
    /// See [`SecureChannel::open_into`].
    pub fn open(&mut self, aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, XSearchError> {
        let mut out = Vec::new();
        self.open_into(aad, sealed, &mut out)?;
        Ok(out)
    }

    /// Messages sent so far.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.send.counter
    }
}

/// The report data bound into the enclave's attestation quote: a hash of
/// both channel public keys, preventing key substitution by the untrusted
/// host.
#[must_use]
pub fn channel_binding(server_pub: &PublicKey, client_pub: &PublicKey) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"xsearch-channel-binding-v1");
    h.update(server_pub.as_bytes());
    h.update(client_pub.as_bytes());
    h.finalize()
}

/// The report data bound into a replica's *registry enrollment* quote: a
/// hash of the enclave's channel identity key and the registry's
/// challenge nonce. The nonce makes every enrollment quote fresh, so a
/// quote captured while a replica was registered cannot be replayed to
/// re-enroll it after deregistration.
#[must_use]
pub fn registration_binding(enclave_pub: &PublicKey, nonce: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"xsearch-registry-binding-v1");
    h.update(enclave_pub.as_bytes());
    h.update(nonce);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xsearch_crypto::x25519::StaticSecret;

    fn pair() -> (SecureChannel, SecureChannel) {
        let mut rng = StdRng::seed_from_u64(1);
        let client = StaticSecret::random(&mut rng);
        let server = StaticSecret::random(&mut rng);
        let shared = client.diffie_hellman(&server.public_key()).unwrap();
        let c = SecureChannel::establish(
            Side::Client,
            &shared,
            &client.public_key(),
            &server.public_key(),
        );
        let s = SecureChannel::establish(
            Side::Server,
            &shared,
            &client.public_key(),
            &server.public_key(),
        );
        (c, s)
    }

    #[test]
    fn bidirectional_traffic_roundtrips() {
        let (mut c, mut s) = pair();
        let ct = c.seal(b"req", b"cheap flights");
        assert_eq!(s.open(b"req", &ct).unwrap(), b"cheap flights");
        let ct = s.seal(b"resp", b"result list");
        assert_eq!(c.open(b"resp", &ct).unwrap(), b"result list");
    }

    #[test]
    fn multiple_messages_use_fresh_nonces() {
        let (mut c, mut s) = pair();
        let ct1 = c.seal(b"", b"same payload");
        let ct2 = c.seal(b"", b"same payload");
        assert_ne!(ct1, ct2, "counter nonce must change the ciphertext");
        assert_eq!(s.open(b"", &ct1).unwrap(), b"same payload");
        assert_eq!(s.open(b"", &ct2).unwrap(), b"same payload");
    }

    #[test]
    fn replay_is_rejected() {
        let (mut c, mut s) = pair();
        let ct = c.seal(b"", b"msg");
        assert!(s.open(b"", &ct).is_ok());
        // Replaying the same ciphertext: receiver counter advanced.
        assert!(s.open(b"", &ct).is_err());
    }

    #[test]
    fn reordering_is_rejected() {
        let (mut c, mut s) = pair();
        let ct1 = c.seal(b"", b"first");
        let ct2 = c.seal(b"", b"second");
        assert!(s.open(b"", &ct2).is_err(), "out-of-order delivery fails");
        // ct1 still opens (failed opens do not advance the counter).
        assert_eq!(s.open(b"", &ct1).unwrap(), b"first");
    }

    #[test]
    fn directions_are_separated() {
        let (mut c, mut s) = pair();
        let ct = c.seal(b"", b"to server");
        // The client must not accept its own direction's traffic back.
        let mut c2 = {
            let (c2, _) = pair();
            c2
        };
        assert!(c2.open(b"", &ct).is_err());
        assert!(s.open(b"", &ct).is_ok());
    }

    #[test]
    fn wrong_aad_rejected() {
        let (mut c, mut s) = pair();
        let ct = c.seal(b"query", b"text");
        assert!(s.open(b"other", &ct).is_err());
    }

    #[test]
    fn buffer_reuse_variants_match_the_allocating_ones() {
        // Two identically-seeded channel pairs: one driven through the
        // allocating API, one through the scratch-buffer API — every
        // ciphertext must match byte for byte.
        let (mut c_alloc, mut s_alloc) = pair();
        let (mut c_reuse, mut s_reuse) = pair();
        let mut ct = Vec::new();
        let mut pt = Vec::new();
        for (i, msg) in [&b"hello world"[..], b"", b"third message"]
            .iter()
            .enumerate()
        {
            c_reuse.seal_into(b"q", msg, &mut ct);
            assert_eq!(ct, c_alloc.seal(b"q", msg), "message {i}");
            s_reuse.open_into(b"q", &ct, &mut pt).unwrap();
            assert_eq!(&pt, msg);
            assert_eq!(s_alloc.open(b"q", &ct).unwrap(), *msg);
        }
        // seal_in_place: the plaintext already lives in the buffer.
        let mut buf = b"in-place payload".to_vec();
        c_reuse.seal_in_place(b"q", &mut buf);
        assert_eq!(buf, c_alloc.seal(b"q", b"in-place payload"));
    }

    #[test]
    fn open_into_rejects_short_input_without_advancing() {
        let (mut c, mut s) = pair();
        let mut out = Vec::new();
        assert!(s.open_into(b"", &[0u8; 8], &mut out).is_err());
        // The counter did not advance: the next real message still opens.
        let ct = c.seal(b"", b"still in sync");
        s.open_into(b"", &ct, &mut out).unwrap();
        assert_eq!(out, b"still in sync");
    }

    #[test]
    fn registration_binding_depends_on_key_and_nonce() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = StaticSecret::random(&mut rng).public_key();
        let b = StaticSecret::random(&mut rng).public_key();
        assert_ne!(
            registration_binding(&a, &[1u8; 32]),
            registration_binding(&b, &[1u8; 32])
        );
        assert_ne!(
            registration_binding(&a, &[1u8; 32]),
            registration_binding(&a, &[2u8; 32]),
            "a fresh nonce must produce a fresh binding"
        );
    }

    #[test]
    fn binding_depends_on_both_keys() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = StaticSecret::random(&mut rng).public_key();
        let b = StaticSecret::random(&mut rng).public_key();
        let c = StaticSecret::random(&mut rng).public_key();
        assert_ne!(channel_binding(&a, &b), channel_binding(&a, &c));
        assert_ne!(channel_binding(&a, &b), channel_binding(&b, &a));
    }
}
