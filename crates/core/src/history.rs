//! The in-enclave table of past queries.
//!
//! The proxy keeps the last `x` queries from *all* users, with no
//! association to who sent them (§4.1: "the X-Search proxy node does not
//! maintain individual profile structures ... it only updates a table
//! containing the last x past queries"). The table lives in EPC-protected
//! memory, so its size is byte-accounted against the enclave's
//! [`EpcGauge`] — that accounting *is* the Fig 6 measurement.

use parking_lot::RwLock;
use rand::Rng;
use std::collections::VecDeque;
use std::sync::Arc;
use xsearch_sgx_sim::cost::CostModel;
use xsearch_sgx_sim::epc::EpcGauge;

/// Heap bytes attributed to one stored query: the string bytes plus the
/// container bookkeeping (`String` header in the deque slot).
fn entry_bytes(query: &str) -> usize {
    query.len() + std::mem::size_of::<String>()
}

/// A bounded sliding window of past queries, thread-safe and
/// EPC-accounted.
///
/// # Example
///
/// ```
/// use xsearch_core::history::QueryHistory;
/// use xsearch_sgx_sim::epc::EpcGauge;
/// use rand::SeedableRng;
///
/// let history = QueryHistory::new(3, EpcGauge::new());
/// for q in ["a", "b", "c", "d"] {
///     history.push(q);
/// }
/// assert_eq!(history.len(), 3); // "a" was evicted
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert!(history.sample(&mut rng).is_some());
/// ```
#[derive(Debug)]
pub struct QueryHistory {
    inner: RwLock<VecDeque<String>>,
    capacity: usize,
    epc: Arc<EpcGauge>,
    cost: CostModel,
}

impl QueryHistory {
    /// Creates an empty history with window size `capacity`, charging its
    /// memory to `epc`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, epc: Arc<EpcGauge>) -> Self {
        assert!(capacity > 0, "history window must be positive");
        QueryHistory {
            inner: RwLock::new(VecDeque::new()),
            capacity,
            epc,
            cost: CostModel::default(),
        }
    }

    /// Appends a query, evicting the oldest when the window is full
    /// (Algorithm 1 line 9: `H ← Q`).
    pub fn push(&self, query: &str) {
        let mut inner = self.inner.write();
        if inner.len() == self.capacity {
            if let Some(evicted) = inner.pop_front() {
                self.epc.release(entry_bytes(&evicted));
            }
        }
        self.epc.charge(entry_bytes(query), &self.cost);
        inner.push_back(query.to_owned());
    }

    /// Samples one past query uniformly (Algorithm 1 line 7:
    /// `H[random(m)]`), `None` when the table is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<String> {
        let inner = self.inner.read();
        if inner.is_empty() {
            return None;
        }
        Some(inner[rng.gen_range(0..inner.len())].clone())
    }

    /// Samples `k` past queries with replacement; empty if the table is.
    pub fn sample_many<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<String> {
        let inner = self.inner.read();
        if inner.is_empty() {
            return Vec::new();
        }
        (0..k)
            .map(|_| inner[rng.gen_range(0..inner.len())].clone())
            .collect()
    }

    /// Number of stored queries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the table is empty (cold start).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// The configured window size.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently attributed to this table (string bytes plus
    /// per-entry header), i.e. the Fig 6 y-axis.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let inner = self.inner.read();
        inner.iter().map(|q| entry_bytes(q)).sum()
    }

    /// The EPC gauge this table charges.
    #[must_use]
    pub fn epc(&self) -> &Arc<EpcGauge> {
        &self.epc
    }

    /// An ordered snapshot (oldest first) — used by sealed persistence;
    /// only callable from in-enclave code in the real system.
    #[must_use]
    pub fn snapshot(&self) -> Vec<String> {
        self.inner.read().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn history(cap: usize) -> QueryHistory {
        QueryHistory::new(cap, EpcGauge::with_limit(1 << 30))
    }

    #[test]
    fn window_never_exceeds_capacity() {
        let h = history(5);
        for i in 0..20 {
            h.push(&format!("query {i}"));
            assert!(h.len() <= 5);
        }
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn eviction_is_fifo() {
        let h = history(2);
        h.push("first");
        h.push("second");
        h.push("third");
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let s = h.sample(&mut rng).unwrap();
            assert_ne!(s, "first", "oldest entry must be gone");
        }
    }

    #[test]
    fn sample_from_empty_is_none() {
        let h = history(3);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(h.sample(&mut rng), None);
        assert!(h.sample_many(3, &mut rng).is_empty());
    }

    #[test]
    fn sample_many_draws_with_replacement() {
        let h = history(10);
        h.push("only");
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(h.sample_many(4, &mut rng), vec!["only"; 4]);
    }

    #[test]
    fn epc_accounting_tracks_usage() {
        let gauge = EpcGauge::with_limit(1 << 30);
        let h = QueryHistory::new(100, gauge.clone());
        assert_eq!(gauge.used(), 0);
        h.push("hello world");
        let one = gauge.used();
        assert_eq!(one, 11 + std::mem::size_of::<String>());
        h.push("second query");
        assert!(gauge.used() > one);
    }

    #[test]
    fn eviction_releases_epc() {
        let gauge = EpcGauge::with_limit(1 << 30);
        let h = QueryHistory::new(1, gauge.clone());
        h.push("aaaa");
        let after_first = gauge.used();
        h.push("bbbb"); // evicts "aaaa" of equal size
        assert_eq!(gauge.used(), after_first);
    }

    #[test]
    fn memory_bytes_matches_gauge() {
        let gauge = EpcGauge::with_limit(1 << 30);
        let h = QueryHistory::new(50, gauge.clone());
        for i in 0..30 {
            h.push(&format!("query number {i}"));
        }
        assert_eq!(h.memory_bytes(), gauge.used());
    }

    #[test]
    #[should_panic(expected = "history window must be positive")]
    fn zero_capacity_panics() {
        let _ = history(0);
    }

    #[test]
    fn concurrent_pushes_are_safe() {
        let h = Arc::new(history(1000));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        h.push(&format!("t{t} q{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.len(), 1000);
    }

    proptest! {
        #[test]
        fn accounting_never_drifts(queries in proptest::collection::vec("[a-z ]{1,30}", 1..60), cap in 1usize..20) {
            let gauge = EpcGauge::with_limit(1 << 30);
            let h = QueryHistory::new(cap, gauge.clone());
            for q in &queries {
                h.push(q);
            }
            prop_assert_eq!(h.memory_bytes(), gauge.used());
            prop_assert!(h.len() <= cap);
        }
    }
}
