//! The in-enclave table of past queries.
//!
//! The proxy keeps the last `x` queries from *all* users, with no
//! association to who sent them (§4.1: "the X-Search proxy node does not
//! maintain individual profile structures ... it only updates a table
//! containing the last x past queries"). The table lives in EPC-protected
//! memory, so its size is byte-accounted against the enclave's
//! [`EpcGauge`] — that accounting *is* the Fig 6 measurement.
//!
//! # Lock striping
//!
//! The paper's proxy "uses multiple threads" over this shared table, so
//! the table must not serialize them. Entries are spread over
//! [`MAX_STRIPES`] independent stripes, each its own mutex-protected
//! ring: a push routes to stripe `seq % stripes` via an atomic sequence
//! counter (so stripes fill at equal rates and eviction stays globally
//! FIFO up to stripe interleaving), and a sample locks exactly one
//! stripe. Aggregates that used to require a global lock — length and
//! the Fig 6 byte count — are maintained as running atomic counters, so
//! reading them is O(1) and lock-free.
//!
//! Entries are `Arc<str>`: sampling hands out refcount bumps instead of
//! deep string copies, which is what makes Algorithm 1's `k` draws per
//! request cheap.

use parking_lot::Mutex;
use rand::Rng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use xsearch_sgx_sim::cost::CostModel;
use xsearch_sgx_sim::epc::EpcGauge;

/// Upper bound on the number of stripes; the actual count is the largest
/// **power-of-two divisor** of the capacity, capped at this, so routing
/// is a mask and the striped union is exactly the paper's last-x window
/// (see [`QueryHistory::new`]). Odd capacities get a single stripe.
pub const MAX_STRIPES: usize = 8;

/// One stored entry: the query text plus the global push sequence number
/// that lets [`QueryHistory::snapshot`] reconstruct chronological order
/// across stripes.
type Entry = (u64, Arc<str>);

/// Heap bytes attributed to one stored query: the string bytes plus the
/// per-entry bookkeeping in the stripe slot (16-byte `Arc<str>` fat
/// pointer + 8-byte sequence tag — the same 24 bytes the pre-striping
/// `String` header occupied, so Fig 6 is directly comparable across
/// versions).
fn entry_bytes(query: &str) -> usize {
    query.len() + std::mem::size_of::<Entry>()
}

/// One lock stripe: a bounded FIFO ring plus a mirror of its length that
/// samplers can read without taking the lock.
#[derive(Debug)]
struct Stripe {
    entries: Mutex<VecDeque<Entry>>,
    len: AtomicUsize,
    capacity: usize,
}

/// A bounded sliding window of past queries, thread-safe (lock-striped)
/// and EPC-accounted.
///
/// # Example
///
/// ```
/// use xsearch_core::history::QueryHistory;
/// use xsearch_sgx_sim::epc::EpcGauge;
/// use rand::SeedableRng;
///
/// let history = QueryHistory::new(3, EpcGauge::new());
/// for q in ["a", "b", "c", "d"] {
///     history.push(q);
/// }
/// assert_eq!(history.len(), 3); // "a" was evicted
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert!(history.sample(&mut rng).is_some());
/// ```
#[derive(Debug)]
pub struct QueryHistory {
    stripes: Vec<Stripe>,
    capacity: usize,
    /// Global push counter: routes pushes round-robin across stripes and
    /// tags entries for chronological snapshots.
    push_seq: AtomicU64,
    /// Running byte counter (lock-free O(1)
    /// [`QueryHistory::memory_bytes`], replacing the old O(n) scan).
    total_bytes: AtomicUsize,
    epc: Arc<EpcGauge>,
    cost: CostModel,
}

impl QueryHistory {
    /// Creates an empty history with window size `capacity`, charging its
    /// memory to `epc`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, epc: Arc<EpcGauge>) -> Self {
        assert!(capacity > 0, "history window must be positive");
        // The stripe count must divide the capacity: with equal stripe
        // capacities and round-robin routing, the union of the stripes
        // is provably *exactly* the last-`capacity` pushes (each stripe
        // holds the newest `capacity / n` of its residue class), so
        // striping does not change the paper's window semantics. It is
        // also kept a power of two so routing is a mask, not a division.
        // Odd capacities fall back to fewer stripes — realistic window
        // sizes are round (even) numbers and get the full fan-out.
        let stripe_count = 1usize << capacity.trailing_zeros().min(MAX_STRIPES.trailing_zeros());
        let stripes = (0..stripe_count)
            .map(|_| Stripe {
                entries: Mutex::new(VecDeque::new()),
                len: AtomicUsize::new(0),
                capacity: capacity / stripe_count,
            })
            .collect();
        QueryHistory {
            stripes,
            capacity,
            push_seq: AtomicU64::new(0),
            total_bytes: AtomicUsize::new(0),
            epc,
            cost: CostModel::default(),
        }
    }

    /// Appends a query, evicting the oldest in its stripe when the window
    /// is full (Algorithm 1 line 9: `H ← Q`).
    pub fn push(&self, query: &str) {
        self.push_arc(Arc::from(query));
    }

    /// Appends an already-shared query without re-allocating its text —
    /// the obfuscation path stores the same `Arc` it sends to the engine.
    pub fn push_arc(&self, query: Arc<str>) {
        let seq = self.push_seq.fetch_add(1, Ordering::Relaxed);
        // Power-of-two stripe count: routing is a mask, not a division.
        let stripe = &self.stripes[(seq as usize) & (self.stripes.len() - 1)];
        let added = entry_bytes(&query);
        let mut entries = stripe.entries.lock();
        if entries.len() == stripe.capacity {
            // Steady state: pop + push under one lock leaves the length
            // unchanged, so only the byte delta needs publishing.
            let (_, evicted) = entries.pop_front().expect("capacity > 0");
            let freed = entry_bytes(&evicted);
            self.epc.release(freed);
            self.epc.charge(added, &self.cost);
            if added >= freed {
                self.total_bytes.fetch_add(added - freed, Ordering::Relaxed);
            } else {
                self.total_bytes.fetch_sub(freed - added, Ordering::Relaxed);
            }
        } else {
            self.epc.charge(added, &self.cost);
            self.total_bytes.fetch_add(added, Ordering::Relaxed);
            stripe.len.fetch_add(1, Ordering::Release);
        }
        entries.push_back((seq, query));
    }

    /// Fetches the entry at global index `r` (stripe-major order),
    /// clamping against concurrent eviction so a raced draw still
    /// returns *some* stored query rather than failing.
    fn entry_at(&self, mut r: usize) -> Option<Arc<str>> {
        for stripe in &self.stripes {
            let len = stripe.len.load(Ordering::Acquire);
            if r >= len {
                r -= len;
                continue;
            }
            let entries = stripe.entries.lock();
            if let Some((_, q)) = entries.get(r.min(entries.len().wrapping_sub(1))) {
                return Some(Arc::clone(q));
            }
            break;
        }
        // Raced with eviction past the end of the walk: take the newest
        // entry of any non-empty stripe (sampling stays uniform in the
        // quiescent case; this branch is unreachable single-threaded).
        self.stripes
            .iter()
            .find_map(|s| s.entries.lock().back().map(|(_, q)| Arc::clone(q)))
    }

    /// Samples one past query uniformly (Algorithm 1 line 7:
    /// `H[random(m)]`), `None` when the table is empty. Locks exactly one
    /// stripe.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Arc<str>> {
        let len = self.len();
        if len == 0 {
            return None;
        }
        self.entry_at(rng.gen_range(0..len))
    }

    /// Samples `k` past queries with replacement; empty if the table is.
    /// Each draw bumps a refcount instead of deep-cloning the string, and
    /// locks only the one stripe it lands on.
    pub fn sample_many<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<Arc<str>> {
        let len = self.len();
        if len == 0 {
            return Vec::new();
        }
        (0..k)
            .filter_map(|_| self.entry_at(rng.gen_range(0..len)))
            .collect()
    }

    /// Number of stored queries (lock-free: sums the per-stripe length
    /// mirrors, at most [`MAX_STRIPES`] plain loads).
    #[must_use]
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.len.load(Ordering::Acquire))
            .sum()
    }

    /// Whether the table is empty (cold start).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured window size.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently attributed to this table (string bytes plus
    /// per-entry bookkeeping), i.e. the Fig 6 y-axis. O(1): a running
    /// counter maintained by push/evict, not a scan.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// The EPC gauge this table charges.
    #[must_use]
    pub fn epc(&self) -> &Arc<EpcGauge> {
        &self.epc
    }

    /// An ordered snapshot (oldest first) — used by sealed persistence;
    /// only callable from in-enclave code in the real system. Cold path:
    /// locks every stripe and merges by push sequence number.
    #[must_use]
    pub fn snapshot(&self) -> Vec<String> {
        self.snapshot_arcs()
            .into_iter()
            .map(|q| String::from(&*q))
            .collect()
    }

    /// The zero-copy spine of [`QueryHistory::snapshot`]: the ordered
    /// window as shared `Arc<str>` handles — refcount bumps, no text
    /// copies. The sealed persistence path serializes straight from
    /// these, which matters because a fleet replica re-seals its whole
    /// window every `seal_every` requests.
    #[must_use]
    pub fn snapshot_arcs(&self) -> Vec<Arc<str>> {
        let mut tagged: Vec<Entry> = Vec::with_capacity(self.len());
        for stripe in &self.stripes {
            let entries = stripe.entries.lock();
            tagged.extend(entries.iter().cloned());
        }
        tagged.sort_unstable_by_key(|(seq, _)| *seq);
        tagged.into_iter().map(|(_, q)| q).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn history(cap: usize) -> QueryHistory {
        QueryHistory::new(cap, EpcGauge::with_limit(1 << 30))
    }

    #[test]
    fn window_never_exceeds_capacity() {
        let h = history(5);
        for i in 0..20 {
            h.push(&format!("query {i}"));
            assert!(h.len() <= 5);
        }
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn eviction_is_fifo() {
        let h = history(2);
        h.push("first");
        h.push("second");
        h.push("third");
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let s = h.sample(&mut rng).unwrap();
            assert_ne!(&*s, "first", "oldest entry must be gone");
        }
    }

    #[test]
    fn sample_from_empty_is_none() {
        let h = history(3);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(h.sample(&mut rng), None);
        assert!(h.sample_many(3, &mut rng).is_empty());
    }

    #[test]
    fn sample_many_draws_with_replacement() {
        let h = history(10);
        h.push("only");
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            h.sample_many(4, &mut rng),
            vec![Arc::<str>::from("only"); 4]
        );
    }

    #[test]
    fn sampling_shares_the_stored_allocation() {
        let h = history(10);
        h.push("shared text");
        let mut rng = StdRng::seed_from_u64(1);
        let a = h.sample(&mut rng).unwrap();
        let b = h.sample(&mut rng).unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "samples must be refcount bumps, not copies"
        );
    }

    #[test]
    fn epc_accounting_tracks_usage() {
        let gauge = EpcGauge::with_limit(1 << 30);
        let h = QueryHistory::new(100, gauge.clone());
        assert_eq!(gauge.used(), 0);
        h.push("hello world");
        let one = gauge.used();
        // 11 string bytes + 24 bytes of slot bookkeeping (fat pointer +
        // sequence tag) — identical to the pre-striping String header.
        assert_eq!(one, 11 + std::mem::size_of::<String>());
        h.push("second query");
        assert!(gauge.used() > one);
    }

    #[test]
    fn eviction_releases_epc() {
        let gauge = EpcGauge::with_limit(1 << 30);
        let h = QueryHistory::new(1, gauge.clone());
        h.push("aaaa");
        let after_first = gauge.used();
        h.push("bbbb"); // evicts "aaaa" of equal size
        assert_eq!(gauge.used(), after_first);
    }

    #[test]
    fn memory_bytes_matches_gauge() {
        let gauge = EpcGauge::with_limit(1 << 30);
        let h = QueryHistory::new(50, gauge.clone());
        for i in 0..30 {
            h.push(&format!("query number {i}"));
        }
        assert_eq!(h.memory_bytes(), gauge.used());
    }

    #[test]
    fn snapshot_is_chronological_across_stripes() {
        let h = history(100);
        let queries: Vec<String> = (0..25).map(|i| format!("q{i}")).collect();
        for q in &queries {
            h.push(q);
        }
        assert_eq!(h.snapshot(), queries);
    }

    #[test]
    fn snapshot_after_eviction_keeps_newest_in_order() {
        let h = history(4);
        for i in 0..10 {
            h.push(&format!("q{i}"));
        }
        assert_eq!(h.snapshot(), vec!["q6", "q7", "q8", "q9"]);
    }

    #[test]
    #[should_panic(expected = "history window must be positive")]
    fn zero_capacity_panics() {
        let _ = history(0);
    }

    #[test]
    fn concurrent_pushes_are_safe() {
        let h = Arc::new(history(1000));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        h.push(&format!("t{t} q{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.len(), 1000);
    }

    #[test]
    fn concurrent_push_and_sample_never_drifts() {
        let h = Arc::new(history(64));
        for i in 0..64 {
            h.push(&format!("warm {i}"));
        }
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t);
                    for i in 0..500 {
                        if i % 3 == 0 {
                            h.push(&format!("t{t} q{i}"));
                        } else {
                            assert!(h.sample(&mut rng).is_some());
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.len(), 64);
        assert_eq!(h.memory_bytes(), h.epc().used());
    }

    proptest! {
        #[test]
        fn accounting_never_drifts(queries in proptest::collection::vec("[a-z ]{1,30}", 1..60), cap in 1usize..20) {
            let gauge = EpcGauge::with_limit(1 << 30);
            let h = QueryHistory::new(cap, gauge.clone());
            for q in &queries {
                h.push(q);
            }
            prop_assert_eq!(h.memory_bytes(), gauge.used());
            prop_assert!(h.len() <= cap);
        }

        /// The striped table must sample from the same distribution the
        /// old single-lock table did: uniform over the entries the
        /// sliding window currently holds, nothing outside it.
        #[test]
        fn striped_sampling_matches_single_lock_distribution(
            n_entries in 1usize..40,
            cap in 1usize..40,
            seed: u64
        ) {
            let h = history(cap);
            // Reference model: the old implementation's single VecDeque.
            let mut reference: VecDeque<String> = VecDeque::new();
            for i in 0..n_entries {
                let q = format!("entry {i}");
                h.push(&q);
                if reference.len() == cap {
                    reference.pop_front();
                }
                reference.push_back(q);
            }
            let window: Vec<&String> = reference.iter().collect();
            prop_assert_eq!(h.len(), window.len());

            let draws = 200 * window.len();
            let expected = draws / window.len();
            let mut counts = std::collections::HashMap::new();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..draws {
                let s = h.sample(&mut rng).unwrap();
                *counts.entry(String::from(&*s)).or_insert(0usize) += 1;
            }
            // Every draw must come from the live window...
            for q in counts.keys() {
                prop_assert!(reference.contains(q), "sampled evicted entry {q:?}");
            }
            // ...and cover it uniformly (±60% of the expected count is
            // ≈6σ at 200 draws per entry — tight enough to catch any
            // stripe bias, loose enough to never flake).
            for w in &window {
                let c = counts.get(*w).copied().unwrap_or(0);
                let lo = expected * 2 / 5;
                let hi = expected * 8 / 5;
                prop_assert!(
                    (lo..=hi).contains(&c),
                    "entry {w:?} drawn {c} times, expected ≈{expected}"
                );
            }
        }
    }
}
