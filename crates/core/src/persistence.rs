//! Sealed history persistence.
//!
//! The paper's proxy loses its past-query table on restart (it lives only
//! in enclave memory). SGX sealing makes a privacy-preserving restart
//! possible: the enclave serializes the table and seals it to its own
//! measurement, so only the *same proxy code* on the *same platform* can
//! restore it — the operator gets a blob it cannot read. This module
//! implements that extension (listed as such in DESIGN.md: the paper
//! mentions sealing as an SGX capability in §2.3 but does not use it).

use crate::history::QueryHistory;
use rand::RngCore;
use xsearch_sgx_sim::error::SgxError;
use xsearch_sgx_sim::measurement::Measurement;
use xsearch_sgx_sim::sealed::{SealedBlob, SealingPlatform};

/// Serializes the history's queries (newest last) into a compact,
/// length-prefixed byte form.
fn serialize(queries: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(queries.len() as u64).to_le_bytes());
    for q in queries {
        out.extend_from_slice(&(q.len() as u32).to_le_bytes());
        out.extend_from_slice(q.as_bytes());
    }
    out
}

fn deserialize(bytes: &[u8]) -> Result<Vec<String>, SgxError> {
    let mut queries = Vec::new();
    if bytes.len() < 8 {
        return Err(SgxError::UnsealFailed);
    }
    let count = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) as usize;
    let mut offset = 8;
    for _ in 0..count {
        if bytes.len() < offset + 4 {
            return Err(SgxError::UnsealFailed);
        }
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        offset += 4;
        if bytes.len() < offset + len {
            return Err(SgxError::UnsealFailed);
        }
        let q = std::str::from_utf8(&bytes[offset..offset + len])
            .map_err(|_| SgxError::UnsealFailed)?;
        queries.push(q.to_owned());
        offset += len;
    }
    Ok(queries)
}

/// Seals the history's contents to (platform, measurement).
///
/// The returned blob is safe to hand to untrusted storage: it reveals
/// only its length.
pub fn seal_history<R: RngCore>(
    history: &QueryHistory,
    platform: &SealingPlatform,
    measurement: &Measurement,
    rng: &mut R,
) -> SealedBlob {
    // Drain a snapshot oldest-first so restore preserves window order.
    let snapshot = snapshot_in_order(history);
    platform.seal(measurement, &serialize(&snapshot), rng)
}

/// Restores a sealed snapshot into `history` (pushed oldest-first, so the
/// sliding window keeps the most recent queries if the snapshot exceeds
/// capacity).
///
/// # Errors
///
/// [`SgxError::UnsealFailed`] when the blob was sealed by different code
/// or a different platform, or was tampered with.
pub fn restore_history(
    history: &QueryHistory,
    platform: &SealingPlatform,
    measurement: &Measurement,
    blob: &SealedBlob,
) -> Result<usize, SgxError> {
    let bytes = platform.unseal(measurement, blob)?;
    let queries = deserialize(&bytes)?;
    let n = queries.len();
    for q in &queries {
        history.push(q);
    }
    Ok(n)
}

/// Ordered snapshot of the history (oldest first) via repeated sampling
/// would be probabilistic; instead expose an internal iteration.
fn snapshot_in_order(history: &QueryHistory) -> Vec<String> {
    history.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xsearch_sgx_sim::epc::EpcGauge;
    use xsearch_sgx_sim::measurement::MeasurementBuilder;

    fn measurement(tag: &[u8]) -> Measurement {
        let mut b = MeasurementBuilder::new();
        b.add_region(tag);
        b.finalize()
    }

    fn filled_history(queries: &[&str]) -> QueryHistory {
        let h = QueryHistory::new(1000, EpcGauge::new());
        for q in queries {
            h.push(q);
        }
        h
    }

    #[test]
    fn seal_restore_roundtrip_preserves_window() {
        let platform = SealingPlatform::from_seed(1);
        let m = measurement(b"proxy-v1");
        let mut rng = StdRng::seed_from_u64(2);
        let original = filled_history(&["first", "second", "third"]);
        let blob = seal_history(&original, &platform, &m, &mut rng);

        let restored = QueryHistory::new(1000, EpcGauge::new());
        let n = restore_history(&restored, &platform, &m, &blob).unwrap();
        assert_eq!(n, 3);
        assert_eq!(restored.snapshot(), vec!["first", "second", "third"]);
    }

    #[test]
    fn different_code_cannot_restore() {
        let platform = SealingPlatform::from_seed(1);
        let mut rng = StdRng::seed_from_u64(3);
        let history = filled_history(&["secret query"]);
        let blob = seal_history(&history, &platform, &measurement(b"proxy-v1"), &mut rng);
        let restored = QueryHistory::new(10, EpcGauge::new());
        assert_eq!(
            restore_history(&restored, &platform, &measurement(b"proxy-v2"), &blob),
            Err(SgxError::UnsealFailed)
        );
        assert_eq!(restored.len(), 0);
    }

    #[test]
    fn oversized_snapshot_keeps_most_recent() {
        let platform = SealingPlatform::from_seed(1);
        let m = measurement(b"proxy");
        let mut rng = StdRng::seed_from_u64(4);
        let big = filled_history(&["q1", "q2", "q3", "q4", "q5"]);
        let blob = seal_history(&big, &platform, &m, &mut rng);

        let small = QueryHistory::new(2, EpcGauge::new());
        restore_history(&small, &platform, &m, &blob).unwrap();
        assert_eq!(
            small.snapshot(),
            vec!["q4", "q5"],
            "window keeps the newest"
        );
    }

    #[test]
    fn blob_reveals_nothing_but_length() {
        let platform = SealingPlatform::from_seed(1);
        let m = measurement(b"proxy");
        let mut rng = StdRng::seed_from_u64(5);
        let history = filled_history(&["very identifying query"]);
        let blob = seal_history(&history, &platform, &m, &mut rng);
        let debug = format!("{blob:?}");
        assert!(!debug.contains("identifying"), "sealed blob must be opaque");
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert_eq!(deserialize(&[1, 2, 3]), Err(SgxError::UnsealFailed));
        // Count says 1 but no payload follows.
        let mut bytes = 1u64.to_le_bytes().to_vec();
        bytes.extend_from_slice(&100u32.to_le_bytes());
        assert_eq!(deserialize(&bytes), Err(SgxError::UnsealFailed));
    }
}
