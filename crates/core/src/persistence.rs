//! Sealed history persistence.
//!
//! The paper's proxy loses its past-query table on restart (it lives only
//! in enclave memory). SGX sealing makes a privacy-preserving restart
//! possible: the enclave serializes the table and seals it to its own
//! measurement, so only the *same proxy code* on the *same platform* can
//! restore it — the operator gets a blob it cannot read. This module
//! implements that extension (listed as such in DESIGN.md: the paper
//! mentions sealing as an SGX capability in §2.3 but does not use it).
//!
//! Two layers live here:
//!
//! * the free functions [`seal_history`] / [`restore_history`] — the
//!   plain seal/unseal roundtrip, version 0, no rollback protection;
//! * [`HistoryVault`] — the fleet-grade path: every snapshot carries a
//!   **monotonic version** (modeling SGX's hardware monotonic counters),
//!   restoring anything older than the newest sealed version is rejected
//!   as a rollback, and [`migrate_history`] re-seals a snapshot from one
//!   platform's vault to another's so failover (see `xsearch-cluster`)
//!   can move a dead replica's window to its successor without ever
//!   exposing plaintext to the operator or enabling history rollback.
//!
//! The on-disk payload format is the shared length-prefixed query batch
//! from [`crate::wire`] — the same framing the `seed` ecall uses, so
//! there is exactly one serializer to fuzz.

use crate::history::QueryHistory;
use crate::wire::{decode_query_batch, encode_query_batch};
use rand::RngCore;
use std::sync::atomic::{AtomicU64, Ordering};
use xsearch_sgx_sim::error::SgxError;
use xsearch_sgx_sim::measurement::Measurement;
use xsearch_sgx_sim::sealed::{SealedBlob, SealingPlatform};

/// Serializes the live window with the shared wire framing
/// ([`crate::wire::encode_query_batch`]), straight from its shared
/// `Arc<str>` handles — the hot sealing path. A fleet replica re-seals
/// its whole window every `seal_every` requests, so this avoids
/// materializing an owned `Vec<String>` copy of every query text per
/// snapshot.
fn serialize_window(history: &QueryHistory) -> Vec<u8> {
    let arcs = history.snapshot_arcs();
    encode_query_batch(arcs.iter().map(|q| &**q))
}

fn deserialize(bytes: &[u8]) -> Result<Vec<String>, SgxError> {
    let queries = decode_query_batch(bytes).map_err(|_| SgxError::UnsealFailed)?;
    Ok(queries.into_iter().map(str::to_owned).collect())
}

/// Seals the history's contents to (platform, measurement).
///
/// The returned blob is safe to hand to untrusted storage: it reveals
/// only its length.
pub fn seal_history<R: RngCore>(
    history: &QueryHistory,
    platform: &SealingPlatform,
    measurement: &Measurement,
    rng: &mut R,
) -> SealedBlob {
    // Snapshot oldest-first so restore preserves window order.
    platform.seal(measurement, &serialize_window(history), rng)
}

/// Restores a sealed snapshot into `history` (pushed oldest-first, so the
/// sliding window keeps the most recent queries if the snapshot exceeds
/// capacity).
///
/// # Errors
///
/// [`SgxError::UnsealFailed`] when the blob was sealed by different code
/// or a different platform, or was tampered with.
pub fn restore_history(
    history: &QueryHistory,
    platform: &SealingPlatform,
    measurement: &Measurement,
    blob: &SealedBlob,
) -> Result<usize, SgxError> {
    let bytes = platform.unseal(measurement, blob)?;
    restore_bytes(history, &bytes)
}

fn restore_bytes(history: &QueryHistory, bytes: &[u8]) -> Result<usize, SgxError> {
    let queries = deserialize(bytes)?;
    let n = queries.len();
    for q in &queries {
        history.push(q);
    }
    Ok(n)
}

/// The enclave's sealing facility with rollback protection: a sealing
/// platform, the enclave measurement, and a monotonic counter standing in
/// for SGX's hardware monotonic counters.
///
/// Every [`HistoryVault::seal`] stamps the blob with the next counter
/// value; [`HistoryVault::restore`] refuses any blob older than the
/// newest one sealed, so an operator (or a failover orchestrator) cannot
/// roll the decoy window back to a superseded snapshot. The vault object
/// models state that survives enclave restarts on the same host — in
/// real SGX the counter lives in platform hardware, not enclave memory.
#[derive(Debug)]
pub struct HistoryVault {
    platform: SealingPlatform,
    measurement: Measurement,
    /// Version of the newest blob sealed by this vault — also the floor
    /// below which restores are rejected as rollbacks.
    last_sealed: AtomicU64,
}

impl HistoryVault {
    /// Creates a vault for (platform, measurement) with a fresh counter.
    #[must_use]
    pub fn new(platform: SealingPlatform, measurement: Measurement) -> Self {
        HistoryVault {
            platform,
            measurement,
            last_sealed: AtomicU64::new(0),
        }
    }

    /// The measurement blobs from this vault are sealed to.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Version of the newest blob this vault sealed (0 if none yet).
    #[must_use]
    pub fn last_sealed(&self) -> u64 {
        self.last_sealed.load(Ordering::Acquire)
    }

    /// Seals a snapshot of `history` at the next monotonic version.
    pub fn seal<R: RngCore>(&self, history: &QueryHistory, rng: &mut R) -> SealedBlob {
        self.seal_bytes(&serialize_window(history), rng)
    }

    fn seal_bytes<R: RngCore>(&self, payload: &[u8], rng: &mut R) -> SealedBlob {
        let version = self.last_sealed.fetch_add(1, Ordering::AcqRel) + 1;
        self.platform
            .seal_versioned(&self.measurement, version, payload, rng)
    }

    /// Restores a sealed snapshot into `history`, enforcing monotonicity:
    /// only the newest sealed version (or a newer one produced by a peer
    /// vault and [`migrate_history`]) is accepted.
    ///
    /// # Errors
    ///
    /// [`SgxError::RolledBack`] for a blob older than the last sealed
    /// version; [`SgxError::UnsealFailed`] for wrong platform/measurement
    /// or tampering.
    pub fn restore(&self, history: &QueryHistory, blob: &SealedBlob) -> Result<usize, SgxError> {
        let bytes = self
            .platform
            .unseal_monotonic(&self.measurement, blob, self.last_sealed())?;
        restore_bytes(history, &bytes)
    }

    /// Marks `version` (and everything older) as consumed, raising the
    /// restore floor past it. Called after a blob is migrated away so
    /// the source host cannot restore the pre-migration window — that
    /// window now lives (and keeps growing) at the successor.
    pub fn retire(&self, version: u64) {
        self.last_sealed.fetch_max(version + 1, Ordering::AcqRel);
    }
}

/// Migrates a sealed history snapshot from `src`'s vault to `dst`'s:
/// unseals under the source platform, atomically claims the blob's
/// version at the source (one consumer ever wins; the blob can never be
/// restored at the source again), and re-seals under the destination
/// platform at the destination's next monotonic version.
///
/// Conceptually both ends run inside attested enclaves of the same
/// measurement; the orchestrator only ever holds the two opaque blobs.
///
/// # Errors
///
/// [`SgxError::RolledBack`] when `blob` is older than the newest snapshot
/// `src` sealed; [`SgxError::UnsealFailed`] for wrong platform,
/// measurement mismatch, or tampering.
pub fn migrate_history<R: RngCore>(
    blob: &SealedBlob,
    src: &HistoryVault,
    dst: &HistoryVault,
    rng: &mut R,
) -> Result<SealedBlob, SgxError> {
    if src.measurement != dst.measurement {
        // Sealed history only moves between replicas running the exact
        // same enclave code.
        return Err(SgxError::UnsealFailed);
    }
    let bytes = src.platform.unseal(&src.measurement, blob)?;
    let claimed = src
        .last_sealed
        .fetch_max(blob.version() + 1, Ordering::AcqRel);
    if claimed > blob.version() {
        return Err(SgxError::RolledBack {
            sealed: blob.version(),
            floor: claimed,
        });
    }
    Ok(dst.seal_bytes(&bytes, rng))
}

/// The live end of a migration: unseals `blob` under the **source**
/// vault, atomically *claims* its version against the source's
/// monotonic counter — exactly one consumer can ever win, even when a
/// failover sweep and a source restart race for the same blob — and
/// restores the window directly into `history` (the adopting enclave's
/// live table). Unlike [`migrate_history`] + a later restore, this
/// involves no destination-version check, so it cannot race with the
/// destination's own sealing cadence either.
///
/// # Errors
///
/// [`SgxError::RolledBack`] when the blob's version was already claimed
/// or superseded at the source; [`SgxError::UnsealFailed`] for wrong
/// platform/measurement or tampering. On error nothing is restored or
/// claimed.
pub fn restore_migrated(
    history: &QueryHistory,
    blob: &SealedBlob,
    src: &HistoryVault,
) -> Result<usize, SgxError> {
    let bytes = src.platform.unseal(&src.measurement, blob)?;
    // Claim-then-restore: raise the floor past this version in one
    // atomic step. The winner observes a previous floor at or below the
    // blob's version; every racing consumer observes the raised floor
    // and reports a rollback instead of duplicating the window.
    let claimed = src
        .last_sealed
        .fetch_max(blob.version() + 1, Ordering::AcqRel);
    if claimed > blob.version() {
        return Err(SgxError::RolledBack {
            sealed: blob.version(),
            floor: claimed,
        });
    }
    restore_bytes(history, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xsearch_sgx_sim::epc::EpcGauge;
    use xsearch_sgx_sim::measurement::MeasurementBuilder;

    fn measurement(tag: &[u8]) -> Measurement {
        let mut b = MeasurementBuilder::new();
        b.add_region(tag);
        b.finalize()
    }

    fn filled_history(queries: &[&str]) -> QueryHistory {
        let h = QueryHistory::new(1000, EpcGauge::new());
        for q in queries {
            h.push(q);
        }
        h
    }

    #[test]
    fn seal_restore_roundtrip_preserves_window() {
        let platform = SealingPlatform::from_seed(1);
        let m = measurement(b"proxy-v1");
        let mut rng = StdRng::seed_from_u64(2);
        let original = filled_history(&["first", "second", "third"]);
        let blob = seal_history(&original, &platform, &m, &mut rng);

        let restored = QueryHistory::new(1000, EpcGauge::new());
        let n = restore_history(&restored, &platform, &m, &blob).unwrap();
        assert_eq!(n, 3);
        assert_eq!(restored.snapshot(), vec!["first", "second", "third"]);
    }

    #[test]
    fn different_code_cannot_restore() {
        let platform = SealingPlatform::from_seed(1);
        let mut rng = StdRng::seed_from_u64(3);
        let history = filled_history(&["secret query"]);
        let blob = seal_history(&history, &platform, &measurement(b"proxy-v1"), &mut rng);
        let restored = QueryHistory::new(10, EpcGauge::new());
        assert_eq!(
            restore_history(&restored, &platform, &measurement(b"proxy-v2"), &blob),
            Err(SgxError::UnsealFailed)
        );
        assert_eq!(restored.len(), 0);
    }

    #[test]
    fn oversized_snapshot_keeps_most_recent() {
        let platform = SealingPlatform::from_seed(1);
        let m = measurement(b"proxy");
        let mut rng = StdRng::seed_from_u64(4);
        let big = filled_history(&["q1", "q2", "q3", "q4", "q5"]);
        let blob = seal_history(&big, &platform, &m, &mut rng);

        let small = QueryHistory::new(2, EpcGauge::new());
        restore_history(&small, &platform, &m, &blob).unwrap();
        assert_eq!(
            small.snapshot(),
            vec!["q4", "q5"],
            "window keeps the newest"
        );
    }

    #[test]
    fn blob_reveals_nothing_but_length() {
        let platform = SealingPlatform::from_seed(1);
        let m = measurement(b"proxy");
        let mut rng = StdRng::seed_from_u64(5);
        let history = filled_history(&["very identifying query"]);
        let blob = seal_history(&history, &platform, &m, &mut rng);
        let debug = format!("{blob:?}");
        assert!(!debug.contains("identifying"), "sealed blob must be opaque");
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert_eq!(deserialize(&[1, 2, 3]), Err(SgxError::UnsealFailed));
        // Count says 1 but no payload follows.
        let mut bytes = 1u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&100u32.to_le_bytes());
        assert_eq!(deserialize(&bytes), Err(SgxError::UnsealFailed));
    }

    #[test]
    fn serializer_is_the_shared_wire_framing() {
        let history = filled_history(&["alpha", "beta gamma"]);
        assert_eq!(
            serialize_window(&history),
            encode_query_batch(["alpha", "beta gamma"]),
            "persistence and the seed ecall must share one framing"
        );
    }

    #[test]
    fn vault_versions_are_monotonic() {
        let vault = HistoryVault::new(SealingPlatform::from_seed(1), measurement(b"proxy"));
        let mut rng = StdRng::seed_from_u64(6);
        let h = filled_history(&["a"]);
        let b1 = vault.seal(&h, &mut rng);
        let b2 = vault.seal(&h, &mut rng);
        assert_eq!(b1.version(), 1);
        assert_eq!(b2.version(), 2);
        assert_eq!(vault.last_sealed(), 2);
    }

    #[test]
    fn vault_rejects_stale_snapshot() {
        let vault = HistoryVault::new(SealingPlatform::from_seed(1), measurement(b"proxy"));
        let mut rng = StdRng::seed_from_u64(7);
        let old = vault.seal(&filled_history(&["old window"]), &mut rng);
        let new = vault.seal(&filled_history(&["new window"]), &mut rng);

        let target = QueryHistory::new(100, EpcGauge::new());
        assert_eq!(
            vault.restore(&target, &old),
            Err(SgxError::RolledBack {
                sealed: 1,
                floor: 2
            }),
            "failover migration must not enable history rollback"
        );
        assert_eq!(target.len(), 0);
        assert_eq!(vault.restore(&target, &new).unwrap(), 1);
        assert_eq!(target.snapshot(), vec!["new window"]);
    }

    #[test]
    fn migration_moves_the_window_and_retires_the_source() {
        let m = measurement(b"proxy");
        let src = HistoryVault::new(SealingPlatform::from_seed(1), m);
        let dst = HistoryVault::new(SealingPlatform::from_seed(2), m);
        let mut rng = StdRng::seed_from_u64(8);

        let blob = src.seal(&filled_history(&["decoy one", "decoy two"]), &mut rng);
        let migrated = migrate_history(&blob, &src, &dst, &mut rng).unwrap();

        // The successor restores the window under its own platform.
        let successor = QueryHistory::new(100, EpcGauge::new());
        assert_eq!(dst.restore(&successor, &migrated).unwrap(), 2);
        assert_eq!(successor.snapshot(), vec!["decoy one", "decoy two"]);

        // The source cannot restore the migrated-away blob: that would
        // duplicate the window and roll back the successor's growth.
        let revived = QueryHistory::new(100, EpcGauge::new());
        assert!(matches!(
            src.restore(&revived, &blob),
            Err(SgxError::RolledBack { .. })
        ));
    }

    #[test]
    fn restore_migrated_adopts_atomically_and_retires_source() {
        let m = measurement(b"proxy");
        let src = HistoryVault::new(SealingPlatform::from_seed(1), m);
        let mut rng = StdRng::seed_from_u64(11);
        let blob = src.seal(&filled_history(&["w1", "w2", "w3"]), &mut rng);

        let live = filled_history(&["own entry"]);
        assert_eq!(restore_migrated(&live, &blob, &src).unwrap(), 3);
        assert_eq!(live.snapshot(), vec!["own entry", "w1", "w2", "w3"]);

        // Retired at the source: adopting the same blob again is a
        // rollback.
        assert!(matches!(
            restore_migrated(&live, &blob, &src),
            Err(SgxError::RolledBack { .. })
        ));
    }

    #[test]
    fn migration_requires_matching_measurement() {
        let src = HistoryVault::new(SealingPlatform::from_seed(1), measurement(b"proxy-v1"));
        let dst = HistoryVault::new(SealingPlatform::from_seed(2), measurement(b"proxy-v2"));
        let mut rng = StdRng::seed_from_u64(9);
        let blob = src.seal(&filled_history(&["w"]), &mut rng);
        assert_eq!(
            migrate_history(&blob, &src, &dst, &mut rng),
            Err(SgxError::UnsealFailed)
        );
    }

    #[test]
    fn foreign_platform_cannot_restore_vault_blob() {
        let m = measurement(b"proxy");
        let vault = HistoryVault::new(SealingPlatform::from_seed(1), m);
        let other = HistoryVault::new(SealingPlatform::from_seed(2), m);
        let mut rng = StdRng::seed_from_u64(10);
        let blob = vault.seal(&filled_history(&["w"]), &mut rng);
        let target = QueryHistory::new(100, EpcGauge::new());
        assert_eq!(
            other.restore(&target, &blob),
            Err(SgxError::UnsealFailed),
            "blobs are bound to their sealing platform"
        );
    }
}
