//! The in-enclave application: what runs behind the paper's ecall
//! interface (§5.3.3: ecalls `init`, `request`; ocalls `sock_connect`,
//! `send`, `recv`, `close`).
//!
//! Everything in [`EnclaveState`] lives in EPC-protected memory: the
//! enclave's channel identity key, the per-client session keys, and the
//! table of past queries. Untrusted code only ever sees ciphertext and
//! the obfuscated queries that are, by construction, safe to reveal.

use crate::config::XSearchConfig;
use crate::error::XSearchError;
use crate::filter::filter_results;
use crate::history::QueryHistory;
use crate::obfuscate::{obfuscate, ObfuscatedQuery};
use crate::redirect::strip_all;
use crate::session::{channel_binding, SecureChannel, Side};
use crate::wire::encode_results;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use xsearch_crypto::x25519::{PublicKey, StaticSecret};
use xsearch_engine::engine::SearchResult;
use xsearch_sgx_sim::boundary::OcallPort;
use xsearch_sgx_sim::cost::CostModel;
use xsearch_sgx_sim::epc::EpcGauge;

/// The canonical enclave code region. Its bytes stand in for the measured
/// binary: brokers expect the measurement of exactly this "code", so a
/// modified proxy produces a different measurement and fails attestation.
pub const ENCLAVE_CODE_V1: &[u8] =
    b"xsearch-enclave-app v1: channel=x25519+hkdf+chacha20poly1305; \
      obfuscation=algorithm1(history-sampling); filtering=algorithm2(nbCommonWords); \
      ocalls=sock_connect,send,recv,close";

/// Protected application state.
pub struct EnclaveState {
    identity: StaticSecret,
    identity_pub: PublicKey,
    history: QueryHistory,
    config: XSearchConfig,
    rng: Mutex<StdRng>,
    // Per-session locks so concurrent clients do not serialize on one
    // global mutex (the proxy "uses multiple threads", §4.1).
    sessions: Mutex<HashMap<[u8; 32], Arc<Mutex<SecureChannel>>>>,
}

impl std::fmt::Debug for EnclaveState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnclaveState")
            .field("history_len", &self.history.len())
            .field("k", &self.config.k)
            .finish()
    }
}

impl EnclaveState {
    /// The `init` ecall: generates the channel identity and sizes the
    /// history table against the enclave's EPC gauge.
    #[must_use]
    pub fn init(config: XSearchConfig, epc: &Arc<EpcGauge>, _cost: &CostModel) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let identity = StaticSecret::random(&mut rng);
        let identity_pub = identity.public_key();
        EnclaveState {
            identity,
            identity_pub,
            history: QueryHistory::new(config.history_capacity, epc.clone()),
            config,
            rng: Mutex::new(rng),
            sessions: Mutex::new(HashMap::new()),
        }
    }

    /// The enclave's channel public key (bound into attestation quotes).
    #[must_use]
    pub fn identity_pub(&self) -> PublicKey {
        self.identity_pub
    }

    /// The past-query table (exposed for memory experiments).
    #[must_use]
    pub fn history(&self) -> &QueryHistory {
        &self.history
    }

    /// Establishes a session for `client_pub`: DH + per-direction keys.
    /// Returns the binding hash the quote must carry.
    ///
    /// # Errors
    ///
    /// [`XSearchError::Crypto`] when the client key is a low-order point.
    pub fn open_session(&self, client_pub: PublicKey) -> Result<[u8; 32], XSearchError> {
        let shared = self.identity.diffie_hellman(&client_pub)?;
        let channel =
            SecureChannel::establish(Side::Server, &shared, &client_pub, &self.identity_pub);
        self.sessions
            .lock()
            .insert(*client_pub.as_bytes(), Arc::new(Mutex::new(channel)));
        Ok(channel_binding(&self.identity_pub, &client_pub))
    }

    /// Seeds the history directly (warm-up for experiments; in production
    /// the history fills with real traffic).
    pub fn seed_history(&self, query: &str) {
        self.history.push(query);
    }

    /// The `request` ecall: decrypts one query from the session of
    /// `client_pub`, obfuscates it, fetches results through the ocall
    /// interface, filters them, and returns the encrypted response.
    ///
    /// `fetch` is the untrusted engine transport invoked between the
    /// `send` and `recv` ocalls: it receives the sub-queries and the
    /// per-sub-query result count.
    ///
    /// # Errors
    ///
    /// [`XSearchError::UnknownSession`] for an unestablished client,
    /// [`XSearchError::Crypto`] for tampered ciphertext,
    /// [`XSearchError::Protocol`] for a non-UTF-8 query.
    pub fn request<F>(
        &self,
        client_pub: &[u8; 32],
        ciphertext: &[u8],
        port: &OcallPort,
        fetch: F,
    ) -> Result<Vec<u8>, XSearchError>
    where
        F: FnOnce(&[String], usize) -> Vec<SearchResult>,
    {
        // Decrypt inside the enclave; only this session is locked.
        let session = self
            .sessions
            .lock()
            .get(client_pub)
            .cloned()
            .ok_or(XSearchError::UnknownSession)?;
        let mut channel = session.lock();
        let plaintext = channel.open(b"query", ciphertext)?;
        let query = String::from_utf8(plaintext)
            .map_err(|_| XSearchError::Protocol("query is not utf-8".into()))?;

        // Obfuscate (Algorithm 1) and store the query in the history.
        let obfuscated = {
            let mut rng = self.rng.lock();
            obfuscate(&query, &self.history, self.config.k, &mut *rng)
        };

        // Fetch results via the paper's four-ocall sequence. The payload
        // crossing the boundary is the obfuscated query — exactly what an
        // untrusted observer is allowed to see.
        let results = self.fetch_via_ocalls(&obfuscated, port, fetch);

        // Filter (Algorithm 2) and strip analytics redirections.
        let fakes: Vec<String> = obfuscated.fakes().iter().map(|s| (*s).to_owned()).collect();
        let mut kept = filter_results(&query, &fakes, &results);
        strip_all(&mut kept);

        // Encrypt the response for the broker.
        Ok(channel.seal(b"results", &encode_results(&kept)))
    }

    fn fetch_via_ocalls<F>(
        &self,
        obfuscated: &ObfuscatedQuery,
        port: &OcallPort,
        fetch: F,
    ) -> Vec<SearchResult>
    where
        F: FnOnce(&[String], usize) -> Vec<SearchResult>,
    {
        // sock_connect(host, port)
        port.ocall(b"sock_connect:engine:80", |_| b"sock:0".to_vec());
        // send(sock, buff, len) — the obfuscated query leaves the enclave.
        let wire_query = obfuscated.to_or_string();
        port.ocall(wire_query.as_bytes(), |_| Vec::new());
        // recv(sock, buff, len) — results come back (untrusted fetch runs
        // here).
        let mut results: Option<Vec<SearchResult>> = None;
        let k_each = self.config.results_per_query;
        let subqueries = obfuscated.subqueries.clone();
        port.ocall(b"recv", |_| {
            let r = fetch(&subqueries, k_each);
            let bytes = encode_results(&r);
            results = Some(r);
            bytes
        });
        // close(sock)
        port.ocall(b"close:sock:0", |_| Vec::new());
        results.unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsearch_sgx_sim::boundary::BoundaryStats;
    use xsearch_sgx_sim::epc::EpcGauge;

    fn state(k: usize) -> EnclaveState {
        let epc = EpcGauge::with_limit(1 << 30);
        EnclaveState::init(
            XSearchConfig {
                k,
                history_capacity: 100,
                ..Default::default()
            },
            &epc,
            &CostModel::default(),
        )
    }

    fn port() -> OcallPort {
        OcallPort::new(BoundaryStats::new(), CostModel::default())
    }

    fn client_channel(state: &EnclaveState, seed: u64) -> ([u8; 32], SecureChannel) {
        let mut rng = StdRng::seed_from_u64(seed);
        let secret = StaticSecret::random(&mut rng);
        let client_pub = secret.public_key();
        state.open_session(client_pub).unwrap();
        let shared = secret.diffie_hellman(&state.identity_pub()).unwrap();
        let channel =
            SecureChannel::establish(Side::Client, &shared, &client_pub, &state.identity_pub());
        (*client_pub.as_bytes(), channel)
    }

    #[test]
    fn request_roundtrips_through_the_enclave() {
        let state = state(2);
        for q in ["warm one", "warm two", "warm three"] {
            state.seed_history(q);
        }
        let (client_id, mut channel) = client_channel(&state, 1);
        let ct = channel.seal(b"query", b"cheap flights");
        let port = port();
        let resp_ct = state
            .request(&client_id, &ct, &port, |subqueries, _k| {
                assert_eq!(subqueries.len(), 3, "k=2 → 3 sub-queries");
                Vec::new()
            })
            .unwrap();
        let resp = channel.open(b"results", &resp_ct).unwrap();
        assert!(resp.is_empty(), "no results from empty engine");
    }

    #[test]
    fn unknown_session_is_rejected() {
        let state = state(1);
        let port = port();
        let err = state.request(&[9u8; 32], b"junk", &port, |_, _| Vec::new());
        assert_eq!(err.unwrap_err(), XSearchError::UnknownSession);
    }

    #[test]
    fn tampered_ciphertext_is_rejected() {
        let state = state(1);
        let (client_id, mut channel) = client_channel(&state, 2);
        let mut ct = channel.seal(b"query", b"secret");
        ct[0] ^= 1;
        let port = port();
        let err = state.request(&client_id, &ct, &port, |_, _| Vec::new());
        assert!(matches!(err.unwrap_err(), XSearchError::Crypto(_)));
    }

    #[test]
    fn request_performs_four_ocalls() {
        let state = state(0);
        let (client_id, mut channel) = client_channel(&state, 3);
        let stats = BoundaryStats::new();
        let port = OcallPort::new(stats.clone(), CostModel::default());
        let ct = channel.seal(b"query", b"q");
        state
            .request(&client_id, &ct, &port, |_, _| Vec::new())
            .unwrap();
        assert_eq!(stats.ocalls(), 4, "sock_connect, send, recv, close");
    }

    #[test]
    fn query_lands_in_history() {
        let state = state(1);
        let (client_id, mut channel) = client_channel(&state, 4);
        assert_eq!(state.history().len(), 0);
        let ct = channel.seal(b"query", b"first query");
        let port = port();
        state
            .request(&client_id, &ct, &port, |_, _| Vec::new())
            .unwrap();
        assert_eq!(state.history().len(), 1);
    }

    #[test]
    fn two_clients_have_independent_sessions() {
        let state = state(0);
        let (id_a, mut ch_a) = client_channel(&state, 5);
        let (id_b, mut ch_b) = client_channel(&state, 6);
        let port = port();
        let ct_a = ch_a.seal(b"query", b"from a");
        let ct_b = ch_b.seal(b"query", b"from b");
        assert!(state
            .request(&id_a, &ct_a, &port, |_, _| Vec::new())
            .is_ok());
        assert!(state
            .request(&id_b, &ct_b, &port, |_, _| Vec::new())
            .is_ok());
        // Cross-session ciphertext fails.
        let ct_cross = ch_a.seal(b"query", b"cross");
        assert!(state
            .request(&id_b, &ct_cross, &port, |_, _| Vec::new())
            .is_err());
    }
}
