//! The in-enclave application: what runs behind the paper's ecall
//! interface (§5.3.3: ecalls `init`, `request`; ocalls `sock_connect`,
//! `send`, `recv`, `close`).
//!
//! Everything in [`EnclaveState`] lives in EPC-protected memory: the
//! enclave's channel identity key, the per-client session keys, and the
//! table of past queries. Untrusted code only ever sees ciphertext and
//! the obfuscated queries that are, by construction, safe to reveal.
//!
//! # Concurrency
//!
//! The paper's proxy "uses multiple threads" inside one enclave (§4.1),
//! so the `request` path must not serialize on shared state. Three
//! mechanisms keep it lock-striped end to end:
//!
//! * the session table is split over [`SESSION_SHARDS`] shards keyed by
//!   the client's public-key bytes — a request locks its shard only for
//!   the table lookup, then holds nothing but its own session's mutex;
//! * randomness is per-request: an atomic ticket counter plus the
//!   enclave seed derive an independent `StdRng` per request, replacing
//!   a global `Mutex<StdRng>` every obfuscation used to contend on;
//! * the history table is internally lock-striped (see
//!   [`crate::history`]).
//!
//! The remaining serialization is *per session* (channel nonce counters
//! require ordered seal/open), which is inherent to the protocol.

use crate::config::XSearchConfig;
use crate::error::XSearchError;
use crate::filter::filter_results;
use crate::history::QueryHistory;
use crate::obfuscate::{obfuscate, ObfuscatedQuery};
use crate::redirect::strip_all;
use crate::session::{channel_binding, SecureChannel, Side};
use crate::wire::{
    decode_query_batch, decode_request_batch, encode_response_batch, encode_results_into,
    encoded_len,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use xsearch_crypto::x25519::{PublicKey, StaticSecret};
use xsearch_engine::engine::SearchResult;
use xsearch_sgx_sim::boundary::OcallPort;
use xsearch_sgx_sim::cost::CostModel;
use xsearch_sgx_sim::epc::EpcGauge;
use xsearch_telemetry::EnclaveScope;

/// The canonical enclave code region. Its bytes stand in for the measured
/// binary: brokers expect the measurement of exactly this "code", so a
/// modified proxy produces a different measurement and fails attestation.
pub const ENCLAVE_CODE_V1: &[u8] =
    b"xsearch-enclave-app v1: channel=x25519+hkdf+chacha20poly1305; \
      obfuscation=algorithm1(history-sampling); filtering=algorithm2(nbCommonWords); \
      ocalls=sock_connect,send,recv,close";

/// Number of session-table shards. Requests from different clients lock
/// different shards, so concurrent lookups do not serialize.
pub const SESSION_SHARDS: usize = 16;

/// Hasher for the session table: reads the first eight bytes of the
/// 32-byte client key. x25519 public keys are already uniformly
/// distributed, so a keyed SipHash over all 32 bytes only adds cost on
/// every request. (A client grinding keys toward one bucket skews only
/// its own shard's chain, and the same key-generation budget would let
/// it open that many real sessions anyway.)
#[derive(Default)]
struct KeyBytesHasher(u64);

impl std::hash::Hasher for KeyBytesHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut prefix = [0u8; 8];
        let n = bytes.len().min(8);
        prefix[..n].copy_from_slice(&bytes[..n]);
        self.0 = u64::from_le_bytes(prefix);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// One client's in-enclave session: its channel plus the scratch
/// buffer decrypted queries land in. The scratch lives with the
/// session (and under its mutex, which the request path holds anyway
/// for the channel's nonce counters), so a steady-state request reuses
/// the same capacity instead of allocating a plaintext `Vec` per
/// query.
struct Session {
    channel: SecureChannel,
    query_buf: Vec<u8>,
    /// Reaper epoch at which this session was opened or last served a
    /// request. Sessions idle for more than the sweep's TTL (measured in
    /// epochs, i.e. reap sweeps) are removed — the backstop for clients
    /// that handshook and then vanished without a disconnect the front
    /// tier could attribute.
    last_used: u64,
}

type SessionMap =
    HashMap<[u8; 32], Arc<Mutex<Session>>, std::hash::BuildHasherDefault<KeyBytesHasher>>;
type SessionShard = Mutex<SessionMap>;

/// Routes a client key to its session shard. x25519 public keys are
/// close-to-uniform field elements; folding bytes from across the key
/// keeps the mapping balanced even under byte-level bias.
fn session_shard(client_pub: &[u8; 32]) -> usize {
    (client_pub[0] ^ client_pub[11] ^ client_pub[19] ^ client_pub[31]) as usize % SESSION_SHARDS
}

/// Protected application state.
pub struct EnclaveState {
    identity: StaticSecret,
    identity_pub: PublicKey,
    history: QueryHistory,
    config: XSearchConfig,
    /// Base seed for per-request RNGs, derived from the config seed at
    /// `init` (after the identity draw, preserving the seed schedule).
    rng_seed: u64,
    /// Ticket counter: each request takes one and derives a private RNG
    /// stream from it — no shared RNG lock on the hot path. For a fixed
    /// arrival order the streams (and thus Algorithm 1's positions) are
    /// exactly reproducible from the config seed.
    rng_ticket: AtomicU64,
    sessions: Vec<SessionShard>,
    /// The reaper's logical clock: advanced once per
    /// [`EnclaveState::reap_sessions`] sweep; requests stamp their
    /// session with the current value.
    session_epoch: AtomicU64,
    /// Total sessions removed by sweeps (telemetry).
    sessions_reaped: AtomicU64,
    /// Graceful-degradation level (the `set_degrade` ecall): level `n`
    /// shrinks the fake-query count to `max(1, k - n)` so an overloaded
    /// replica sheds *obfuscation work* before it sheds real queries.
    /// Level 0 is full strength.
    degrade: AtomicUsize,
    /// Requests served with a reduced k — the privacy cost of the
    /// degradation ladder, surfaced through `degrade_stats`.
    degraded_served: AtomicU64,
    /// The enclave's telemetry partition: pre-registered, numeric-only
    /// aggregate handles (see [`EnclaveScope`]). This is the *only*
    /// telemetry surface in-enclave code may touch — query strings and
    /// session identifiers cannot cross it by construction.
    scope: Option<EnclaveScope>,
}

impl std::fmt::Debug for EnclaveState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnclaveState")
            .field("history_len", &self.history.len())
            .field("k", &self.config.k)
            .finish()
    }
}

impl EnclaveState {
    /// The `init` ecall: generates the channel identity and sizes the
    /// history table against the enclave's EPC gauge.
    #[must_use]
    pub fn init(config: XSearchConfig, epc: &Arc<EpcGauge>, cost: &CostModel) -> Self {
        Self::init_instrumented(config, epc, cost, None)
    }

    /// The `init` ecall with a telemetry [`EnclaveScope`] attached. The
    /// scope is built *outside* the enclave at launch, from handles
    /// pre-registered on the host registry; handing it in here is the
    /// one and only point telemetry crosses the trust boundary.
    #[must_use]
    pub fn init_instrumented(
        config: XSearchConfig,
        epc: &Arc<EpcGauge>,
        _cost: &CostModel,
        scope: Option<EnclaveScope>,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let identity = StaticSecret::random(&mut rng);
        let identity_pub = identity.public_key();
        let rng_seed = rng.gen();
        EnclaveState {
            identity,
            identity_pub,
            history: QueryHistory::new(config.history_capacity, epc.clone()),
            config,
            rng_seed,
            rng_ticket: AtomicU64::new(0),
            sessions: (0..SESSION_SHARDS)
                .map(|_| Mutex::new(SessionMap::default()))
                .collect(),
            session_epoch: AtomicU64::new(0),
            sessions_reaped: AtomicU64::new(0),
            degrade: AtomicUsize::new(0),
            degraded_served: AtomicU64::new(0),
            scope,
        }
    }

    /// Sets the graceful-degradation level. Level `n` serves requests
    /// with `max(1, k - n)` fake queries; level 0 restores full `k`.
    pub fn set_degrade_level(&self, level: usize) {
        self.degrade.store(level, Ordering::Relaxed);
        if let Some(scope) = &self.scope {
            scope.set_degrade_level(level as u64);
        }
    }

    /// The current degradation level.
    #[must_use]
    pub fn degrade_level(&self) -> usize {
        self.degrade.load(Ordering::Relaxed)
    }

    /// How many requests were served with a reduced fake-query count.
    #[must_use]
    pub fn degraded_served(&self) -> u64 {
        self.degraded_served.load(Ordering::Relaxed)
    }

    /// The fake-query count for the current degradation level: never
    /// below 1 (a real query is never sent bare when obfuscation is
    /// configured at all), and exactly `k` at level 0.
    fn effective_k(&self) -> usize {
        let level = self.degrade.load(Ordering::Relaxed);
        if level == 0 || self.config.k == 0 {
            return self.config.k;
        }
        self.config.k.saturating_sub(level).max(1)
    }

    /// The enclave's channel public key (bound into attestation quotes).
    #[must_use]
    pub fn identity_pub(&self) -> PublicKey {
        self.identity_pub
    }

    /// The past-query table (exposed for memory experiments).
    #[must_use]
    pub fn history(&self) -> &QueryHistory {
        &self.history
    }

    /// The private RNG for one request ticket: SplitMix64-spaced streams
    /// off the enclave seed, so concurrent requests never share (or lock)
    /// generator state yet a fixed request order replays byte-identically.
    fn request_rng(&self, ticket: u64) -> StdRng {
        StdRng::seed_from_u64(
            self.rng_seed
                .wrapping_add(ticket.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }

    /// Establishes a session for `client_pub`: DH + per-direction keys.
    /// Returns the binding hash the quote must carry.
    ///
    /// # Errors
    ///
    /// [`XSearchError::Crypto`] when the client key is a low-order point.
    pub fn open_session(&self, client_pub: PublicKey) -> Result<[u8; 32], XSearchError> {
        let shared = self.identity.diffie_hellman(&client_pub)?;
        let channel =
            SecureChannel::establish(Side::Server, &shared, &client_pub, &self.identity_pub);
        self.sessions[session_shard(client_pub.as_bytes())]
            .lock()
            .insert(
                *client_pub.as_bytes(),
                Arc::new(Mutex::new(Session {
                    channel,
                    query_buf: Vec::new(),
                    last_used: self.session_epoch.load(Ordering::Relaxed),
                })),
            );
        Ok(channel_binding(&self.identity_pub, &client_pub))
    }

    /// The `close_session` ecall: removes `client_pub`'s session (the
    /// front tier calls this when the client's connection dies, so a
    /// torn peer cannot strand its enclave state). Returns whether a
    /// session existed. The channel keys drop with the entry.
    pub fn close_session(&self, client_pub: &[u8; 32]) -> bool {
        self.sessions[session_shard(client_pub)]
            .lock()
            .remove(client_pub)
            .is_some()
    }

    /// The `session_count` ecall: live sessions across every shard — an
    /// aggregate (no keys leave the enclave), safe to export.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions.iter().map(|s| s.lock().len()).sum()
    }

    /// The `reap_sessions` ecall: advances the session epoch and removes
    /// every session idle for more than `ttl` sweeps — the TTL backstop
    /// for sessions whose client vanished without a front-attributable
    /// disconnect (handshake-then-silence, half-open peers). Returns how
    /// many sessions were removed.
    ///
    /// With `ttl = n`, a session survives while it served a request
    /// within the last `n` sweeps; `ttl = 0` clears everything idle
    /// since the sweep began.
    pub fn reap_sessions(&self, ttl: u64) -> usize {
        let now = self.session_epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let mut reaped = 0;
        for shard in &self.sessions {
            let mut shard = shard.lock();
            let before = shard.len();
            // Sessions lock only briefly here; the request path never
            // holds a session lock while waiting on a shard lock, so
            // the order shard → session cannot invert.
            shard.retain(|_, s| now.saturating_sub(s.lock().last_used) <= ttl);
            reaped += before - shard.len();
        }
        self.sessions_reaped
            .fetch_add(reaped as u64, Ordering::Relaxed);
        reaped
    }

    /// Total sessions removed by reap sweeps since launch.
    #[must_use]
    pub fn sessions_reaped(&self) -> u64 {
        self.sessions_reaped.load(Ordering::Relaxed)
    }

    /// Seeds the history directly (warm-up for experiments; in production
    /// the history fills with real traffic).
    pub fn seed_history(&self, query: &str) {
        self.history.push(query);
    }

    /// The batch form of [`EnclaveState::seed_history`]: decodes a
    /// length-prefixed query batch (see [`crate::wire::encode_query_batch`])
    /// so warming a large history costs one ecall instead of one per
    /// query. Returns the number of queries seeded.
    ///
    /// # Errors
    ///
    /// [`XSearchError::Protocol`] on a malformed batch; nothing is seeded
    /// in that case.
    pub fn seed_history_batch(&self, payload: &[u8]) -> Result<usize, XSearchError> {
        let queries = decode_query_batch(payload)?;
        for q in &queries {
            self.history.push(q);
        }
        if let Some(scope) = &self.scope {
            scope.set_history_len(self.history.len() as u64);
        }
        Ok(queries.len())
    }

    /// The `request` ecall: decrypts one query from the session of
    /// `client_pub`, obfuscates it, fetches results through the ocall
    /// interface, filters them, and returns the encrypted response.
    ///
    /// `fetch` is the untrusted engine transport invoked between the
    /// `send` and `recv` ocalls: it receives the sub-queries and the
    /// per-sub-query result count.
    ///
    /// # Errors
    ///
    /// [`XSearchError::UnknownSession`] for an unestablished client,
    /// [`XSearchError::Crypto`] for tampered ciphertext,
    /// [`XSearchError::Protocol`] for a non-UTF-8 query.
    pub fn request<F>(
        &self,
        client_pub: &[u8; 32],
        ciphertext: &[u8],
        port: &OcallPort,
        fetch: F,
    ) -> Result<Vec<u8>, XSearchError>
    where
        F: FnOnce(&[Arc<str>], usize) -> Vec<SearchResult>,
    {
        let result = self.request_inner(client_pub, ciphertext, port, fetch);
        if let Some(scope) = &self.scope {
            match &result {
                Ok(_) => {
                    scope.request_served();
                    scope.set_history_len(self.history.len() as u64);
                }
                Err(_) => scope.error(),
            }
        }
        result
    }

    fn request_inner<F>(
        &self,
        client_pub: &[u8; 32],
        ciphertext: &[u8],
        port: &OcallPort,
        fetch: F,
    ) -> Result<Vec<u8>, XSearchError>
    where
        F: FnOnce(&[Arc<str>], usize) -> Vec<SearchResult>,
    {
        // Decrypt inside the enclave; only this client's shard is locked
        // for the lookup, then only this session for the crypto.
        let session = self.sessions[session_shard(client_pub)]
            .lock()
            .get(client_pub)
            .cloned()
            .ok_or(XSearchError::UnknownSession)?;
        let mut session = session.lock();
        session.last_used = self.session_epoch.load(Ordering::Relaxed);
        let Session {
            channel, query_buf, ..
        } = &mut *session;
        // The plaintext query decrypts into this session's scratch
        // buffer — no per-request plaintext allocation.
        channel.open_into(b"query", ciphertext, query_buf)?;
        let query = std::str::from_utf8(query_buf)
            .map_err(|_| XSearchError::Protocol("query is not utf-8".into()))?;

        // Obfuscate (Algorithm 1) and store the query in the history.
        // The RNG is this request's own — nothing to lock.
        let ticket = self.rng_ticket.fetch_add(1, Ordering::Relaxed);
        let mut rng = self.request_rng(ticket);
        let k = self.effective_k();
        if k < self.config.k {
            self.degraded_served.fetch_add(1, Ordering::Relaxed);
            if let Some(scope) = &self.scope {
                scope.degraded_served();
            }
        }
        let obfuscated = obfuscate(query, &self.history, k, &mut rng);

        // Fetch results via the paper's four-ocall sequence. The payload
        // crossing the boundary is the obfuscated query — exactly what an
        // untrusted observer is allowed to see.
        let results = self.fetch_via_ocalls(&obfuscated, port, fetch);

        // Filter (Algorithm 2) and strip analytics redirections.
        let mut kept = filter_results(query, &obfuscated.fakes(), results);
        strip_all(&mut kept);

        // Encrypt the response for the broker: serialize into one
        // exactly-sized buffer (tag headroom included) and seal it where
        // it lies. This — the buffer that crosses the boundary — is the
        // only allocation the sealed path performs; the old path built
        // an escape `String` per field, an encode `String`, and a sealed
        // copy on top.
        let mut response = Vec::with_capacity(encoded_len(&kept) + xsearch_crypto::aead::TAG_LEN);
        encode_results_into(&kept, &mut response);
        channel.seal_in_place(b"results", &mut response);
        Ok(response)
    }

    /// The `proxy_batch` ecall: serves every entry of a length-prefixed
    /// request batch (see [`crate::wire::encode_request_batch`]) through
    /// the same per-request path as [`EnclaveState::request`], and
    /// returns the encoded per-entry outcomes. One enclave transition
    /// carries the whole batch, amortizing the crossing the way the
    /// batched `seed` ecall amortizes history warm-up; entries fail
    /// independently (one broken session cannot poison its neighbours).
    ///
    /// `fetch` is invoked once per entry, between that entry's `send` and
    /// `recv` ocalls.
    ///
    /// # Errors
    ///
    /// [`XSearchError::Protocol`] when the batch envelope itself is
    /// malformed; per-entry failures are reported inside the encoded
    /// response instead.
    pub fn request_batch<F>(
        &self,
        payload: &[u8],
        port: &OcallPort,
        fetch: F,
    ) -> Result<Vec<u8>, XSearchError>
    where
        F: Fn(&[Arc<str>], usize) -> Vec<SearchResult>,
    {
        let requests = decode_request_batch(payload)?;
        if let Some(scope) = &self.scope {
            scope.batch_served(requests.len() as u64);
        }
        let responses: Vec<Result<Vec<u8>, XSearchError>> = requests
            .iter()
            .map(|(client_pub, ciphertext)| self.request(client_pub, ciphertext, port, &fetch))
            .collect();
        Ok(encode_response_batch(&responses))
    }

    fn fetch_via_ocalls<F>(
        &self,
        obfuscated: &ObfuscatedQuery,
        port: &OcallPort,
        fetch: F,
    ) -> Vec<SearchResult>
    where
        F: FnOnce(&[Arc<str>], usize) -> Vec<SearchResult>,
    {
        // sock_connect(host, port)
        port.ocall(b"sock_connect:engine:80", |_| b"sock:0".to_vec());
        // send(sock, buff, len) — the obfuscated query leaves the enclave.
        let wire_query = obfuscated.to_or_string();
        port.ocall(wire_query.as_bytes(), |_| Vec::new());
        // recv(sock, buff, len) — results come back (untrusted fetch runs
        // here). The boundary is charged the exact serialized size the
        // response would occupy, without building that buffer.
        let k_each = self.config.results_per_query;
        let results = port.ocall_sized(b"recv", |_| {
            let r = fetch(&obfuscated.subqueries, k_each);
            let n = encoded_len(&r);
            (r, n)
        });
        // close(sock)
        port.ocall(b"close:sock:0", |_| Vec::new());
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsearch_sgx_sim::boundary::BoundaryStats;
    use xsearch_sgx_sim::epc::EpcGauge;

    fn state(k: usize) -> EnclaveState {
        let epc = EpcGauge::with_limit(1 << 30);
        EnclaveState::init(
            XSearchConfig {
                k,
                history_capacity: 100,
                ..Default::default()
            },
            &epc,
            &CostModel::default(),
        )
    }

    fn port() -> OcallPort {
        OcallPort::new(BoundaryStats::new(), CostModel::default())
    }

    fn client_channel(state: &EnclaveState, seed: u64) -> ([u8; 32], SecureChannel) {
        let mut rng = StdRng::seed_from_u64(seed);
        let secret = StaticSecret::random(&mut rng);
        let client_pub = secret.public_key();
        state.open_session(client_pub).unwrap();
        let shared = secret.diffie_hellman(&state.identity_pub()).unwrap();
        let channel =
            SecureChannel::establish(Side::Client, &shared, &client_pub, &state.identity_pub());
        (*client_pub.as_bytes(), channel)
    }

    #[test]
    fn request_roundtrips_through_the_enclave() {
        let state = state(2);
        for q in ["warm one", "warm two", "warm three"] {
            state.seed_history(q);
        }
        let (client_id, mut channel) = client_channel(&state, 1);
        let ct = channel.seal(b"query", b"cheap flights");
        let port = port();
        let resp_ct = state
            .request(&client_id, &ct, &port, |subqueries, _k| {
                assert_eq!(subqueries.len(), 3, "k=2 → 3 sub-queries");
                Vec::new()
            })
            .unwrap();
        let resp = channel.open(b"results", &resp_ct).unwrap();
        assert!(resp.is_empty(), "no results from empty engine");
    }

    #[test]
    fn unknown_session_is_rejected() {
        let state = state(1);
        let port = port();
        let err = state.request(&[9u8; 32], b"junk", &port, |_, _| Vec::new());
        assert_eq!(err.unwrap_err(), XSearchError::UnknownSession);
    }

    #[test]
    fn tampered_ciphertext_is_rejected() {
        let state = state(1);
        let (client_id, mut channel) = client_channel(&state, 2);
        let mut ct = channel.seal(b"query", b"secret");
        ct[0] ^= 1;
        let port = port();
        let err = state.request(&client_id, &ct, &port, |_, _| Vec::new());
        assert!(matches!(err.unwrap_err(), XSearchError::Crypto(_)));
    }

    #[test]
    fn request_performs_four_ocalls() {
        let state = state(0);
        let (client_id, mut channel) = client_channel(&state, 3);
        let stats = BoundaryStats::new();
        let port = OcallPort::new(stats.clone(), CostModel::default());
        let ct = channel.seal(b"query", b"q");
        state
            .request(&client_id, &ct, &port, |_, _| Vec::new())
            .unwrap();
        assert_eq!(stats.ocalls(), 4, "sock_connect, send, recv, close");
    }

    #[test]
    fn query_lands_in_history() {
        let state = state(1);
        let (client_id, mut channel) = client_channel(&state, 4);
        assert_eq!(state.history().len(), 0);
        let ct = channel.seal(b"query", b"first query");
        let port = port();
        state
            .request(&client_id, &ct, &port, |_, _| Vec::new())
            .unwrap();
        assert_eq!(state.history().len(), 1);
    }

    #[test]
    fn two_clients_have_independent_sessions() {
        let state = state(0);
        let (id_a, mut ch_a) = client_channel(&state, 5);
        let (id_b, mut ch_b) = client_channel(&state, 6);
        let port = port();
        let ct_a = ch_a.seal(b"query", b"from a");
        let ct_b = ch_b.seal(b"query", b"from b");
        assert!(state
            .request(&id_a, &ct_a, &port, |_, _| Vec::new())
            .is_ok());
        assert!(state
            .request(&id_b, &ct_b, &port, |_, _| Vec::new())
            .is_ok());
        // Cross-session ciphertext fails.
        let ct_cross = ch_a.seal(b"query", b"cross");
        assert!(state
            .request(&id_b, &ct_cross, &port, |_, _| Vec::new())
            .is_err());
    }

    #[test]
    fn sessions_work_from_every_shard() {
        // Enough clients to populate many shards; each must stay
        // reachable — a routing bug would orphan some sessions.
        let state = state(0);
        let port = port();
        let mut shards_hit = std::collections::HashSet::new();
        for seed in 100..164 {
            let (id, mut ch) = client_channel(&state, seed);
            shards_hit.insert(session_shard(&id));
            let ct = ch.seal(b"query", b"hello");
            let resp = state.request(&id, &ct, &port, |_, _| Vec::new()).unwrap();
            assert!(ch.open(b"results", &resp).is_ok());
        }
        assert!(
            shards_hit.len() > SESSION_SHARDS / 2,
            "64 random keys should spread over shards, hit {}",
            shards_hit.len()
        );
    }

    #[test]
    fn close_session_removes_exactly_one_entry() {
        let state = state(0);
        let (id_a, mut ch_a) = client_channel(&state, 20);
        let (id_b, mut ch_b) = client_channel(&state, 21);
        assert_eq!(state.session_count(), 2);
        assert!(state.close_session(&id_a));
        assert!(!state.close_session(&id_a), "second close finds nothing");
        assert_eq!(state.session_count(), 1);
        let port = port();
        let ct = ch_a.seal(b"query", b"gone");
        assert_eq!(
            state
                .request(&id_a, &ct, &port, |_, _| Vec::new())
                .unwrap_err(),
            XSearchError::UnknownSession
        );
        // The survivor still works.
        let ct = ch_b.seal(b"query", b"alive");
        assert!(state.request(&id_b, &ct, &port, |_, _| Vec::new()).is_ok());
    }

    #[test]
    fn reaper_removes_idle_sessions_but_spares_active_ones() {
        let state = state(0);
        let (active, mut ch) = client_channel(&state, 30);
        let (_idle_a, _) = client_channel(&state, 31);
        let (_idle_b, _) = client_channel(&state, 32);
        assert_eq!(state.session_count(), 3);
        let port = port();
        // Two sweeps at ttl=1: the active session keeps stamping itself
        // into the current epoch, the idle pair ages out.
        for _ in 0..2 {
            let ct = ch.seal(b"query", b"keepalive");
            state
                .request(&active, &ct, &port, |_, _| Vec::new())
                .unwrap();
            state.reap_sessions(1);
        }
        assert_eq!(state.session_count(), 1, "idle sessions reaped");
        assert_eq!(state.sessions_reaped(), 2);
        let ct = ch.seal(b"query", b"still here");
        assert!(state
            .request(&active, &ct, &port, |_, _| Vec::new())
            .is_ok());
    }

    #[test]
    fn reap_ttl_zero_clears_everything() {
        let state = state(0);
        for seed in 40..48 {
            let _ = client_channel(&state, seed);
        }
        assert_eq!(state.session_count(), 8);
        assert_eq!(state.reap_sessions(0), 8);
        assert_eq!(state.session_count(), 0);
    }

    #[test]
    fn seed_batch_matches_individual_seeding() {
        let a = state(1);
        let b = state(1);
        let queries = ["one", "two", "three", "four"];
        for q in queries {
            a.seed_history(q);
        }
        let payload = crate::wire::encode_query_batch(queries);
        assert_eq!(b.seed_history_batch(&payload).unwrap(), 4);
        assert_eq!(a.history().snapshot(), b.history().snapshot());
        assert_eq!(a.history().memory_bytes(), b.history().memory_bytes());
    }

    #[test]
    fn malformed_seed_batch_is_rejected_whole() {
        let s = state(1);
        let mut payload = crate::wire::encode_query_batch(["ok"]);
        payload.truncate(payload.len() - 1);
        assert!(s.seed_history_batch(&payload).is_err());
        assert_eq!(s.history().len(), 0, "partial batches must not seed");
    }

    /// The RNG refactor must not change what a fixed seed produces:
    /// same config seed + same request order ⇒ identical obfuscation
    /// positions and byte-identical filtered responses.
    #[test]
    fn same_seed_replays_identical_obfuscation_and_output() {
        let run = || {
            let state = state(3);
            for q in ["warm a", "warm b", "warm c", "warm d", "warm e"] {
                state.seed_history(q);
            }
            let (id, mut ch) = client_channel(&state, 42);
            let port = port();
            let mut seen: Vec<Vec<String>> = Vec::new();
            let mut responses: Vec<Vec<u8>> = Vec::new();
            for q in ["alpha query", "beta query", "gamma query"] {
                let ct = ch.seal(b"query", q.as_bytes());
                let resp = state
                    .request(&id, &ct, &port, |subqueries, _| {
                        seen.push(subqueries.iter().map(|s| String::from(&**s)).collect());
                        Vec::new()
                    })
                    .unwrap();
                responses.push(ch.open(b"results", &resp).unwrap());
            }
            (seen, responses)
        };
        let (seen_a, resp_a) = run();
        let (seen_b, resp_b) = run();
        assert_eq!(seen_a, seen_b, "sub-query order must replay exactly");
        assert_eq!(resp_a, resp_b, "filtered output must replay exactly");
    }

    #[test]
    fn degradation_ladder_shrinks_k_with_a_floor_of_one() {
        let state = state(3);
        for i in 0..10 {
            state.seed_history(&format!("warm {i}"));
        }
        let (id, mut ch) = client_channel(&state, 77);
        let port = port();
        let fanout = |state: &EnclaveState, ch: &mut SecureChannel| {
            let ct = ch.seal(b"query", b"probe");
            let mut seen = 0;
            let resp = state
                .request(&id, &ct, &port, |subqueries, _| {
                    seen = subqueries.len();
                    Vec::new()
                })
                .unwrap();
            ch.open(b"results", &resp).unwrap();
            seen
        };
        assert_eq!(fanout(&state, &mut ch), 4, "level 0 serves full k=3");
        state.set_degrade_level(2);
        assert_eq!(fanout(&state, &mut ch), 2, "level 2 shrinks to k=1");
        state.set_degrade_level(9);
        assert_eq!(fanout(&state, &mut ch), 2, "k never degrades below 1");
        state.set_degrade_level(0);
        assert_eq!(fanout(&state, &mut ch), 4, "level 0 restores full k");
        assert_eq!(
            state.degraded_served(),
            2,
            "exactly the reduced-k requests are counted"
        );
    }

    #[test]
    fn concurrent_requests_use_disjoint_rng_streams() {
        let state = state(3);
        for i in 0..50 {
            state.seed_history(&format!("warm {i}"));
        }
        let t0 = state.rng_ticket.load(Ordering::Relaxed);
        let (id, mut ch) = client_channel(&state, 9);
        let port = port();
        for q in ["q1", "q2"] {
            let ct = ch.seal(b"query", q.as_bytes());
            state.request(&id, &ct, &port, |_, _| Vec::new()).unwrap();
        }
        assert_eq!(
            state.rng_ticket.load(Ordering::Relaxed) - t0,
            2,
            "each request takes exactly one ticket"
        );
    }
}
