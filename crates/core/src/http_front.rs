//! The broker's local HTTP front-end.
//!
//! §4.2: "When the user issues a Web search query, her Web client first
//! connects to the local broker" — and footnote 3 notes X-Search works
//! with stock HTTP clients like wget or curl. This module is that glue: a
//! plain `GET /search?q=...` from the browser is translated into one
//! encrypted tunnel exchange, and the filtered results come back as an
//! HTML-free plain-text page (one result per line, like the wire format).

use crate::broker::Broker;
use crate::error::XSearchError;
use crate::proxy::XSearchProxy;
use crate::wire::WireResult;
use xsearch_net_sim::http::{HttpError, Partial, Request, Response};
use xsearch_net_sim::stream::{ByteStream, StreamError};

/// Serves one browser HTTP request through the attested tunnel.
///
/// Supported routes:
/// * `GET /search?q=<query>` — private search; 200 with one result per
///   line (`url<TAB>title<TAB>description`);
/// * `GET /health` — 200 when the tunnel is established;
/// * `GET /metrics` — Prometheus-style text exposition of the proxy's
///   metrics registry (enclave aggregates + host collectors);
/// * `GET /metrics.json` — the same snapshot as a JSON document;
/// * anything else — 404.
///
/// Errors from the tunnel map onto 502 (the proxy misbehaved) so the
/// browser never hangs.
pub fn serve(broker: &mut Broker, proxy: &XSearchProxy, raw_request: &[u8]) -> Vec<u8> {
    let request = match Request::decode(raw_request) {
        Ok(r) => r,
        Err(e) => return parse_reject(&e).encode(),
    };
    route(broker, proxy, &request).encode()
}

/// The response for an unparseable request: 431 when the header section
/// blew the [`xsearch_net_sim::http::MAX_HEAD_BYTES`] ceiling (the
/// memory-DoS guard), 400 for every other malformation.
fn parse_reject(e: &HttpError) -> Response {
    let (status, reason) = match e {
        HttpError::HeadersTooLarge => (431, "Request Header Fields Too Large"),
        _ => (400, "Bad Request"),
    };
    Response::status(status, reason)
        .with_header("content-type", "text/plain")
        .with_body(format!("malformed request: {e}\n").into_bytes())
}

fn route(broker: &mut Broker, proxy: &XSearchProxy, request: &Request) -> Response {
    let path = request.target.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/health") => Response::ok(b"ok\n".to_vec()),
        ("GET", "/metrics") => {
            Response::ok(proxy.registry().snapshot().render_prometheus().into_bytes())
                .with_header("content-type", "text/plain; version=0.0.4")
        }
        ("GET", "/metrics.json") => {
            Response::ok(proxy.registry().snapshot().render_json().into_bytes())
                .with_header("content-type", "application/json")
        }
        ("GET", "/search") => match request.query_param("q") {
            Some(query) if !query.trim().is_empty() => match broker.search(proxy, &query) {
                Ok(results) => {
                    Response::ok(render(&results)).with_header("content-type", "text/plain")
                }
                Err(e) => proxy_error(&e),
            },
            _ => Response::status(400, "Bad Request"),
        },
        ("GET", _) => Response::status(404, "Not Found"),
        _ => Response::status(405, "Method Not Allowed"),
    }
}

fn render(results: &[WireResult]) -> Vec<u8> {
    let mut out = String::new();
    for r in results {
        out.push_str(&r.url);
        out.push('\t');
        out.push_str(&r.title);
        out.push('\t');
        out.push_str(&r.description);
        out.push('\n');
    }
    out.into_bytes()
}

fn proxy_error(e: &XSearchError) -> Response {
    Response::status(502, "Bad Gateway")
        .with_header("content-type", "text/plain")
        .with_body(format!("tunnel failure: {e}\n").into_bytes())
}

/// Whether an [`HttpSession`] connection is still alive after a pump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Keep polling: the connection is open (possibly with a partially
    /// flushed response).
    Open,
    /// The connection is done — EOF seen and all responses flushed, or
    /// the stream died. Drop the session.
    Closed,
}

/// An incremental HTTP/1.1 session over a [`ByteStream`].
///
/// The blocking [`serve`] assumes a whole request arrives in one frame;
/// this is its event-driven sibling for reactor-polled byte streams:
/// requests may arrive a byte at a time (and pipelined), responses
/// tolerate partial writes under peer backpressure. Call
/// [`pump`](Self::pump) whenever the stream becomes readable or
/// writable.
#[derive(Default)]
pub struct HttpSession {
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    flushed: usize,
    eof: bool,
    /// A malformed request poisons the byte stream (framing is lost):
    /// answer 400, flush, then close.
    close_after_flush: bool,
}

impl HttpSession {
    /// A fresh session with empty buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the session as far as the stream allows: drains readable
    /// bytes, serves every complete request through the tunnel, and
    /// flushes response bytes until the peer pushes back.
    pub fn pump(
        &mut self,
        stream: &ByteStream,
        broker: &mut Broker,
        proxy: &XSearchProxy,
    ) -> SessionStatus {
        self.fill(stream);
        self.parse_and_serve(broker, proxy);
        self.flush(stream);
        if self.outbuf.len() == self.flushed && (self.eof || self.close_after_flush) {
            stream.close();
            SessionStatus::Closed
        } else {
            SessionStatus::Open
        }
    }

    /// True when unflushed response bytes are waiting on writability.
    #[must_use]
    pub fn wants_write(&self) -> bool {
        self.flushed < self.outbuf.len()
    }

    /// Accounted heap footprint of the session's buffers.
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        self.inbuf.capacity() + self.outbuf.capacity()
    }

    fn fill(&mut self, stream: &ByteStream) {
        loop {
            let old = self.inbuf.len();
            self.inbuf.resize(old + 4096, 0);
            match stream.read(&mut self.inbuf[old..]) {
                Ok(0) => {
                    self.inbuf.truncate(old);
                    self.eof = true;
                    return;
                }
                Ok(n) => self.inbuf.truncate(old + n),
                Err(_) => {
                    self.inbuf.truncate(old);
                    return;
                }
            }
        }
    }

    fn parse_and_serve(&mut self, broker: &mut Broker, proxy: &XSearchProxy) {
        while !self.inbuf.is_empty() && !self.close_after_flush {
            match Request::decode_partial(&self.inbuf) {
                Ok(Partial::Complete { value, consumed }) => {
                    self.inbuf.drain(..consumed);
                    self.outbuf
                        .extend_from_slice(&route(broker, proxy, &value).encode());
                }
                Ok(Partial::NeedMore(_)) => break,
                Err(e) => {
                    self.outbuf.extend_from_slice(&parse_reject(&e).encode());
                    self.close_after_flush = true;
                }
            }
        }
        // Bytes that can never complete a request (EOF mid-message) are
        // dropped on close; EOF handling above tears the session down.
    }

    fn flush(&mut self, stream: &ByteStream) {
        while self.flushed < self.outbuf.len() {
            match stream.write(&self.outbuf[self.flushed..]) {
                Ok(n) => self.flushed += n,
                Err(StreamError::WouldBlock) => return,
                Err(StreamError::Closed) => {
                    // The peer is gone; pending output is undeliverable.
                    self.outbuf.clear();
                    self.flushed = 0;
                    self.eof = true;
                    return;
                }
            }
        }
        if !self.outbuf.is_empty() {
            self.outbuf.clear();
            self.flushed = 0;
        }
    }
}

/// Small extension trait keeping `Response` ergonomic here without
/// widening the net-sim API.
trait WithBody {
    fn with_body(self, body: Vec<u8>) -> Self;
}

impl WithBody for Response {
    fn with_body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XSearchConfig;
    use std::sync::Arc;
    use xsearch_engine::corpus::CorpusConfig;
    use xsearch_engine::engine::SearchEngine;
    use xsearch_net_sim::http::percent_encode;
    use xsearch_sgx_sim::attestation::AttestationService;

    fn setup() -> (XSearchProxy, Broker) {
        let ias = AttestationService::from_seed(8);
        let engine = Arc::new(SearchEngine::build(&CorpusConfig {
            docs_per_topic: 30,
            ..Default::default()
        }));
        let proxy = XSearchProxy::launch(
            XSearchConfig {
                k: 2,
                ..Default::default()
            },
            engine,
            &ias,
        );
        proxy.seed_history(["alpha beta", "gamma delta", "epsilon zeta"]);
        let broker = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 1).unwrap();
        (proxy, broker)
    }

    fn get(broker: &mut Broker, proxy: &XSearchProxy, target: &str) -> Response {
        let raw = Request::get(target).encode();
        Response::decode(&serve(broker, proxy, &raw)).unwrap()
    }

    #[test]
    fn search_route_returns_results() {
        let (proxy, mut broker) = setup();
        let target = format!("/search?q={}", percent_encode("flights hotel vacation"));
        let resp = get(&mut broker, &proxy, &target);
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(!body.is_empty());
        assert!(body.lines().all(|l| l.split('\t').count() == 3));
    }

    #[test]
    fn health_route_answers() {
        let (proxy, mut broker) = setup();
        assert_eq!(get(&mut broker, &proxy, "/health").status, 200);
    }

    #[test]
    fn metrics_route_exposes_prometheus_text() {
        let (proxy, mut broker) = setup();
        let target = format!("/search?q={}", percent_encode("flights hotel"));
        assert_eq!(get(&mut broker, &proxy, &target).status, 200);
        let resp = get(&mut broker, &proxy, "/metrics");
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("# TYPE xsearch_enclave_requests_total counter"));
        assert!(body.contains("xsearch_enclave_requests_total 1"));
        assert!(body.contains("xsearch_boundary_ecalls"));
        // The query itself must never appear in the exposition.
        assert!(!body.contains("flights"));
    }

    #[test]
    fn metrics_json_route_exposes_snapshot() {
        let (proxy, mut broker) = setup();
        let resp = get(&mut broker, &proxy, "/metrics.json");
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"counters\""));
        assert!(body.contains("xsearch_enclave_requests_total"));
    }

    #[test]
    fn missing_query_is_bad_request() {
        let (proxy, mut broker) = setup();
        assert_eq!(get(&mut broker, &proxy, "/search").status, 400);
        assert_eq!(get(&mut broker, &proxy, "/search?q=").status, 400);
    }

    #[test]
    fn unknown_route_is_not_found() {
        let (proxy, mut broker) = setup();
        assert_eq!(get(&mut broker, &proxy, "/favicon.ico").status, 404);
    }

    #[test]
    fn non_get_is_rejected() {
        let (proxy, mut broker) = setup();
        let raw = Request::post("/search?q=x", Vec::new()).encode();
        let resp = Response::decode(&serve(&mut broker, &proxy, &raw)).unwrap();
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn malformed_bytes_get_400_not_panic() {
        let (proxy, mut broker) = setup();
        let resp = Response::decode(&serve(&mut broker, &proxy, b"\xff\xfe garbage")).unwrap();
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn oversized_headers_get_431() {
        use xsearch_net_sim::http::MAX_HEAD_BYTES;
        let (proxy, mut broker) = setup();
        let mut raw = b"GET /health HTTP/1.1\r\nx-filler: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES));
        raw.extend_from_slice(b"\r\n\r\n");
        let resp = Response::decode(&serve(&mut broker, &proxy, &raw)).unwrap();
        assert_eq!(resp.status, 431);
    }

    #[test]
    fn streaming_session_rejects_header_flood_with_431_and_closes() {
        use xsearch_net_sim::http::MAX_HEAD_BYTES;
        use xsearch_net_sim::stream::stream_pair;
        let (proxy, mut broker) = setup();
        let (client, server) = stream_pair(4096);
        let mut session = HttpSession::new();
        // A slowloris peer: valid start line, then headers forever —
        // the blank line never comes.
        client.write(b"GET / HTTP/1.1\r\n").unwrap();
        let filler = [b'a'; 512];
        let mut status = SessionStatus::Open;
        let mut reply = Vec::new();
        let mut buf = [0u8; 4096];
        for _ in 0..10 * (MAX_HEAD_BYTES / filler.len()) {
            let _ = client.write(b"x: ");
            let _ = client.write(&filler);
            let _ = client.write(b"\r\n");
            status = session.pump(&server, &mut broker, &proxy);
            if let Ok(n) = client.read(&mut buf) {
                reply.extend_from_slice(&buf[..n]);
            }
            if status == SessionStatus::Closed {
                break;
            }
        }
        assert_eq!(status, SessionStatus::Closed);
        assert!(
            String::from_utf8_lossy(&reply).starts_with("HTTP/1.1 431"),
            "got: {}",
            String::from_utf8_lossy(&reply[..reply.len().min(64)])
        );
        // The buffered head never grew far past the ceiling.
        assert!(session.mem_bytes() < 4 * MAX_HEAD_BYTES);
    }

    #[test]
    fn plus_encoded_spaces_decode() {
        let (proxy, mut broker) = setup();
        let resp = get(&mut broker, &proxy, "/search?q=cheap+flights");
        assert_eq!(resp.status, 200);
        // The decoded form — not the wire form — reached the enclave.
        let window = proxy.history_snapshot();
        assert!(window.contains(&"cheap flights".to_owned()));
        assert!(!window.iter().any(|q| q.contains('+')));
    }

    #[test]
    fn percent20_encoded_spaces_decode() {
        let (proxy, mut broker) = setup();
        let resp = get(&mut broker, &proxy, "/search?q=cheap%20flights%20rome");
        assert_eq!(resp.status, 200);
        let window = proxy.history_snapshot();
        assert!(window.contains(&"cheap flights rome".to_owned()));
        assert!(!window.iter().any(|q| q.contains('%')));
    }

    #[test]
    fn tunnel_failure_maps_to_502() {
        // The broker is attested to proxy A; pointing the front-end at a
        // proxy that never saw its handshake makes the tunnel fail
        // (unknown session), which must surface as 502, not a hang or a
        // panic.
        let (proxy_a, mut broker) = setup();
        let ias = AttestationService::from_seed(8);
        let proxy_b = XSearchProxy::launch(
            crate::config::XSearchConfig {
                k: 2,
                seed: 4242, // distinct enclave identity, no sessions
                ..Default::default()
            },
            proxy_a.engine().clone(),
            &ias,
        );
        let raw = Request::get("/search?q=flights").encode();
        let resp = Response::decode(&serve(&mut broker, &proxy_b, &raw)).unwrap();
        assert_eq!(resp.status, 502);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("tunnel failure"), "body: {body}");
    }

    #[test]
    fn streaming_session_serves_byte_at_a_time() {
        use xsearch_net_sim::stream::stream_pair;
        let (proxy, mut broker) = setup();
        let (client, server) = stream_pair(4096);
        let mut session = HttpSession::new();
        let target = format!("/search?q={}", percent_encode("flights hotel vacation"));
        let wire = Request::get(&target).encode();
        for byte in &wire {
            client.write(std::slice::from_ref(byte)).unwrap();
            assert_eq!(
                session.pump(&server, &mut broker, &proxy),
                SessionStatus::Open
            );
        }
        // The response can exceed the ring: drain and re-pump until the
        // session has flushed everything.
        let mut reply = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            if let Ok(n) = client.read(&mut buf) {
                reply.extend_from_slice(&buf[..n]);
            }
            if !session.wants_write() {
                break;
            }
            session.pump(&server, &mut broker, &proxy);
        }
        let resp = Response::decode(&reply).unwrap();
        assert_eq!(resp.status, 200);
        assert!(!resp.body.is_empty());
    }

    #[test]
    fn streaming_session_handles_pipelined_requests() {
        use xsearch_net_sim::stream::stream_pair;
        let (proxy, mut broker) = setup();
        let (client, server) = stream_pair(1 << 16);
        let mut session = HttpSession::new();
        let mut wire = Request::get("/health").encode();
        wire.extend_from_slice(&Request::get("/health").encode());
        client.write(&wire).unwrap();
        session.pump(&server, &mut broker, &proxy);
        let mut reply = vec![0u8; 65536];
        let n = client.read(&mut reply).unwrap();
        let text = String::from_utf8_lossy(&reply[..n]);
        assert_eq!(text.matches("HTTP/1.1 200").count(), 2, "{text}");
    }

    #[test]
    fn streaming_session_survives_peer_backpressure() {
        use xsearch_net_sim::stream::stream_pair;
        let (proxy, mut broker) = setup();
        // 8-byte rings: the response flushes across many pump calls.
        let (client, server) = stream_pair(8);
        let mut session = HttpSession::new();
        let wire = Request::get("/health").encode();
        let mut sent = 0;
        let mut reply = Vec::new();
        let mut buf = [0u8; 8];
        for _ in 0..10_000 {
            if sent < wire.len() {
                if let Ok(n) = client.write(&wire[sent..]) {
                    sent += n;
                }
            }
            session.pump(&server, &mut broker, &proxy);
            if let Ok(n) = client.read(&mut buf) {
                reply.extend_from_slice(&buf[..n]);
            }
            if !session.wants_write() && sent == wire.len() && !reply.is_empty() {
                break;
            }
        }
        let resp = Response::decode(&reply).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok\n");
    }

    #[test]
    fn streaming_session_closes_on_malformed_request() {
        use xsearch_net_sim::stream::stream_pair;
        let (proxy, mut broker) = setup();
        let (client, server) = stream_pair(4096);
        let mut session = HttpSession::new();
        client.write(b"GARBAGE\r\n\r\n").unwrap();
        // Possibly several pumps: 400 is flushed, then the session closes.
        let mut status = SessionStatus::Open;
        for _ in 0..4 {
            status = session.pump(&server, &mut broker, &proxy);
        }
        assert_eq!(status, SessionStatus::Closed);
        let mut reply = vec![0u8; 4096];
        let n = client.read(&mut reply).unwrap();
        assert!(String::from_utf8_lossy(&reply[..n]).starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn streaming_session_closes_on_eof() {
        use xsearch_net_sim::stream::stream_pair;
        let (proxy, mut broker) = setup();
        let (client, server) = stream_pair(4096);
        let mut session = HttpSession::new();
        drop(client);
        assert_eq!(
            session.pump(&server, &mut broker, &proxy),
            SessionStatus::Closed
        );
    }

    #[test]
    fn status_paths_are_covered() {
        // One pass over every error route the front-end can produce.
        let (proxy, mut broker) = setup();
        assert_eq!(get(&mut broker, &proxy, "/search").status, 400);
        assert_eq!(get(&mut broker, &proxy, "/search?q=++").status, 400);
        assert_eq!(get(&mut broker, &proxy, "/nope").status, 404);
        let raw = Request::post("/search?q=x", Vec::new()).encode();
        assert_eq!(
            Response::decode(&serve(&mut broker, &proxy, &raw))
                .unwrap()
                .status,
            405
        );
    }
}
