//! Analytics-redirection stripping.
//!
//! §4.1: results "are tampered by the proxy to remove any URL redirection
//! used for analytics". Engines wrap result URLs in click-tracking
//! redirectors (`http://tracker/click?u=<real-url>&session=...`); the
//! proxy unwraps them so the search engine cannot correlate clicks either.

use xsearch_engine::engine::SearchResult;
use xsearch_net_sim::http::percent_decode;

/// Query-string keys that commonly carry the redirection target
/// (matched case-insensitively: trackers emit `u=` and `U=` alike).
const TARGET_KEYS: &[&str] = &["u", "url", "q", "target", "dest"];

/// Path segments that mark a URL as a click-tracking redirector. A
/// target-shaped parameter alone is **not** enough to unwrap: a
/// legitimate result like `https://site.com/share?url=https%3A%2F%2F…`
/// carries a URL-valued parameter without being a redirection, and
/// rewriting it would hand the client a different page than the engine
/// ranked.
const REDIRECT_PATH_SEGMENTS: &[&str] = &[
    "click", "aclick", "clck", "redirect", "redir", "r", "rd", "go", "out", "track",
];

/// Whether `url` looks like a redirector endpoint: either its final
/// non-empty path segment (`/r?u=`, `/v2/click?u=`, `/click/?u=`) or its
/// leading host label (`out.reddit.com/?url=`) is a known redirect
/// handler name. Only the *endpoint* segment is considered — a short
/// segment inside a path is routinely a content namespace (`/r/rust?q=…`,
/// `/go/tutorial?dest=…`) whose query parameters must not be unwrapped.
fn has_redirector_path(url: &str) -> bool {
    let is_redirector = |segment: &str| {
        REDIRECT_PATH_SEGMENTS
            .iter()
            .any(|s| segment.eq_ignore_ascii_case(s))
    };
    let after_scheme = url.split_once("://").map_or(url, |(_, rest)| rest);
    let before_query = after_scheme.split('?').next().unwrap_or(after_scheme);
    let (host, path) = before_query
        .split_once('/')
        .map_or((before_query, ""), |(h, p)| (h, p));
    match path.split('/').rev().find(|segment| !segment.is_empty()) {
        // A URL with a real path is judged by its endpoint alone — a
        // content page on a redirector-labelled host (go.dev/blog/why)
        // must not be rewritten.
        Some(endpoint) => is_redirector(endpoint),
        // Path-less trackers live on a dedicated redirector subdomain:
        // out.example.com/?url=…, r.example.net/?u=….
        None => host.split('.').next().is_some_and(is_redirector),
    }
}

/// If `url` is an analytics redirector, returns the inner target URL;
/// otherwise returns the input unchanged. Unwrapping requires **both** a
/// redirector-shaped path (`/click`, `/redirect`, `/r`, …) and a
/// target-keyed parameter decoding to an http(s) URL — see
/// [`REDIRECT_PATH_SEGMENTS`] for why the parameter alone is not enough.
///
/// # Example
///
/// ```
/// use xsearch_core::redirect::strip_redirect;
/// let wrapped = "http://redirect.tracker.com/click?u=http%3A%2F%2Freal.com%2Fpage&session=1";
/// assert_eq!(strip_redirect(wrapped), "http://real.com/page");
/// assert_eq!(strip_redirect("http://plain.com/x"), "http://plain.com/x");
/// // A URL-valued parameter on a non-redirector page is left alone.
/// let share = "https://site.com/share?url=https%3A%2F%2Fother.com";
/// assert_eq!(strip_redirect(share), share);
/// ```
#[must_use]
pub fn strip_redirect(url: &str) -> String {
    let Some((_, query)) = url.split_once('?') else {
        return url.to_owned();
    };
    if !has_redirector_path(url) {
        return url.to_owned();
    }
    for pair in query.split('&') {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if TARGET_KEYS.iter().any(|k| key.eq_ignore_ascii_case(k)) {
            let decoded = percent_decode(value);
            if decoded.starts_with("http://") || decoded.starts_with("https://") {
                // Recurse: trackers sometimes nest.
                return strip_redirect(&decoded);
            }
        }
    }
    url.to_owned()
}

/// Strips redirections from every result in place.
pub fn strip_all(results: &mut [SearchResult]) {
    for r in results {
        r.url = strip_redirect(&r.url);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use xsearch_engine::document::DocId;

    #[test]
    fn plain_urls_pass_through() {
        for u in [
            "http://a.com",
            "https://b.org/path",
            "http://c.net/p?page=2",
        ] {
            assert_eq!(strip_redirect(u), u);
        }
    }

    #[test]
    fn unwraps_single_level() {
        let w = "http://t.co/r?url=https%3A%2F%2Fnews.site%2Farticle";
        assert_eq!(strip_redirect(w), "https://news.site/article");
    }

    #[test]
    fn unwraps_nested_redirects() {
        let inner = "http://final.com/x";
        let level1 = format!(
            "http://mid.com/r?u={}",
            xsearch_net_sim::http::percent_encode(inner)
        );
        let level2 = format!(
            "http://outer.com/r?u={}",
            xsearch_net_sim::http::percent_encode(&level1)
        );
        assert_eq!(strip_redirect(&level2), inner);
    }

    #[test]
    fn non_url_params_do_not_trigger() {
        let u = "http://search.com/results?q=paris+hotels";
        assert_eq!(strip_redirect(u), u, "q is a search term, not a URL");
    }

    #[test]
    fn url_valued_params_on_non_redirector_pages_pass_through() {
        // Regression: these are legitimate result URLs that *carry* a
        // URL-valued parameter; rewriting them serves the wrong page.
        for u in [
            "https://site.com/share?url=https%3A%2F%2Fother.com",
            "https://news.org/article?q=https%3A%2F%2Fquoted.example",
            "http://wiki.net/page?target=http%3A%2F%2Fcited.example&rev=7",
        ] {
            assert_eq!(strip_redirect(u), u);
        }
    }

    #[test]
    fn uppercase_target_keys_are_unwrapped() {
        // Regression: `U=` trackers used to slip through the
        // case-sensitive key match.
        let w = "http://t.co/r?U=https%3A%2F%2Fnews.site%2Farticle";
        assert_eq!(strip_redirect(w), "https://news.site/article");
        let w2 = "http://ads.example/Click?URL=http%3A%2F%2Freal.com";
        assert_eq!(strip_redirect(w2), "http://real.com");
    }

    #[test]
    fn redirector_path_is_required_even_for_u_keys() {
        let u = "https://profile.example/user?u=https%3A%2F%2Fhomepage.example";
        assert_eq!(strip_redirect(u), u);
    }

    #[test]
    fn nested_redirector_endpoints_still_match() {
        let w = "http://tracker.com/v2/click?u=http%3A%2F%2Freal.com";
        assert_eq!(strip_redirect(w), "http://real.com");
    }

    #[test]
    fn trailing_slash_and_host_label_redirectors_still_unwrap() {
        // Regressions from the endpoint gate's first draft: a handler
        // with a trailing slash, and path-less redirector subdomains.
        for (wrapped, inner) in [
            (
                "http://ads.example/click/?u=http%3A%2F%2Freal.com",
                "http://real.com",
            ),
            (
                "https://out.reddit.example/?url=https%3A%2F%2Freal.com",
                "https://real.com",
            ),
            (
                "https://r.example.net/?u=https%3A%2F%2Freal.com",
                "https://real.com",
            ),
        ] {
            assert_eq!(strip_redirect(wrapped), inner);
        }
        // A content page on a redirector-labelled host is judged by its
        // path endpoint, not the host: it must stay put.
        for u in [
            "https://go.example/blog/why?dest=https%3A%2F%2Fspec.example",
            "https://r.example.net/articles/1?u=https%3A%2F%2Fcited.example",
        ] {
            assert_eq!(strip_redirect(u), u);
        }
        // ...while an ordinary host with a root-path URL param stays put.
        let share = "https://site.example/?url=https%3A%2F%2Fother.com";
        assert_eq!(strip_redirect(share), share);
    }

    #[test]
    fn redirector_named_namespaces_are_not_endpoints() {
        // `r`/`go` as an *interior* segment is a content namespace, not
        // a redirect handler — its URL-valued parameters stay put.
        for u in [
            "https://reddit.example/r/rust?q=https%3A%2F%2Fdocs.example",
            "https://lang.example/go/tutorial?dest=https%3A%2F%2Fspec.example",
        ] {
            assert_eq!(strip_redirect(u), u);
        }
    }

    #[test]
    fn strip_all_rewrites_results() {
        let mut results = vec![SearchResult {
            doc: DocId(0),
            url: "http://redirect.tracker.com/click?u=http%3A%2F%2Freal.com&session=42".into(),
            title: String::new(),
            description: String::new(),
            score: 0.0,
        }];
        strip_all(&mut results);
        assert_eq!(results[0].url, "http://real.com");
    }

    proptest! {
        #[test]
        fn stripping_never_panics(url in "[ -~]{0,80}") {
            let _ = strip_redirect(&url);
        }

        #[test]
        fn stripping_is_idempotent(host in "[a-z]{3,10}", path in "[a-z]{0,10}") {
            let inner = format!("http://{host}.com/{path}");
            let wrapped = format!("http://t.com/r?u={}", xsearch_net_sim::http::percent_encode(&inner));
            let once = strip_redirect(&wrapped);
            prop_assert_eq!(strip_redirect(&once), once.clone());
        }
    }
}
