//! Analytics-redirection stripping.
//!
//! §4.1: results "are tampered by the proxy to remove any URL redirection
//! used for analytics". Engines wrap result URLs in click-tracking
//! redirectors (`http://tracker/click?u=<real-url>&session=...`); the
//! proxy unwraps them so the search engine cannot correlate clicks either.

use xsearch_engine::engine::SearchResult;
use xsearch_net_sim::http::percent_decode;

/// Query-string keys that commonly carry the redirection target.
const TARGET_KEYS: &[&str] = &["u", "url", "q", "target", "dest"];

/// If `url` is an analytics redirector, returns the inner target URL;
/// otherwise returns the input unchanged.
///
/// # Example
///
/// ```
/// use xsearch_core::redirect::strip_redirect;
/// let wrapped = "http://redirect.tracker.com/click?u=http%3A%2F%2Freal.com%2Fpage&session=1";
/// assert_eq!(strip_redirect(wrapped), "http://real.com/page");
/// assert_eq!(strip_redirect("http://plain.com/x"), "http://plain.com/x");
/// ```
#[must_use]
pub fn strip_redirect(url: &str) -> String {
    let Some((_, query)) = url.split_once('?') else {
        return url.to_owned();
    };
    for pair in query.split('&') {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if TARGET_KEYS.contains(&key) {
            let decoded = percent_decode(value);
            if decoded.starts_with("http://") || decoded.starts_with("https://") {
                // Recurse: trackers sometimes nest.
                return strip_redirect(&decoded);
            }
        }
    }
    url.to_owned()
}

/// Strips redirections from every result in place.
pub fn strip_all(results: &mut [SearchResult]) {
    for r in results {
        r.url = strip_redirect(&r.url);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use xsearch_engine::document::DocId;

    #[test]
    fn plain_urls_pass_through() {
        for u in [
            "http://a.com",
            "https://b.org/path",
            "http://c.net/p?page=2",
        ] {
            assert_eq!(strip_redirect(u), u);
        }
    }

    #[test]
    fn unwraps_single_level() {
        let w = "http://t.co/r?url=https%3A%2F%2Fnews.site%2Farticle";
        assert_eq!(strip_redirect(w), "https://news.site/article");
    }

    #[test]
    fn unwraps_nested_redirects() {
        let inner = "http://final.com/x";
        let level1 = format!(
            "http://mid.com/r?u={}",
            xsearch_net_sim::http::percent_encode(inner)
        );
        let level2 = format!(
            "http://outer.com/r?u={}",
            xsearch_net_sim::http::percent_encode(&level1)
        );
        assert_eq!(strip_redirect(&level2), inner);
    }

    #[test]
    fn non_url_params_do_not_trigger() {
        let u = "http://search.com/results?q=paris+hotels";
        assert_eq!(strip_redirect(u), u, "q is a search term, not a URL");
    }

    #[test]
    fn strip_all_rewrites_results() {
        let mut results = vec![SearchResult {
            doc: DocId(0),
            url: "http://redirect.tracker.com/click?u=http%3A%2F%2Freal.com&session=42".into(),
            title: String::new(),
            description: String::new(),
            score: 0.0,
        }];
        strip_all(&mut results);
        assert_eq!(results[0].url, "http://real.com");
    }

    proptest! {
        #[test]
        fn stripping_never_panics(url in "[ -~]{0,80}") {
            let _ = strip_redirect(&url);
        }

        #[test]
        fn stripping_is_idempotent(host in "[a-z]{3,10}", path in "[a-z]{0,10}") {
            let inner = format!("http://{host}.com/{path}");
            let wrapped = format!("http://t.com/r?u={}", xsearch_net_sim::http::percent_encode(&inner));
            let once = strip_redirect(&wrapped);
            prop_assert_eq!(strip_redirect(&once), once.clone());
        }
    }
}
