//! **X-Search**: the private web search proxy of Ben Mokhtar et al.
//! (Middleware 2017), reproduced in Rust.
//!
//! A user never contacts the search engine directly. Her local
//! [`broker`] attests an SGX [`enclave_app`] running on an untrusted cloud
//! node and tunnels queries to it over an encrypted [`session`]; inside
//! the enclave the proxy obfuscates each query by OR-ing it with `k`
//! random *real past queries* from a bounded [`history`] table
//! (Algorithm 1 → [`obfuscate`]), forwards the obfuscated query to the
//! engine, then [`filter`]s the response (Algorithm 2) down to the results
//! that belong to the original query — after stripping analytics
//! [`redirect`]ions — and returns them encrypted.
//!
//! # Quickstart
//!
//! ```
//! use xsearch_core::config::XSearchConfig;
//! use xsearch_core::proxy::XSearchProxy;
//! use xsearch_core::broker::Broker;
//! use xsearch_engine::{corpus::CorpusConfig, engine::SearchEngine};
//! use xsearch_sgx_sim::attestation::AttestationService;
//! use std::sync::Arc;
//!
//! // Cloud side: an attested proxy in front of the engine.
//! let engine = Arc::new(SearchEngine::build(&CorpusConfig { docs_per_topic: 20, ..Default::default() }));
//! let ias = AttestationService::from_seed(7);
//! let proxy = XSearchProxy::launch(XSearchConfig { k: 2, ..Default::default() }, engine, &ias);
//!
//! // Client side: broker attests the proxy, then searches privately.
//! let mut broker = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 99).unwrap();
//! proxy.seed_history(["cheap flights paris", "diabetes symptoms"]);
//! let results = broker.search(&proxy, "cheap flights").unwrap();
//! assert!(!results.is_empty());
//! ```

#![deny(missing_docs)]

pub mod broker;
pub mod config;
pub mod enclave_app;
pub mod error;
pub mod filter;
pub mod history;
pub mod http_front;
pub mod obfuscate;
pub mod persistence;
pub mod proxy;
pub mod redirect;
pub mod session;
pub mod wire;

pub use broker::Broker;
pub use config::XSearchConfig;
pub use error::XSearchError;
pub use history::QueryHistory;
pub use obfuscate::ObfuscatedQuery;
pub use proxy::XSearchProxy;
