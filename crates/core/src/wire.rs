//! Wire encoding of result lists for the encrypted tunnel.
//!
//! A simple escaped line format: one result per line,
//! `url \t title \t description`. Chosen over a binary format so that a
//! captured (encrypted) payload decrypts to something a human can audit —
//! and because result text dominates the payload anyway.

use crate::error::XSearchError;
use xsearch_engine::engine::SearchResult;

/// A result as the client receives it (no engine-internal fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResult {
    /// Result URL (redirections already stripped by the proxy).
    pub url: String,
    /// Result title.
    pub title: String,
    /// Result snippet.
    pub description: String,
}

impl From<&SearchResult> for WireResult {
    fn from(r: &SearchResult) -> Self {
        WireResult {
            url: r.url.clone(),
            title: r.title.clone(),
            description: r.description.clone(),
        }
    }
}

/// The shared escape table: for each input byte, the letter that
/// follows the backslash in its escaped form, or `0` for bytes that
/// pass through verbatim. Both the writer ([`encode_results_into`]) and
/// the size accounting ([`encoded_len`]) read this one table, so they
/// cannot drift apart.
const ESCAPE: [u8; 256] = {
    let mut table = [0u8; 256];
    table[b'\\' as usize] = b'\\';
    table[b'\t' as usize] = b't';
    table[b'\n' as usize] = b'n';
    table[b'\r' as usize] = b'r';
    table
};

/// Bytes escaping adds to `s` (one backslash per escaped character).
fn escape_overhead(s: &str) -> usize {
    s.bytes().filter(|&b| ESCAPE[b as usize] != 0).count()
}

/// Appends the escaped form of `s` to `out`, copying unescaped runs
/// whole instead of allocating one `String` per replaced character the
/// way the old `str::replace` chain did. Escapes only ASCII bytes, so
/// the output remains valid UTF-8.
fn escape_into(s: &str, out: &mut Vec<u8>) {
    let bytes = s.as_bytes();
    let mut run_start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let escaped = ESCAPE[b as usize];
        if escaped != 0 {
            out.extend_from_slice(&bytes[run_start..i]);
            out.push(b'\\');
            out.push(escaped);
            run_start = i + 1;
        }
    }
    out.extend_from_slice(&bytes[run_start..]);
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Serializes results for the tunnel, appending to `out` — the
/// zero-alloc hot path: the enclave encodes into a buffer sized by
/// [`encoded_len`] (plus tag room) and seals it in place, so a response
/// costs one exact allocation instead of a `String` per escaped field.
pub fn encode_results_into(results: &[SearchResult], out: &mut Vec<u8>) {
    for r in results {
        escape_into(&r.url, out);
        out.push(b'\t');
        escape_into(&r.title, out);
        out.push(b'\t');
        escape_into(&r.description, out);
        out.push(b'\n');
    }
}

/// Serializes results for the tunnel.
///
/// Allocating wrapper over [`encode_results_into`] (byte-identical,
/// proptest-enforced); kept for cold paths and tests.
#[must_use]
pub fn encode_results(results: &[SearchResult]) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(results));
    encode_results_into(results, &mut out);
    out
}

/// Exact length of [`encode_results`]'s output without building it —
/// the enclave uses this to account the bytes a `recv` ocall carries
/// across the boundary without serializing a payload nobody reads.
#[must_use]
pub fn encoded_len(results: &[SearchResult]) -> usize {
    results
        .iter()
        .map(|r| {
            r.url.len()
                + r.title.len()
                + r.description.len()
                + escape_overhead(&r.url)
                + escape_overhead(&r.title)
                + escape_overhead(&r.description)
                + 3 // two field tabs + newline
        })
        .sum()
}

/// Serializes a query batch as `count ‖ (len ‖ bytes)*` (u32 LE
/// prefixes) — the payload of the proxy's single `seed` ecall, so
/// warming a 10k-query history costs one boundary crossing, not 10k.
#[must_use]
pub fn encode_query_batch<'a, I: IntoIterator<Item = &'a str>>(queries: I) -> Vec<u8> {
    let mut body = Vec::new();
    let mut count: u32 = 0;
    for q in queries {
        body.extend_from_slice(&(q.len() as u32).to_le_bytes());
        body.extend_from_slice(q.as_bytes());
        count += 1;
    }
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Parses a query batch, borrowing each query from the payload (the
/// enclave re-owns only what it stores).
///
/// # Errors
///
/// [`XSearchError::Protocol`] on truncation or non-UTF-8 queries.
pub fn decode_query_batch(bytes: &[u8]) -> Result<Vec<&str>, XSearchError> {
    let truncated = || XSearchError::Protocol("truncated query batch".into());
    let count_bytes: [u8; 4] = bytes.get(..4).ok_or_else(truncated)?.try_into().expect("4");
    let count = u32::from_le_bytes(count_bytes) as usize;
    let mut queries = Vec::with_capacity(count.min(bytes.len() / 4));
    let mut offset = 4;
    for _ in 0..count {
        let len_bytes: [u8; 4] = bytes
            .get(offset..offset + 4)
            .ok_or_else(truncated)?
            .try_into()
            .expect("4");
        let len = u32::from_le_bytes(len_bytes) as usize;
        offset += 4;
        let raw = bytes.get(offset..offset + len).ok_or_else(truncated)?;
        offset += len;
        queries.push(
            std::str::from_utf8(raw)
                .map_err(|_| XSearchError::Protocol("query batch entry is not utf-8".into()))?,
        );
    }
    Ok(queries)
}

/// Per-entry status codes of the `proxy_batch` response encoding. The
/// enclave reports *that* an entry failed and its coarse class — never
/// secret-dependent detail (mirrors [`xsearch_crypto::CryptoError`]'s
/// policy).
const BATCH_OK: u8 = 0;
const BATCH_UNKNOWN_SESSION: u8 = 1;
const BATCH_CRYPTO: u8 = 2;
const BATCH_PROTOCOL: u8 = 3;

/// Serializes a batch of client requests as
/// `count ‖ (client_pub ‖ len ‖ ciphertext)*` (u32 LE prefixes) — the
/// payload of the `proxy_batch` ecall, so N concurrent client requests
/// cross the trust boundary in **one** enclave transition instead of N.
#[must_use]
pub fn encode_request_batch<'a, I>(requests: I) -> Vec<u8>
where
    I: IntoIterator<Item = (&'a [u8; 32], &'a [u8])>,
{
    let mut body = Vec::new();
    let mut count: u32 = 0;
    for (client_pub, ciphertext) in requests {
        body.extend_from_slice(client_pub);
        body.extend_from_slice(&(ciphertext.len() as u32).to_le_bytes());
        body.extend_from_slice(ciphertext);
        count += 1;
    }
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// One decoded `proxy_batch` request entry: the client's session key and
/// its borrowed query ciphertext.
pub type BatchRequest<'a> = ([u8; 32], &'a [u8]);

/// Parses a request batch, borrowing each ciphertext from the payload.
///
/// # Errors
///
/// [`XSearchError::Protocol`] on truncation.
pub fn decode_request_batch(bytes: &[u8]) -> Result<Vec<BatchRequest<'_>>, XSearchError> {
    let truncated = || XSearchError::Protocol("truncated request batch".into());
    let count_bytes: [u8; 4] = bytes.get(..4).ok_or_else(truncated)?.try_into().expect("4");
    let count = u32::from_le_bytes(count_bytes) as usize;
    let mut requests = Vec::with_capacity(count.min(bytes.len() / 36));
    let mut offset = 4;
    for _ in 0..count {
        let client_pub: [u8; 32] = bytes
            .get(offset..offset + 32)
            .ok_or_else(truncated)?
            .try_into()
            .expect("32");
        offset += 32;
        let len_bytes: [u8; 4] = bytes
            .get(offset..offset + 4)
            .ok_or_else(truncated)?
            .try_into()
            .expect("4");
        let len = u32::from_le_bytes(len_bytes) as usize;
        offset += 4;
        let ciphertext = bytes.get(offset..offset + len).ok_or_else(truncated)?;
        offset += len;
        requests.push((client_pub, ciphertext));
    }
    Ok(requests)
}

/// Serializes the per-entry outcomes of a `proxy_batch` ecall as
/// `count ‖ (status ‖ len ‖ payload)*`: the payload is the response
/// ciphertext for successful entries and a diagnostic message for
/// protocol failures.
#[must_use]
pub fn encode_response_batch(responses: &[Result<Vec<u8>, XSearchError>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + responses.len() * 8);
    out.extend_from_slice(&(responses.len() as u32).to_le_bytes());
    for response in responses {
        let message;
        let (status, payload): (u8, &[u8]) = match response {
            Ok(ciphertext) => (BATCH_OK, ciphertext),
            Err(XSearchError::UnknownSession) => (BATCH_UNKNOWN_SESSION, &[]),
            Err(XSearchError::Crypto(_)) => (BATCH_CRYPTO, &[]),
            Err(e) => {
                message = e.to_string();
                (BATCH_PROTOCOL, message.as_bytes())
            }
        };
        out.push(status);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
    }
    out
}

/// Parses a response batch back into per-entry outcomes.
///
/// # Errors
///
/// [`XSearchError::Protocol`] on truncation or an unknown status code.
pub fn decode_response_batch(
    bytes: &[u8],
) -> Result<Vec<Result<Vec<u8>, XSearchError>>, XSearchError> {
    let truncated = || XSearchError::Protocol("truncated response batch".into());
    let count_bytes: [u8; 4] = bytes.get(..4).ok_or_else(truncated)?.try_into().expect("4");
    let count = u32::from_le_bytes(count_bytes) as usize;
    let mut responses = Vec::with_capacity(count.min(bytes.len() / 5));
    let mut offset = 4;
    for _ in 0..count {
        let status = *bytes.get(offset).ok_or_else(truncated)?;
        offset += 1;
        let len_bytes: [u8; 4] = bytes
            .get(offset..offset + 4)
            .ok_or_else(truncated)?
            .try_into()
            .expect("4");
        let len = u32::from_le_bytes(len_bytes) as usize;
        offset += 4;
        let payload = bytes.get(offset..offset + len).ok_or_else(truncated)?;
        offset += len;
        responses.push(match status {
            BATCH_OK => Ok(payload.to_vec()),
            BATCH_UNKNOWN_SESSION => Err(XSearchError::UnknownSession),
            BATCH_CRYPTO => Err(XSearchError::Crypto(
                xsearch_crypto::CryptoError::AuthenticationFailed,
            )),
            BATCH_PROTOCOL => Err(XSearchError::Protocol(
                String::from_utf8_lossy(payload).into_owned(),
            )),
            other => {
                return Err(XSearchError::Protocol(format!(
                    "unknown batch status {other}"
                )))
            }
        });
    }
    Ok(responses)
}

/// Parses a result list from tunnel bytes.
///
/// # Errors
///
/// [`XSearchError::Protocol`] when the payload is not UTF-8 or a line
/// does not have three fields.
pub fn decode_results(bytes: &[u8]) -> Result<Vec<WireResult>, XSearchError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| XSearchError::Protocol("result payload is not utf-8".into()))?;
    let mut results = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split('\t');
        let (url, title, description) =
            match (fields.next(), fields.next(), fields.next(), fields.next()) {
                (Some(u), Some(t), Some(d), None) => (u, t, d),
                _ => {
                    return Err(XSearchError::Protocol(format!(
                        "result line has wrong field count: {line:?}"
                    )))
                }
            };
        results.push(WireResult {
            url: unescape(url),
            title: unescape(title),
            description: unescape(description),
        });
    }
    Ok(results)
}

/// Echo-mode flag bit of a framed connection request: when set, the
/// enclave echoes the sealed query back instead of searching — the
/// calibration mode the overhead benches use.
const CONN_FLAG_ECHO: u8 = 0b1;

/// Outcome classes of a framed connection reply. Like the batch status
/// codes, these report *that* and coarsely *why* an entry failed — never
/// secret-dependent detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnStatus {
    /// The request was served; the payload is the sealed response.
    Ok,
    /// The session is unknown or expired at the proxy; re-attest.
    UnknownSession,
    /// The sealed query failed to authenticate.
    Crypto,
    /// The request was structurally invalid.
    Protocol,
    /// Bounded admission shed the request — backpressure, retry later.
    Overloaded,
    /// No verified live replica could take the request (replica down,
    /// retries exhausted, deadline passed).
    Unavailable,
}

impl ConnStatus {
    fn code(self) -> u8 {
        match self {
            ConnStatus::Ok => 0,
            ConnStatus::UnknownSession => 1,
            ConnStatus::Crypto => 2,
            ConnStatus::Protocol => 3,
            ConnStatus::Overloaded => 4,
            ConnStatus::Unavailable => 5,
        }
    }

    fn from_code(code: u8) -> Result<Self, XSearchError> {
        Ok(match code {
            0 => ConnStatus::Ok,
            1 => ConnStatus::UnknownSession,
            2 => ConnStatus::Crypto,
            3 => ConnStatus::Protocol,
            4 => ConnStatus::Overloaded,
            5 => ConnStatus::Unavailable,
            other => {
                return Err(XSearchError::Protocol(format!(
                    "unknown conn status {other}"
                )))
            }
        })
    }
}

/// One parsed connection-frame request: the client's session key, its
/// borrowed query ciphertext, and whether echo mode was requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnRequest<'a> {
    /// The client's ephemeral session public key.
    pub client_pub: [u8; 32],
    /// The sealed query, borrowed from the frame payload.
    pub ciphertext: &'a [u8],
    /// Echo mode (calibration) instead of a real search.
    pub echo: bool,
}

/// Serializes a framed connection request
/// (`flags ‖ client_pub ‖ ciphertext`) into `out`. The frame layer adds
/// the length prefix; this payload is what travels inside one frame.
pub fn encode_conn_request_into(
    client_pub: &[u8; 32],
    ciphertext: &[u8],
    echo: bool,
    out: &mut Vec<u8>,
) {
    out.reserve(1 + 32 + ciphertext.len());
    out.push(if echo { CONN_FLAG_ECHO } else { 0 });
    out.extend_from_slice(client_pub);
    out.extend_from_slice(ciphertext);
}

/// Parses a framed connection request, borrowing the ciphertext.
///
/// # Errors
///
/// [`XSearchError::Protocol`] on truncation or unknown flag bits.
pub fn decode_conn_request(payload: &[u8]) -> Result<ConnRequest<'_>, XSearchError> {
    if payload.len() < 1 + 32 {
        return Err(XSearchError::Protocol("truncated conn request".into()));
    }
    let flags = payload[0];
    if flags & !CONN_FLAG_ECHO != 0 {
        return Err(XSearchError::Protocol(format!(
            "unknown conn request flags {flags:#04x}"
        )));
    }
    let client_pub: [u8; 32] = payload[1..33].try_into().expect("32");
    Ok(ConnRequest {
        client_pub,
        ciphertext: &payload[33..],
        echo: flags & CONN_FLAG_ECHO != 0,
    })
}

/// Serializes a framed connection reply (`status ‖ payload`) into `out`:
/// the payload is the sealed response for [`ConnStatus::Ok`] and empty
/// (or a diagnostic string) otherwise.
pub fn encode_conn_reply_into(status: ConnStatus, payload: &[u8], out: &mut Vec<u8>) {
    out.reserve(1 + payload.len());
    out.push(status.code());
    out.extend_from_slice(payload);
}

/// Parses a framed connection reply, borrowing the payload.
///
/// # Errors
///
/// [`XSearchError::Protocol`] on an empty frame or unknown status code.
pub fn decode_conn_reply(payload: &[u8]) -> Result<(ConnStatus, &[u8]), XSearchError> {
    let (&code, rest) = payload
        .split_first()
        .ok_or_else(|| XSearchError::Protocol("empty conn reply".into()))?;
    Ok((ConnStatus::from_code(code)?, rest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use xsearch_engine::document::DocId;

    fn result(url: &str, title: &str, desc: &str) -> SearchResult {
        SearchResult {
            doc: DocId(0),
            url: url.into(),
            title: title.into(),
            description: desc.into(),
            score: 1.0,
        }
    }

    #[test]
    fn roundtrip_simple() {
        let rs = vec![
            result("http://a.com", "title a", "desc a"),
            result("http://b.com", "title b", "desc b"),
        ];
        let decoded = decode_results(&encode_results(&rs)).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].url, "http://a.com");
        assert_eq!(decoded[1].title, "title b");
    }

    #[test]
    fn roundtrip_with_separator_characters() {
        let rs = vec![result("http://a.com", "tab\there", "line\nbreak \\ slash")];
        let decoded = decode_results(&encode_results(&rs)).unwrap();
        assert_eq!(decoded[0].title, "tab\there");
        assert_eq!(decoded[0].description, "line\nbreak \\ slash");
    }

    #[test]
    fn empty_list_roundtrips() {
        assert!(decode_results(&encode_results(&[])).unwrap().is_empty());
    }

    #[test]
    fn malformed_line_rejected() {
        assert!(matches!(
            decode_results(b"only-two\tfields\n"),
            Err(XSearchError::Protocol(_))
        ));
        assert!(matches!(
            decode_results(b"a\tb\tc\td\n"),
            Err(XSearchError::Protocol(_))
        ));
    }

    #[test]
    fn non_utf8_rejected() {
        assert!(matches!(
            decode_results(&[0xff, 0xfe]),
            Err(XSearchError::Protocol(_))
        ));
    }

    #[test]
    fn query_batch_roundtrips() {
        let queries = ["alpha", "beta gamma", "", "δelta"];
        let encoded = encode_query_batch(queries);
        assert_eq!(decode_query_batch(&encoded).unwrap(), queries);
    }

    #[test]
    fn query_batch_rejects_truncation() {
        let mut encoded = encode_query_batch(["alpha", "beta"]);
        encoded.truncate(encoded.len() - 1);
        assert!(matches!(
            decode_query_batch(&encoded),
            Err(XSearchError::Protocol(_))
        ));
        assert!(matches!(
            decode_query_batch(&[1, 0]),
            Err(XSearchError::Protocol(_))
        ));
    }

    #[test]
    fn query_batch_rejects_non_utf8() {
        let mut encoded = 1u32.to_le_bytes().to_vec();
        encoded.extend_from_slice(&2u32.to_le_bytes());
        encoded.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            decode_query_batch(&encoded),
            Err(XSearchError::Protocol(_))
        ));
    }

    #[test]
    fn request_batch_roundtrips() {
        let a = ([1u8; 32], b"cipher one".to_vec());
        let b = ([2u8; 32], Vec::new());
        let c = ([3u8; 32], vec![0xff, 0x00, 0x7f]);
        let encoded = encode_request_batch([&a, &b, &c].map(|(p, ct)| (p, ct.as_slice())));
        let decoded = decode_request_batch(&encoded).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0], ([1u8; 32], b"cipher one".as_slice()));
        assert_eq!(decoded[1].1, b"");
        assert_eq!(decoded[2], ([3u8; 32], [0xff, 0x00, 0x7f].as_slice()));
    }

    #[test]
    fn request_batch_rejects_truncation() {
        let pub_key = [9u8; 32];
        let mut encoded = encode_request_batch([(&pub_key, b"payload".as_slice())]);
        encoded.truncate(encoded.len() - 1);
        assert!(matches!(
            decode_request_batch(&encoded),
            Err(XSearchError::Protocol(_))
        ));
        assert!(matches!(
            decode_request_batch(&[2, 0, 0]),
            Err(XSearchError::Protocol(_))
        ));
    }

    #[test]
    fn response_batch_roundtrips_every_status() {
        let responses = vec![
            Ok(b"response ct".to_vec()),
            Err(XSearchError::UnknownSession),
            Err(XSearchError::Crypto(
                xsearch_crypto::CryptoError::AuthenticationFailed,
            )),
            Err(XSearchError::Protocol("bad hello".into())),
            Ok(Vec::new()),
        ];
        let decoded = decode_response_batch(&encode_response_batch(&responses)).unwrap();
        assert_eq!(decoded.len(), 5);
        assert_eq!(decoded[0], Ok(b"response ct".to_vec()));
        assert_eq!(decoded[1], Err(XSearchError::UnknownSession));
        assert!(matches!(decoded[2], Err(XSearchError::Crypto(_))));
        assert!(
            matches!(&decoded[3], Err(XSearchError::Protocol(msg)) if msg.contains("bad hello"))
        );
        assert_eq!(decoded[4], Ok(Vec::new()));
    }

    #[test]
    fn response_batch_rejects_truncation_and_bad_status() {
        let mut encoded = encode_response_batch(&[Ok(b"x".to_vec())]);
        encoded.truncate(encoded.len() - 1);
        assert!(matches!(
            decode_response_batch(&encoded),
            Err(XSearchError::Protocol(_))
        ));
        // status 9 is not a thing
        let mut bad = 1u32.to_le_bytes().to_vec();
        bad.push(9);
        bad.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_response_batch(&bad),
            Err(XSearchError::Protocol(_))
        ));
    }

    proptest! {
        #[test]
        fn request_batch_roundtrips_any_payloads(
            payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..6),
        ) {
            let keyed: Vec<([u8; 32], Vec<u8>)> = payloads
                .into_iter()
                .enumerate()
                .map(|(i, ct)| ([i as u8; 32], ct))
                .collect();
            let encoded = encode_request_batch(keyed.iter().map(|(p, ct)| (p, ct.as_slice())));
            let decoded = decode_request_batch(&encoded).unwrap();
            prop_assert_eq!(decoded.len(), keyed.len());
            for ((dp, dct), (p, ct)) in decoded.iter().zip(&keyed) {
                prop_assert_eq!(dp, p);
                prop_assert_eq!(*dct, ct.as_slice());
            }
        }

        #[test]
        fn roundtrip_any_text(url in "[ -~]{0,30}", title in ".{0,30}", desc in ".{0,30}") {
            let rs = vec![result(&url, &title, &desc)];
            let decoded = decode_results(&encode_results(&rs)).unwrap();
            prop_assert_eq!(&decoded[0].url, &url);
            prop_assert_eq!(&decoded[0].title, &title);
            prop_assert_eq!(&decoded[0].description, &desc);
        }

        #[test]
        fn encoded_len_matches_encode_results(
            url in "[ -~]{0,30}", title in ".{0,30}", desc in ".{0,30}",
        ) {
            let rs = vec![
                result(&url, &title, &desc),
                result("http://b.com", "tab\there", "line\nbreak \\ slash"),
            ];
            prop_assert_eq!(encoded_len(&rs), encode_results(&rs).len());
        }

        /// Escape-heavy inputs: every field drawn mostly from the four
        /// escaped characters, so the shared table's overhead accounting
        /// is exercised on dense, not incidental, escaping.
        #[test]
        fn encoded_len_matches_on_escape_heavy_inputs(
            fields in proptest::collection::vec("[\t\n\r\\\\x]{0,40}", 3..9),
        ) {
            let rs: Vec<SearchResult> = fields
                .chunks(3)
                .filter(|c| c.len() == 3)
                .map(|c| result(&c[0], &c[1], &c[2]))
                .collect();
            let encoded = encode_results(&rs);
            prop_assert_eq!(encoded_len(&rs), encoded.len());
            let decoded = decode_results(&encoded).unwrap();
            for (d, r) in decoded.iter().zip(&rs) {
                prop_assert_eq!(&d.url, &r.url);
                prop_assert_eq!(&d.title, &r.title);
                prop_assert_eq!(&d.description, &r.description);
            }
        }

        /// `encode_results` ≡ `encode_results_into`, including when the
        /// writer appends after existing bytes (the scratch-reuse shape).
        #[test]
        fn encode_results_into_matches_allocating(
            url in ".{0,30}", title in "[\t\n\r\\\\ -~]{0,30}", desc in ".{0,30}",
            prefix in proptest::collection::vec(any::<u8>(), 0..24),
        ) {
            let rs = vec![result(&url, &title, &desc), result("u", "t", "d")];
            let mut out = prefix.clone();
            encode_results_into(&rs, &mut out);
            prop_assert_eq!(&out[..prefix.len()], &prefix[..]);
            prop_assert_eq!(&out[prefix.len()..], &encode_results(&rs)[..]);
        }

        #[test]
        fn query_batch_roundtrips_any_text(queries in proptest::collection::vec(".{0,20}", 0..8)) {
            let encoded = encode_query_batch(queries.iter().map(String::as_str));
            let decoded = decode_query_batch(&encoded).unwrap();
            prop_assert_eq!(decoded, queries);
        }

        #[test]
        fn conn_request_roundtrips(
            ciphertext in proptest::collection::vec(any::<u8>(), 0..96),
            key_byte: u8,
            echo: bool
        ) {
            let client_pub = [key_byte; 32];
            let mut frame = Vec::new();
            encode_conn_request_into(&client_pub, &ciphertext, echo, &mut frame);
            let req = decode_conn_request(&frame).unwrap();
            prop_assert_eq!(req.client_pub, client_pub);
            prop_assert_eq!(req.ciphertext, &ciphertext[..]);
            prop_assert_eq!(req.echo, echo);
        }

        #[test]
        fn conn_reply_roundtrips(payload in proptest::collection::vec(any::<u8>(), 0..96)) {
            for status in [
                ConnStatus::Ok,
                ConnStatus::UnknownSession,
                ConnStatus::Crypto,
                ConnStatus::Protocol,
                ConnStatus::Overloaded,
                ConnStatus::Unavailable,
            ] {
                let mut frame = Vec::new();
                encode_conn_reply_into(status, &payload, &mut frame);
                let (got_status, got_payload) = decode_conn_reply(&frame).unwrap();
                prop_assert_eq!(got_status, status);
                prop_assert_eq!(got_payload, &payload[..]);
            }
        }
    }

    #[test]
    fn conn_request_rejects_truncation_and_unknown_flags() {
        assert!(decode_conn_request(&[0u8; 16]).is_err());
        let mut frame = Vec::new();
        encode_conn_request_into(&[7u8; 32], b"ct", false, &mut frame);
        frame[0] = 0x80;
        assert!(decode_conn_request(&frame).is_err());
    }

    #[test]
    fn conn_reply_rejects_empty_and_unknown_status() {
        assert!(decode_conn_reply(&[]).is_err());
        assert!(decode_conn_reply(&[200, 1, 2]).is_err());
    }
}
