//! Algorithm 1: generation of an obfuscated query.
//!
//! The original query is placed at a uniformly random position among `k`
//! fake queries drawn from the past-query table, all joined by logical OR.
//! Using *real past queries* as fakes is the paper's key
//! indistinguishability idea: every sub-query maps onto some genuine user
//! profile, so a re-identification adversary cannot single out the fake
//! ones the way it can with PEAS's synthetic co-occurrence queries.
//!
//! Sub-queries are `Arc<str>`: the fakes share the history table's
//! allocations and the original is allocated once and shared with the
//! history entry Algorithm 1 stores (line 9), so obfuscating is a matter
//! of refcount bumps, not string copies — this is the request hot path.

use crate::history::QueryHistory;
use rand::Rng;
use std::sync::Arc;

/// An obfuscated query: `k + 1` sub-queries with the original at a known
/// (enclave-private) position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObfuscatedQuery {
    /// The sub-queries in the order they are sent to the engine. Shared
    /// with the history table's entries (fakes) and its newest entry
    /// (the original).
    pub subqueries: Vec<Arc<str>>,
    /// Index of the original query within `subqueries` — known only
    /// inside the enclave; never serialized toward the engine.
    pub original_index: usize,
}

impl ObfuscatedQuery {
    /// The original query text.
    #[must_use]
    pub fn original(&self) -> &str {
        &self.subqueries[self.original_index]
    }

    /// The fake sub-queries, in send order.
    #[must_use]
    pub fn fakes(&self) -> Vec<&str> {
        self.subqueries
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != self.original_index)
            .map(|(_, q)| &**q)
            .collect()
    }

    /// The single OR-joined query string the engine would receive
    /// (`Qp0 OR ... OR Qu OR ... OR Qpk`).
    #[must_use]
    pub fn to_or_string(&self) -> String {
        self.subqueries.join(" OR ")
    }

    /// Number of fake queries (k).
    #[must_use]
    pub fn k(&self) -> usize {
        self.subqueries.len() - 1
    }
}

/// Runs Algorithm 1: aggregates `query` with `k` random past queries from
/// `history` at a random position, then stores `query` in the history
/// (line 9).
///
/// Cold start: with an empty history there is nothing plausible to hide
/// behind, so the query is sent alone (k effectively 0) — the paper's
/// table is assumed warm; we make the degradation explicit.
pub fn obfuscate<R: Rng + ?Sized>(
    query: &str,
    history: &QueryHistory,
    k: usize,
    rng: &mut R,
) -> ObfuscatedQuery {
    let fakes = history.sample_many(k, rng);
    let original: Arc<str> = Arc::from(query);
    history.push_arc(Arc::clone(&original));
    if fakes.is_empty() {
        return ObfuscatedQuery {
            subqueries: vec![original],
            original_index: 0,
        };
    }
    let original_index = rng.gen_range(0..=fakes.len());
    let mut subqueries = Vec::with_capacity(fakes.len() + 1);
    let mut fake_iter = fakes.into_iter();
    for position in 0.. {
        if position == original_index {
            subqueries.push(Arc::clone(&original));
        } else {
            match fake_iter.next() {
                Some(f) => subqueries.push(f),
                None => break,
            }
        }
        if subqueries.len() == k + 1 {
            break;
        }
    }
    ObfuscatedQuery {
        subqueries,
        original_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xsearch_sgx_sim::epc::EpcGauge;

    fn warm_history(n: usize) -> Arc<QueryHistory> {
        let h = Arc::new(QueryHistory::new(10_000, EpcGauge::with_limit(1 << 30)));
        for i in 0..n {
            h.push(&format!("past query {i}"));
        }
        h
    }

    #[test]
    fn obfuscated_query_has_k_plus_one_subqueries() {
        let h = warm_history(50);
        let mut rng = StdRng::seed_from_u64(1);
        for k in 0..=7 {
            let o = obfuscate("the real one", &h, k, &mut rng);
            assert_eq!(o.subqueries.len(), k + 1, "k={k}");
            assert_eq!(o.k(), k);
            assert_eq!(o.original(), "the real one");
        }
    }

    #[test]
    fn fakes_come_from_history() {
        let h = warm_history(20);
        let mut rng = StdRng::seed_from_u64(2);
        let o = obfuscate("real", &h, 5, &mut rng);
        for f in o.fakes() {
            assert!(
                f.starts_with("past query") || f == "real",
                "fake {f:?} not from history"
            );
        }
    }

    #[test]
    fn original_position_is_uniformish() {
        let h = warm_history(100);
        let mut rng = StdRng::seed_from_u64(3);
        let k = 3;
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            let o = obfuscate("real", &h, k, &mut rng);
            counts[o.original_index] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "position {i} count {c}");
        }
    }

    #[test]
    fn query_is_stored_in_history() {
        let h = warm_history(0);
        let mut rng = StdRng::seed_from_u64(4);
        let _ = obfuscate("first ever", &h, 3, &mut rng);
        assert_eq!(h.len(), 1);
        // The next query can now use it as a fake.
        let o = obfuscate("second", &h, 1, &mut rng);
        assert_eq!(o.subqueries.len(), 2);
        assert!(o.fakes().contains(&"first ever"));
    }

    #[test]
    fn stored_entry_shares_the_subquery_allocation() {
        let h = warm_history(0);
        let mut rng = StdRng::seed_from_u64(8);
        let o = obfuscate("no copies", &h, 2, &mut rng);
        let stored = h.sample(&mut rng).unwrap();
        assert!(
            Arc::ptr_eq(&o.subqueries[o.original_index], &stored),
            "history must store the same Arc the obfuscation emits"
        );
    }

    #[test]
    fn cold_start_sends_query_alone() {
        let h = warm_history(0);
        let mut rng = StdRng::seed_from_u64(5);
        let o = obfuscate("lonely", &h, 5, &mut rng);
        assert_eq!(o.subqueries, vec![Arc::<str>::from("lonely")]);
        assert_eq!(o.original_index, 0);
    }

    #[test]
    fn or_string_joins_in_order() {
        let h = warm_history(10);
        let mut rng = StdRng::seed_from_u64(6);
        let o = obfuscate("real", &h, 2, &mut rng);
        let s = o.to_or_string();
        assert_eq!(s.matches(" OR ").count(), 2);
        assert!(s.contains("real"));
    }

    #[test]
    fn k_zero_with_warm_history_is_just_the_query() {
        let h = warm_history(10);
        let mut rng = StdRng::seed_from_u64(7);
        let o = obfuscate("real", &h, 0, &mut rng);
        assert_eq!(o.subqueries, vec![Arc::<str>::from("real")]);
    }

    proptest! {
        #[test]
        fn invariants_hold(k in 0usize..8, n_hist in 0usize..30, seed: u64) {
            let h = warm_history(n_hist);
            let mut rng = StdRng::seed_from_u64(seed);
            let o = obfuscate("needle", &h, k, &mut rng);
            // Exactly one sub-query at original_index equals the original.
            prop_assert_eq!(o.original(), "needle");
            let expected_len = if n_hist == 0 { 1 } else { k + 1 };
            prop_assert_eq!(o.subqueries.len(), expected_len);
            prop_assert!(o.original_index < o.subqueries.len());
            prop_assert_eq!(o.fakes().len(), expected_len - 1);
        }
    }
}
