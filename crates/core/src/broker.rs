//! The client-side broker.
//!
//! §4.2: "this broker runs within the client's domain, such as a local
//! daemon process executing alongside the client's Web browser. The
//! broker is in charge of the SGX attestation step." It pins the expected
//! enclave measurement, verifies the proxy's quote with the attestation
//! service, checks that the quote binds exactly the channel keys in use,
//! and only then tunnels queries.

use crate::error::XSearchError;
use crate::proxy::XSearchProxy;
use crate::session::{channel_binding, SecureChannel, Side};
use crate::wire::{decode_results, WireResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xsearch_crypto::x25519::{PublicKey, StaticSecret};
use xsearch_sgx_sim::attestation::AttestationService;
use xsearch_sgx_sim::measurement::Measurement;

/// An attested client session with one proxy.
pub struct Broker {
    client_pub: PublicKey,
    channel: SecureChannel,
    /// Reused for outbound ciphertexts and decrypted responses: a
    /// steady-state `search` performs no transient allocations on the
    /// sealed path (the decoded results are the deliverable).
    scratch: Vec<u8>,
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("client_pub", &self.client_pub)
            .finish()
    }
}

impl Broker {
    /// Attests `proxy` and establishes the encrypted tunnel.
    ///
    /// `expected` is the pinned measurement of the canonical X-Search
    /// enclave code; a proxy running anything else is rejected before any
    /// query bytes leave the client.
    ///
    /// # Errors
    ///
    /// [`XSearchError::Sgx`] when the quote fails verification or the
    /// measurement mismatches; [`XSearchError::Protocol`] when the quote
    /// does not bind the session's channel keys.
    pub fn attach(
        proxy: &XSearchProxy,
        ias: &AttestationService,
        expected: Measurement,
        seed: u64,
    ) -> Result<Broker, XSearchError> {
        let (secret, client_pub) = keypair_for_seed(seed);

        let resp = proxy.handshake(client_pub)?;
        ias.verify_expecting(&resp.quote, expected)?;
        let binding = channel_binding(&resp.enclave_pub, &client_pub);
        if resp.quote.report_data != binding {
            return Err(XSearchError::Protocol(
                "quote does not bind the negotiated channel keys".into(),
            ));
        }

        let shared = secret.diffie_hellman(&resp.enclave_pub)?;
        let channel =
            SecureChannel::establish(Side::Client, &shared, &client_pub, &resp.enclave_pub);
        Ok(Broker {
            client_pub,
            channel,
            scratch: Vec::new(),
        })
    }

    /// Re-establishes the session against a (possibly different) proxy —
    /// the failover path: when a fleet replica dies, the broker attests
    /// the successor replica from scratch and swaps its tunnel state in
    /// place.
    ///
    /// `seed` **must be fresh** (never passed to a previous
    /// `attach`/`reattach` of this broker): re-deriving the same client
    /// keypair against the same enclave identity would re-derive the same
    /// channel keys with reset nonce counters — nonce reuse. A fresh seed
    /// gives a fresh keypair and therefore fresh keys, at the cost of a
    /// new proxy-side session entry.
    ///
    /// # Errors
    ///
    /// See [`Broker::attach`]; on error `self` is left unchanged.
    pub fn reattach(
        &mut self,
        proxy: &XSearchProxy,
        ias: &AttestationService,
        expected: Measurement,
        seed: u64,
    ) -> Result<(), XSearchError> {
        *self = Broker::attach(proxy, ias, expected, seed)?;
        Ok(())
    }

    /// Sends one query through the tunnel and returns the filtered
    /// results.
    ///
    /// # Errors
    ///
    /// Tunnel crypto failures and protocol violations; see
    /// [`XSearchError`].
    pub fn search(
        &mut self,
        proxy: &XSearchProxy,
        query: &str,
    ) -> Result<Vec<WireResult>, XSearchError> {
        self.channel
            .seal_into(b"query", query.as_bytes(), &mut self.scratch);
        let response = proxy.request(self.client_pub.as_bytes(), &self.scratch)?;
        self.channel
            .open_into(b"results", &response, &mut self.scratch)?;
        decode_results(&self.scratch)
    }

    /// Seals one query for the tunnel without sending it — callers that
    /// aggregate several clients' requests into one `proxy_batch` ecall
    /// collect these ciphertexts first. Sealing advances this session's
    /// nonce counter, so the responses must be opened in the same order
    /// the queries were sealed.
    #[must_use]
    pub fn seal_query(&mut self, query: &str) -> Vec<u8> {
        self.channel.seal(b"query", query.as_bytes())
    }

    /// The buffer-reuse form of [`Broker::seal_query`]: seals into `out`
    /// (cleared first), so a caller pumping many queries through one
    /// session allocates nothing per query.
    pub fn seal_query_into(&mut self, query: &str, out: &mut Vec<u8>) {
        self.channel.seal_into(b"query", query.as_bytes(), out);
    }

    /// Opens one encrypted response produced for this session (the
    /// receiving half of [`Broker::seal_query`]).
    ///
    /// # Errors
    ///
    /// Tunnel crypto failures and protocol violations; see
    /// [`XSearchError`].
    pub fn open_results(&mut self, response: &[u8]) -> Result<Vec<WireResult>, XSearchError> {
        self.channel
            .open_into(b"results", response, &mut self.scratch)?;
        decode_results(&self.scratch)
    }

    /// Like [`Broker::search`] but against the proxy's echo mode
    /// (no engine round trip) — used by the throughput experiments.
    ///
    /// # Errors
    ///
    /// See [`Broker::search`].
    pub fn search_echo(
        &mut self,
        proxy: &XSearchProxy,
        query: &str,
    ) -> Result<Vec<WireResult>, XSearchError> {
        self.channel
            .seal_into(b"query", query.as_bytes(), &mut self.scratch);
        let response = proxy.request_echo(self.client_pub.as_bytes(), &self.scratch)?;
        self.channel
            .open_into(b"results", &response, &mut self.scratch)?;
        decode_results(&self.scratch)
    }

    /// The broker's channel public key (the proxy-side session id).
    #[must_use]
    pub fn client_pub(&self) -> PublicKey {
        self.client_pub
    }

    /// The channel public key [`Broker::attach`] will present for
    /// `seed` — routing layers use this to compute a session's
    /// placement *before* any handshake happens, so the client can
    /// attest exactly the replica its requests will be forwarded to.
    #[must_use]
    pub fn client_pub_for_seed(seed: u64) -> PublicKey {
        keypair_for_seed(seed).1
    }
}

/// Deterministic seed → channel keypair derivation shared by
/// [`Broker::attach`] and [`Broker::client_pub_for_seed`]; keeping it in
/// one place is what makes pre-attach routing sound.
fn keypair_for_seed(seed: u64) -> (StaticSecret, PublicKey) {
    let mut rng = StdRng::seed_from_u64(seed);
    let secret = StaticSecret::random(&mut rng);
    let client_pub = secret.public_key();
    (secret, client_pub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XSearchConfig;
    use std::sync::Arc;
    use xsearch_engine::corpus::CorpusConfig;
    use xsearch_engine::engine::SearchEngine;
    use xsearch_query_log::topics::TOPICS;

    fn setup(k: usize) -> (XSearchProxy, AttestationService) {
        let ias = AttestationService::from_seed(5);
        let engine = Arc::new(SearchEngine::build(&CorpusConfig {
            docs_per_topic: 40,
            ..Default::default()
        }));
        let proxy = XSearchProxy::launch(
            XSearchConfig {
                k,
                history_capacity: 10_000,
                ..Default::default()
            },
            engine,
            &ias,
        );
        (proxy, ias)
    }

    #[test]
    fn attested_search_returns_relevant_results() {
        let (proxy, ias) = setup(2);
        proxy.seed_history(["stomach pain doctor", "mortgage rates", "nfl schedule"]);
        let mut broker = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 1).unwrap();
        let travel = TOPICS.iter().position(|t| t.name == "travel").unwrap();
        let query = format!("{} {}", TOPICS[travel].terms[0], TOPICS[travel].terms[1]);
        let results = broker.search(&proxy, &query).unwrap();
        assert!(!results.is_empty());
        // Results must relate to the original query, not only to fakes.
        let engine = proxy.engine();
        let direct: std::collections::HashSet<String> = engine
            .search(&query, 20)
            .into_iter()
            .map(|r| r.title)
            .collect();
        let overlap = results.iter().filter(|r| direct.contains(&r.title)).count();
        assert!(
            overlap > 0,
            "filtered results should overlap the direct results"
        );
    }

    #[test]
    fn attach_rejects_wrong_measurement() {
        let (proxy, ias) = setup(1);
        let mut wrong = proxy.expected_measurement();
        wrong.0[0] ^= 1;
        let err = Broker::attach(&proxy, &ias, wrong, 1).unwrap_err();
        assert_eq!(
            err,
            XSearchError::Sgx(xsearch_sgx_sim::SgxError::MeasurementMismatch)
        );
    }

    #[test]
    fn attach_rejects_foreign_attestation_service() {
        let (proxy, _) = setup(1);
        let other_ias = AttestationService::from_seed(999);
        let err = Broker::attach(&proxy, &other_ias, proxy.expected_measurement(), 1).unwrap_err();
        assert_eq!(
            err,
            XSearchError::Sgx(xsearch_sgx_sim::SgxError::QuoteRejected)
        );
    }

    #[test]
    fn consecutive_searches_share_the_session() {
        let (proxy, ias) = setup(1);
        proxy.seed_history(["warmup query"]);
        let mut broker = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 2).unwrap();
        for q in ["flights paris", "hotel rome", "cruise caribbean"] {
            let _ = broker.search(&proxy, q).unwrap();
        }
    }

    #[test]
    fn reattach_moves_the_session_to_a_successor_proxy() {
        let (a, ias) = setup(1);
        let (b, _) = setup(1); // same IAS seed ⇒ same provisioning key
        a.seed_history(["warm a"]);
        b.seed_history(["warm b"]);
        let mut broker = Broker::attach(&a, &ias, a.expected_measurement(), 10).unwrap();
        let _ = broker.search(&a, "flights paris").unwrap();
        let old_pub = broker.client_pub();

        // Replica `a` dies; the broker re-attests against `b` with a
        // fresh seed and keeps searching.
        broker
            .reattach(&b, &ias, b.expected_measurement(), 11)
            .unwrap();
        assert_ne!(broker.client_pub(), old_pub, "fresh seed ⇒ fresh keys");
        let _ = broker.search(&b, "hotel rome").unwrap();
    }

    #[test]
    fn failed_reattach_leaves_the_broker_usable() {
        let (a, ias) = setup(1);
        a.seed_history(["warm"]);
        let mut broker = Broker::attach(&a, &ias, a.expected_measurement(), 12).unwrap();
        let mut wrong = a.expected_measurement();
        wrong.0[0] ^= 1;
        assert!(broker.reattach(&a, &ias, wrong, 13).is_err());
        // The original session still works.
        let _ = broker.search(&a, "cruise caribbean").unwrap();
    }

    #[test]
    fn echo_mode_returns_empty_results() {
        let (proxy, ias) = setup(3);
        proxy.seed_history(["a", "b", "c", "d"]);
        let mut broker = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 3).unwrap();
        let results = broker.search_echo(&proxy, "anything").unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn untrusted_host_sees_only_obfuscated_queries() {
        // The engine-side fetch receives sub-queries; with a warm history
        // and k=3 the original is hidden among three real past queries.
        let (proxy, ias) = setup(3);
        proxy.seed_history(["decoy one", "decoy two", "decoy three", "decoy four"]);
        let mut broker = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 4).unwrap();
        let _ = broker.search(&proxy, "sensitive medical query").unwrap();
        // Four requests crossed the boundary: connect/send/recv/close.
        assert_eq!(proxy.boundary().ocalls(), 4);
    }
}
