//! X-Search error type.

use std::error::Error;
use std::fmt;
use xsearch_crypto::CryptoError;
use xsearch_sgx_sim::SgxError;

/// Errors surfaced by the X-Search client/proxy stack.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum XSearchError {
    /// A cryptographic operation failed (bad tag, weak key, ...).
    Crypto(CryptoError),
    /// The enclave/attestation layer failed.
    Sgx(SgxError),
    /// A peer sent a structurally invalid protocol message.
    Protocol(String),
    /// The session does not exist or expired at the proxy.
    UnknownSession,
}

impl fmt::Display for XSearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XSearchError::Crypto(e) => write!(f, "crypto failure: {e}"),
            XSearchError::Sgx(e) => write!(f, "enclave failure: {e}"),
            XSearchError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            XSearchError::UnknownSession => write!(f, "unknown session"),
        }
    }
}

impl Error for XSearchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            XSearchError::Crypto(e) => Some(e),
            XSearchError::Sgx(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for XSearchError {
    fn from(e: CryptoError) -> Self {
        XSearchError::Crypto(e)
    }
}

impl From<SgxError> for XSearchError {
    fn from(e: SgxError) -> Self {
        XSearchError::Sgx(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = XSearchError::Protocol("bad hello".into());
        assert!(e.to_string().contains("bad hello"));
    }

    #[test]
    fn sources_chain() {
        let e = XSearchError::Crypto(CryptoError::AuthenticationFailed);
        assert!(e.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XSearchError>();
    }
}
