//! Algorithm 2: results filtering.
//!
//! The engine's response to an obfuscated query mixes results for the
//! original query with results for the fakes. For each result the enclave
//! scores every sub-query by word overlap with the result's title and
//! description (`nbCommonWords`) and forwards the result iff the
//! *original* query attains the maximum score (ties included — the
//! algorithm's condition is `score[Qu] = max`, so a draw goes to the
//! user).
//!
//! Hot-path shape: every sub-query is tokenized **once** into a word
//! set up front and every result's title/description once per result —
//! the naive form re-tokenizes each (sub-query, result) pair, which is
//! O(results × k) tokenizations. The input result list is consumed and
//! filtered in place; no cloning of the kept results.

use std::collections::HashSet;
use xsearch_engine::engine::SearchResult;
use xsearch_text::similarity::{common_words, nb_common_words, word_set};

/// Scores one (query, result) pair per Algorithm 2 lines 5–6.
#[must_use]
pub fn result_score(query: &str, result: &SearchResult) -> usize {
    nb_common_words(query, &result.title) + nb_common_words(query, &result.description)
}

/// Scores a pre-tokenized query against a pre-tokenized result.
fn score_sets(query: &HashSet<String>, title: &HashSet<String>, desc: &HashSet<String>) -> usize {
    common_words(query, title) + common_words(query, desc)
}

/// Runs Algorithm 2: keeps the results whose best-matching sub-query is
/// the original one. Consumes the result list and retains in place.
#[must_use]
pub fn filter_results<S: AsRef<str>>(
    original: &str,
    fakes: &[S],
    mut results: Vec<SearchResult>,
) -> Vec<SearchResult> {
    if fakes.is_empty() || results.is_empty() {
        // No fakes ⇒ the original trivially attains the max score; no
        // results ⇒ nothing to tokenize against (echo-mode hot path).
        return results;
    }
    let original_words = word_set(original);
    let fake_words: Vec<HashSet<String>> = fakes.iter().map(|f| word_set(f.as_ref())).collect();
    results.retain(|r| {
        let title = word_set(&r.title);
        let desc = word_set(&r.description);
        let own = score_sets(&original_words, &title, &desc);
        // `own >= every fake score` ⇔ `own == max` (ties to the user).
        fake_words
            .iter()
            .all(|f| own >= score_sets(f, &title, &desc))
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use xsearch_engine::document::DocId;

    fn result(id: u32, title: &str, desc: &str) -> SearchResult {
        SearchResult {
            doc: DocId(id),
            url: format!("http://example.com/{id}"),
            title: title.to_owned(),
            description: desc.to_owned(),
            score: 1.0,
        }
    }

    #[test]
    fn keeps_results_matching_original() {
        let results = vec![
            result(0, "cheap flights to paris", "book paris flights today"),
            result(
                1,
                "diabetes symptoms guide",
                "common diabetes symptoms explained",
            ),
        ];
        let kept = filter_results(
            "cheap paris flights",
            &["diabetes symptoms".to_owned()],
            results,
        );
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].doc, DocId(0));
    }

    #[test]
    fn drops_results_matching_fakes_better() {
        let results = vec![result(0, "diabetes symptoms", "diabetes care")];
        let kept = filter_results("paris flights", &["diabetes symptoms".to_owned()], results);
        assert!(kept.is_empty());
    }

    #[test]
    fn ties_go_to_the_user() {
        // Result overlaps both queries equally (scores tie) → forwarded.
        let results = vec![result(0, "travel guide", "general travel advice")];
        let kept = filter_results("travel paris", &["travel rome".to_owned()], results);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn no_fakes_keeps_everything() {
        let results = vec![
            result(0, "anything", "at all"),
            result(1, "even this", "unrelated"),
        ];
        let kept = filter_results("some query", &[] as &[&str], results);
        assert_eq!(kept.len(), 2, "k=0 means no filtering is possible");
    }

    #[test]
    fn empty_results_stay_empty() {
        assert!(filter_results("q", &["f".to_owned()], Vec::new()).is_empty());
    }

    #[test]
    fn score_counts_title_and_description_separately() {
        let r = result(0, "paris hotel", "paris hotel booking");
        // "paris" and "hotel" appear in both fields: 2 + 2.
        assert_eq!(result_score("paris hotel", &r), 4);
    }

    #[test]
    fn scoring_is_word_level_not_substring() {
        let r = result(0, "parisian nights", "parisian cafe");
        assert_eq!(result_score("paris", &r), 0);
    }

    proptest! {
        #[test]
        fn filtered_is_subset(
            original in "[a-z]{2,8} [a-z]{2,8}",
            fake in "[a-z]{2,8} [a-z]{2,8}",
            titles in proptest::collection::vec("[a-z]{2,8}( [a-z]{2,8}){0,3}", 0..10),
        ) {
            let results: Vec<SearchResult> = titles
                .iter()
                .enumerate()
                .map(|(i, t)| result(i as u32, t, ""))
                .collect();
            let kept = filter_results(&original, std::slice::from_ref(&fake), results.clone());
            prop_assert!(kept.len() <= results.len());
            // Everything kept satisfies the score rule.
            for r in &kept {
                prop_assert!(result_score(&original, r) >= result_score(&fake, r));
            }
            // Everything dropped violates it.
            let kept_ids: std::collections::HashSet<_> = kept.iter().map(|r| r.doc).collect();
            for r in results.iter().filter(|r| !kept_ids.contains(&r.doc)) {
                prop_assert!(result_score(&original, r) < result_score(&fake, r));
            }
        }
    }
}
