//! The untrusted proxy host.
//!
//! Runs on a public cloud node: it owns the enclave, relays ciphertext
//! between brokers and the enclave's ecalls, and provides the untrusted
//! side of the ocall interface (the socket to the search engine). It
//! never sees a plaintext original query — only the obfuscated form the
//! enclave deliberately emits toward the engine.

use crate::config::XSearchConfig;
use crate::enclave_app::{EnclaveState, ENCLAVE_CODE_V1};
use crate::error::XSearchError;
use std::sync::Arc;
use xsearch_crypto::x25519::PublicKey;
use xsearch_engine::engine::SearchEngine;
use xsearch_sgx_sim::attestation::{AttestationService, Quote};
use xsearch_sgx_sim::boundary::BoundaryStats;
use xsearch_sgx_sim::enclave::{Enclave, EnclaveBuilder};
use xsearch_sgx_sim::epc::EpcGauge;
use xsearch_sgx_sim::measurement::Measurement;

/// The handshake response a broker receives.
#[derive(Debug, Clone)]
pub struct HandshakeResponse {
    /// The enclave's channel public key.
    pub enclave_pub: PublicKey,
    /// Attestation quote binding the key pair to the enclave code.
    pub quote: Quote,
}

/// An X-Search proxy node: enclave + engine uplink.
pub struct XSearchProxy {
    enclave: Enclave<EnclaveState>,
    engine: Arc<SearchEngine>,
}

impl std::fmt::Debug for XSearchProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XSearchProxy")
            .field("measurement", &self.enclave.measurement())
            .finish()
    }
}

impl XSearchProxy {
    /// Launches the proxy: builds the enclave from the canonical code,
    /// provisions it for attestation, and runs the `init` ecall.
    #[must_use]
    pub fn launch(
        config: XSearchConfig,
        engine: Arc<SearchEngine>,
        ias: &AttestationService,
    ) -> Self {
        let enclave = EnclaveBuilder::new("xsearch-proxy")
            .with_code(ENCLAVE_CODE_V1)
            .with_provisioning_key(ias.provisioning_key())
            .build_with(|epc, cost| EnclaveState::init(config, epc, cost));
        XSearchProxy { enclave, engine }
    }

    /// The measurement a correctly built proxy enclave must present —
    /// what brokers pin.
    #[must_use]
    pub fn expected_measurement(&self) -> Measurement {
        self.enclave.measurement()
    }

    /// Handshake: opens a session for `client_pub` inside the enclave and
    /// returns the enclave key plus a quote over the channel binding.
    ///
    /// # Errors
    ///
    /// Propagates enclave/crypto failures (e.g. a low-order client key).
    pub fn handshake(&self, client_pub: PublicKey) -> Result<HandshakeResponse, XSearchError> {
        let binding = self.enclave.ecall_shared(
            "handshake",
            client_pub.as_bytes(),
            |state, _, _| match state.open_session(client_pub) {
                Ok(binding) => binding.to_vec(),
                Err(_) => Vec::new(),
            },
        )?;
        if binding.is_empty() {
            return Err(XSearchError::Crypto(
                xsearch_crypto::CryptoError::WeakPublicKey,
            ));
        }
        let quote = self.enclave.quote(&binding)?;
        let enclave_pub = self.enclave.ecall_shared("identity", &[], |state, _, _| {
            state.identity_pub().as_bytes().to_vec()
        })?;
        let enclave_pub: [u8; 32] = enclave_pub
            .try_into()
            .map_err(|_| XSearchError::Protocol("bad identity key length".into()))?;
        Ok(HandshakeResponse {
            enclave_pub: PublicKey(enclave_pub),
            quote,
        })
    }

    /// Serves one encrypted request end to end (the `request` ecall with
    /// a live engine behind the ocalls).
    ///
    /// # Errors
    ///
    /// See [`EnclaveState::request`].
    pub fn request(
        &self,
        client_pub: &[u8; 32],
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, XSearchError> {
        self.enclave_request(client_pub, ciphertext, |subqueries, k_each| {
            self.engine.search_merged(subqueries, k_each)
        })
    }

    /// Serves one encrypted request without contacting the engine — the
    /// paper's Fig 5 saturation setup ("configured to reply immediately
    /// to requests"): full decryption, obfuscation, filtering and
    /// re-encryption work, no engine round trip.
    ///
    /// # Errors
    ///
    /// See [`EnclaveState::request`].
    pub fn request_echo(
        &self,
        client_pub: &[u8; 32],
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, XSearchError> {
        self.enclave_request(client_pub, ciphertext, |_, _| Vec::new())
    }

    fn enclave_request<F>(
        &self,
        client_pub: &[u8; 32],
        ciphertext: &[u8],
        fetch: F,
    ) -> Result<Vec<u8>, XSearchError>
    where
        F: FnOnce(&[std::sync::Arc<str>], usize) -> Vec<xsearch_engine::engine::SearchResult>,
    {
        let mut outcome: Result<Vec<u8>, XSearchError> = Err(XSearchError::UnknownSession);
        let _ = self
            .enclave
            .ecall_shared("request", ciphertext, |state, input, port| {
                outcome = state.request(client_pub, input, port, fetch);
                outcome.clone().unwrap_or_default()
            })?;
        outcome
    }

    /// Pre-populates the past-query table (experiment warm-up). The whole
    /// batch crosses the boundary in **one** `seed` ecall (length-prefixed
    /// wire batch) — Fig 5 warms 10k queries, which used to cost 10k
    /// crossings.
    pub fn seed_history<'a, I: IntoIterator<Item = &'a str>>(&self, queries: I) {
        let payload = crate::wire::encode_query_batch(queries);
        let _ = self
            .enclave
            .ecall_shared("seed", &payload, |state, input, _| {
                let seeded = state.seed_history_batch(input).unwrap_or(0);
                (seeded as u64).to_le_bytes().to_vec()
            });
    }

    /// Current size of the in-enclave history.
    #[must_use]
    pub fn history_len(&self) -> usize {
        let out = self
            .enclave
            .ecall_shared("history_len", &[], |state, _, _| {
                (state.history().len() as u64).to_le_bytes().to_vec()
            })
            .expect("ecall cannot fail in this model");
        u64::from_le_bytes(out.try_into().expect("8 bytes")) as usize
    }

    /// History memory in bytes (the Fig 6 measurement).
    #[must_use]
    pub fn history_memory_bytes(&self) -> usize {
        let out = self
            .enclave
            .ecall_shared("history_mem", &[], |state, _, _| {
                (state.history().memory_bytes() as u64)
                    .to_le_bytes()
                    .to_vec()
            })
            .expect("ecall cannot fail in this model");
        u64::from_le_bytes(out.try_into().expect("8 bytes")) as usize
    }

    /// The enclave's boundary counters.
    #[must_use]
    pub fn boundary(&self) -> Arc<BoundaryStats> {
        self.enclave.boundary()
    }

    /// The enclave's EPC gauge.
    #[must_use]
    pub fn epc(&self) -> Arc<EpcGauge> {
        self.enclave.epc()
    }

    /// The engine this proxy forwards to.
    #[must_use]
    pub fn engine(&self) -> &Arc<SearchEngine> {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsearch_engine::corpus::CorpusConfig;

    fn proxy() -> (XSearchProxy, AttestationService) {
        let ias = AttestationService::from_seed(11);
        let engine = Arc::new(SearchEngine::build(&CorpusConfig {
            docs_per_topic: 10,
            ..Default::default()
        }));
        let proxy = XSearchProxy::launch(
            XSearchConfig {
                k: 2,
                history_capacity: 1000,
                ..Default::default()
            },
            engine,
            &ias,
        );
        (proxy, ias)
    }

    #[test]
    fn two_proxies_with_same_code_share_measurement() {
        let (a, _) = proxy();
        let (b, _) = proxy();
        assert_eq!(a.expected_measurement(), b.expected_measurement());
    }

    #[test]
    fn handshake_produces_verifiable_quote() {
        let (p, ias) = proxy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let client = xsearch_crypto::x25519::StaticSecret::random(&mut rng);
        let resp = p.handshake(client.public_key()).unwrap();
        assert!(ias
            .verify_expecting(&resp.quote, p.expected_measurement())
            .is_ok());
        // The quote binds exactly this key pair.
        let expected_binding =
            crate::session::channel_binding(&resp.enclave_pub, &client.public_key());
        assert_eq!(resp.quote.report_data, expected_binding);
    }

    #[test]
    fn seed_and_len_roundtrip() {
        let (p, _) = proxy();
        p.seed_history(["a", "b", "c"]);
        assert_eq!(p.history_len(), 3);
        assert!(p.history_memory_bytes() > 0);
    }

    #[test]
    fn seeding_is_one_boundary_crossing() {
        let (p, _) = proxy();
        let warm: Vec<String> = (0..500).map(|i| format!("warm query {i}")).collect();
        let before = p.boundary().ecalls();
        p.seed_history(warm.iter().map(String::as_str));
        assert_eq!(
            p.boundary().ecalls() - before,
            1,
            "the whole warm-up batch must cross in a single seed ecall"
        );
        assert_eq!(p.history_len(), 500);
    }

    use rand::SeedableRng;
}
