//! The untrusted proxy host.
//!
//! Runs on a public cloud node: it owns the enclave, relays ciphertext
//! between brokers and the enclave's ecalls, and provides the untrusted
//! side of the ocall interface (the socket to the search engine). It
//! never sees a plaintext original query — only the obfuscated form the
//! enclave deliberately emits toward the engine.

use crate::config::XSearchConfig;
use crate::enclave_app::{EnclaveState, ENCLAVE_CODE_V1};
use crate::error::XSearchError;
use crate::persistence::HistoryVault;
use crate::session::registration_binding;
use rand::RngCore;
use std::sync::Arc;
use std::time::Duration;
use xsearch_crypto::x25519::PublicKey;
use xsearch_engine::engine::SearchEngine;
use xsearch_engine::pool::MAX_WORKERS;
use xsearch_engine::service::EngineService;
use xsearch_net_sim::fault::FaultInjector;
use xsearch_net_sim::DelayModel;
use xsearch_sgx_sim::attestation::{AttestationService, Quote};
use xsearch_sgx_sim::boundary::BoundaryStats;
use xsearch_sgx_sim::enclave::{Enclave, EnclaveBuilder};
use xsearch_sgx_sim::epc::EpcGauge;
use xsearch_sgx_sim::error::SgxError;
use xsearch_sgx_sim::measurement::Measurement;
use xsearch_sgx_sim::sealed::SealedBlob;
use xsearch_telemetry::{EnclaveScope, Registry};

/// The handshake response a broker receives.
#[derive(Debug, Clone)]
pub struct HandshakeResponse {
    /// The enclave's channel public key.
    pub enclave_pub: PublicKey,
    /// Attestation quote binding the key pair to the enclave code.
    pub quote: Quote,
}

/// An X-Search proxy node: enclave + engine uplink.
///
/// The uplink is an [`EngineService`]: a sharded worker pool that issues
/// the k+1 obfuscated sub-queries **concurrently** (the fan-out the paper
/// performs against Bing), plus an optional service-time model whose
/// per-sub-query delays attach to those actual parallel executions.
pub struct XSearchProxy {
    enclave: Enclave<EnclaveState>,
    service: EngineService,
    /// Chaos hook: when installed, every request-path response consults
    /// the injector for a gray-failure / corruption decision at the
    /// ecall boundary. `None` (the default) is a single branch — the
    /// production path pays nothing.
    fault: Option<Arc<dyn FaultInjector>>,
    /// This node's metrics registry: the enclave's [`EnclaveScope`]
    /// aggregates plus host-side poll collectors over the boundary, EPC
    /// and engine-uplink accounting atomics. `http_front` renders it at
    /// `/metrics`.
    registry: Arc<Registry>,
}

impl std::fmt::Debug for XSearchProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XSearchProxy")
            .field("measurement", &self.enclave.measurement())
            .finish()
    }
}

impl XSearchProxy {
    /// Launches the proxy: builds the enclave from the canonical code,
    /// provisions it for attestation, and runs the `init` ecall. The
    /// engine uplink gets a worker pool sized to the configured fan-out
    /// (k+1 sub-queries per request) and no modeled service time — the
    /// in-process engine answers at compute speed.
    #[must_use]
    pub fn launch(
        config: XSearchConfig,
        engine: Arc<SearchEngine>,
        ias: &AttestationService,
    ) -> Self {
        let workers = (config.k + 1).clamp(1, MAX_WORKERS);
        let service = EngineService::with_workers(
            engine,
            DelayModel::Constant(Duration::ZERO),
            config.seed,
            workers,
        );
        Self::launch_with_service(config, service, ias)
    }

    /// Launches the proxy with an explicit engine uplink — the end-to-end
    /// harnesses pass an [`EngineService`] carrying the calibrated WAN
    /// service-time model (or the serial baseline evaluator), so the
    /// modeled engine delay is produced *inside* the request pipeline by
    /// the executions that actually ran.
    #[must_use]
    pub fn launch_with_service(
        config: XSearchConfig,
        service: EngineService,
        ias: &AttestationService,
    ) -> Self {
        let registry = Arc::new(Registry::new());
        // The privacy partition: the enclave never touches the registry —
        // it receives this scope of pre-registered numeric-only handles,
        // built out here before the enclave exists.
        let scope = EnclaveScope::register(&registry);
        let enclave = EnclaveBuilder::new("xsearch-proxy")
            .with_code(ENCLAVE_CODE_V1)
            .with_provisioning_key(ias.provisioning_key())
            .build_with(|epc, cost| {
                EnclaveState::init_instrumented(config, epc, cost, Some(scope))
            });
        // Host-side collectors: read existing accounting atomics at
        // snapshot time, so the instrumented request path pays nothing.
        let boundary = enclave.boundary();
        registry.poll(
            "xsearch_boundary_ecalls",
            "Enclave transitions (ecalls) performed",
            &[],
            move || boundary.ecalls() as f64,
        );
        let boundary = enclave.boundary();
        registry.poll(
            "xsearch_boundary_ocalls",
            "Ocalls performed across the boundary",
            &[],
            move || boundary.ocalls() as f64,
        );
        let epc = enclave.epc();
        registry.poll(
            "xsearch_epc_used_bytes",
            "EPC-protected memory currently in use",
            &[],
            move || epc.used() as f64,
        );
        let (accounted_ns, fetch_wall_ns) = service.accounting_handles();
        registry.poll(
            "xsearch_engine_accounted_delay_us",
            "Modeled engine service time charged, microseconds",
            &[],
            move || accounted_ns.load(std::sync::atomic::Ordering::Relaxed) as f64 / 1e3,
        );
        registry.poll(
            "xsearch_engine_fetch_wall_us",
            "Caller wall time spent inside engine evaluations, microseconds",
            &[],
            move || fetch_wall_ns.load(std::sync::atomic::Ordering::Relaxed) as f64 / 1e3,
        );
        XSearchProxy {
            enclave,
            service,
            fault: None,
            registry,
        }
    }

    /// This node's metrics registry (enclave aggregates + host-side
    /// boundary/EPC/engine collectors).
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Installs a deterministic fault injector at the ecall boundary
    /// (see [`FaultInjector`]). Test/chaos API: the injector decides,
    /// per response, whether the reply is lost after execution (gray
    /// failure) or corrupted in flight.
    pub fn set_fault_injector(&mut self, injector: Arc<dyn FaultInjector>) {
        self.fault = Some(injector);
    }

    /// The measurement a correctly built proxy enclave must present —
    /// what brokers pin.
    #[must_use]
    pub fn expected_measurement(&self) -> Measurement {
        self.enclave.measurement()
    }

    /// Handshake: opens a session for `client_pub` inside the enclave and
    /// returns the enclave key plus a quote over the channel binding.
    ///
    /// # Errors
    ///
    /// Propagates enclave/crypto failures (e.g. a low-order client key).
    pub fn handshake(&self, client_pub: PublicKey) -> Result<HandshakeResponse, XSearchError> {
        let binding = self.enclave.ecall_shared(
            "handshake",
            client_pub.as_bytes(),
            |state, _, _| match state.open_session(client_pub) {
                Ok(binding) => binding.to_vec(),
                Err(_) => Vec::new(),
            },
        )?;
        if binding.is_empty() {
            return Err(XSearchError::Crypto(
                xsearch_crypto::CryptoError::WeakPublicKey,
            ));
        }
        let quote = self.enclave.quote(&binding)?;
        let enclave_pub = self.identity_pub()?;
        Ok(HandshakeResponse { enclave_pub, quote })
    }

    /// Fetches the enclave's channel identity key (the `identity` ecall).
    fn identity_pub(&self) -> Result<PublicKey, XSearchError> {
        let enclave_pub = self.enclave.ecall_shared("identity", &[], |state, _, _| {
            state.identity_pub().as_bytes().to_vec()
        })?;
        let enclave_pub: [u8; 32] = enclave_pub
            .try_into()
            .map_err(|_| XSearchError::Protocol("bad identity key length".into()))?;
        Ok(PublicKey(enclave_pub))
    }

    /// Produces this replica's registry-enrollment credentials: its
    /// channel identity key plus a quote binding that key to the fleet
    /// registry's challenge `nonce`
    /// (see [`crate::session::registration_binding`]). The registry
    /// verifies the quote before any traffic is routed to this replica;
    /// the nonce makes each enrollment quote single-use, so deregistered
    /// replicas cannot rejoin by replaying an old quote.
    ///
    /// # Errors
    ///
    /// [`XSearchError::Sgx`] when the platform holds no quoting key.
    pub fn enrollment_quote(&self, nonce: &[u8; 32]) -> Result<(PublicKey, Quote), XSearchError> {
        let identity = self.identity_pub()?;
        let quote = self
            .enclave
            .quote(&registration_binding(&identity, nonce))?;
        Ok((identity, quote))
    }

    /// Seals a snapshot of the in-enclave history through `vault` (the
    /// `seal_history` ecall): the snapshot is serialized and encrypted
    /// *inside* the enclave; only the opaque blob crosses the boundary,
    /// and the boundary counters are charged its exact encoded size.
    pub fn seal_history_snapshot<R: RngCore>(
        &self,
        vault: &HistoryVault,
        rng: &mut R,
    ) -> SealedBlob {
        let mut sealed = None;
        let _ = self
            .enclave
            .ecall_shared("seal_history", &[], |state, _, _| {
                let blob = vault.seal(state.history(), rng);
                let encoded = blob.encode();
                sealed = Some(blob);
                encoded
            });
        sealed.expect("ecall cannot fail in this model")
    }

    /// Restores a sealed history snapshot into the live in-enclave table
    /// (the `restore_history` ecall) — the failover path: a successor
    /// replica adopts the window a dead replica's vault migrated over.
    /// Returns the number of queries restored.
    ///
    /// # Errors
    ///
    /// [`XSearchError::Sgx`] wrapping [`SgxError::RolledBack`] for a
    /// stale blob or [`SgxError::UnsealFailed`] for a foreign or
    /// tampered one.
    pub fn restore_history_blob(
        &self,
        vault: &HistoryVault,
        blob: &SealedBlob,
    ) -> Result<usize, XSearchError> {
        self.restore_ecall("restore_history", blob, |history, parsed| {
            vault.restore(history, parsed)
        })
    }

    /// Shared boundary scaffolding of the two restore-style ecalls: the
    /// encoded blob crosses in, `restore` runs against the live history
    /// inside the enclave, the restored count comes back.
    fn restore_ecall(
        &self,
        name: &str,
        blob: &SealedBlob,
        restore: impl FnOnce(&crate::history::QueryHistory, &SealedBlob) -> Result<usize, SgxError>,
    ) -> Result<usize, XSearchError> {
        let payload = blob.encode();
        let mut outcome: Result<usize, SgxError> = Err(SgxError::UnsealFailed);
        let _ = self
            .enclave
            .ecall_shared(name, &payload, |state, input, _| {
                outcome =
                    SealedBlob::decode(input).and_then(|parsed| restore(state.history(), &parsed));
                Vec::new()
            })?;
        outcome.map_err(XSearchError::Sgx)
    }

    /// Serves one encrypted request end to end (the `request` ecall with
    /// a live engine behind the ocalls).
    ///
    /// # Errors
    ///
    /// See [`EnclaveState::request`].
    pub fn request(
        &self,
        client_pub: &[u8; 32],
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, XSearchError> {
        self.enclave_request(client_pub, ciphertext, |subqueries, k_each| {
            self.service.search_merged(subqueries, k_each).0
        })
    }

    /// Serves a whole batch of encrypted requests in **one** `proxy_batch`
    /// ecall (each entry still performs its own ocall sequence toward the
    /// engine). Entries fail independently; the outer `Result` only
    /// covers the batch envelope itself.
    ///
    /// # Errors
    ///
    /// [`XSearchError::Protocol`] for a malformed batch envelope;
    /// per-entry errors are returned inside the vector.
    pub fn request_batch(
        &self,
        requests: &[([u8; 32], Vec<u8>)],
    ) -> Result<Vec<Result<Vec<u8>, XSearchError>>, XSearchError> {
        self.request_batch_refs(requests.iter().map(|(pk, ct)| (pk, ct.as_slice())))
    }

    /// Borrowing form of [`XSearchProxy::request_batch`]: accepts the
    /// batch as `(&client_pub, &ciphertext)` references so a router that
    /// coalesces requests owned by many client threads can put them on
    /// the wire without first copying them into owned tuples.
    ///
    /// # Errors
    ///
    /// See [`XSearchProxy::request_batch`].
    pub fn request_batch_refs<'a, I>(
        &self,
        requests: I,
    ) -> Result<Vec<Result<Vec<u8>, XSearchError>>, XSearchError>
    where
        I: IntoIterator<Item = (&'a [u8; 32], &'a [u8])>,
    {
        self.enclave_request_batch(requests, |subqueries, k_each| {
            self.service.search_merged(subqueries, k_each).0
        })
    }

    /// The batch form of [`XSearchProxy::request_echo`]: full per-entry
    /// crypto/obfuscation/filtering work, no engine round trips, one
    /// enclave transition for the whole batch.
    ///
    /// # Errors
    ///
    /// See [`XSearchProxy::request_batch`].
    pub fn request_batch_echo(
        &self,
        requests: &[([u8; 32], Vec<u8>)],
    ) -> Result<Vec<Result<Vec<u8>, XSearchError>>, XSearchError> {
        self.request_batch_echo_refs(requests.iter().map(|(pk, ct)| (pk, ct.as_slice())))
    }

    /// Borrowing form of [`XSearchProxy::request_batch_echo`].
    ///
    /// # Errors
    ///
    /// See [`XSearchProxy::request_batch`].
    pub fn request_batch_echo_refs<'a, I>(
        &self,
        requests: I,
    ) -> Result<Vec<Result<Vec<u8>, XSearchError>>, XSearchError>
    where
        I: IntoIterator<Item = (&'a [u8; 32], &'a [u8])>,
    {
        self.enclave_request_batch(requests, |_, _| Vec::new())
    }

    fn enclave_request_batch<'a, I, F>(
        &self,
        requests: I,
        fetch: F,
    ) -> Result<Vec<Result<Vec<u8>, XSearchError>>, XSearchError>
    where
        I: IntoIterator<Item = (&'a [u8; 32], &'a [u8])>,
        F: Fn(&[std::sync::Arc<str>], usize) -> Vec<xsearch_engine::engine::SearchResult>,
    {
        let payload = crate::wire::encode_request_batch(requests);
        let mut envelope: Result<(), XSearchError> = Ok(());
        let encoded =
            self.enclave
                .ecall_shared("proxy_batch", &payload, |state, input, port| {
                    match state.request_batch(input, port, &fetch) {
                        Ok(encoded) => encoded,
                        Err(e) => {
                            envelope = Err(e);
                            Vec::new()
                        }
                    }
                })?;
        envelope?;
        let mut responses = crate::wire::decode_response_batch(&encoded)?;
        if self.fault.is_some() {
            for response in &mut responses {
                self.inject_fault(response);
            }
        }
        Ok(responses)
    }

    /// Applies one ecall-boundary fault decision to a response in place.
    /// Gray failure: the enclave did the work (the session's counters
    /// advanced) but the caller sees an error — exactly the ambiguity a
    /// real timeout produces, which is why the client must re-attest.
    /// Corruption: one flipped ciphertext byte, so the client's AEAD
    /// open fails authentication.
    fn inject_fault(&self, response: &mut Result<Vec<u8>, XSearchError>) {
        let Some(injector) = &self.fault else { return };
        let fault = injector.ecall_fault();
        if let Ok(payload) = response {
            if fault.fail {
                *response = Err(XSearchError::Protocol(
                    "injected gray failure: response lost at the ecall boundary".into(),
                ));
            } else if fault.corrupt {
                if let Some(byte) = payload.last_mut() {
                    *byte ^= 0x40;
                }
            }
        }
    }

    /// Serves one encrypted request without contacting the engine — the
    /// paper's Fig 5 saturation setup ("configured to reply immediately
    /// to requests"): full decryption, obfuscation, filtering and
    /// re-encryption work, no engine round trip.
    ///
    /// # Errors
    ///
    /// See [`EnclaveState::request`].
    pub fn request_echo(
        &self,
        client_pub: &[u8; 32],
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, XSearchError> {
        self.enclave_request(client_pub, ciphertext, |_, _| Vec::new())
    }

    fn enclave_request<F>(
        &self,
        client_pub: &[u8; 32],
        ciphertext: &[u8],
        fetch: F,
    ) -> Result<Vec<u8>, XSearchError>
    where
        F: FnOnce(&[std::sync::Arc<str>], usize) -> Vec<xsearch_engine::engine::SearchResult>,
    {
        let mut outcome: Result<Vec<u8>, XSearchError> = Err(XSearchError::UnknownSession);
        let _ = self
            .enclave
            .ecall_shared("request", ciphertext, |state, input, port| {
                outcome = state.request(client_pub, input, port, fetch);
                outcome.clone().unwrap_or_default()
            })?;
        if self.fault.is_some() {
            self.inject_fault(&mut outcome);
        }
        outcome
    }

    /// Sets the enclave's graceful-degradation level (the `set_degrade`
    /// ecall): level `n` shrinks the fake-query count to
    /// `max(1, k - n)`, trading obfuscation strength for capacity while
    /// the replica is browning out. Level 0 restores full `k`.
    pub fn set_degrade_level(&self, level: usize) {
        let _ = self.enclave.ecall_shared(
            "set_degrade",
            &(level as u64).to_le_bytes(),
            |state, input, _| {
                let level = input.try_into().map(u64::from_le_bytes).unwrap_or_default() as usize;
                state.set_degrade_level(level);
                Vec::new()
            },
        );
    }

    /// `(current degrade level, requests served with a reduced k)` —
    /// the observable cost of the degradation ladder, surfaced so the
    /// chaos bench can report how much obfuscation strength was traded
    /// for availability.
    #[must_use]
    pub fn degrade_stats(&self) -> (usize, u64) {
        let out = self
            .enclave
            .ecall_shared("degrade_stats", &[], |state, _, _| {
                let mut bytes = Vec::with_capacity(16);
                bytes.extend_from_slice(&(state.degrade_level() as u64).to_le_bytes());
                bytes.extend_from_slice(&state.degraded_served().to_le_bytes());
                bytes
            })
            .expect("ecall cannot fail in this model");
        let level = u64::from_le_bytes(out[..8].try_into().expect("8 bytes")) as usize;
        let served = u64::from_le_bytes(out[8..].try_into().expect("8 bytes"));
        (level, served)
    }

    /// Pre-populates the past-query table (experiment warm-up). The whole
    /// batch crosses the boundary in **one** `seed` ecall (length-prefixed
    /// wire batch) — Fig 5 warms 10k queries, which used to cost 10k
    /// crossings.
    pub fn seed_history<'a, I: IntoIterator<Item = &'a str>>(&self, queries: I) {
        let payload = crate::wire::encode_query_batch(queries);
        let _ = self
            .enclave
            .ecall_shared("seed", &payload, |state, input, _| {
                let seeded = state.seed_history_batch(input).unwrap_or(0);
                (seeded as u64).to_le_bytes().to_vec()
            });
    }

    /// Closes `client_pub`'s enclave session (the `close_session`
    /// ecall). The front tier calls this when the client's connection
    /// dies, so torn churn cannot strand session state; returns whether
    /// a session existed.
    pub fn close_session(&self, client_pub: &[u8; 32]) -> bool {
        let out = self
            .enclave
            .ecall_shared("close_session", client_pub, |state, input, _| {
                let key: [u8; 32] = match input.try_into() {
                    Ok(k) => k,
                    Err(_) => return vec![0],
                };
                vec![u8::from(state.close_session(&key))]
            })
            .expect("ecall cannot fail in this model");
        out == [1]
    }

    /// Live enclave sessions (the `session_count` ecall) — an aggregate
    /// count, no keys cross the boundary.
    #[must_use]
    pub fn session_count(&self) -> usize {
        let out = self
            .enclave
            .ecall_shared("session_count", &[], |state, _, _| {
                (state.session_count() as u64).to_le_bytes().to_vec()
            })
            .expect("ecall cannot fail in this model");
        u64::from_le_bytes(out.try_into().expect("8 bytes")) as usize
    }

    /// Runs one TTL reap sweep over the enclave session table (the
    /// `reap_sessions` ecall): advances the session epoch and removes
    /// sessions idle for more than `ttl` sweeps. Returns how many were
    /// removed. See [`crate::enclave_app::EnclaveState::reap_sessions`].
    pub fn reap_sessions(&self, ttl: u64) -> usize {
        let out = self
            .enclave
            .ecall_shared("reap_sessions", &ttl.to_le_bytes(), |state, input, _| {
                let ttl = input.try_into().map(u64::from_le_bytes).unwrap_or(0);
                (state.reap_sessions(ttl) as u64).to_le_bytes().to_vec()
            })
            .expect("ecall cannot fail in this model");
        u64::from_le_bytes(out.try_into().expect("8 bytes")) as usize
    }

    /// Total sessions removed by reap sweeps since launch.
    #[must_use]
    pub fn sessions_reaped(&self) -> u64 {
        let out = self
            .enclave
            .ecall_shared("sessions_reaped", &[], |state, _, _| {
                state.sessions_reaped().to_le_bytes().to_vec()
            })
            .expect("ecall cannot fail in this model");
        u64::from_le_bytes(out.try_into().expect("8 bytes"))
    }

    /// Current size of the in-enclave history.
    #[must_use]
    pub fn history_len(&self) -> usize {
        let out = self
            .enclave
            .ecall_shared("history_len", &[], |state, _, _| {
                (state.history().len() as u64).to_le_bytes().to_vec()
            })
            .expect("ecall cannot fail in this model");
        u64::from_le_bytes(out.try_into().expect("8 bytes")) as usize
    }

    /// History memory in bytes (the Fig 6 measurement).
    #[must_use]
    pub fn history_memory_bytes(&self) -> usize {
        let out = self
            .enclave
            .ecall_shared("history_mem", &[], |state, _, _| {
                (state.history().memory_bytes() as u64)
                    .to_le_bytes()
                    .to_vec()
            })
            .expect("ecall cannot fail in this model");
        u64::from_le_bytes(out.try_into().expect("8 bytes")) as usize
    }

    /// Adopts a peer's sealed window into the live in-enclave table (the
    /// `migrate_in` ecall): unseals under the **peer's** vault,
    /// atomically claims the blob's version there (exactly one consumer
    /// ever wins, so racing adopters cannot duplicate the window and a
    /// restarted peer cannot roll back to it), and merges the window.
    /// Conceptually the unseal happens inside this enclave after a
    /// vault-key transfer over an attested channel; the host only ever
    /// relays ciphertext.
    ///
    /// Returns the number of adopted queries.
    ///
    /// # Errors
    ///
    /// [`XSearchError::Protocol`] when the peer vault's measurement is
    /// not this enclave's (history only moves between replicas running
    /// identical code); [`XSearchError::Sgx`] for stale
    /// ([`SgxError::RolledBack`]) or foreign/tampered blobs.
    pub fn adopt_migrated_history(
        &self,
        src: &HistoryVault,
        blob: &SealedBlob,
    ) -> Result<usize, XSearchError> {
        if src.measurement() != self.expected_measurement() {
            return Err(XSearchError::Protocol(
                "migrated history comes from a different enclave code".into(),
            ));
        }
        self.restore_ecall("migrate_in", blob, |history, parsed| {
            crate::persistence::restore_migrated(history, parsed, src)
        })
    }

    /// Plaintext snapshot of the in-enclave window, oldest first.
    ///
    /// **Experiment/test API**: a production enclave never exposes its
    /// window in plaintext — the reproduction uses this to assert window
    /// semantics (Fig 6 contents, and that fleet failover migration
    /// preserves the decoy pool).
    #[must_use]
    pub fn history_snapshot(&self) -> Vec<String> {
        let out = self
            .enclave
            .ecall_shared("history_snapshot", &[], |state, _, _| {
                let snapshot = state.history().snapshot();
                crate::wire::encode_query_batch(snapshot.iter().map(String::as_str))
            })
            .expect("ecall cannot fail in this model");
        crate::wire::decode_query_batch(&out)
            .map(|queries| queries.into_iter().map(str::to_owned).collect())
            .unwrap_or_default()
    }

    /// The enclave's boundary counters.
    #[must_use]
    pub fn boundary(&self) -> Arc<BoundaryStats> {
        self.enclave.boundary()
    }

    /// The enclave's EPC gauge.
    #[must_use]
    pub fn epc(&self) -> Arc<EpcGauge> {
        self.enclave.epc()
    }

    /// The engine this proxy forwards to.
    #[must_use]
    pub fn engine(&self) -> &Arc<SearchEngine> {
        self.service.engine()
    }

    /// The engine uplink (pool + service-time model).
    #[must_use]
    pub fn engine_service(&self) -> &EngineService {
        &self.service
    }

    /// Total modeled engine service time charged to this proxy's requests
    /// so far. End-to-end harnesses read the delta around a request to
    /// attribute its engine leg (the modeled time now comes from the
    /// actual parallel sub-query executions, not an external draw).
    #[must_use]
    pub fn accounted_engine_delay(&self) -> Duration {
        self.service.accounted_delay()
    }

    /// Wall time callers have actually spent inside the engine uplink's
    /// evaluations. [`XSearchProxy::accounted_engine_delay`] already
    /// includes each execution's measured compute, and that same time
    /// also elapses on the caller's clock — harnesses that add the
    /// modeled engine leg to a measured request wall time subtract this
    /// delta so the in-process evaluation is not counted twice.
    #[must_use]
    pub fn accounted_engine_fetch_wall(&self) -> Duration {
        self.service.accounted_fetch_wall()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsearch_engine::corpus::CorpusConfig;

    fn proxy() -> (XSearchProxy, AttestationService) {
        let ias = AttestationService::from_seed(11);
        let engine = Arc::new(SearchEngine::build(&CorpusConfig {
            docs_per_topic: 10,
            ..Default::default()
        }));
        let proxy = XSearchProxy::launch(
            XSearchConfig {
                k: 2,
                history_capacity: 1000,
                ..Default::default()
            },
            engine,
            &ias,
        );
        (proxy, ias)
    }

    #[test]
    fn two_proxies_with_same_code_share_measurement() {
        let (a, _) = proxy();
        let (b, _) = proxy();
        assert_eq!(a.expected_measurement(), b.expected_measurement());
    }

    #[test]
    fn handshake_produces_verifiable_quote() {
        let (p, ias) = proxy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let client = xsearch_crypto::x25519::StaticSecret::random(&mut rng);
        let resp = p.handshake(client.public_key()).unwrap();
        assert!(ias
            .verify_expecting(&resp.quote, p.expected_measurement())
            .is_ok());
        // The quote binds exactly this key pair.
        let expected_binding =
            crate::session::channel_binding(&resp.enclave_pub, &client.public_key());
        assert_eq!(resp.quote.report_data, expected_binding);
    }

    #[test]
    fn seed_and_len_roundtrip() {
        let (p, _) = proxy();
        p.seed_history(["a", "b", "c"]);
        assert_eq!(p.history_len(), 3);
        assert!(p.history_memory_bytes() > 0);
    }

    #[test]
    fn enrollment_quote_binds_identity_and_nonce() {
        let (p, ias) = proxy();
        let nonce = [7u8; 32];
        let (identity, quote) = p.enrollment_quote(&nonce).unwrap();
        assert!(ias
            .verify_expecting(&quote, p.expected_measurement())
            .is_ok());
        assert_eq!(
            quote.report_data,
            crate::session::registration_binding(&identity, &nonce)
        );
        // A different nonce yields a different (non-replayable) quote.
        let (_, other) = p.enrollment_quote(&[8u8; 32]).unwrap();
        assert_ne!(quote.report_data, other.report_data);
    }

    #[test]
    fn sealed_snapshot_roundtrips_through_a_successor() {
        use rand::rngs::StdRng;
        let (a, ias) = proxy();
        a.seed_history(["alpha", "beta", "gamma"]);
        let vault_a = crate::persistence::HistoryVault::new(
            xsearch_sgx_sim::sealed::SealingPlatform::from_seed(1),
            a.expected_measurement(),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let blob = a.seal_history_snapshot(&vault_a, &mut rng);
        assert_eq!(blob.version(), 1);

        // Successor replica on another platform: migrate, then restore.
        let engine = a.engine().clone();
        let b = XSearchProxy::launch(
            XSearchConfig {
                k: 2,
                history_capacity: 1000,
                ..Default::default()
            },
            engine,
            &ias,
        );
        let vault_b = crate::persistence::HistoryVault::new(
            xsearch_sgx_sim::sealed::SealingPlatform::from_seed(2),
            b.expected_measurement(),
        );
        let migrated =
            crate::persistence::migrate_history(&blob, &vault_a, &vault_b, &mut rng).unwrap();
        assert_eq!(b.restore_history_blob(&vault_b, &migrated).unwrap(), 3);
        assert_eq!(b.history_len(), 3);

        // Rollback protection: the pre-migration blob is dead at the
        // source, and a stale blob is dead at the successor.
        assert!(matches!(
            a.restore_history_blob(&vault_a, &blob),
            Err(XSearchError::Sgx(SgxError::RolledBack { .. }))
        ));
    }

    #[test]
    fn restore_rejects_garbage_blob_bytes() {
        let (p, _) = proxy();
        let vault = crate::persistence::HistoryVault::new(
            xsearch_sgx_sim::sealed::SealingPlatform::from_seed(1),
            p.expected_measurement(),
        );
        let bad = xsearch_sgx_sim::sealed::SealedBlob::decode(&[0u8; 24]).unwrap();
        assert_eq!(
            p.restore_history_blob(&vault, &bad),
            Err(XSearchError::Sgx(SgxError::UnsealFailed))
        );
    }

    #[test]
    fn batch_request_crosses_in_one_ecall_and_matches_individual() {
        use crate::broker::Broker;
        // Two identically seeded worlds: one serves requests one ecall
        // each, the other serves the same requests as a single batch.
        let (solo, ias_a) = proxy();
        let (batch, ias_b) = proxy();
        solo.seed_history(["warm a", "warm b", "warm c"]);
        batch.seed_history(["warm a", "warm b", "warm c"]);
        let queries = ["cheap flights", "hotel rome", "cruise deals"];

        let mut solo_brokers: Vec<Broker> = (0..3)
            .map(|i| Broker::attach(&solo, &ias_a, solo.expected_measurement(), 40 + i).unwrap())
            .collect();
        let solo_results: Vec<_> = solo_brokers
            .iter_mut()
            .zip(queries)
            .map(|(b, q)| b.search(&solo, q).unwrap())
            .collect();

        let mut batch_brokers: Vec<Broker> = (0..3)
            .map(|i| Broker::attach(&batch, &ias_b, batch.expected_measurement(), 40 + i).unwrap())
            .collect();
        let requests: Vec<([u8; 32], Vec<u8>)> = batch_brokers
            .iter_mut()
            .zip(queries)
            .map(|(b, q)| (*b.client_pub().as_bytes(), b.seal_query(q)))
            .collect();
        let ecalls_before = batch.boundary().ecalls();
        let responses = batch.request_batch(&requests).unwrap();
        assert_eq!(
            batch.boundary().ecalls() - ecalls_before,
            1,
            "the whole batch must cross in a single proxy_batch ecall"
        );
        let batch_results: Vec<_> = batch_brokers
            .iter_mut()
            .zip(&responses)
            .map(|(b, r)| b.open_results(r.as_ref().unwrap()).unwrap())
            .collect();
        assert_eq!(solo_results, batch_results);
    }

    #[test]
    fn batch_entries_fail_independently() {
        use crate::broker::Broker;
        let (p, ias) = proxy();
        p.seed_history(["warm a", "warm b"]);
        let mut broker = Broker::attach(&p, &ias, p.expected_measurement(), 50).unwrap();
        let good = (
            *broker.client_pub().as_bytes(),
            broker.seal_query("flights"),
        );
        let unknown = ([9u8; 32], b"junk".to_vec());
        let mut tampered_broker = Broker::attach(&p, &ias, p.expected_measurement(), 51).unwrap();
        let mut tampered = (
            *tampered_broker.client_pub().as_bytes(),
            tampered_broker.seal_query("secret"),
        );
        tampered.1[0] ^= 1;

        let responses = p.request_batch(&[good.clone(), unknown, tampered]).unwrap();
        assert!(broker.open_results(responses[0].as_ref().unwrap()).is_ok());
        assert_eq!(responses[1], Err(XSearchError::UnknownSession));
        assert!(matches!(responses[2], Err(XSearchError::Crypto(_))));
    }

    #[test]
    fn batch_echo_returns_empty_result_lists() {
        use crate::broker::Broker;
        let (p, ias) = proxy();
        p.seed_history(["warm a", "warm b", "warm c"]);
        let mut brokers: Vec<Broker> = (0..4)
            .map(|i| Broker::attach(&p, &ias, p.expected_measurement(), 60 + i).unwrap())
            .collect();
        let requests: Vec<([u8; 32], Vec<u8>)> = brokers
            .iter_mut()
            .enumerate()
            .map(|(i, b)| (*b.client_pub().as_bytes(), b.seal_query(&format!("q{i}"))))
            .collect();
        let responses = p.request_batch_echo(&requests).unwrap();
        for (b, r) in brokers.iter_mut().zip(&responses) {
            assert!(b.open_results(r.as_ref().unwrap()).unwrap().is_empty());
        }
        assert_eq!(p.history_len(), 3 + 4, "every batch entry lands in history");
    }

    #[test]
    fn malformed_batch_envelope_is_rejected_whole() {
        let (p, _) = proxy();
        let requests = [([1u8; 32], b"ct".to_vec())];
        let mut payload =
            crate::wire::encode_request_batch(requests.iter().map(|(pk, ct)| (pk, ct.as_slice())));
        payload.truncate(payload.len() - 1);
        // Drive the enclave entry directly with the truncated envelope.
        let out = p
            .enclave
            .ecall_shared("proxy_batch", &payload, |state, input, port| {
                assert!(state.request_batch(input, port, |_, _| Vec::new()).is_err());
                Vec::new()
            });
        assert!(out.is_ok());
    }

    #[test]
    fn seeding_is_one_boundary_crossing() {
        let (p, _) = proxy();
        let warm: Vec<String> = (0..500).map(|i| format!("warm query {i}")).collect();
        let before = p.boundary().ecalls();
        p.seed_history(warm.iter().map(String::as_str));
        assert_eq!(
            p.boundary().ecalls() - before,
            1,
            "the whole warm-up batch must cross in a single seed ecall"
        );
        assert_eq!(p.history_len(), 500);
    }

    use rand::SeedableRng;
}
