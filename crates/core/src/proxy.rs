//! The untrusted proxy host.
//!
//! Runs on a public cloud node: it owns the enclave, relays ciphertext
//! between brokers and the enclave's ecalls, and provides the untrusted
//! side of the ocall interface (the socket to the search engine). It
//! never sees a plaintext original query — only the obfuscated form the
//! enclave deliberately emits toward the engine.

use crate::config::XSearchConfig;
use crate::enclave_app::{EnclaveState, ENCLAVE_CODE_V1};
use crate::error::XSearchError;
use crate::persistence::HistoryVault;
use crate::session::registration_binding;
use rand::RngCore;
use std::sync::Arc;
use xsearch_crypto::x25519::PublicKey;
use xsearch_engine::engine::SearchEngine;
use xsearch_sgx_sim::attestation::{AttestationService, Quote};
use xsearch_sgx_sim::boundary::BoundaryStats;
use xsearch_sgx_sim::enclave::{Enclave, EnclaveBuilder};
use xsearch_sgx_sim::epc::EpcGauge;
use xsearch_sgx_sim::error::SgxError;
use xsearch_sgx_sim::measurement::Measurement;
use xsearch_sgx_sim::sealed::SealedBlob;

/// The handshake response a broker receives.
#[derive(Debug, Clone)]
pub struct HandshakeResponse {
    /// The enclave's channel public key.
    pub enclave_pub: PublicKey,
    /// Attestation quote binding the key pair to the enclave code.
    pub quote: Quote,
}

/// An X-Search proxy node: enclave + engine uplink.
pub struct XSearchProxy {
    enclave: Enclave<EnclaveState>,
    engine: Arc<SearchEngine>,
}

impl std::fmt::Debug for XSearchProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XSearchProxy")
            .field("measurement", &self.enclave.measurement())
            .finish()
    }
}

impl XSearchProxy {
    /// Launches the proxy: builds the enclave from the canonical code,
    /// provisions it for attestation, and runs the `init` ecall.
    #[must_use]
    pub fn launch(
        config: XSearchConfig,
        engine: Arc<SearchEngine>,
        ias: &AttestationService,
    ) -> Self {
        let enclave = EnclaveBuilder::new("xsearch-proxy")
            .with_code(ENCLAVE_CODE_V1)
            .with_provisioning_key(ias.provisioning_key())
            .build_with(|epc, cost| EnclaveState::init(config, epc, cost));
        XSearchProxy { enclave, engine }
    }

    /// The measurement a correctly built proxy enclave must present —
    /// what brokers pin.
    #[must_use]
    pub fn expected_measurement(&self) -> Measurement {
        self.enclave.measurement()
    }

    /// Handshake: opens a session for `client_pub` inside the enclave and
    /// returns the enclave key plus a quote over the channel binding.
    ///
    /// # Errors
    ///
    /// Propagates enclave/crypto failures (e.g. a low-order client key).
    pub fn handshake(&self, client_pub: PublicKey) -> Result<HandshakeResponse, XSearchError> {
        let binding = self.enclave.ecall_shared(
            "handshake",
            client_pub.as_bytes(),
            |state, _, _| match state.open_session(client_pub) {
                Ok(binding) => binding.to_vec(),
                Err(_) => Vec::new(),
            },
        )?;
        if binding.is_empty() {
            return Err(XSearchError::Crypto(
                xsearch_crypto::CryptoError::WeakPublicKey,
            ));
        }
        let quote = self.enclave.quote(&binding)?;
        let enclave_pub = self.identity_pub()?;
        Ok(HandshakeResponse { enclave_pub, quote })
    }

    /// Fetches the enclave's channel identity key (the `identity` ecall).
    fn identity_pub(&self) -> Result<PublicKey, XSearchError> {
        let enclave_pub = self.enclave.ecall_shared("identity", &[], |state, _, _| {
            state.identity_pub().as_bytes().to_vec()
        })?;
        let enclave_pub: [u8; 32] = enclave_pub
            .try_into()
            .map_err(|_| XSearchError::Protocol("bad identity key length".into()))?;
        Ok(PublicKey(enclave_pub))
    }

    /// Produces this replica's registry-enrollment credentials: its
    /// channel identity key plus a quote binding that key to the fleet
    /// registry's challenge `nonce`
    /// (see [`crate::session::registration_binding`]). The registry
    /// verifies the quote before any traffic is routed to this replica;
    /// the nonce makes each enrollment quote single-use, so deregistered
    /// replicas cannot rejoin by replaying an old quote.
    ///
    /// # Errors
    ///
    /// [`XSearchError::Sgx`] when the platform holds no quoting key.
    pub fn enrollment_quote(&self, nonce: &[u8; 32]) -> Result<(PublicKey, Quote), XSearchError> {
        let identity = self.identity_pub()?;
        let quote = self
            .enclave
            .quote(&registration_binding(&identity, nonce))?;
        Ok((identity, quote))
    }

    /// Seals a snapshot of the in-enclave history through `vault` (the
    /// `seal_history` ecall): the snapshot is serialized and encrypted
    /// *inside* the enclave; only the opaque blob crosses the boundary,
    /// and the boundary counters are charged its exact encoded size.
    pub fn seal_history_snapshot<R: RngCore>(
        &self,
        vault: &HistoryVault,
        rng: &mut R,
    ) -> SealedBlob {
        let mut sealed = None;
        let _ = self
            .enclave
            .ecall_shared("seal_history", &[], |state, _, _| {
                let blob = vault.seal(state.history(), rng);
                let encoded = blob.encode();
                sealed = Some(blob);
                encoded
            });
        sealed.expect("ecall cannot fail in this model")
    }

    /// Restores a sealed history snapshot into the live in-enclave table
    /// (the `restore_history` ecall) — the failover path: a successor
    /// replica adopts the window a dead replica's vault migrated over.
    /// Returns the number of queries restored.
    ///
    /// # Errors
    ///
    /// [`XSearchError::Sgx`] wrapping [`SgxError::RolledBack`] for a
    /// stale blob or [`SgxError::UnsealFailed`] for a foreign or
    /// tampered one.
    pub fn restore_history_blob(
        &self,
        vault: &HistoryVault,
        blob: &SealedBlob,
    ) -> Result<usize, XSearchError> {
        self.restore_ecall("restore_history", blob, |history, parsed| {
            vault.restore(history, parsed)
        })
    }

    /// Shared boundary scaffolding of the two restore-style ecalls: the
    /// encoded blob crosses in, `restore` runs against the live history
    /// inside the enclave, the restored count comes back.
    fn restore_ecall(
        &self,
        name: &str,
        blob: &SealedBlob,
        restore: impl FnOnce(&crate::history::QueryHistory, &SealedBlob) -> Result<usize, SgxError>,
    ) -> Result<usize, XSearchError> {
        let payload = blob.encode();
        let mut outcome: Result<usize, SgxError> = Err(SgxError::UnsealFailed);
        let _ = self
            .enclave
            .ecall_shared(name, &payload, |state, input, _| {
                outcome =
                    SealedBlob::decode(input).and_then(|parsed| restore(state.history(), &parsed));
                Vec::new()
            })?;
        outcome.map_err(XSearchError::Sgx)
    }

    /// Serves one encrypted request end to end (the `request` ecall with
    /// a live engine behind the ocalls).
    ///
    /// # Errors
    ///
    /// See [`EnclaveState::request`].
    pub fn request(
        &self,
        client_pub: &[u8; 32],
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, XSearchError> {
        self.enclave_request(client_pub, ciphertext, |subqueries, k_each| {
            self.engine.search_merged(subqueries, k_each)
        })
    }

    /// Serves one encrypted request without contacting the engine — the
    /// paper's Fig 5 saturation setup ("configured to reply immediately
    /// to requests"): full decryption, obfuscation, filtering and
    /// re-encryption work, no engine round trip.
    ///
    /// # Errors
    ///
    /// See [`EnclaveState::request`].
    pub fn request_echo(
        &self,
        client_pub: &[u8; 32],
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, XSearchError> {
        self.enclave_request(client_pub, ciphertext, |_, _| Vec::new())
    }

    fn enclave_request<F>(
        &self,
        client_pub: &[u8; 32],
        ciphertext: &[u8],
        fetch: F,
    ) -> Result<Vec<u8>, XSearchError>
    where
        F: FnOnce(&[std::sync::Arc<str>], usize) -> Vec<xsearch_engine::engine::SearchResult>,
    {
        let mut outcome: Result<Vec<u8>, XSearchError> = Err(XSearchError::UnknownSession);
        let _ = self
            .enclave
            .ecall_shared("request", ciphertext, |state, input, port| {
                outcome = state.request(client_pub, input, port, fetch);
                outcome.clone().unwrap_or_default()
            })?;
        outcome
    }

    /// Pre-populates the past-query table (experiment warm-up). The whole
    /// batch crosses the boundary in **one** `seed` ecall (length-prefixed
    /// wire batch) — Fig 5 warms 10k queries, which used to cost 10k
    /// crossings.
    pub fn seed_history<'a, I: IntoIterator<Item = &'a str>>(&self, queries: I) {
        let payload = crate::wire::encode_query_batch(queries);
        let _ = self
            .enclave
            .ecall_shared("seed", &payload, |state, input, _| {
                let seeded = state.seed_history_batch(input).unwrap_or(0);
                (seeded as u64).to_le_bytes().to_vec()
            });
    }

    /// Current size of the in-enclave history.
    #[must_use]
    pub fn history_len(&self) -> usize {
        let out = self
            .enclave
            .ecall_shared("history_len", &[], |state, _, _| {
                (state.history().len() as u64).to_le_bytes().to_vec()
            })
            .expect("ecall cannot fail in this model");
        u64::from_le_bytes(out.try_into().expect("8 bytes")) as usize
    }

    /// History memory in bytes (the Fig 6 measurement).
    #[must_use]
    pub fn history_memory_bytes(&self) -> usize {
        let out = self
            .enclave
            .ecall_shared("history_mem", &[], |state, _, _| {
                (state.history().memory_bytes() as u64)
                    .to_le_bytes()
                    .to_vec()
            })
            .expect("ecall cannot fail in this model");
        u64::from_le_bytes(out.try_into().expect("8 bytes")) as usize
    }

    /// Adopts a peer's sealed window into the live in-enclave table (the
    /// `migrate_in` ecall): unseals under the **peer's** vault,
    /// atomically claims the blob's version there (exactly one consumer
    /// ever wins, so racing adopters cannot duplicate the window and a
    /// restarted peer cannot roll back to it), and merges the window.
    /// Conceptually the unseal happens inside this enclave after a
    /// vault-key transfer over an attested channel; the host only ever
    /// relays ciphertext.
    ///
    /// Returns the number of adopted queries.
    ///
    /// # Errors
    ///
    /// [`XSearchError::Protocol`] when the peer vault's measurement is
    /// not this enclave's (history only moves between replicas running
    /// identical code); [`XSearchError::Sgx`] for stale
    /// ([`SgxError::RolledBack`]) or foreign/tampered blobs.
    pub fn adopt_migrated_history(
        &self,
        src: &HistoryVault,
        blob: &SealedBlob,
    ) -> Result<usize, XSearchError> {
        if src.measurement() != self.expected_measurement() {
            return Err(XSearchError::Protocol(
                "migrated history comes from a different enclave code".into(),
            ));
        }
        self.restore_ecall("migrate_in", blob, |history, parsed| {
            crate::persistence::restore_migrated(history, parsed, src)
        })
    }

    /// Plaintext snapshot of the in-enclave window, oldest first.
    ///
    /// **Experiment/test API**: a production enclave never exposes its
    /// window in plaintext — the reproduction uses this to assert window
    /// semantics (Fig 6 contents, and that fleet failover migration
    /// preserves the decoy pool).
    #[must_use]
    pub fn history_snapshot(&self) -> Vec<String> {
        let out = self
            .enclave
            .ecall_shared("history_snapshot", &[], |state, _, _| {
                let snapshot = state.history().snapshot();
                crate::wire::encode_query_batch(snapshot.iter().map(String::as_str))
            })
            .expect("ecall cannot fail in this model");
        crate::wire::decode_query_batch(&out)
            .map(|queries| queries.into_iter().map(str::to_owned).collect())
            .unwrap_or_default()
    }

    /// The enclave's boundary counters.
    #[must_use]
    pub fn boundary(&self) -> Arc<BoundaryStats> {
        self.enclave.boundary()
    }

    /// The enclave's EPC gauge.
    #[must_use]
    pub fn epc(&self) -> Arc<EpcGauge> {
        self.enclave.epc()
    }

    /// The engine this proxy forwards to.
    #[must_use]
    pub fn engine(&self) -> &Arc<SearchEngine> {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsearch_engine::corpus::CorpusConfig;

    fn proxy() -> (XSearchProxy, AttestationService) {
        let ias = AttestationService::from_seed(11);
        let engine = Arc::new(SearchEngine::build(&CorpusConfig {
            docs_per_topic: 10,
            ..Default::default()
        }));
        let proxy = XSearchProxy::launch(
            XSearchConfig {
                k: 2,
                history_capacity: 1000,
                ..Default::default()
            },
            engine,
            &ias,
        );
        (proxy, ias)
    }

    #[test]
    fn two_proxies_with_same_code_share_measurement() {
        let (a, _) = proxy();
        let (b, _) = proxy();
        assert_eq!(a.expected_measurement(), b.expected_measurement());
    }

    #[test]
    fn handshake_produces_verifiable_quote() {
        let (p, ias) = proxy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let client = xsearch_crypto::x25519::StaticSecret::random(&mut rng);
        let resp = p.handshake(client.public_key()).unwrap();
        assert!(ias
            .verify_expecting(&resp.quote, p.expected_measurement())
            .is_ok());
        // The quote binds exactly this key pair.
        let expected_binding =
            crate::session::channel_binding(&resp.enclave_pub, &client.public_key());
        assert_eq!(resp.quote.report_data, expected_binding);
    }

    #[test]
    fn seed_and_len_roundtrip() {
        let (p, _) = proxy();
        p.seed_history(["a", "b", "c"]);
        assert_eq!(p.history_len(), 3);
        assert!(p.history_memory_bytes() > 0);
    }

    #[test]
    fn enrollment_quote_binds_identity_and_nonce() {
        let (p, ias) = proxy();
        let nonce = [7u8; 32];
        let (identity, quote) = p.enrollment_quote(&nonce).unwrap();
        assert!(ias
            .verify_expecting(&quote, p.expected_measurement())
            .is_ok());
        assert_eq!(
            quote.report_data,
            crate::session::registration_binding(&identity, &nonce)
        );
        // A different nonce yields a different (non-replayable) quote.
        let (_, other) = p.enrollment_quote(&[8u8; 32]).unwrap();
        assert_ne!(quote.report_data, other.report_data);
    }

    #[test]
    fn sealed_snapshot_roundtrips_through_a_successor() {
        use rand::rngs::StdRng;
        let (a, ias) = proxy();
        a.seed_history(["alpha", "beta", "gamma"]);
        let vault_a = crate::persistence::HistoryVault::new(
            xsearch_sgx_sim::sealed::SealingPlatform::from_seed(1),
            a.expected_measurement(),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let blob = a.seal_history_snapshot(&vault_a, &mut rng);
        assert_eq!(blob.version(), 1);

        // Successor replica on another platform: migrate, then restore.
        let engine = a.engine().clone();
        let b = XSearchProxy::launch(
            XSearchConfig {
                k: 2,
                history_capacity: 1000,
                ..Default::default()
            },
            engine,
            &ias,
        );
        let vault_b = crate::persistence::HistoryVault::new(
            xsearch_sgx_sim::sealed::SealingPlatform::from_seed(2),
            b.expected_measurement(),
        );
        let migrated =
            crate::persistence::migrate_history(&blob, &vault_a, &vault_b, &mut rng).unwrap();
        assert_eq!(b.restore_history_blob(&vault_b, &migrated).unwrap(), 3);
        assert_eq!(b.history_len(), 3);

        // Rollback protection: the pre-migration blob is dead at the
        // source, and a stale blob is dead at the successor.
        assert!(matches!(
            a.restore_history_blob(&vault_a, &blob),
            Err(XSearchError::Sgx(SgxError::RolledBack { .. }))
        ));
    }

    #[test]
    fn restore_rejects_garbage_blob_bytes() {
        let (p, _) = proxy();
        let vault = crate::persistence::HistoryVault::new(
            xsearch_sgx_sim::sealed::SealingPlatform::from_seed(1),
            p.expected_measurement(),
        );
        let bad = xsearch_sgx_sim::sealed::SealedBlob::decode(&[0u8; 24]).unwrap();
        assert_eq!(
            p.restore_history_blob(&vault, &bad),
            Err(XSearchError::Sgx(SgxError::UnsealFailed))
        );
    }

    #[test]
    fn seeding_is_one_boundary_crossing() {
        let (p, _) = proxy();
        let warm: Vec<String> = (0..500).map(|i| format!("warm query {i}")).collect();
        let before = p.boundary().ecalls();
        p.seed_history(warm.iter().map(String::as_str));
        assert_eq!(
            p.boundary().ecalls() - before,
            1,
            "the whole warm-up batch must cross in a single seed ecall"
        );
        assert_eq!(p.history_len(), 500);
    }

    use rand::SeedableRng;
}
