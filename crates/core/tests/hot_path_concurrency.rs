//! Multi-threaded stress of the de-serialized request hot path: many
//! broker threads drive one proxy concurrently. What must hold no matter
//! how the threads interleave:
//!
//! * every response decrypts under its own session (no nonce/session
//!   cross-talk between shards),
//! * the history window stays bounded at its capacity,
//! * the EPC byte accounting never drifts from the history's own
//!   running counter (charge/release stay paired under contention).

use std::sync::Arc;
use xsearch_core::broker::Broker;
use xsearch_core::config::XSearchConfig;
use xsearch_core::proxy::XSearchProxy;
use xsearch_engine::corpus::CorpusConfig;
use xsearch_engine::engine::SearchEngine;
use xsearch_sgx_sim::attestation::AttestationService;

const THREADS: usize = 8;
const REQUESTS_PER_THREAD: usize = 120;
const HISTORY_CAPACITY: usize = 64;

fn launch(k: usize) -> (XSearchProxy, AttestationService) {
    let ias = AttestationService::from_seed(77);
    let engine = Arc::new(SearchEngine::build(&CorpusConfig {
        docs_per_topic: 10,
        ..Default::default()
    }));
    let proxy = XSearchProxy::launch(
        XSearchConfig {
            k,
            history_capacity: HISTORY_CAPACITY,
            ..Default::default()
        },
        engine,
        &ias,
    );
    (proxy, ias)
}

#[test]
fn eight_broker_threads_share_one_proxy() {
    let (proxy, ias) = launch(3);
    proxy.seed_history(["warm one", "warm two", "warm three", "warm four"]);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let proxy = &proxy;
            let ias = &ias;
            scope.spawn(move || {
                let mut broker =
                    Broker::attach(proxy, ias, proxy.expected_measurement(), 1_000 + t as u64)
                        .unwrap();
                for i in 0..REQUESTS_PER_THREAD {
                    // Echo mode exercises the full enclave path (decrypt,
                    // obfuscate, history update, filter, re-encrypt); a
                    // successful return means the response decrypted.
                    let results = broker
                        .search_echo(proxy, &format!("thread {t} query {i}"))
                        .unwrap_or_else(|e| panic!("thread {t} request {i}: {e:?}"));
                    assert!(results.is_empty(), "echo mode returns no results");
                }
            });
        }
    });

    // History stays bounded and full (8×120 + warm-up ≫ capacity).
    assert_eq!(proxy.history_len(), HISTORY_CAPACITY);
    // EPC accounting never drifts: the gauge holds exactly what the
    // history's running byte counter says is stored.
    assert_eq!(proxy.history_memory_bytes(), proxy.epc().used());
}

#[test]
fn concurrent_handshakes_and_requests_interleave_safely() {
    let (proxy, ias) = launch(2);
    proxy.seed_history(["seed a", "seed b"]);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let proxy = &proxy;
            let ias = &ias;
            scope.spawn(move || {
                // Each thread repeatedly opens a *new* session (hitting
                // the sharded session table) and immediately uses it
                // while other threads do the same.
                for round in 0..12 {
                    let seed = 10_000 + (t * 100 + round) as u64;
                    let mut broker =
                        Broker::attach(proxy, ias, proxy.expected_measurement(), seed).unwrap();
                    for i in 0..4 {
                        broker
                            .search_echo(proxy, &format!("t{t} r{round} q{i}"))
                            .unwrap();
                    }
                }
            });
        }
    });

    assert_eq!(proxy.history_len(), HISTORY_CAPACITY);
    assert_eq!(proxy.history_memory_bytes(), proxy.epc().used());
}

#[test]
fn mixed_echo_and_engine_traffic_is_consistent() {
    let (proxy, ias) = launch(2);
    proxy.seed_history(["alpha beta", "gamma delta", "epsilon zeta"]);

    std::thread::scope(|scope| {
        for t in 0..4 {
            let proxy = &proxy;
            let ias = &ias;
            scope.spawn(move || {
                let mut broker =
                    Broker::attach(proxy, ias, proxy.expected_measurement(), 500 + t as u64)
                        .unwrap();
                for i in 0..40 {
                    if i % 2 == 0 {
                        broker.search_echo(proxy, &format!("echo {t} {i}")).unwrap();
                    } else {
                        // Full engine round trip under concurrency.
                        broker.search(proxy, &format!("query {t} {i}")).unwrap();
                    }
                }
            });
        }
    });

    assert_eq!(proxy.history_memory_bytes(), proxy.epc().used());
    assert!(proxy.history_len() <= HISTORY_CAPACITY);
}
