//! wrk2-style open-loop load generation.
//!
//! The paper's Fig 5 uses wrk2 to drive each proxy at a fixed request rate
//! and record latency until the proxy saturates. wrk2's defining features
//! are reproduced here:
//!
//! * **open loop** — requests are issued on a fixed schedule regardless of
//!   how slowly the service responds, unlike closed-loop benchmarks that
//!   only send when the previous response returned;
//! * **coordinated-omission correction** — latency is measured from the
//!   *scheduled* send time, so queueing delay during overload is charged
//!   to the service rather than silently dropped.
//!
//! # Example
//!
//! ```
//! use xsearch_workload::{run_open_loop, LoadSpec};
//! use std::time::Duration;
//!
//! let spec = LoadSpec { rate_per_sec: 2_000.0, duration: Duration::from_millis(200), threads: 2 };
//! let report = run_open_loop(&spec, &|| true);
//! assert!(report.completed > 0);
//! ```

#![deny(missing_docs)]

pub mod rate;
pub mod report;
pub mod runner;

pub use rate::Schedule;
pub use report::RunReport;
pub use runner::{run_open_loop, LoadSpec};
