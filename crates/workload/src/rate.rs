//! Constant-rate pacing schedules.

use std::time::Duration;

/// The send schedule for a constant-rate open loop: request `i` is due at
/// `i / rate` after the start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Schedule {
    nanos_per_request: f64,
}

impl Schedule {
    /// A schedule for `rate_per_sec` requests per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive and finite.
    #[must_use]
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "rate must be positive, got {rate_per_sec}"
        );
        Schedule {
            nanos_per_request: 1e9 / rate_per_sec,
        }
    }

    /// When request `index` is due, relative to the start of the run.
    #[must_use]
    pub fn due_at(&self, index: u64) -> Duration {
        Duration::from_nanos((self.nanos_per_request * index as f64) as u64)
    }

    /// How many requests are due within `window`: the count of indices
    /// `i` with `due_at(i) <= window`. Request 0 is due at t = 0, so any
    /// window contains at least one request — at 100 req/s a 95 ms
    /// window holds the 10 requests due at 0, 10, …, 90 ms.
    #[must_use]
    pub fn requests_within(&self, window: Duration) -> u64 {
        (window.as_nanos() as f64 / self.nanos_per_request).floor() as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn due_times_are_evenly_spaced() {
        let s = Schedule::new(1000.0); // 1 ms apart
        assert_eq!(s.due_at(0), Duration::ZERO);
        assert_eq!(s.due_at(1), Duration::from_millis(1));
        assert_eq!(s.due_at(10), Duration::from_millis(10));
    }

    #[test]
    fn requests_within_window() {
        let s = Schedule::new(100.0);
        // Due at 0, 10, …, 1000 ms inclusive: 101 requests.
        assert_eq!(s.requests_within(Duration::from_secs(1)), 101);
        // Due at 0, 10, …, 90 ms: request 0 counts, so 10 — not 9.
        assert_eq!(s.requests_within(Duration::from_millis(95)), 10);
        // The degenerate window still holds request 0.
        assert_eq!(s.requests_within(Duration::ZERO), 1);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = Schedule::new(0.0);
    }

    proptest! {
        #[test]
        fn due_at_is_monotone(rate in 1.0f64..1e6, i in 0u64..10_000) {
            let s = Schedule::new(rate);
            prop_assert!(s.due_at(i + 1) >= s.due_at(i));
        }

        #[test]
        fn count_and_due_agree(rate in 1.0f64..1e5, secs in 1u64..10) {
            let s = Schedule::new(rate);
            let window = Duration::from_secs(secs);
            let n = s.requests_within(window);
            prop_assert!(s.due_at(n) >= window || n > 0 && s.due_at(n) <= window + Duration::from_millis(1));
        }

        /// `requests_within` counts exactly the indices `due_at` places
        /// inside the window: the last counted request is due within it
        /// (modulo float rounding) and the first uncounted one is not.
        #[test]
        fn requests_within_matches_due_at(rate in 1.0f64..1e5, window_ms in 0u64..20_000) {
            let s = Schedule::new(rate);
            let window = Duration::from_millis(window_ms);
            let n = s.requests_within(window);
            prop_assert!(n >= 1, "request 0 is always due");
            let slack = Duration::from_micros(1);
            prop_assert!(
                s.due_at(n - 1) <= window + slack,
                "request {} due {:?} is outside the {window:?} window",
                n - 1,
                s.due_at(n - 1),
            );
            prop_assert!(
                s.due_at(n) + slack > window,
                "request {n} due {:?} should be past the {window:?} window",
                s.due_at(n),
            );
        }
    }
}
