//! The multi-threaded open-loop runner.

use crate::rate::Schedule;
use crate::report::RunReport;
use std::time::{Duration, Instant};
use xsearch_metrics::histogram::LatencyHistogram;

/// Parameters of one constant-rate run.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// Offered request rate (requests/second across all threads).
    pub rate_per_sec: f64,
    /// How long to keep offering load.
    pub duration: Duration,
    /// Generator threads; each sends every `threads`-th request.
    pub threads: usize,
}

/// Drives `service` at the spec'd rate and returns the report.
///
/// `service` is called once per request on a generator thread and returns
/// `true` on success, `false` when the request was rejected/failed.
/// Latency is measured from each request's **scheduled** time, so when the
/// service cannot keep up, the growing backlog appears as latency — wrk2's
/// coordinated-omission correction.
///
/// # Panics
///
/// Panics if `threads` is 0 or the rate is not positive.
pub fn run_open_loop<S>(spec: &LoadSpec, service: &S) -> RunReport
where
    S: Fn() -> bool + Sync,
{
    assert!(spec.threads > 0, "need at least one generator thread");
    let schedule = Schedule::new(spec.rate_per_sec);
    let total = schedule.requests_within(spec.duration);
    let start = Instant::now();

    let results: Vec<(LatencyHistogram, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.threads)
            .map(|thread_idx| {
                scope.spawn(move || {
                    let mut hist = LatencyHistogram::new();
                    let mut completed = 0u64;
                    let mut failed = 0u64;
                    let mut index = thread_idx as u64;
                    while index < total {
                        let due = schedule.due_at(index);
                        // Wait for the scheduled instant (sleep coarse,
                        // spin fine).
                        loop {
                            let now = start.elapsed();
                            if now >= due {
                                break;
                            }
                            let remaining = due - now;
                            if remaining > Duration::from_micros(200) {
                                std::thread::sleep(remaining - Duration::from_micros(100));
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                        let ok = service();
                        let latency = start.elapsed().saturating_sub(due);
                        hist.record(latency.as_micros() as u64);
                        if ok {
                            completed += 1;
                        } else {
                            failed += 1;
                        }
                        index += spec.threads as u64;
                    }
                    (hist, completed, failed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("generator thread panicked"))
            .collect()
    });

    let elapsed = start.elapsed().as_secs_f64();
    let mut latency = LatencyHistogram::new();
    let mut completed = 0;
    let mut failed = 0;
    for (h, c, f) in results {
        latency.merge(&h);
        completed += c;
        failed += f;
    }
    RunReport {
        offered_rate: spec.rate_per_sec,
        completed,
        failed,
        elapsed_secs: elapsed,
        latency_us: latency,
    }
}

/// Sweeps rates until the service stops keeping up, returning one report
/// per rate — the series Fig 5 plots. The sweep stops one step after the
/// first saturated point so the curve shows the collapse.
pub fn sweep_rates<S>(
    rates: &[f64],
    duration: Duration,
    threads: usize,
    service: &S,
) -> Vec<RunReport>
where
    S: Fn() -> bool + Sync,
{
    let mut reports = Vec::new();
    let mut saturated_points = 0;
    for &rate in rates {
        let report = run_open_loop(
            &LoadSpec {
                rate_per_sec: rate,
                duration,
                threads,
            },
            service,
        );
        let kept_up = report.kept_up();
        reports.push(report);
        if !kept_up {
            saturated_points += 1;
            if saturated_points >= 2 {
                break;
            }
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fast_service_keeps_up() {
        let spec = LoadSpec {
            rate_per_sec: 5_000.0,
            duration: Duration::from_millis(300),
            threads: 2,
        };
        let calls = AtomicU64::new(0);
        let report = run_open_loop(&spec, &|| {
            calls.fetch_add(1, Ordering::Relaxed);
            true
        });
        // Request 0 is due at t = 0, so the run sends rate × duration
        // requests *plus one* (the schedule's fencepost).
        let expected = (spec.rate_per_sec * spec.duration.as_secs_f64()) as u64 + 1;
        assert_eq!(report.completed, expected);
        assert_eq!(calls.load(Ordering::Relaxed), expected);
        assert!(report.kept_up(), "achieved {}", report.achieved_rate());
        assert!(
            report.median_latency_ms() < 5.0,
            "median {}",
            report.median_latency_ms()
        );
    }

    #[test]
    fn slow_service_shows_coordinated_omission_latency() {
        // Service takes 2 ms but we offer 2,000/s on one thread: backlog
        // grows, and CO-corrected latency must blow past the service time.
        let spec = LoadSpec {
            rate_per_sec: 2_000.0,
            duration: Duration::from_millis(300),
            threads: 1,
        };
        let report = run_open_loop(&spec, &|| {
            std::thread::sleep(Duration::from_millis(2));
            true
        });
        assert!(
            report.p99_latency_ms() > 20.0,
            "p99 {} ms should reflect queueing, not just 2 ms service",
            report.p99_latency_ms()
        );
        assert!(report.achieved_rate() < 1_000.0);
    }

    #[test]
    fn failures_are_counted() {
        let spec = LoadSpec {
            rate_per_sec: 1_000.0,
            duration: Duration::from_millis(100),
            threads: 2,
        };
        let toggle = AtomicU64::new(0);
        let report = run_open_loop(&spec, &|| {
            toggle.fetch_add(1, Ordering::Relaxed).is_multiple_of(2)
        });
        assert!(report.failed > 0);
        assert!(
            (report.error_rate() - 0.5).abs() < 0.1,
            "error rate {}",
            report.error_rate()
        );
    }

    #[test]
    fn sweep_stops_after_collapse() {
        let rates = [100.0, 200.0, 400.0, 800.0, 1_600.0, 3_200.0];
        let reports = sweep_rates(&rates, Duration::from_millis(150), 1, &|| {
            std::thread::sleep(Duration::from_millis(3)); // caps at ~330/s
            true
        });
        assert!(
            reports.len() < rates.len(),
            "sweep should stop early, got {}",
            reports.len()
        );
        assert!(!reports.last().unwrap().kept_up());
    }
}
