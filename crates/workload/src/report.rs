//! Load-run reports.

use xsearch_metrics::histogram::LatencyHistogram;

/// The outcome of one constant-rate run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The offered rate (requests per second the schedule aimed for).
    pub offered_rate: f64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed (e.g. shed by a saturated station).
    pub failed: u64,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_secs: f64,
    /// Latency histogram in **microseconds**, measured from the scheduled
    /// send time (coordinated-omission corrected).
    pub latency_us: LatencyHistogram,
}

impl RunReport {
    /// Achieved throughput in completed requests per second.
    #[must_use]
    pub fn achieved_rate(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.elapsed_secs
        }
    }

    /// Error fraction in [0, 1].
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        let total = self.completed + self.failed;
        if total == 0 {
            0.0
        } else {
            self.failed as f64 / total as f64
        }
    }

    /// Median latency in milliseconds.
    #[must_use]
    pub fn median_latency_ms(&self) -> f64 {
        self.latency_us.quantile(0.5) as f64 / 1e3
    }

    /// 99th-percentile latency in milliseconds.
    #[must_use]
    pub fn p99_latency_ms(&self) -> f64 {
        self.latency_us.quantile(0.99) as f64 / 1e3
    }

    /// Whether the service kept up: achieved ≥ 95% of offered and errors
    /// under 1% — the Fig 5 saturation criterion.
    #[must_use]
    pub fn kept_up(&self) -> bool {
        self.achieved_rate() >= 0.95 * self.offered_rate && self.error_rate() < 0.01
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(completed: u64, failed: u64, secs: f64, offered: f64) -> RunReport {
        let mut h = LatencyHistogram::new();
        for i in 1..=100 {
            h.record(i * 100);
        }
        RunReport {
            offered_rate: offered,
            completed,
            failed,
            elapsed_secs: secs,
            latency_us: h,
        }
    }

    #[test]
    fn achieved_rate_divides_by_elapsed() {
        let r = report(1000, 0, 2.0, 500.0);
        assert_eq!(r.achieved_rate(), 500.0);
        assert!(r.kept_up());
    }

    #[test]
    fn error_rate_fraction() {
        let r = report(90, 10, 1.0, 100.0);
        assert!((r.error_rate() - 0.1).abs() < 1e-12);
        assert!(!r.kept_up());
    }

    #[test]
    fn latency_percentiles_convert_to_ms() {
        let r = report(100, 0, 1.0, 100.0);
        assert!(r.median_latency_ms() > 0.0);
        assert!(r.p99_latency_ms() >= r.median_latency_ms());
    }

    #[test]
    fn empty_run_is_safe() {
        let r = RunReport {
            offered_rate: 10.0,
            completed: 0,
            failed: 0,
            elapsed_secs: 0.0,
            latency_us: LatencyHistogram::new(),
        };
        assert_eq!(r.achieved_rate(), 0.0);
        assert_eq!(r.error_rate(), 0.0);
    }
}
