//! The embedded topic/term bank behind the synthetic query log and the
//! synthetic web corpus.
//!
//! Forty topics approximate the subject spread of 2006-era web search
//! (health, travel, entertainment, shopping, ...). Each topic carries a
//! vocabulary of content terms; user profiles are mixtures over topics, and
//! the search-engine corpus aligns its documents to the same bank so that
//! result overlap behaves like a real keyword engine.

/// A named topic with its content vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topic {
    /// Short topic label.
    pub name: &'static str,
    /// Content terms characteristic of the topic.
    pub terms: &'static [&'static str],
}

/// Query modifiers that attach to any topic ("free", "best", "online", ...).
pub static MODIFIERS: &[&str] = &[
    "free", "best", "cheap", "online", "new", "top", "local", "reviews", "pictures", "guide",
    "2006", "official", "discount", "used", "sale", "how", "what", "where", "list", "compare",
];

/// Rare "personal" terms (given names, surnames, small places) that make a
/// user's long-tail queries identifying — the signal SimAttack exploits.
pub static PERSONAL: &[&str] = &[
    "abbott", "acworth", "ainsworth", "albany", "alvarado", "amesbury", "anderson", "ashtabula",
    "atkins", "aurora", "bakersfield", "baldwin", "barnstable", "barrett", "baxter", "beaumont",
    "bellingham", "bentley", "billings", "biloxi", "blackwell", "boise", "bowman", "bozeman",
    "bradford", "brandon", "bristol", "brockton", "burbank", "burlington", "calhoun", "camden",
    "carlisle", "carson", "chandler", "chattanooga", "cheyenne", "clarkson", "clayton", "clifton",
    "colby", "conway", "crawford", "crowley", "cumberland", "dalton", "danbury", "davenport",
    "dawson", "dayton", "decatur", "dekalb", "denton", "dorchester", "dover", "dubuque", "duluth",
    "duncan", "eastman", "elgin", "elkhart", "emerson", "enfield", "erwin", "eugene", "everett",
    "fairbanks", "fargo", "farmington", "fletcher", "flint", "florence", "fontana", "foster",
    "franklin", "fremont", "fresno", "fulton", "gadsden", "galveston", "gardner", "garland",
    "gastonia", "gilbert", "gladstone", "glendale", "goshen", "grafton", "granger", "greeley",
    "greenville", "gresham", "griffin", "hadley", "hammond", "hampton", "hancock", "hanover",
    "harmon", "harrison", "hartford", "hastings", "haverhill", "hawkins", "hayward", "helena",
    "hendricks", "hialeah", "hickory", "hobart", "holbrook", "holden", "hopkins", "houlton",
    "howell", "hudson", "huntley", "hutchinson", "irving", "jackson", "jamestown", "jasper",
    "jennings", "joliet", "juneau", "kearney", "keller", "kendall", "kennedy", "kingston",
    "kirkland", "lancaster", "lansing", "laredo", "larkin", "lawton", "leland", "lewiston",
    "lexington", "lincoln", "livermore", "lockhart", "lombard", "lowell", "lubbock", "lynchburg",
    "madison", "malden", "manchester", "mansfield", "marietta", "marlow", "mcallen", "medford",
    "mendota", "meriden", "merritt", "milford", "modesto", "monroe", "montague", "morgan",
    "muncie", "murray", "nashua", "newell", "newton", "norfolk", "norwood", "oakley", "odessa",
    "ogden", "olathe", "oswego", "owensboro", "palmer", "pasadena", "paterson", "pawtucket",
    "peabody", "pendleton", "peoria", "perkins", "pittsfield", "plano", "pomona", "portage",
    "preston", "pueblo", "quincy", "radford", "raleigh", "ramsey", "randall", "redding",
    "renton", "richmond", "riverton", "roanoke", "rockford", "rosewood", "roswell", "rutland",
    "saginaw", "salem", "salinas", "sanborn", "sandusky", "sanford", "saratoga", "savannah",
    "schenectady", "scranton", "sedalia", "shelby", "sheridan", "sherman", "shreveport",
    "somerville", "spalding", "spokane", "stamford", "sterling", "stockton", "sumter",
    "syracuse", "tacoma", "taunton", "temple", "thornton", "titusville", "toledo", "topeka",
    "torrance", "trenton", "tucson", "tulsa", "tupelo", "tyler", "underwood", "upton", "utica",
    "valdosta", "vance", "ventura", "vernon", "waco", "wakefield", "walker", "wallace",
    "walpole", "waltham", "warwick", "watertown", "waverly", "webster", "wellesley", "weston",
    "wheaton", "whitman", "wichita", "willard", "winchester", "windham", "winfield", "winona",
    "woodbury", "wooster", "worthington", "yonkers",
];

/// The topic bank.
pub static TOPICS: &[Topic] = &[
    Topic { name: "health", terms: &["symptoms", "treatment", "diabetes", "cancer", "pain", "doctor", "medicine", "diet", "pregnancy", "allergy", "blood", "pressure", "heart", "disease", "therapy", "infection", "surgery", "vitamin", "headache", "asthma", "arthritis", "cholesterol"] },
    Topic { name: "travel", terms: &["flights", "hotel", "vacation", "airline", "cruise", "resort", "airport", "travel", "tickets", "beach", "paris", "london", "orlando", "tours", "rental", "passport", "luggage", "destination", "island", "caribbean", "hawaii", "disney"] },
    Topic { name: "finance", terms: &["bank", "loan", "mortgage", "credit", "card", "interest", "rates", "insurance", "stock", "market", "investment", "refinance", "debt", "savings", "taxes", "irs", "retirement", "401k", "broker", "equity", "payday", "bankruptcy"] },
    Topic { name: "music", terms: &["lyrics", "song", "album", "band", "concert", "guitar", "mp3", "download", "rock", "country", "rap", "singer", "radio", "billboard", "karaoke", "piano", "drums", "jazz", "playlist", "tour", "remix", "acoustic"] },
    Topic { name: "movies", terms: &["movie", "film", "trailer", "theater", "dvd", "actor", "actress", "showtimes", "review", "oscar", "hollywood", "comedy", "horror", "drama", "sequel", "director", "cinema", "premiere", "box", "office", "netflix", "blockbuster"] },
    Topic { name: "sports", terms: &["football", "baseball", "basketball", "nfl", "nba", "mlb", "score", "schedule", "playoffs", "team", "coach", "stadium", "tickets", "league", "draft", "roster", "soccer", "hockey", "golf", "tennis", "standings", "espn"] },
    Topic { name: "cars", terms: &["car", "truck", "honda", "toyota", "ford", "chevrolet", "dealer", "parts", "engine", "tires", "transmission", "mileage", "hybrid", "lease", "warranty", "bluebook", "sedan", "suv", "brakes", "oil", "mechanic", "motorcycle"] },
    Topic { name: "recipes", terms: &["recipe", "chicken", "cake", "cookies", "dinner", "soup", "bread", "pasta", "salad", "grill", "baking", "dessert", "casserole", "sauce", "crockpot", "pie", "vegetarian", "marinade", "appetizer", "pancake", "chili", "meatloaf"] },
    Topic { name: "jobs", terms: &["jobs", "employment", "resume", "career", "salary", "hiring", "interview", "openings", "parttime", "nursing", "teacher", "manager", "application", "benefits", "workplace", "training", "certification", "staffing", "recruiter", "internship", "temp", "overtime"] },
    Topic { name: "realestate", terms: &["homes", "house", "apartment", "rent", "realtor", "listing", "foreclosure", "condo", "property", "acreage", "closing", "appraisal", "landlord", "tenant", "duplex", "townhouse", "mobile", "realty", "zillow", "escrow", "deed", "inspection"] },
    Topic { name: "games", terms: &["games", "cheats", "xbox", "playstation", "nintendo", "poker", "solitaire", "sudoku", "arcade", "console", "multiplayer", "walkthrough", "codes", "bingo", "chess", "puzzle", "casino", "slots", "wii", "gamecube", "halo", "sims"] },
    Topic { name: "fashion", terms: &["dress", "shoes", "jeans", "handbag", "jewelry", "clothing", "boutique", "designer", "fashion", "makeup", "perfume", "bridal", "prom", "accessories", "sunglasses", "watches", "earrings", "necklace", "outfit", "style", "boots", "lingerie"] },
    Topic { name: "pets", terms: &["dog", "cat", "puppy", "kitten", "breeder", "veterinarian", "grooming", "kennel", "adoption", "aquarium", "rescue", "terrier", "retriever", "poodle", "bulldog", "hamster", "parrot", "leash", "pets", "shelter", "obedience", "feline"] },
    Topic { name: "gardening", terms: &["garden", "plants", "flowers", "seeds", "lawn", "roses", "vegetable", "mulch", "fertilizer", "pruning", "landscaping", "perennial", "annuals", "shrubs", "tomato", "herbs", "greenhouse", "compost", "weeds", "irrigation", "bulbs", "orchid"] },
    Topic { name: "education", terms: &["school", "college", "university", "degree", "courses", "tuition", "scholarship", "student", "homework", "grades", "campus", "professor", "semester", "diploma", "admission", "transcript", "textbook", "elementary", "kindergarten", "curriculum", "exam", "sat"] },
    Topic { name: "weather", terms: &["weather", "forecast", "hurricane", "tornado", "radar", "temperature", "storm", "rain", "snow", "humidity", "flood", "lightning", "drought", "climate", "barometer", "blizzard", "heatwave", "windchill", "precipitation", "doppler", "gust", "hail"] },
    Topic { name: "news", terms: &["news", "headlines", "election", "president", "congress", "senate", "war", "iraq", "politics", "economy", "immigration", "scandal", "investigation", "breaking", "reporter", "editorial", "poll", "campaign", "governor", "legislation", "verdict", "debate"] },
    Topic { name: "technology", terms: &["computer", "laptop", "software", "windows", "internet", "printer", "wireless", "router", "monitor", "keyboard", "virus", "spyware", "broadband", "modem", "download", "upgrade", "memory", "processor", "desktop", "firewall", "backup", "ipod"] },
    Topic { name: "shopping", terms: &["store", "coupon", "walmart", "target", "ebay", "amazon", "clearance", "shipping", "catalog", "outlet", "mall", "gift", "registry", "bargain", "auction", "wholesale", "refund", "giftcard", "deals", "merchandise", "checkout", "retailer"] },
    Topic { name: "parenting", terms: &["baby", "toddler", "diaper", "stroller", "daycare", "preschool", "nursery", "crib", "formula", "teething", "potty", "tantrum", "milestones", "playdate", "babysitter", "carseat", "naptime", "pediatrician", "twins", "newborn", "adoption", "maternity"] },
    Topic { name: "wedding", terms: &["wedding", "bride", "groom", "engagement", "ring", "reception", "invitations", "florist", "caterer", "honeymoon", "bridesmaid", "tuxedo", "veil", "bouquet", "registry", "anniversary", "vows", "photographer", "banquet", "centerpiece", "gown", "rsvp"] },
    Topic { name: "diy", terms: &["repair", "plumbing", "electrical", "paint", "drywall", "flooring", "roofing", "remodel", "cabinet", "deck", "fence", "insulation", "tile", "faucet", "furnace", "gutter", "hammer", "ladder", "lumber", "sander", "toolbox", "workbench"] },
    Topic { name: "fitness", terms: &["gym", "workout", "exercise", "yoga", "pilates", "treadmill", "weights", "cardio", "protein", "muscle", "trainer", "marathon", "jogging", "stretching", "abs", "dumbbell", "aerobics", "calories", "nutrition", "supplement", "bodybuilding", "spinning"] },
    Topic { name: "celebrity", terms: &["celebrity", "gossip", "paparazzi", "divorce", "dating", "rehab", "tabloid", "interview", "redcarpet", "awards", "grammy", "fanclub", "biography", "scandalous", "supermodel", "heiress", "starlet", "entourage", "publicist", "autograph", "premiere", "idol"] },
    Topic { name: "religion", terms: &["church", "bible", "prayer", "sermon", "gospel", "faith", "worship", "pastor", "scripture", "christian", "catholic", "baptist", "methodist", "choir", "ministry", "missionary", "devotional", "psalm", "easter", "christmas", "communion", "baptism"] },
    Topic { name: "genealogy", terms: &["genealogy", "ancestry", "surname", "census", "obituary", "cemetery", "heritage", "lineage", "descendants", "immigration", "archives", "birth", "marriage", "records", "pedigree", "ellis", "homestead", "ancestor", "genealogist", "roots", "clan", "registry"] },
    Topic { name: "legal", terms: &["lawyer", "attorney", "lawsuit", "court", "divorce", "custody", "settlement", "probate", "contract", "liability", "plaintiff", "defendant", "felony", "misdemeanor", "paralegal", "notary", "statute", "subpoena", "testimony", "verdict", "appeal", "litigation"] },
    Topic { name: "astrology", terms: &["horoscope", "zodiac", "astrology", "tarot", "psychic", "aries", "taurus", "gemini", "scorpio", "libra", "capricorn", "aquarius", "pisces", "virgo", "sagittarius", "leo", "compatibility", "numerology", "palmistry", "birthchart", "retrograde", "eclipse"] },
    Topic { name: "crafts", terms: &["crafts", "scrapbook", "knitting", "crochet", "quilting", "beads", "stamps", "sewing", "embroidery", "origami", "stencil", "yarn", "fabric", "pattern", "glue", "ribbon", "candle", "pottery", "woodwork", "mosaic", "decoupage", "macrame"] },
    Topic { name: "outdoors", terms: &["camping", "hiking", "fishing", "hunting", "kayak", "canoe", "trail", "campground", "tent", "backpack", "wilderness", "rifle", "archery", "tackle", "bait", "lure", "binoculars", "compass", "firewood", "lantern", "sleeping", "rapids"] },
    Topic { name: "tv", terms: &["episode", "season", "series", "sitcom", "reality", "drama", "channel", "cable", "satellite", "rerun", "finale", "premiere", "network", "soap", "opera", "cartoon", "anime", "documentary", "gameshow", "talkshow", "miniseries", "broadcast"] },
    Topic { name: "books", terms: &["book", "novel", "author", "paperback", "hardcover", "bestseller", "library", "bookstore", "fiction", "mystery", "romance", "thriller", "biography", "memoir", "poetry", "publisher", "chapter", "sequel", "trilogy", "audiobook", "bookclub", "anthology"] },
    Topic { name: "history", terms: &["history", "civil", "revolution", "ancient", "medieval", "empire", "dynasty", "archaeology", "artifact", "museum", "monument", "colonial", "pioneer", "frontier", "treaty", "constitution", "independence", "victorian", "renaissance", "crusades", "pharaoh", "gladiator"] },
    Topic { name: "science", terms: &["science", "physics", "chemistry", "biology", "astronomy", "telescope", "molecule", "genome", "evolution", "experiment", "laboratory", "quantum", "galaxy", "planet", "asteroid", "microscope", "element", "periodic", "neuron", "fossil", "volcano", "ecosystem"] },
    Topic { name: "boats", terms: &["boat", "yacht", "sailboat", "pontoon", "marina", "outboard", "trailer", "hull", "anchor", "dock", "propeller", "fiberglass", "nautical", "regatta", "sailing", "mooring", "bilge", "rudder", "keel", "catamaran", "dinghy", "waterski"] },
    Topic { name: "insurance", terms: &["insurance", "premium", "deductible", "claim", "policy", "coverage", "liability", "accident", "adjuster", "quote", "comprehensive", "collision", "underwriting", "beneficiary", "copay", "medicare", "medicaid", "hmo", "ppo", "dental", "vision", "actuary"] },
    Topic { name: "phones", terms: &["phone", "cellphone", "ringtone", "verizon", "cingular", "sprint", "nokia", "motorola", "samsung", "prepaid", "minutes", "texting", "voicemail", "bluetooth", "charger", "headset", "flip", "camera", "contract", "roaming", "caller", "landline"] },
    Topic { name: "airlines", terms: &["airline", "boarding", "checkin", "baggage", "delta", "united", "southwest", "jetblue", "continental", "frequent", "flyer", "miles", "upgrade", "layover", "nonstop", "redeye", "turbulence", "cockpit", "runway", "terminal", "standby", "charter"] },
    Topic { name: "taxes", terms: &["tax", "refund", "deduction", "filing", "audit", "withholding", "exemption", "dependent", "income", "w2", "1099", "efile", "accountant", "cpa", "extension", "amended", "estimated", "bracket", "credit", "earned", "preparer", "turbotax"] },
    Topic { name: "military", terms: &["army", "navy", "marines", "airforce", "veteran", "deployment", "enlistment", "recruiter", "boot", "sergeant", "officer", "battalion", "regiment", "reserves", "guard", "pentagon", "medal", "uniform", "barracks", "discharge", "gi", "rotc"] },
];

/// Number of topics in the bank.
#[must_use]
pub fn topic_count() -> usize {
    TOPICS.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn bank_has_forty_topics() {
        assert_eq!(topic_count(), 40);
    }

    #[test]
    fn every_topic_has_enough_terms() {
        for t in TOPICS {
            assert!(t.terms.len() >= 20, "topic {} has only {} terms", t.name, t.terms.len());
        }
    }

    #[test]
    fn topic_names_are_unique() {
        let names: HashSet<_> = TOPICS.iter().map(|t| t.name).collect();
        assert_eq!(names.len(), TOPICS.len());
    }

    #[test]
    fn terms_are_lowercase_tokens() {
        for t in TOPICS {
            for term in t.terms {
                assert!(
                    term.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()),
                    "term {term:?} in {} is not a plain token",
                    t.name
                );
            }
        }
    }

    #[test]
    fn personal_pool_is_large_and_unique() {
        let set: HashSet<_> = PERSONAL.iter().collect();
        assert!(set.len() >= 200, "personal pool too small: {}", set.len());
        assert_eq!(set.len(), PERSONAL.len());
    }

    #[test]
    fn modifiers_do_not_overlap_personal() {
        let personal: HashSet<_> = PERSONAL.iter().collect();
        for m in MODIFIERS {
            assert!(!personal.contains(m));
        }
    }
}
