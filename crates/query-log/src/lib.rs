//! AOL-schema web search query logs.
//!
//! The paper evaluates on the 2006 AOL query log (~21M queries, ~650k
//! users). That dataset is not redistributable, so this crate provides two
//! interchangeable sources:
//!
//! * [`parse`] — a parser for the real AOL TSV schema
//!   (`AnonID  Query  QueryTime  ItemRank  ClickURL`), for users who have
//!   the original files;
//! * [`synthetic`] — a calibrated generator producing a log with the
//!   statistical properties every experiment depends on: users with
//!   distinguishable topical profiles, Zipfian query popularity, repeated
//!   queries, and a long tail of personal queries (see DESIGN.md §6).
//!
//! [`split`] reproduces the paper's §5.1 methodology: select the N most
//! active users and split each user's queries ⅔ training / ⅓ testing.
//!
//! # Example
//!
//! ```
//! use xsearch_query_log::synthetic::{SyntheticConfig, generate};
//! use xsearch_query_log::split::{top_active_users, train_test_split};
//!
//! let log = generate(&SyntheticConfig { num_users: 50, ..Default::default() });
//! let top = top_active_users(&log, 10);
//! assert_eq!(top.len(), 10);
//! let split = train_test_split(&log, &top, 2.0 / 3.0);
//! assert!(!split.train.is_empty() && !split.test.is_empty());
//! ```

#![deny(missing_docs)]

pub mod parse;
pub mod record;
pub mod split;
pub mod stats;
pub mod synthetic;
pub mod topics;
pub mod zipf;

pub use record::{QueryRecord, UserId};
pub use split::{top_active_users, train_test_split, TrainTestSplit};
pub use synthetic::{generate, SyntheticConfig};
