//! The paper's §5.1 evaluation methodology: select the most active users
//! and split each user's queries into training (adversary knowledge) and
//! testing (protected traffic) sets.

use crate::record::{QueryRecord, UserId};
use std::collections::HashMap;

/// A train/test partition of a query log.
#[derive(Debug, Clone, Default)]
pub struct TrainTestSplit {
    /// Adversary's preliminary knowledge: the first `train_fraction` of
    /// each selected user's queries, in time order.
    pub train: Vec<QueryRecord>,
    /// Queries to protect and attack, in time order.
    pub test: Vec<QueryRecord>,
}

/// Returns the `n` most active users, most active first (ties broken by
/// user id for determinism).
///
/// # Example
///
/// ```
/// use xsearch_query_log::record::{QueryRecord, UserId};
/// use xsearch_query_log::split::top_active_users;
///
/// let log = vec![
///     QueryRecord::new(UserId(1), "a", 0),
///     QueryRecord::new(UserId(2), "b", 1),
///     QueryRecord::new(UserId(2), "c", 2),
/// ];
/// assert_eq!(top_active_users(&log, 1), vec![UserId(2)]);
/// ```
#[must_use]
pub fn top_active_users(log: &[QueryRecord], n: usize) -> Vec<UserId> {
    let mut counts: HashMap<UserId, usize> = HashMap::new();
    for r in log {
        *counts.entry(r.user).or_insert(0) += 1;
    }
    let mut users: Vec<(UserId, usize)> = counts.into_iter().collect();
    users.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    users.into_iter().take(n).map(|(u, _)| u).collect()
}

/// Splits the queries of `users` into train/test by time: the first
/// `train_fraction` of each user's queries (the paper uses ⅔) become
/// training data, the rest testing data.
///
/// Users not listed are dropped entirely, mirroring the paper's focus on
/// the 100 most active users.
///
/// # Panics
///
/// Panics if `train_fraction` is outside (0, 1).
#[must_use]
pub fn train_test_split(
    log: &[QueryRecord],
    users: &[UserId],
    train_fraction: f64,
) -> TrainTestSplit {
    assert!(
        train_fraction > 0.0 && train_fraction < 1.0,
        "train_fraction must be in (0,1), got {train_fraction}"
    );
    let selected: std::collections::HashSet<UserId> = users.iter().copied().collect();
    let mut per_user: HashMap<UserId, Vec<QueryRecord>> = HashMap::new();
    for r in log {
        if selected.contains(&r.user) {
            per_user.entry(r.user).or_default().push(r.clone());
        }
    }
    let mut split = TrainTestSplit::default();
    for (_, mut records) in per_user {
        records.sort_by_key(|r| r.time);
        let cut = ((records.len() as f64) * train_fraction).floor() as usize;
        let cut = cut.clamp(1, records.len().saturating_sub(1).max(1));
        for (i, r) in records.into_iter().enumerate() {
            if i < cut {
                split.train.push(r);
            } else {
                split.test.push(r);
            }
        }
    }
    split.train.sort_by_key(|r| (r.time, r.user));
    split.test.sort_by_key(|r| (r.time, r.user));
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SyntheticConfig};

    fn sample_log() -> Vec<QueryRecord> {
        generate(&SyntheticConfig {
            num_users: 40,
            median_queries_per_user: 30.0,
            ..Default::default()
        })
    }

    #[test]
    fn top_users_ordered_by_activity() {
        let log = sample_log();
        let top = top_active_users(&log, 10);
        assert_eq!(top.len(), 10);
        let count = |u: UserId| log.iter().filter(|r| r.user == u).count();
        for pair in top.windows(2) {
            assert!(count(pair[0]) >= count(pair[1]));
        }
    }

    #[test]
    fn top_users_handles_n_larger_than_population() {
        let log = vec![QueryRecord::new(UserId(1), "q", 0)];
        assert_eq!(top_active_users(&log, 100).len(), 1);
    }

    #[test]
    fn split_keeps_only_selected_users() {
        let log = sample_log();
        let top = top_active_users(&log, 5);
        let split = train_test_split(&log, &top, 2.0 / 3.0);
        let sel: std::collections::HashSet<_> = top.iter().copied().collect();
        assert!(split.train.iter().all(|r| sel.contains(&r.user)));
        assert!(split.test.iter().all(|r| sel.contains(&r.user)));
    }

    #[test]
    fn split_ratio_is_two_thirds_per_user() {
        let log = sample_log();
        let top = top_active_users(&log, 8);
        let split = train_test_split(&log, &top, 2.0 / 3.0);
        for &u in &top {
            let tr = split.train.iter().filter(|r| r.user == u).count() as f64;
            let te = split.test.iter().filter(|r| r.user == u).count() as f64;
            let frac = tr / (tr + te);
            assert!((frac - 2.0 / 3.0).abs() < 0.08, "user {u}: {frac}");
        }
    }

    #[test]
    fn split_respects_time_order() {
        let log = sample_log();
        let top = top_active_users(&log, 5);
        let split = train_test_split(&log, &top, 0.5);
        for &u in &top {
            let max_train = split
                .train
                .iter()
                .filter(|r| r.user == u)
                .map(|r| r.time)
                .max()
                .unwrap();
            let min_test = split
                .test
                .iter()
                .filter(|r| r.user == u)
                .map(|r| r.time)
                .min()
                .unwrap();
            assert!(max_train <= min_test, "user {u}: train leaks past test");
        }
    }

    #[test]
    fn every_selected_user_has_test_queries() {
        let log = sample_log();
        let top = top_active_users(&log, 10);
        let split = train_test_split(&log, &top, 2.0 / 3.0);
        for &u in &top {
            assert!(
                split.test.iter().any(|r| r.user == u),
                "user {u} lost all test queries"
            );
        }
    }

    #[test]
    #[should_panic(expected = "train_fraction")]
    fn invalid_fraction_panics() {
        let _ = train_test_split(&[], &[], 1.5);
    }
}
