//! Calibrated synthetic query-log generator.
//!
//! The generator reproduces the statistical properties of the AOL log that
//! the paper's experiments depend on (DESIGN.md §6):
//!
//! * **topical user profiles** — each user is a mixture over 2–4 topics
//!   from the embedded [`crate::topics`] bank, so users are distinguishable
//!   (what SimAttack exploits) yet overlapping (what makes X-Search's
//!   history-based fakes plausible);
//! * **Zipfian query popularity** — per-topic shared query pools sampled
//!   with a Zipf law, so some queries recur across many users;
//! * **repetition** — users re-issue their own past queries, giving the
//!   adversary's training profiles real predictive power over test queries;
//! * **personal long-tail queries** — rare place/name terms concentrated on
//!   one user each, the strongest re-identification signal;
//! * **heavy-tailed activity** — a log-normal activity level creates the
//!   "100 most active users" the paper's §5.1 methodology selects.

use crate::record::{QueryRecord, UserId};
use crate::topics::{MODIFIERS, PERSONAL, TOPICS};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// First timestamp of the synthetic window: 2006-03-01 00:00:00 UTC,
/// matching the AOL collection start.
pub const DATASET_START: u64 = 1_141_171_200;
/// Length of the collection window: three months, as in the AOL log.
pub const DATASET_SPAN: u64 = 92 * 86_400;

/// Generator parameters. `Default` matches the calibration used by the
/// experiment harnesses.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of users in the log.
    pub num_users: usize,
    /// RNG seed; equal seeds give byte-identical logs.
    pub seed: u64,
    /// Minimum queries per user.
    pub min_queries_per_user: usize,
    /// Cap on queries per user.
    pub max_queries_per_user: usize,
    /// Median of the log-normal activity distribution.
    pub median_queries_per_user: f64,
    /// σ of the log-normal activity distribution (tail heaviness).
    pub activity_sigma: f64,
    /// Inclusive range of topics mixed into one user profile.
    pub topics_per_user: (usize, usize),
    /// Probability that a query re-issues one of the user's past queries.
    pub repeat_probability: f64,
    /// Probability that a fresh query is a personal (identifying) query.
    pub personal_probability: f64,
    /// Probability that a fresh topical query comes from the shared
    /// per-topic pool (vs. a freshly composed term combination).
    pub shared_pool_probability: f64,
    /// Probability of attaching a modifier word ("free", "best", ...).
    pub modifier_probability: f64,
    /// Size of each topic's shared query pool.
    pub pool_per_topic: usize,
    /// Zipf exponent over pool queries.
    pub pool_zipf_exponent: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            num_users: 200,
            seed: 42,
            min_queries_per_user: 20,
            max_queries_per_user: 2_000,
            median_queries_per_user: 90.0,
            activity_sigma: 0.9,
            topics_per_user: (2, 4),
            repeat_probability: 0.22,
            personal_probability: 0.28,
            shared_pool_probability: 0.65,
            modifier_probability: 0.30,
            pool_per_topic: 150,
            pool_zipf_exponent: 1.05,
        }
    }
}

/// A user's generation-time profile (exposed for tests and calibration).
#[derive(Debug, Clone)]
pub struct UserProfile {
    /// The user this profile belongs to.
    pub user: UserId,
    /// Topic indices into [`TOPICS`], most-weighted first.
    pub topic_indices: Vec<usize>,
    /// Mixture weights aligned with `topic_indices` (sum 1.0).
    pub topic_weights: Vec<f64>,
    /// This user's personal identifying terms.
    pub personal_terms: Vec<&'static str>,
    /// Target query count.
    pub activity: usize,
}

/// Generates a synthetic log; records are sorted by timestamp.
#[must_use]
pub fn generate(config: &SyntheticConfig) -> Vec<QueryRecord> {
    generate_with_profiles(config).0
}

/// Generates a log together with the ground-truth user profiles
/// (useful for calibration tests).
#[must_use]
pub fn generate_with_profiles(config: &SyntheticConfig) -> (Vec<QueryRecord>, Vec<UserProfile>) {
    assert!(config.num_users > 0, "need at least one user");
    assert!(
        config.topics_per_user.0 >= 1 && config.topics_per_user.0 <= config.topics_per_user.1,
        "invalid topics_per_user range"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);

    let pools = build_topic_pools(config, &mut rng);
    let pool_zipf = Zipf::new(config.pool_per_topic, config.pool_zipf_exponent);

    let mut records = Vec::new();
    let mut profiles = Vec::with_capacity(config.num_users);
    for uid in 0..config.num_users {
        let user = UserId(uid as u32);
        let profile = sample_profile(user, config, &mut rng);
        let mut own_queries: Vec<String> = Vec::new();
        let mut times: Vec<u64> = (0..profile.activity)
            .map(|_| DATASET_START + rng.gen_range(0..DATASET_SPAN))
            .collect();
        times.sort_unstable();
        for t in times {
            let query = next_query(&profile, &own_queries, &pools, &pool_zipf, config, &mut rng);
            own_queries.push(query.clone());
            records.push(QueryRecord::new(user, query, t));
        }
        profiles.push(profile);
    }
    records.sort_by_key(|r| (r.time, r.user));
    (records, profiles)
}

/// Shared per-topic query pools: `pool_per_topic` queries of 1–3 terms.
fn build_topic_pools(config: &SyntheticConfig, rng: &mut StdRng) -> Vec<Vec<String>> {
    TOPICS
        .iter()
        .map(|topic| {
            let mut pool = Vec::with_capacity(config.pool_per_topic);
            let mut seen = HashSet::new();
            while pool.len() < config.pool_per_topic {
                let q = compose_topical(topic.terms, rng);
                if seen.insert(q.clone()) {
                    pool.push(q);
                }
            }
            pool
        })
        .collect()
}

fn sample_profile(user: UserId, config: &SyntheticConfig, rng: &mut StdRng) -> UserProfile {
    let n_topics = rng.gen_range(config.topics_per_user.0..=config.topics_per_user.1);
    let mut indices: Vec<usize> = (0..TOPICS.len()).collect();
    indices.shuffle(rng);
    indices.truncate(n_topics);
    // Geometric-ish mixture: first topic dominates.
    let mut weights: Vec<f64> = (0..n_topics).map(|i| 0.5f64.powi(i as i32)).collect();
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    let n_personal = rng.gen_range(2..=4);
    let personal_terms: Vec<&'static str> =
        PERSONAL.choose_multiple(rng, n_personal).copied().collect();

    // Log-normal activity via Box-Muller.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let count = (config.median_queries_per_user.ln() + config.activity_sigma * z).exp();
    let activity = (count as usize).clamp(config.min_queries_per_user, config.max_queries_per_user);

    UserProfile {
        user,
        topic_indices: indices,
        topic_weights: weights,
        personal_terms,
        activity,
    }
}

fn next_query(
    profile: &UserProfile,
    own_queries: &[String],
    pools: &[Vec<String>],
    pool_zipf: &Zipf,
    config: &SyntheticConfig,
    rng: &mut StdRng,
) -> String {
    if !own_queries.is_empty() && rng.gen_bool(config.repeat_probability) {
        return own_queries[rng.gen_range(0..own_queries.len())].clone();
    }
    let topic_idx = sample_weighted(&profile.topic_indices, &profile.topic_weights, rng);
    let topic_terms = TOPICS[topic_idx].terms;

    let mut query = if rng.gen_bool(config.personal_probability) {
        // Personal query: identifying term, usually with topical context.
        let p = profile.personal_terms[rng.gen_range(0..profile.personal_terms.len())];
        if rng.gen_bool(0.7) {
            let t = topic_terms[rng.gen_range(0..topic_terms.len())];
            format!("{p} {t}")
        } else {
            (*p).to_owned()
        }
    } else if rng.gen_bool(config.shared_pool_probability) {
        pools[topic_idx][pool_zipf.sample(rng)].clone()
    } else {
        compose_topical(topic_terms, rng)
    };

    if rng.gen_bool(config.modifier_probability) {
        let m = MODIFIERS[rng.gen_range(0..MODIFIERS.len())];
        query = if rng.gen_bool(0.5) {
            format!("{m} {query}")
        } else {
            format!("{query} {m}")
        };
    }
    query
}

/// Composes a 1–3 term query from a topic vocabulary (distinct terms).
fn compose_topical(terms: &[&str], rng: &mut StdRng) -> String {
    let n = [1usize, 2, 2, 2, 3][rng.gen_range(0..5usize)];
    let picked: Vec<&str> = terms
        .choose_multiple(rng, n.min(terms.len()))
        .copied()
        .collect();
    picked.join(" ")
}

fn sample_weighted(indices: &[usize], weights: &[f64], rng: &mut StdRng) -> usize {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (&idx, &w) in indices.iter().zip(weights) {
        acc += w;
        if u <= acc {
            return idx;
        }
    }
    *indices.last().expect("profile has at least one topic")
}

/// Generates `n` *distinct* query strings with an AOL-like length
/// distribution — the workload for the Fig 6 memory experiment, which
/// populates the enclave history with millions of unique queries.
#[must_use]
pub fn unique_queries(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut seen: HashSet<String> = HashSet::with_capacity(n);
    while out.len() < n {
        let topic = &TOPICS[rng.gen_range(0..TOPICS.len())];
        let mut q = compose_topical(topic.terms, &mut rng);
        if rng.gen_bool(0.3) {
            q.push(' ');
            q.push_str(PERSONAL[rng.gen_range(0..PERSONAL.len())]);
        }
        if rng.gen_bool(0.2) {
            q = format!("{q} {}", rng.gen_range(1..10_000));
        }
        if !seen.insert(q.clone()) {
            // Salt collisions with a number; numbers appear in real queries.
            q = format!("{q} {}", out.len());
            if !seen.insert(q.clone()) {
                continue;
            }
        }
        out.push(q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_config() -> SyntheticConfig {
        SyntheticConfig {
            num_users: 30,
            median_queries_per_user: 40.0,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_config());
        let b = generate(&SyntheticConfig {
            seed: 43,
            ..small_config()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn records_sorted_by_time() {
        let log = generate(&small_config());
        assert!(log.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn timestamps_within_window() {
        let log = generate(&small_config());
        for r in &log {
            assert!(r.time >= DATASET_START && r.time < DATASET_START + DATASET_SPAN);
        }
    }

    #[test]
    fn every_user_meets_minimum_activity() {
        let cfg = small_config();
        let log = generate(&cfg);
        let mut counts = std::collections::HashMap::new();
        for r in &log {
            *counts.entry(r.user).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), cfg.num_users);
        for (&u, &c) in &counts {
            assert!(c >= cfg.min_queries_per_user, "user {u} has {c}");
        }
    }

    #[test]
    fn activity_is_heavy_tailed() {
        let cfg = SyntheticConfig {
            num_users: 300,
            ..Default::default()
        };
        let (_, profiles) = generate_with_profiles(&cfg);
        let mut acts: Vec<usize> = profiles.iter().map(|p| p.activity).collect();
        acts.sort_unstable();
        let median = acts[acts.len() / 2];
        let p95 = acts[acts.len() * 95 / 100];
        assert!(
            p95 as f64 > 2.5 * median as f64,
            "median {median} p95 {p95}"
        );
    }

    #[test]
    fn users_repeat_their_own_queries() {
        let log = generate(&small_config());
        let mut per_user: std::collections::HashMap<UserId, Vec<&str>> = Default::default();
        for r in &log {
            per_user.entry(r.user).or_default().push(&r.query);
        }
        // At least half the users should have at least one exact repeat.
        let with_repeat = per_user
            .values()
            .filter(|qs| {
                let set: HashSet<_> = qs.iter().collect();
                set.len() < qs.len()
            })
            .count();
        assert!(
            with_repeat * 2 >= per_user.len(),
            "{with_repeat}/{}",
            per_user.len()
        );
    }

    #[test]
    fn queries_are_shared_across_users() {
        let log = generate(&SyntheticConfig {
            num_users: 100,
            ..Default::default()
        });
        let mut owners: std::collections::HashMap<&str, HashSet<UserId>> = Default::default();
        for r in &log {
            owners.entry(&r.query).or_default().insert(r.user);
        }
        let shared = owners.values().filter(|s| s.len() >= 2).count();
        assert!(shared > 100, "only {shared} queries shared by ≥2 users");
    }

    #[test]
    fn profiles_use_distinct_topics() {
        let (_, profiles) = generate_with_profiles(&small_config());
        for p in &profiles {
            let set: HashSet<_> = p.topic_indices.iter().collect();
            assert_eq!(set.len(), p.topic_indices.len());
            let total: f64 = p.topic_weights.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn unique_queries_are_unique() {
        let qs = unique_queries(50_000, 7);
        let set: HashSet<_> = qs.iter().collect();
        assert_eq!(set.len(), qs.len());
    }

    #[test]
    fn unique_queries_have_realistic_lengths() {
        let qs = unique_queries(10_000, 9);
        let mean_len: f64 = qs.iter().map(|q| q.len() as f64).sum::<f64>() / qs.len() as f64;
        assert!(
            (10.0..40.0).contains(&mean_len),
            "mean query length {mean_len}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn generate_respects_user_count(users in 1usize..40, seed: u64) {
            let cfg = SyntheticConfig {
                num_users: users,
                seed,
                median_queries_per_user: 25.0,
                ..Default::default()
            };
            let log = generate(&cfg);
            let distinct: HashSet<_> = log.iter().map(|r| r.user).collect();
            prop_assert_eq!(distinct.len(), users);
        }
    }
}
