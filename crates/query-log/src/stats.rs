//! Descriptive statistics over a query log — used by examples and by the
//! calibration tests that keep the synthetic generator honest.

use crate::record::QueryRecord;
use std::collections::{HashMap, HashSet};

/// Summary statistics of a log.
#[derive(Debug, Clone, PartialEq)]
pub struct LogStats {
    /// Total records.
    pub records: usize,
    /// Distinct users.
    pub users: usize,
    /// Distinct query strings.
    pub unique_queries: usize,
    /// Mean query length in characters.
    pub mean_query_chars: f64,
    /// Mean query length in whitespace words.
    pub mean_query_words: f64,
    /// Most records by a single user.
    pub max_user_records: usize,
    /// Fraction of records whose query also appears for another user.
    pub cross_user_share: f64,
}

impl LogStats {
    /// Computes statistics over `log`.
    #[must_use]
    pub fn compute(log: &[QueryRecord]) -> Self {
        let mut users: HashMap<_, usize> = HashMap::new();
        let mut owners: HashMap<&str, HashSet<u32>> = HashMap::new();
        let mut chars = 0usize;
        let mut words = 0usize;
        for r in log {
            *users.entry(r.user).or_insert(0) += 1;
            owners.entry(&r.query).or_default().insert(r.user.0);
            chars += r.query.chars().count();
            words += r.query.split_whitespace().count();
        }
        let shared: HashSet<&str> = owners
            .iter()
            .filter(|(_, o)| o.len() >= 2)
            .map(|(q, _)| *q)
            .collect();
        let cross = log
            .iter()
            .filter(|r| shared.contains(r.query.as_str()))
            .count();
        let n = log.len().max(1);
        LogStats {
            records: log.len(),
            users: users.len(),
            unique_queries: owners.len(),
            mean_query_chars: chars as f64 / n as f64,
            mean_query_words: words as f64 / n as f64,
            max_user_records: users.values().copied().max().unwrap_or(0),
            cross_user_share: cross as f64 / n as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::UserId;
    use crate::synthetic::{generate, SyntheticConfig};

    #[test]
    fn empty_log_stats() {
        let s = LogStats::compute(&[]);
        assert_eq!(s.records, 0);
        assert_eq!(s.users, 0);
        assert_eq!(s.mean_query_chars, 0.0);
    }

    #[test]
    fn counts_are_exact_on_tiny_log() {
        let log = vec![
            QueryRecord::new(UserId(1), "a b", 0),
            QueryRecord::new(UserId(2), "a b", 1),
            QueryRecord::new(UserId(2), "c", 2),
        ];
        let s = LogStats::compute(&log);
        assert_eq!(s.records, 3);
        assert_eq!(s.users, 2);
        assert_eq!(s.unique_queries, 2);
        assert_eq!(s.max_user_records, 2);
        // "a b" appears for two users: 2 of 3 records are cross-user.
        assert!((s.cross_user_share - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_log_matches_aol_texture() {
        let log = generate(&SyntheticConfig {
            num_users: 150,
            ..Default::default()
        });
        let s = LogStats::compute(&log);
        // AOL-like shape: short keyword queries, repeated across users.
        assert!(
            (1.0..4.5).contains(&s.mean_query_words),
            "words {}",
            s.mean_query_words
        );
        assert!(
            (8.0..40.0).contains(&s.mean_query_chars),
            "chars {}",
            s.mean_query_chars
        );
        assert!(
            s.cross_user_share > 0.15,
            "cross-user share {}",
            s.cross_user_share
        );
        assert!(s.unique_queries * 2 < s.records * 2, "sanity");
    }
}
