//! A Zipf-distributed sampler over ranks `0..n`.
//!
//! Web query popularity is famously Zipfian (Pass et al., "A Picture of
//! Search", the AOL dataset paper); the synthetic generator draws query
//! ranks from this sampler.

use rand::Rng;

/// Samples ranks with probability ∝ 1/(rank+1)^s via an inverse-CDF table.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let zipf = xsearch_query_log::zipf::Zipf::new(100, 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or `s` is negative/non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over empty support");
        assert!(s.is_finite() && s >= 0.0, "invalid zipf exponent {s}");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard against floating-point shortfall at the end.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the support is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }

    /// Probability of rank `k`.
    #[must_use]
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cumulative.len() {
            return 0.0;
        }
        if k == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[k] - self.cumulative[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranks_in_support() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn rank_zero_is_most_likely() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        // Harmonic(100) ≈ 5.19, so P(0) ≈ 0.193.
        let p0 = counts[0] as f64 / 20_000.0;
        assert!((p0 - 0.193).abs() < 0.02, "p0 {p0}");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_out_of_range_is_zero() {
        assert_eq!(Zipf::new(3, 1.0).pmf(3), 0.0);
    }

    #[test]
    #[should_panic(expected = "zipf over empty support")]
    fn empty_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    proptest! {
        #[test]
        fn samples_always_in_range(n in 1usize..200, s in 0.0f64..3.0, seed: u64) {
            let z = Zipf::new(n, s);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..100 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }

        #[test]
        fn pmf_is_decreasing(n in 2usize..100, s in 0.1f64..3.0) {
            let z = Zipf::new(n, s);
            for k in 1..n {
                prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
            }
        }
    }
}
