//! Parser for the real AOL query-log TSV format.
//!
//! Files look like:
//!
//! ```text
//! AnonID	Query	QueryTime	ItemRank	ClickURL
//! 142	rentdirect.com	2006-03-01 07:17:12
//! 142	staple.com	2006-03-01 17:29:13	1	http://www.staples.com
//! ```
//!
//! The header line is optional; malformed lines are skipped and counted.

// The doc example above shows the literal TSV schema — the tabs are the
// field separators being documented.
#![allow(clippy::tabs_in_doc_comments)]

use crate::record::{QueryRecord, UserId};

/// Result of parsing a log: the records plus a count of skipped lines.
#[derive(Debug, Clone, Default)]
pub struct ParseOutcome {
    /// Successfully parsed records, in file order.
    pub records: Vec<QueryRecord>,
    /// Lines that did not conform to the schema.
    pub skipped: usize,
}

/// Parses AOL TSV content (already read into a string).
///
/// # Example
///
/// ```
/// let text = "AnonID\tQuery\tQueryTime\tItemRank\tClickURL\n\
///             142\trentdirect.com\t2006-03-01 07:17:12\t\t\n";
/// let out = xsearch_query_log::parse::parse_aol(text);
/// assert_eq!(out.records.len(), 1);
/// assert_eq!(out.records[0].query, "rentdirect.com");
/// ```
#[must_use]
pub fn parse_aol(content: &str) -> ParseOutcome {
    let mut out = ParseOutcome::default();
    for (i, line) in content.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if i == 0 && line.starts_with("AnonID") {
            continue; // header
        }
        match parse_line(line) {
            Some(rec) => out.records.push(rec),
            None => out.skipped += 1,
        }
    }
    out
}

fn parse_line(line: &str) -> Option<QueryRecord> {
    let mut fields = line.split('\t');
    let user: u32 = fields.next()?.trim().parse().ok()?;
    let query = fields.next()?.trim();
    if query.is_empty() {
        return None;
    }
    let time = parse_datetime(fields.next()?.trim())?;
    let item_rank = match fields.next().map(str::trim) {
        Some("") | None => None,
        Some(r) => Some(r.parse().ok()?),
    };
    let click_url = match fields.next().map(str::trim) {
        Some("") | None => None,
        Some(u) => Some(u.to_owned()),
    };
    Some(QueryRecord {
        user: UserId(user),
        query: query.to_owned(),
        time,
        item_rank,
        click_url,
    })
}

/// Parses `YYYY-MM-DD HH:MM:SS` into Unix seconds (UTC, proleptic
/// Gregorian). Returns `None` for malformed input or out-of-range fields.
#[must_use]
pub fn parse_datetime(s: &str) -> Option<u64> {
    let (date, time) = s.split_once(' ')?;
    let mut dp = date.split('-');
    let year: i64 = dp.next()?.parse().ok()?;
    let month: u64 = dp.next()?.parse().ok()?;
    let day: u64 = dp.next()?.parse().ok()?;
    if dp.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    let mut tp = time.split(':');
    let hour: u64 = tp.next()?.parse().ok()?;
    let minute: u64 = tp.next()?.parse().ok()?;
    let second: u64 = tp.next()?.parse().ok()?;
    if tp.next().is_some() || hour > 23 || minute > 59 || second > 60 {
        return None;
    }
    let days = days_from_civil(year, month, day);
    if days < 0 {
        return None;
    }
    Some(days as u64 * 86_400 + hour * 3_600 + minute * 60 + second)
}

/// Days since 1970-01-01 for a proleptic Gregorian date
/// (Howard Hinnant's `days_from_civil` algorithm).
fn days_from_civil(y: i64, m: u64, d: u64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = if m > 2 { m - 3 } else { m + 9 }; // March-based month
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe as i64 - 719_468
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(parse_datetime("1970-01-01 00:00:00"), Some(0));
    }

    #[test]
    fn known_epoch_values() {
        // 2000-01-01T00:00:00Z and 2006-03-01T00:00:00Z.
        assert_eq!(parse_datetime("2000-01-01 00:00:00"), Some(946_684_800));
        assert_eq!(parse_datetime("2006-03-01 00:00:00"), Some(1_141_171_200));
        assert_eq!(
            parse_datetime("2006-03-01 07:17:12"),
            Some(1_141_171_200 + 7 * 3600 + 17 * 60 + 12)
        );
    }

    #[test]
    fn leap_year_february() {
        // 2004 was a leap year: Feb 29 exists and Mar 1 is day 60.
        let feb29 = parse_datetime("2004-02-29 00:00:00").unwrap();
        let mar1 = parse_datetime("2004-03-01 00:00:00").unwrap();
        assert_eq!(mar1 - feb29, 86_400);
    }

    #[test]
    fn malformed_datetimes_rejected() {
        for s in [
            "2006-03-01",
            "2006/03/01 00:00:00",
            "2006-13-01 00:00:00",
            "2006-03-01 25:00:00",
            "garbage",
        ] {
            assert_eq!(parse_datetime(s), None, "{s}");
        }
    }

    #[test]
    fn parses_click_and_non_click_lines() {
        let text = "AnonID\tQuery\tQueryTime\tItemRank\tClickURL\n\
                    142\trentdirect.com\t2006-03-01 07:17:12\t\t\n\
                    142\tstaple.com\t2006-03-01 17:29:13\t1\thttp://www.staples.com\n";
        let out = parse_aol(text);
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.skipped, 0);
        assert_eq!(out.records[0].item_rank, None);
        assert_eq!(out.records[1].item_rank, Some(1));
        assert_eq!(
            out.records[1].click_url.as_deref(),
            Some("http://www.staples.com")
        );
    }

    #[test]
    fn three_column_lines_parse_without_click_fields() {
        let out = parse_aol("7\tnew york lottery\t2006-05-11 09:12:13\n");
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].user, UserId(7));
    }

    #[test]
    fn malformed_lines_are_counted_not_fatal() {
        let text = "abc\tquery\t2006-03-01 00:00:00\n\
                    5\t\t2006-03-01 00:00:00\n\
                    5\tok query\t2006-03-01 00:00:00\n";
        let out = parse_aol(text);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.skipped, 2);
    }

    #[test]
    fn empty_input_is_empty() {
        let out = parse_aol("");
        assert!(out.records.is_empty());
        assert_eq!(out.skipped, 0);
    }

    proptest! {
        #[test]
        fn datetime_roundtrip_monotone(
            d1 in 1u64..=28, d2 in 1u64..=28,
            m1 in 1u64..=12, m2 in 1u64..=12,
            y1 in 1990i64..2020, y2 in 1990i64..2020,
        ) {
            let a = parse_datetime(&format!("{y1:04}-{m1:02}-{d1:02} 00:00:00")).unwrap();
            let b = parse_datetime(&format!("{y2:04}-{m2:02}-{d2:02} 00:00:00")).unwrap();
            prop_assert_eq!((y1, m1, d1) <= (y2, m2, d2), a <= b);
        }

        #[test]
        fn parse_never_panics(line: String) {
            let _ = parse_aol(&line);
        }
    }
}
