//! The query-log record type, mirroring the AOL dataset schema.

use std::fmt;

/// An anonymized user identifier (the AOL `AnonID` column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct UserId(pub u32);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// One logged query event.
///
/// Field names follow the AOL columns: `AnonID`, `Query`, `QueryTime`,
/// `ItemRank`, `ClickURL`. Click data is optional (absent for non-click
/// events) and unused by most experiments, but preserved so real AOL files
/// round-trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRecord {
    /// Anonymized requesting user.
    pub user: UserId,
    /// The raw query text as typed.
    pub query: String,
    /// Seconds since the Unix epoch.
    pub time: u64,
    /// 1-based rank of the clicked result, when a click followed.
    pub item_rank: Option<u32>,
    /// Domain of the clicked result, when a click followed.
    pub click_url: Option<String>,
}

impl QueryRecord {
    /// Convenience constructor for a non-click query event.
    #[must_use]
    pub fn new(user: UserId, query: impl Into<String>, time: u64) -> Self {
        QueryRecord {
            user,
            query: query.into(),
            time,
            item_rank: None,
            click_url: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_id_displays_compactly() {
        assert_eq!(UserId(42).to_string(), "u42");
    }

    #[test]
    fn new_has_no_click_data() {
        let r = QueryRecord::new(UserId(1), "paris hotels", 1_141_171_200);
        assert_eq!(r.item_rank, None);
        assert_eq!(r.click_url, None);
        assert_eq!(r.query, "paris hotels");
    }

    #[test]
    fn records_are_ordered_by_derive() {
        let a = QueryRecord::new(UserId(1), "a", 1);
        let b = QueryRecord::new(UserId(1), "a", 1);
        assert_eq!(a, b);
    }
}
