//! Constant-time comparison helpers.
//!
//! Tag verification must not leak, through timing, the position of the first
//! mismatching byte; these helpers accumulate differences without branching
//! on secret data.

/// Compares two byte slices in constant time.
///
/// Returns `true` iff the slices have equal length and equal content. The
/// running time depends only on the length of the inputs, never on where
/// they differ.
///
/// # Example
///
/// ```
/// use xsearch_crypto::constant_time::ct_eq;
/// assert!(ct_eq(b"tag", b"tag"));
/// assert!(!ct_eq(b"tag", b"taG"));
/// assert!(!ct_eq(b"tag", b"tag-longer"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Collapse to 0/1 without a data-dependent branch.
    diff == 0
}

/// Selects between two words in constant time: returns `a` if `choice` is 1,
/// `b` if `choice` is 0.
///
/// # Panics
///
/// Panics in debug builds if `choice` is neither 0 nor 1.
#[must_use]
pub fn ct_select_u64(choice: u64, a: u64, b: u64) -> u64 {
    debug_assert!(choice <= 1);
    let mask = choice.wrapping_neg(); // all ones if choice==1
    b ^ (mask & (a ^ b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_slices_compare_equal() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn different_lengths_are_unequal() {
        assert!(!ct_eq(&[1, 2], &[1, 2, 3]));
    }

    #[test]
    fn single_bit_flip_is_detected() {
        let a = [0b1010_1010u8; 16];
        for byte in 0..16 {
            for bit in 0..8 {
                let mut b = a;
                b[byte] ^= 1 << bit;
                assert!(!ct_eq(&a, &b), "flip at byte {byte} bit {bit} missed");
            }
        }
    }

    #[test]
    fn select_picks_correct_operand() {
        assert_eq!(ct_select_u64(1, 7, 9), 7);
        assert_eq!(ct_select_u64(0, 7, 9), 9);
    }

    proptest! {
        #[test]
        fn ct_eq_matches_plain_eq(a: Vec<u8>, b: Vec<u8>) {
            prop_assert_eq!(ct_eq(&a, &b), a == b);
        }

        #[test]
        fn ct_eq_is_reflexive(a: Vec<u8>) {
            prop_assert!(ct_eq(&a, &a));
        }

        #[test]
        fn select_matches_branching(choice in 0u64..=1, a: u64, b: u64) {
            let expect = if choice == 1 { a } else { b };
            prop_assert_eq!(ct_select_u64(choice, a, b), expect);
        }
    }
}
