//! ECIES-style hybrid public-key encryption: X25519 + HKDF-SHA-256 +
//! ChaCha20-Poly1305.
//!
//! The PEAS baseline in the paper wraps each query for its two proxies with
//! RSA-hybrid encryption; this module is the substitution documented in
//! DESIGN.md — it preserves the *cost structure* (one asymmetric operation
//! per recipient per message on both the sender and the recipient) while
//! reusing the primitives already validated in this crate.

use crate::aead::ChaCha20Poly1305;
use crate::error::CryptoError;
use crate::hkdf;
use crate::x25519::{PublicKey, StaticSecret, KEY_LEN};
use rand::RngCore;

/// Domain-separation label for the KDF.
const INFO: &[u8] = b"xsearch-hybrid-v1";

/// All-zero nonce: safe here because every encryption uses a fresh
/// ephemeral key, so (key, nonce) pairs never repeat.
const NONCE: [u8; 12] = [0u8; 12];

/// Encrypts `plaintext` to `recipient`, returning
/// `ephemeral_public ‖ ciphertext ‖ tag`.
///
/// Each call generates a fresh ephemeral X25519 key pair, performs one DH
/// with the recipient key, derives an AEAD key and seals the payload; the
/// recipient needs one DH to reverse it. This is the per-message public-key
/// work the PEAS cost model depends on.
pub fn seal<R: RngCore>(rng: &mut R, recipient: &PublicKey, plaintext: &[u8]) -> Vec<u8> {
    let ephemeral = StaticSecret::random(rng);
    let eph_pub = ephemeral.public_key();
    let shared = ephemeral.diffie_hellman(recipient).expect(
        "freshly generated ephemeral key cannot hit a low-order point for a valid recipient",
    );
    let key = derive_key(&shared, &eph_pub, recipient);
    let aead = ChaCha20Poly1305::new(&key);
    let mut out = Vec::with_capacity(KEY_LEN + plaintext.len() + 16);
    out.extend_from_slice(eph_pub.as_bytes());
    out.extend_from_slice(&aead.seal(&NONCE, eph_pub.as_bytes(), plaintext));
    out
}

/// Decrypts a message produced by [`seal`] with the recipient's secret key.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidLength`] for truncated input,
/// [`CryptoError::WeakPublicKey`] for a degenerate ephemeral key, and
/// [`CryptoError::AuthenticationFailed`] when the AEAD tag does not verify.
pub fn open(secret: &StaticSecret, sealed: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if sealed.len() < KEY_LEN + 16 {
        return Err(CryptoError::InvalidLength {
            got: sealed.len(),
            expected: KEY_LEN + 16,
        });
    }
    let (eph_bytes, body) = sealed.split_at(KEY_LEN);
    let eph_pub = PublicKey(eph_bytes.try_into().expect("split at KEY_LEN"));
    let shared = secret.diffie_hellman(&eph_pub)?;
    let key = derive_key(&shared, &eph_pub, &secret.public_key());
    let aead = ChaCha20Poly1305::new(&key);
    aead.open(&NONCE, eph_pub.as_bytes(), body)
}

/// Binds the AEAD key to both public keys involved in the exchange.
fn derive_key(shared: &[u8; 32], eph: &PublicKey, recipient: &PublicKey) -> [u8; 32] {
    let mut salt = Vec::with_capacity(64);
    salt.extend_from_slice(eph.as_bytes());
    salt.extend_from_slice(recipient.as_bytes());
    let okm = hkdf::derive(&salt, shared, INFO, 32);
    okm.try_into().expect("requested exactly 32 bytes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(seed: u64) -> (StaticSecret, PublicKey) {
        let mut rng = StdRng::seed_from_u64(seed);
        let secret = StaticSecret::random(&mut rng);
        let public = secret.public_key();
        (secret, public)
    }

    #[test]
    fn roundtrip() {
        let (secret, public) = keypair(1);
        let mut rng = StdRng::seed_from_u64(2);
        let sealed = seal(&mut rng, &public, b"the user query");
        assert_eq!(open(&secret, &sealed).unwrap(), b"the user query");
    }

    #[test]
    fn wrong_recipient_fails() {
        let (_, public_a) = keypair(1);
        let (secret_b, _) = keypair(2);
        let mut rng = StdRng::seed_from_u64(3);
        let sealed = seal(&mut rng, &public_a, b"msg");
        assert!(open(&secret_b, &sealed).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let (secret, _) = keypair(1);
        assert!(matches!(
            open(&secret, &[0u8; 10]),
            Err(CryptoError::InvalidLength { .. })
        ));
    }

    #[test]
    fn sealed_is_larger_by_overhead_only() {
        let (_, public) = keypair(1);
        let mut rng = StdRng::seed_from_u64(4);
        let sealed = seal(&mut rng, &public, &[0u8; 100]);
        assert_eq!(sealed.len(), 100 + KEY_LEN + 16);
    }

    #[test]
    fn each_seal_is_unique() {
        let (_, public) = keypair(1);
        let mut rng = StdRng::seed_from_u64(5);
        let a = seal(&mut rng, &public, b"same message");
        let b = seal(&mut rng, &public, b"same message");
        assert_ne!(a, b, "fresh ephemeral keys must randomize ciphertexts");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn roundtrip_any_payload(seed: u64, payload: Vec<u8>) {
            let (secret, public) = keypair(seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
            let sealed = seal(&mut rng, &public, &payload);
            prop_assert_eq!(open(&secret, &sealed).unwrap(), payload);
        }

        #[test]
        fn tamper_rejected(seed: u64, idx: usize, bit in 0u8..8) {
            let (secret, public) = keypair(seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
            let mut sealed = seal(&mut rng, &public, b"payload bytes");
            let i = KEY_LEN + idx % (sealed.len() - KEY_LEN);
            sealed[i] ^= 1 << bit;
            prop_assert!(open(&secret, &sealed).is_err());
        }
    }
}
