//! From-scratch cryptographic substrate for the X-Search reproduction.
//!
//! The offline build environment provides no cryptography crates, so every
//! primitive the system needs is implemented here and validated against the
//! relevant RFC/FIPS test vectors:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4),
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104, vectors from RFC 4231),
//! * [`hkdf`] — HKDF-SHA-256 (RFC 5869),
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439),
//! * [`poly1305`] — the Poly1305 one-time authenticator (RFC 8439),
//! * [`aead`] — the ChaCha20-Poly1305 AEAD construction (RFC 8439),
//! * [`x25519`] — Diffie-Hellman over Curve25519 (RFC 7748),
//! * [`hybrid`] — an ECIES-style hybrid public-key encryption built from
//!   X25519 + HKDF + ChaCha20-Poly1305 (used by the PEAS baseline and by the
//!   X-Search attested channel),
//! * [`reference`] — the pre-optimization scalar AEAD, kept only as a
//!   differential-testing and benchmarking baseline for the wide
//!   multi-block hot path.
//!
//! These are *reproduction-grade* implementations: correct, constant-time
//! where it matters for realistic cost measurement, but not hardened against
//! every side channel a production library would consider.
//!
//! # Example
//!
//! ```
//! use xsearch_crypto::aead::ChaCha20Poly1305;
//!
//! let key = [7u8; 32];
//! let aead = ChaCha20Poly1305::new(&key);
//! let nonce = [0u8; 12];
//! let sealed = aead.seal(&nonce, b"header", b"secret query");
//! let opened = aead.open(&nonce, b"header", &sealed).expect("authentic");
//! assert_eq!(opened, b"secret query");
//! ```

#![deny(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod constant_time;
pub mod error;
pub mod hex;
pub mod hkdf;
pub mod hmac;
pub mod hybrid;
pub mod poly1305;
pub mod reference;
pub mod sha256;
pub mod x25519;

pub use aead::ChaCha20Poly1305;
pub use error::CryptoError;
pub use sha256::Sha256;
pub use x25519::{PublicKey, StaticSecret};
