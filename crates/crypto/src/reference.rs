//! The pre-optimization scalar AEAD, kept as a measurement baseline.
//!
//! This module preserves, verbatim, the one-block-at-a-time
//! ChaCha20-Poly1305 the reproduction shipped before the multi-block
//! rewrite: a full state rebuild per 64-byte block, byte-wise keystream
//! XOR, and a Poly1305 that round-trips its accumulator through the
//! struct every 16 bytes. It exists for two jobs and must not be used
//! on any hot path:
//!
//! * **differential testing** — proptests pin the optimized
//!   [`crate::aead::ChaCha20Poly1305`] byte-identical to this one;
//! * **benchmarking** — the `crypto_throughput` harness measures the
//!   optimized path's speedup against this exact code rather than
//!   against a number remembered from an older commit.

use crate::constant_time::ct_eq;
use crate::error::CryptoError;

const KEY_LEN: usize = 32;
const NONCE_LEN: usize = 12;
const BLOCK_LEN: usize = 64;
const TAG_LEN: usize = 16;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

fn initial_state(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    state[12] = counter;
    for (i, chunk) in nonce.chunks_exact(4).enumerate() {
        state[13 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    state
}

fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let initial = initial_state(key, counter, nonce);
    let [mut x0, mut x1, mut x2, mut x3, mut x4, mut x5, mut x6, mut x7, mut x8, mut x9, mut x10, mut x11, mut x12, mut x13, mut x14, mut x15] =
        initial;

    macro_rules! quarter_round {
        ($a:ident, $b:ident, $c:ident, $d:ident) => {
            $a = $a.wrapping_add($b);
            $d = ($d ^ $a).rotate_left(16);
            $c = $c.wrapping_add($d);
            $b = ($b ^ $c).rotate_left(12);
            $a = $a.wrapping_add($b);
            $d = ($d ^ $a).rotate_left(8);
            $c = $c.wrapping_add($d);
            $b = ($b ^ $c).rotate_left(7);
        };
    }

    for _ in 0..10 {
        quarter_round!(x0, x4, x8, x12);
        quarter_round!(x1, x5, x9, x13);
        quarter_round!(x2, x6, x10, x14);
        quarter_round!(x3, x7, x11, x15);
        quarter_round!(x0, x5, x10, x15);
        quarter_round!(x1, x6, x11, x12);
        quarter_round!(x2, x7, x8, x13);
        quarter_round!(x3, x4, x9, x14);
    }

    let state = [
        x0, x1, x2, x3, x4, x5, x6, x7, x8, x9, x10, x11, x12, x13, x14, x15,
    ];
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = state[i].wrapping_add(initial[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// The pre-rewrite stream XOR: one block per pass, byte-wise XOR.
pub fn xor_stream(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    for (block_idx, chunk) in data.chunks_mut(BLOCK_LEN).enumerate() {
        let ks = block(key, counter.wrapping_add(block_idx as u32), nonce);
        for (byte, k) in chunk.iter_mut().zip(ks.iter()) {
            *byte ^= k;
        }
    }
}

struct Poly1305 {
    r: [u32; 5],
    s: [u32; 4],
    h: [u32; 5],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    fn new(key: &[u8; 32]) -> Self {
        let le32 = |b: &[u8]| -> u32 { u32::from_le_bytes([b[0], b[1], b[2], b[3]]) };
        let t0 = le32(&key[0..4]);
        let t1 = le32(&key[4..8]);
        let t2 = le32(&key[8..12]);
        let t3 = le32(&key[12..16]);
        let r = [
            t0 & 0x03ff_ffff,
            ((t0 >> 26) | (t1 << 6)) & 0x03ff_ff03,
            ((t1 >> 20) | (t2 << 12)) & 0x03ff_c0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x03f0_3fff,
            (t3 >> 8) & 0x000f_ffff,
        ];
        let s = [
            le32(&key[16..20]),
            le32(&key[20..24]),
            le32(&key[24..28]),
            le32(&key[28..32]),
        ];
        Poly1305 {
            r,
            s,
            h: [0; 5],
            buf: [0; 16],
            buf_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.process_block(&block, 1 << 24);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let (block, rest) = data.split_at(16);
            let mut b = [0u8; 16];
            b.copy_from_slice(block);
            self.process_block(&b, 1 << 24);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn process_block(&mut self, block: &[u8; 16], hibit: u32) {
        let le32 = |b: &[u8]| -> u32 { u32::from_le_bytes([b[0], b[1], b[2], b[3]]) };
        let t0 = le32(&block[0..4]);
        let t1 = le32(&block[4..8]);
        let t2 = le32(&block[8..12]);
        let t3 = le32(&block[12..16]);

        let mut h0 = self.h[0] + (t0 & 0x03ff_ffff);
        let mut h1 = self.h[1] + (((t0 >> 26) | (t1 << 6)) & 0x03ff_ffff);
        let mut h2 = self.h[2] + (((t1 >> 20) | (t2 << 12)) & 0x03ff_ffff);
        let mut h3 = self.h[3] + (((t2 >> 14) | (t3 << 18)) & 0x03ff_ffff);
        let mut h4 = self.h[4] + ((t3 >> 8) | hibit);

        let [r0, r1, r2, r3, r4] = self.r;
        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;

        let d0 = u64::from(h0) * u64::from(r0)
            + u64::from(h1) * u64::from(s4)
            + u64::from(h2) * u64::from(s3)
            + u64::from(h3) * u64::from(s2)
            + u64::from(h4) * u64::from(s1);
        let d1 = u64::from(h0) * u64::from(r1)
            + u64::from(h1) * u64::from(r0)
            + u64::from(h2) * u64::from(s4)
            + u64::from(h3) * u64::from(s3)
            + u64::from(h4) * u64::from(s2);
        let d2 = u64::from(h0) * u64::from(r2)
            + u64::from(h1) * u64::from(r1)
            + u64::from(h2) * u64::from(r0)
            + u64::from(h3) * u64::from(s4)
            + u64::from(h4) * u64::from(s3);
        let d3 = u64::from(h0) * u64::from(r3)
            + u64::from(h1) * u64::from(r2)
            + u64::from(h2) * u64::from(r1)
            + u64::from(h3) * u64::from(r0)
            + u64::from(h4) * u64::from(s4);
        let d4 = u64::from(h0) * u64::from(r4)
            + u64::from(h1) * u64::from(r3)
            + u64::from(h2) * u64::from(r2)
            + u64::from(h3) * u64::from(r1)
            + u64::from(h4) * u64::from(r0);

        let mut carry = (d0 >> 26) as u32;
        h0 = (d0 as u32) & 0x03ff_ffff;
        let d1 = d1 + u64::from(carry);
        carry = (d1 >> 26) as u32;
        h1 = (d1 as u32) & 0x03ff_ffff;
        let d2 = d2 + u64::from(carry);
        carry = (d2 >> 26) as u32;
        h2 = (d2 as u32) & 0x03ff_ffff;
        let d3 = d3 + u64::from(carry);
        carry = (d3 >> 26) as u32;
        h3 = (d3 as u32) & 0x03ff_ffff;
        let d4 = d4 + u64::from(carry);
        carry = (d4 >> 26) as u32;
        h4 = (d4 as u32) & 0x03ff_ffff;
        h0 += carry * 5;
        carry = h0 >> 26;
        h0 &= 0x03ff_ffff;
        h1 += carry;

        self.h = [h0, h1, h2, h3, h4];
    }

    fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.process_block(&block, 0);
        }

        let [mut h0, mut h1, mut h2, mut h3, mut h4] = self.h;

        let mut carry = h1 >> 26;
        h1 &= 0x03ff_ffff;
        h2 += carry;
        carry = h2 >> 26;
        h2 &= 0x03ff_ffff;
        h3 += carry;
        carry = h3 >> 26;
        h3 &= 0x03ff_ffff;
        h4 += carry;
        carry = h4 >> 26;
        h4 &= 0x03ff_ffff;
        h0 += carry * 5;
        carry = h0 >> 26;
        h0 &= 0x03ff_ffff;
        h1 += carry;

        let mut g0 = h0.wrapping_add(5);
        carry = g0 >> 26;
        g0 &= 0x03ff_ffff;
        let mut g1 = h1.wrapping_add(carry);
        carry = g1 >> 26;
        g1 &= 0x03ff_ffff;
        let mut g2 = h2.wrapping_add(carry);
        carry = g2 >> 26;
        g2 &= 0x03ff_ffff;
        let mut g3 = h3.wrapping_add(carry);
        carry = g3 >> 26;
        g3 &= 0x03ff_ffff;
        let g4 = h4.wrapping_add(carry).wrapping_sub(1 << 26);

        let mask = (g4 >> 31).wrapping_sub(1);
        g0 &= mask;
        g1 &= mask;
        g2 &= mask;
        g3 &= mask;
        let g4 = g4 & mask;
        let not_mask = !mask;
        h0 = (h0 & not_mask) | g0;
        h1 = (h1 & not_mask) | g1;
        h2 = (h2 & not_mask) | g2;
        h3 = (h3 & not_mask) | g3;
        h4 = (h4 & not_mask) | g4;

        let f0 = h0 | (h1 << 26);
        let f1 = (h1 >> 6) | (h2 << 20);
        let f2 = (h2 >> 12) | (h3 << 14);
        let f3 = (h3 >> 18) | (h4 << 8);

        let mut acc = u64::from(f0) + u64::from(self.s[0]);
        let t0 = acc as u32;
        acc = u64::from(f1) + u64::from(self.s[1]) + (acc >> 32);
        let t1 = acc as u32;
        acc = u64::from(f2) + u64::from(self.s[2]) + (acc >> 32);
        let t2 = acc as u32;
        acc = u64::from(f3) + u64::from(self.s[3]) + (acc >> 32);
        let t3 = acc as u32;

        let mut tag = [0u8; TAG_LEN];
        tag[0..4].copy_from_slice(&t0.to_le_bytes());
        tag[4..8].copy_from_slice(&t1.to_le_bytes());
        tag[8..12].copy_from_slice(&t2.to_le_bytes());
        tag[12..16].copy_from_slice(&t3.to_le_bytes());
        tag
    }
}

/// The pre-rewrite allocating AEAD (scalar ChaCha20, per-block Poly1305).
#[derive(Clone)]
pub struct ScalarChaCha20Poly1305 {
    key: [u8; KEY_LEN],
}

impl std::fmt::Debug for ScalarChaCha20Poly1305 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScalarChaCha20Poly1305")
            .field("key", &"<secret>")
            .finish()
    }
}

impl ScalarChaCha20Poly1305 {
    /// Creates the reference cipher from a 32-byte key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        ScalarChaCha20Poly1305 { key: *key }
    }

    fn one_time_key(&self, nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
        let block = block(&self.key, 0, nonce);
        let mut otk = [0u8; 32];
        otk.copy_from_slice(&block[..32]);
        otk
    }

    fn compute_tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let otk = self.one_time_key(nonce);
        let mut mac = Poly1305::new(&otk);
        let zero_pad = [0u8; 16];
        mac.update(aad);
        mac.update(&zero_pad[..(16 - aad.len() % 16) % 16]);
        mac.update(ciphertext);
        mac.update(&zero_pad[..(16 - ciphertext.len() % 16) % 16]);
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.finalize()
    }

    /// The pre-rewrite `seal`: returns `ciphertext ‖ tag`.
    #[must_use]
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        xor_stream(&self.key, 1, nonce, &mut out);
        let tag = self.compute_tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// The pre-rewrite `open`.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::aead::ChaCha20Poly1305::open`].
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::InvalidLength {
                got: sealed.len(),
                expected: TAG_LEN,
            });
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = self.compute_tag(nonce, aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut out = ciphertext.to_vec();
        xor_stream(&self.key, 1, nonce, &mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn reference_still_passes_the_rfc8439_aead_vector() {
        // RFC 8439 §2.8.2 — the baseline must stay a correct AEAD or the
        // differential tests against it prove nothing.
        let key: [u8; 32] =
            hex::decode_expect("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = hex::decode_expect("070000004041424344454647")
            .try_into()
            .unwrap();
        let aad = hex::decode_expect("50515253c0c1c2c3c4c5c6c7");
        let msg: &[u8] = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let aead = ScalarChaCha20Poly1305::new(&key);
        let sealed = aead.seal(&nonce, &aad, msg);
        assert_eq!(
            hex::encode(&sealed[..16]),
            "d31a8d34648e60db7b86afbc53ef7ec2"
        );
        assert_eq!(
            hex::encode(&sealed[sealed.len() - TAG_LEN..]),
            "1ae10b594f09e26a7e902ecbd0600691"
        );
        assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), msg);
    }
}
