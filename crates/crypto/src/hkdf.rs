//! HKDF-SHA-256 (RFC 5869): extract-then-expand key derivation.
//!
//! The attested channel derives its per-direction ChaCha20-Poly1305 keys
//! from the X25519 shared secret with this function.

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// Maximum output length of a single [`expand`] call: `255 * HashLen`.
pub const MAX_OUTPUT_LEN: usize = 255 * DIGEST_LEN;

/// HKDF-Extract: compresses input keying material into a pseudorandom key.
///
/// An empty `salt` behaves like a string of `HashLen` zero bytes, per the
/// RFC.
#[must_use]
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    let zeros = [0u8; DIGEST_LEN];
    let salt = if salt.is_empty() { &zeros[..] } else { salt };
    HmacSha256::mac(salt, ikm)
}

/// HKDF-Expand: stretches a pseudorandom key into `len` output bytes bound
/// to `info`.
///
/// # Panics
///
/// Panics if `len > MAX_OUTPUT_LEN` (an RFC limit, and always a programming
/// error in this codebase).
#[must_use]
pub fn expand(prk: &[u8; DIGEST_LEN], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= MAX_OUTPUT_LEN, "hkdf output too long: {len}");
    let mut out = Vec::with_capacity(len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut h = HmacSha256::new(prk);
        h.update(&previous);
        h.update(info);
        h.update(&[counter]);
        let block = h.finalize();
        let take = (len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&block[..take]);
        previous = block.to_vec();
        counter = counter
            .checked_add(1)
            .expect("len bound keeps counter in range");
    }
    out
}

/// Convenience: extract-then-expand in one call.
///
/// # Example
///
/// ```
/// let okm = xsearch_crypto::hkdf::derive(b"salt", b"shared-secret", b"xsearch-c2s", 32);
/// assert_eq!(okm.len(), 32);
/// ```
#[must_use]
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    expand(&extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use proptest::prelude::*;

    #[test]
    fn rfc5869_case_1() {
        let ikm = hex::decode_expect("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
        let salt = hex::decode_expect("000102030405060708090a0b0c");
        let info = hex::decode_expect("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex::encode(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42);
        assert_eq!(
            hex::encode(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case_2_long_inputs() {
        let ikm: Vec<u8> = (0x00..=0x4f).collect();
        let salt: Vec<u8> = (0x60..=0xaf).collect();
        let info: Vec<u8> = (0xb0..=0xff).collect();
        let okm = derive(&salt, &ikm, &info, 82);
        assert_eq!(
            hex::encode(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    #[test]
    fn rfc5869_case_3_empty_salt_and_info() {
        let ikm = hex::decode_expect("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
        let okm = derive(&[], &ikm, &[], 42);
        assert_eq!(
            hex::encode(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_exact_multiple_of_hash_len() {
        let prk = extract(b"s", b"k");
        assert_eq!(expand(&prk, b"i", 64).len(), 64);
    }

    #[test]
    #[should_panic(expected = "hkdf output too long")]
    fn expand_rejects_oversize() {
        let prk = extract(b"s", b"k");
        let _ = expand(&prk, b"i", MAX_OUTPUT_LEN + 1);
    }

    proptest! {
        #[test]
        fn prefix_consistency(len_a in 1usize..100, len_b in 1usize..100) {
            // HKDF output for a shorter length is a prefix of a longer one.
            let prk = extract(b"salt", b"ikm");
            let (short, long) = (len_a.min(len_b), len_a.max(len_b));
            let a = expand(&prk, b"info", short);
            let b = expand(&prk, b"info", long);
            prop_assert_eq!(&a[..], &b[..short]);
        }

        #[test]
        fn info_separates_outputs(info_a: Vec<u8>, info_b: Vec<u8>) {
            prop_assume!(info_a != info_b);
            let prk = extract(b"salt", b"ikm");
            prop_assert_ne!(expand(&prk, &info_a, 32), expand(&prk, &info_b, 32));
        }
    }
}
