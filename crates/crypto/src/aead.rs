//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//!
//! This is the work-horse cipher of the whole reproduction: the attested
//! broker↔enclave channel, the Tor baseline's onion layers and the PEAS
//! baseline's proxy hops all seal and open with it, so the Fig 5 throughput
//! comparison measures this real computation.
//!
//! The hot entry points are the detached in-place APIs
//! ([`ChaCha20Poly1305::seal_in_place`] /
//! [`ChaCha20Poly1305::open_in_place`]): they encrypt the caller's
//! buffer directly — no copy, no allocation — using the wide 4-block
//! keystream path, and `seal_in_place` authenticates each 256-byte span
//! right after encrypting it, while it is still hot in L1. The
//! allocating [`ChaCha20Poly1305::seal`] / [`ChaCha20Poly1305::open`]
//! are thin wrappers kept for cold paths and tests; proptests pin both
//! pairs byte-identical (and identical to the pre-rewrite scalar
//! implementation in [`crate::reference`]).

use crate::chacha20::{self, BLOCK_LEN, KEY_LEN, NONCE_LEN, WIDE_BLOCKS};
use crate::constant_time::ct_eq;
use crate::error::CryptoError;
use crate::poly1305::Poly1305;

pub use crate::poly1305::TAG_LEN;

/// Bytes encrypted per seal pass before the span is handed to the
/// authenticator: one wide keystream pass.
const SPAN: usize = WIDE_BLOCKS * BLOCK_LEN;

/// An authenticated cipher instance holding one 256-bit key, parsed
/// into its state words once at construction (the per-block key-word
/// parse the scalar path paid is gone).
///
/// # Example
///
/// ```
/// use xsearch_crypto::aead::ChaCha20Poly1305;
///
/// let aead = ChaCha20Poly1305::new(&[9u8; 32]);
/// let ct = aead.seal(&[0u8; 12], b"aad", b"hello");
/// assert_eq!(aead.open(&[0u8; 12], b"aad", &ct).unwrap(), b"hello");
/// assert!(aead.open(&[0u8; 12], b"other-aad", &ct).is_err());
/// ```
#[derive(Clone)]
pub struct ChaCha20Poly1305 {
    /// The precomputed key schedule: the eight LE key words of ChaCha20
    /// state rows 1–2.
    key: [u32; 8],
}

impl std::fmt::Debug for ChaCha20Poly1305 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("ChaCha20Poly1305")
            .field("key", &"<secret>")
            .finish()
    }
}

impl ChaCha20Poly1305 {
    /// Creates a cipher from a 32-byte key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        ChaCha20Poly1305 {
            key: chacha20::key_words(key),
        }
    }

    /// Derives the Poly1305 one-time key for `nonce` (RFC 8439 §2.6).
    fn one_time_key(&self, nonce: &[u32; 3]) -> [u8; 32] {
        let words = chacha20::block_words(&self.key, 0, nonce);
        let mut otk = [0u8; 32];
        for (chunk, word) in otk.chunks_exact_mut(4).zip(&words) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        otk
    }

    /// Starts the RFC 8439 MAC: one-time key, then AAD plus padding.
    fn mac_with_aad(&self, nonce: &[u32; 3], aad: &[u8]) -> Poly1305 {
        let mut mac = Poly1305::new(&self.one_time_key(nonce));
        mac.update(aad);
        mac.update(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
        mac
    }

    /// Finishes the RFC 8439 MAC: ciphertext padding, then both lengths.
    fn mac_finish(mut mac: Poly1305, aad_len: usize, ct_len: usize) -> [u8; TAG_LEN] {
        mac.update(&[0u8; 16][..(16 - ct_len % 16) % 16]);
        mac.update(&(aad_len as u64).to_le_bytes());
        mac.update(&(ct_len as u64).to_le_bytes());
        mac.finalize()
    }

    /// MAC over an already-produced ciphertext (the open direction).
    fn compute_tag(&self, nonce: &[u32; 3], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut mac = self.mac_with_aad(nonce, aad);
        mac.update(ciphertext);
        Self::mac_finish(mac, aad.len(), ciphertext.len())
    }

    /// Encrypts `data` in place, binding `aad`, and returns the detached
    /// authentication tag.
    ///
    /// This is the one-pass hot path: each 256-byte span is encrypted by
    /// one wide keystream pass and absorbed by the authenticator
    /// immediately, so the payload is streamed through the CPU cache
    /// once instead of once for ChaCha20 and again for Poly1305.
    #[must_use]
    pub fn seal_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        data: &mut [u8],
    ) -> [u8; TAG_LEN] {
        let nw = chacha20::nonce_words(nonce);
        let mut mac = self.mac_with_aad(&nw, aad);
        let mut counter = 1u32;
        for span in data.chunks_mut(SPAN) {
            chacha20::xor_stream_words(&self.key, counter, &nw, span);
            counter = counter.wrapping_add(WIDE_BLOCKS as u32);
            mac.update(span);
        }
        Self::mac_finish(mac, aad.len(), data.len())
    }

    /// Verifies the detached `tag` over the ciphertext in `data` and, on
    /// success, decrypts `data` in place.
    ///
    /// The tag is checked **before** any decryption: on failure the
    /// buffer still holds the untouched ciphertext, never a plaintext
    /// that failed authentication.
    ///
    /// # Errors
    ///
    /// [`CryptoError::AuthenticationFailed`] if the tag does not verify
    /// (wrong key, nonce, AAD, or tampered ciphertext); `data` is left
    /// unmodified in that case.
    pub fn open_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<(), CryptoError> {
        let nw = chacha20::nonce_words(nonce);
        let expected = self.compute_tag(&nw, aad, data);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        chacha20::xor_stream_words(&self.key, 1, &nw, data);
        Ok(())
    }

    /// Encrypts the plaintext held in `buf` in place and appends the
    /// tag — `buf` becomes `ciphertext ‖ tag`. The framed-buffer form
    /// of [`ChaCha20Poly1305::seal_in_place`] every tunnel, onion layer
    /// and PEAS hop builds on.
    pub fn seal_vec(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], buf: &mut Vec<u8>) {
        buf.reserve(TAG_LEN);
        let tag = self.seal_in_place(nonce, aad, buf);
        buf.extend_from_slice(&tag);
    }

    /// Verifies and decrypts the `ciphertext ‖ tag` held in `buf` in
    /// place, truncating the tag off — the framed-buffer form of
    /// [`ChaCha20Poly1305::open_in_place`].
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidLength`] if `buf` is shorter than a tag,
    /// and [`CryptoError::AuthenticationFailed`] if the tag does not
    /// verify; `buf` is left unmodified in both cases.
    pub fn open_vec(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut Vec<u8>,
    ) -> Result<(), CryptoError> {
        if buf.len() < TAG_LEN {
            return Err(CryptoError::InvalidLength {
                got: buf.len(),
                expected: TAG_LEN,
            });
        }
        let split = buf.len() - TAG_LEN;
        let (ciphertext, tag) = buf.split_at_mut(split);
        let tag: &[u8; TAG_LEN] = (&*tag).try_into().expect("split at TAG_LEN");
        self.open_in_place(nonce, aad, ciphertext, tag)?;
        buf.truncate(split);
        Ok(())
    }

    /// Encrypts `plaintext`, binding `aad`, and returns `ciphertext ‖ tag`.
    ///
    /// Thin wrapper over [`ChaCha20Poly1305::seal_in_place`] (one exact
    /// allocation); byte-identical to it by construction and by proptest.
    #[must_use]
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        self.seal_vec(nonce, aad, &mut out);
        out
    }

    /// Decrypts and authenticates `sealed` (`ciphertext ‖ tag`).
    ///
    /// Thin wrapper over [`ChaCha20Poly1305::open_in_place`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if `sealed` is shorter than a
    /// tag, and [`CryptoError::AuthenticationFailed`] if the tag does not
    /// verify (wrong key, nonce, AAD, or tampered ciphertext).
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let mut out = sealed.to_vec();
        self.open_vec(nonce, aad, &mut out)?;
        Ok(out)
    }
}

/// Builds a 12-byte nonce from a 4-byte domain prefix and a counter.
///
/// The attested channel uses one domain per direction with a monotonically
/// increasing counter, which guarantees nonce uniqueness per key.
#[must_use]
pub fn counter_nonce(domain: [u8; 4], counter: u64) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..4].copy_from_slice(&domain);
    nonce[4..].copy_from_slice(&counter.to_le_bytes());
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use crate::reference::ScalarChaCha20Poly1305;
    use proptest::prelude::*;

    const SUNSCREEN: &[u8] = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";

    fn rfc_key() -> [u8; 32] {
        hex::decode_expect("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
            .try_into()
            .unwrap()
    }

    fn rfc_nonce() -> [u8; 12] {
        hex::decode_expect("070000004041424344454647")
            .try_into()
            .unwrap()
    }

    fn rfc_aad() -> Vec<u8> {
        hex::decode_expect("50515253c0c1c2c3c4c5c6c7")
    }

    #[test]
    fn rfc8439_aead_vector() {
        // RFC 8439 §2.8.2.
        let aead = ChaCha20Poly1305::new(&rfc_key());
        let sealed = aead.seal(&rfc_nonce(), &rfc_aad(), SUNSCREEN);
        assert_eq!(sealed.len(), SUNSCREEN.len() + TAG_LEN);
        assert_eq!(
            hex::encode(&sealed[..16]),
            "d31a8d34648e60db7b86afbc53ef7ec2"
        );
        assert_eq!(
            hex::encode(&sealed[sealed.len() - TAG_LEN..]),
            "1ae10b594f09e26a7e902ecbd0600691"
        );
    }

    #[test]
    fn rfc8439_aead_roundtrip() {
        let aead = ChaCha20Poly1305::new(&rfc_key());
        let sealed = aead.seal(&rfc_nonce(), &rfc_aad(), SUNSCREEN);
        let opened = aead.open(&rfc_nonce(), &rfc_aad(), &sealed).unwrap();
        assert_eq!(opened, SUNSCREEN);
    }

    #[test]
    fn in_place_roundtrip_with_detached_tag() {
        let aead = ChaCha20Poly1305::new(&rfc_key());
        let mut buf = SUNSCREEN.to_vec();
        let tag = aead.seal_in_place(&rfc_nonce(), &rfc_aad(), &mut buf);
        assert_ne!(&buf[..], SUNSCREEN);
        aead.open_in_place(&rfc_nonce(), &rfc_aad(), &mut buf, &tag)
            .unwrap();
        assert_eq!(&buf[..], SUNSCREEN);
    }

    #[test]
    fn vec_helpers_match_the_allocating_pair() {
        let aead = ChaCha20Poly1305::new(&rfc_key());
        let mut buf = SUNSCREEN.to_vec();
        aead.seal_vec(&rfc_nonce(), &rfc_aad(), &mut buf);
        assert_eq!(buf, aead.seal(&rfc_nonce(), &rfc_aad(), SUNSCREEN));
        aead.open_vec(&rfc_nonce(), &rfc_aad(), &mut buf).unwrap();
        assert_eq!(buf, SUNSCREEN);
        // A sub-tag-length buffer is rejected untouched.
        let mut short = vec![0u8; 8];
        assert!(matches!(
            aead.open_vec(&rfc_nonce(), b"", &mut short),
            Err(CryptoError::InvalidLength {
                got: 8,
                expected: TAG_LEN
            })
        ));
        assert_eq!(short, vec![0u8; 8]);
    }

    #[test]
    fn open_in_place_leaves_ciphertext_untouched_on_failure() {
        let aead = ChaCha20Poly1305::new(&[1u8; 32]);
        let mut buf = b"payload".to_vec();
        let tag = aead.seal_in_place(&[0u8; 12], b"", &mut buf);
        let ciphertext = buf.clone();
        let mut bad_tag = tag;
        bad_tag[0] ^= 1;
        assert_eq!(
            aead.open_in_place(&[0u8; 12], b"", &mut buf, &bad_tag),
            Err(CryptoError::AuthenticationFailed)
        );
        assert_eq!(buf, ciphertext, "failed open must not decrypt");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let aead = ChaCha20Poly1305::new(&[1u8; 32]);
        let mut sealed = aead.seal(&[0u8; 12], b"", b"payload");
        sealed[0] ^= 1;
        assert_eq!(
            aead.open(&[0u8; 12], b"", &sealed),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn short_input_rejected_with_length_error() {
        let aead = ChaCha20Poly1305::new(&[1u8; 32]);
        assert!(matches!(
            aead.open(&[0u8; 12], b"", &[0u8; 8]),
            Err(CryptoError::InvalidLength {
                got: 8,
                expected: TAG_LEN
            })
        ));
    }

    #[test]
    fn empty_plaintext_is_supported() {
        let aead = ChaCha20Poly1305::new(&[1u8; 32]);
        let sealed = aead.seal(&[3u8; 12], b"aad", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(aead.open(&[3u8; 12], b"aad", &sealed).unwrap(), b"");
    }

    #[test]
    fn counter_nonce_is_unique_per_counter() {
        let a = counter_nonce(*b"c2s:", 1);
        let b = counter_nonce(*b"c2s:", 2);
        let c = counter_nonce(*b"s2c:", 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #[test]
        fn seal_open_roundtrip(key: [u8; 32], nonce: [u8; 12], aad: Vec<u8>, pt: Vec<u8>) {
            let aead = ChaCha20Poly1305::new(&key);
            let sealed = aead.seal(&nonce, &aad, &pt);
            prop_assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), pt);
        }

        /// The optimized cipher must be byte-identical to the pre-rewrite
        /// scalar implementation, tag included — the wide keystream,
        /// bulk Poly1305 and one-pass restructure change performance,
        /// never output.
        #[test]
        fn matches_the_scalar_reference(
            key: [u8; 32],
            nonce: [u8; 12],
            aad: Vec<u8>,
            pt in proptest::collection::vec(any::<u8>(), 0..1200),
        ) {
            let new = ChaCha20Poly1305::new(&key);
            let old = ScalarChaCha20Poly1305::new(&key);
            let sealed = new.seal(&nonce, &aad, &pt);
            prop_assert_eq!(&sealed, &old.seal(&nonce, &aad, &pt));
            prop_assert_eq!(old.open(&nonce, &aad, &sealed).unwrap(), pt);
        }

        /// `seal` ≡ `seal_in_place` + detached tag, and `open` ≡
        /// `open_in_place`, byte for byte.
        #[test]
        fn in_place_apis_match_the_allocating_ones(
            key: [u8; 32],
            nonce: [u8; 12],
            aad: Vec<u8>,
            pt in proptest::collection::vec(any::<u8>(), 0..1200),
        ) {
            let aead = ChaCha20Poly1305::new(&key);
            let sealed = aead.seal(&nonce, &aad, &pt);

            let mut buf = pt.clone();
            let tag = aead.seal_in_place(&nonce, &aad, &mut buf);
            prop_assert_eq!(&sealed[..pt.len()], &buf[..]);
            prop_assert_eq!(&sealed[pt.len()..], &tag[..]);

            aead.open_in_place(&nonce, &aad, &mut buf, &tag).unwrap();
            prop_assert_eq!(buf, aead.open(&nonce, &aad, &sealed).unwrap());
        }

        #[test]
        fn any_bit_flip_is_rejected(key: [u8; 32], nonce: [u8; 12], pt: Vec<u8>, flip_byte: usize, flip_bit in 0u8..8) {
            let aead = ChaCha20Poly1305::new(&key);
            let mut sealed = aead.seal(&nonce, b"aad", &pt);
            let idx = flip_byte % sealed.len();
            sealed[idx] ^= 1 << flip_bit;
            prop_assert_eq!(aead.open(&nonce, b"aad", &sealed), Err(CryptoError::AuthenticationFailed));
        }

        #[test]
        fn wrong_nonce_is_rejected(key: [u8; 32], n1: [u8; 12], n2: [u8; 12], pt: Vec<u8>) {
            prop_assume!(n1 != n2);
            let aead = ChaCha20Poly1305::new(&key);
            let sealed = aead.seal(&n1, b"", &pt);
            prop_assert!(aead.open(&n2, b"", &sealed).is_err());
        }
    }
}
