//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//!
//! This is the work-horse cipher of the whole reproduction: the attested
//! broker↔enclave channel, the Tor baseline's onion layers and the PEAS
//! baseline's proxy hops all seal and open with it, so the Fig 5 throughput
//! comparison measures this real computation.

use crate::chacha20::{self, KEY_LEN, NONCE_LEN};
use crate::constant_time::ct_eq;
use crate::error::CryptoError;
use crate::poly1305::{Poly1305, TAG_LEN};

/// An authenticated cipher instance holding one 256-bit key.
///
/// # Example
///
/// ```
/// use xsearch_crypto::aead::ChaCha20Poly1305;
///
/// let aead = ChaCha20Poly1305::new(&[9u8; 32]);
/// let ct = aead.seal(&[0u8; 12], b"aad", b"hello");
/// assert_eq!(aead.open(&[0u8; 12], b"aad", &ct).unwrap(), b"hello");
/// assert!(aead.open(&[0u8; 12], b"other-aad", &ct).is_err());
/// ```
#[derive(Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; KEY_LEN],
}

impl std::fmt::Debug for ChaCha20Poly1305 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("ChaCha20Poly1305")
            .field("key", &"<secret>")
            .finish()
    }
}

impl ChaCha20Poly1305 {
    /// Creates a cipher from a 32-byte key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        ChaCha20Poly1305 { key: *key }
    }

    /// Derives the Poly1305 one-time key for `nonce` (RFC 8439 §2.6).
    fn one_time_key(&self, nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
        let block = chacha20::block(&self.key, 0, nonce);
        let mut otk = [0u8; 32];
        otk.copy_from_slice(&block[..32]);
        otk
    }

    fn compute_tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let otk = self.one_time_key(nonce);
        let mut mac = Poly1305::new(&otk);
        let zero_pad = [0u8; 16];
        mac.update(aad);
        mac.update(&zero_pad[..(16 - aad.len() % 16) % 16]);
        mac.update(ciphertext);
        mac.update(&zero_pad[..(16 - ciphertext.len() % 16) % 16]);
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.finalize()
    }

    /// Encrypts `plaintext`, binding `aad`, and returns `ciphertext ‖ tag`.
    #[must_use]
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        chacha20::xor_stream(&self.key, 1, nonce, &mut out);
        let tag = self.compute_tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypts and authenticates `sealed` (`ciphertext ‖ tag`).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if `sealed` is shorter than a
    /// tag, and [`CryptoError::AuthenticationFailed`] if the tag does not
    /// verify (wrong key, nonce, AAD, or tampered ciphertext).
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::InvalidLength {
                got: sealed.len(),
                expected: TAG_LEN,
            });
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = self.compute_tag(nonce, aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut out = ciphertext.to_vec();
        chacha20::xor_stream(&self.key, 1, nonce, &mut out);
        Ok(out)
    }
}

/// Builds a 12-byte nonce from a 4-byte domain prefix and a counter.
///
/// The attested channel uses one domain per direction with a monotonically
/// increasing counter, which guarantees nonce uniqueness per key.
#[must_use]
pub fn counter_nonce(domain: [u8; 4], counter: u64) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..4].copy_from_slice(&domain);
    nonce[4..].copy_from_slice(&counter.to_le_bytes());
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use proptest::prelude::*;

    const SUNSCREEN: &[u8] = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";

    fn rfc_key() -> [u8; 32] {
        hex::decode_expect("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
            .try_into()
            .unwrap()
    }

    fn rfc_nonce() -> [u8; 12] {
        hex::decode_expect("070000004041424344454647")
            .try_into()
            .unwrap()
    }

    fn rfc_aad() -> Vec<u8> {
        hex::decode_expect("50515253c0c1c2c3c4c5c6c7")
    }

    #[test]
    fn rfc8439_aead_vector() {
        // RFC 8439 §2.8.2.
        let aead = ChaCha20Poly1305::new(&rfc_key());
        let sealed = aead.seal(&rfc_nonce(), &rfc_aad(), SUNSCREEN);
        assert_eq!(sealed.len(), SUNSCREEN.len() + TAG_LEN);
        assert_eq!(
            hex::encode(&sealed[..16]),
            "d31a8d34648e60db7b86afbc53ef7ec2"
        );
        assert_eq!(
            hex::encode(&sealed[sealed.len() - TAG_LEN..]),
            "1ae10b594f09e26a7e902ecbd0600691"
        );
    }

    #[test]
    fn rfc8439_aead_roundtrip() {
        let aead = ChaCha20Poly1305::new(&rfc_key());
        let sealed = aead.seal(&rfc_nonce(), &rfc_aad(), SUNSCREEN);
        let opened = aead.open(&rfc_nonce(), &rfc_aad(), &sealed).unwrap();
        assert_eq!(opened, SUNSCREEN);
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let aead = ChaCha20Poly1305::new(&[1u8; 32]);
        let mut sealed = aead.seal(&[0u8; 12], b"", b"payload");
        sealed[0] ^= 1;
        assert_eq!(
            aead.open(&[0u8; 12], b"", &sealed),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn short_input_rejected_with_length_error() {
        let aead = ChaCha20Poly1305::new(&[1u8; 32]);
        assert!(matches!(
            aead.open(&[0u8; 12], b"", &[0u8; 8]),
            Err(CryptoError::InvalidLength {
                got: 8,
                expected: TAG_LEN
            })
        ));
    }

    #[test]
    fn empty_plaintext_is_supported() {
        let aead = ChaCha20Poly1305::new(&[1u8; 32]);
        let sealed = aead.seal(&[3u8; 12], b"aad", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(aead.open(&[3u8; 12], b"aad", &sealed).unwrap(), b"");
    }

    #[test]
    fn counter_nonce_is_unique_per_counter() {
        let a = counter_nonce(*b"c2s:", 1);
        let b = counter_nonce(*b"c2s:", 2);
        let c = counter_nonce(*b"s2c:", 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #[test]
        fn seal_open_roundtrip(key: [u8; 32], nonce: [u8; 12], aad: Vec<u8>, pt: Vec<u8>) {
            let aead = ChaCha20Poly1305::new(&key);
            let sealed = aead.seal(&nonce, &aad, &pt);
            prop_assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), pt);
        }

        #[test]
        fn any_bit_flip_is_rejected(key: [u8; 32], nonce: [u8; 12], pt: Vec<u8>, flip_byte: usize, flip_bit in 0u8..8) {
            let aead = ChaCha20Poly1305::new(&key);
            let mut sealed = aead.seal(&nonce, b"aad", &pt);
            let idx = flip_byte % sealed.len();
            sealed[idx] ^= 1 << flip_bit;
            prop_assert_eq!(aead.open(&nonce, b"aad", &sealed), Err(CryptoError::AuthenticationFailed));
        }

        #[test]
        fn wrong_nonce_is_rejected(key: [u8; 32], n1: [u8; 12], n2: [u8; 12], pt: Vec<u8>) {
            prop_assume!(n1 != n2);
            let aead = ChaCha20Poly1305::new(&key);
            let sealed = aead.seal(&n1, b"", &pt);
            prop_assert!(aead.open(&n2, b"", &sealed).is_err());
        }
    }
}
