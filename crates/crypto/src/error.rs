//! Error type shared by the fallible operations of this crate.

use std::error::Error;
use std::fmt;

/// Error returned by fallible cryptographic operations.
///
/// The variants deliberately carry no secret-dependent detail: an
/// authentication failure says *that* it failed, never *why*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CryptoError {
    /// An AEAD tag or MAC did not verify; the ciphertext is not authentic.
    AuthenticationFailed,
    /// An input had an invalid length (key, nonce or ciphertext too short).
    InvalidLength {
        /// What the caller supplied.
        got: usize,
        /// What the primitive requires.
        expected: usize,
    },
    /// A Diffie-Hellman exchange produced the all-zero shared secret
    /// (a low-order public key was supplied).
    WeakPublicKey,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::AuthenticationFailed => write!(f, "authentication failed"),
            CryptoError::InvalidLength { got, expected } => {
                write!(f, "invalid input length: got {got}, expected {expected}")
            }
            CryptoError::WeakPublicKey => write!(f, "weak public key rejected"),
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_punctuation() {
        let msg = CryptoError::AuthenticationFailed.to_string();
        assert!(msg.chars().next().unwrap().is_lowercase());
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn invalid_length_reports_both_sizes() {
        let msg = CryptoError::InvalidLength {
            got: 3,
            expected: 32,
        }
        .to_string();
        assert!(msg.contains('3') && msg.contains("32"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
