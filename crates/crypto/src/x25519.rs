//! X25519 Diffie-Hellman (RFC 7748) over GF(2^255 − 19), using five 51-bit
//! limbs with 128-bit intermediate products and a constant-time Montgomery
//! ladder.
//!
//! This primitive anchors the attested channel key exchange and the
//! ECIES-style hybrid encryption that models PEAS's public-key cost.

use crate::error::CryptoError;
use rand::RngCore;

/// Length of scalars, field elements and public keys.
pub const KEY_LEN: usize = 32;

const MASK_51: u64 = (1u64 << 51) - 1;

/// Field element in GF(2^255 − 19), five 51-bit limbs, little-endian.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fe([u64; 5]);

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load8 = |b: &[u8]| -> u64 {
            u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
        };
        // RFC 7748: the top bit of the u-coordinate is masked off.
        Fe([
            load8(&bytes[0..8]) & MASK_51,
            (load8(&bytes[6..14]) >> 3) & MASK_51,
            (load8(&bytes[12..20]) >> 6) & MASK_51,
            (load8(&bytes[19..27]) >> 1) & MASK_51,
            (load8(&bytes[24..32]) >> 12) & MASK_51,
        ])
    }

    fn to_bytes(self) -> [u8; 32] {
        // Fully reduce mod p = 2^255 - 19.
        let mut h = self.0;
        // Two carry passes bring every limb under 52 bits.
        for _ in 0..2 {
            let mut carry;
            carry = h[0] >> 51;
            h[0] &= MASK_51;
            h[1] += carry;
            carry = h[1] >> 51;
            h[1] &= MASK_51;
            h[2] += carry;
            carry = h[2] >> 51;
            h[2] &= MASK_51;
            h[3] += carry;
            carry = h[3] >> 51;
            h[3] &= MASK_51;
            h[4] += carry;
            carry = h[4] >> 51;
            h[4] &= MASK_51;
            h[0] += carry * 19;
        }
        // Compute q = floor((h + 19) / 2^255): 1 iff h >= p.
        let mut q = (h[0] + 19) >> 51;
        q = (h[1] + q) >> 51;
        q = (h[2] + q) >> 51;
        q = (h[3] + q) >> 51;
        q = (h[4] + q) >> 51;
        // h := h - q*p  ==  h + 19q, then mask to 255 bits.
        h[0] += 19 * q;
        let mut carry = h[0] >> 51;
        h[0] &= MASK_51;
        h[1] += carry;
        carry = h[1] >> 51;
        h[1] &= MASK_51;
        h[2] += carry;
        carry = h[2] >> 51;
        h[2] &= MASK_51;
        h[3] += carry;
        carry = h[3] >> 51;
        h[3] &= MASK_51;
        h[4] += carry;
        h[4] &= MASK_51;

        let mut out = [0u8; 32];
        let write = |out: &mut [u8; 32], bit_offset: usize, limb: u64| {
            // Scatter a 51-bit limb starting at the given bit offset.
            let byte = bit_offset / 8;
            let shift = bit_offset % 8;
            let v = (limb as u128) << shift;
            for i in 0..8 {
                if byte + i < 32 {
                    out[byte + i] |= (v >> (8 * i)) as u8;
                }
            }
        };
        write(&mut out, 0, h[0]);
        write(&mut out, 51, h[1]);
        write(&mut out, 102, h[2]);
        write(&mut out, 153, h[3]);
        write(&mut out, 204, h[4]);
        out
    }

    fn add(&self, rhs: &Fe) -> Fe {
        Fe(std::array::from_fn(|i| self.0[i] + rhs.0[i]))
    }

    fn sub(&self, rhs: &Fe) -> Fe {
        // Add a multiple of p large enough (16p) to avoid underflow while
        // keeping limbs below 2^55 for the following multiplication.
        const P_TIMES_16: [u64; 5] = [
            36_028_797_018_963_664, // 16 * (2^51 - 19)
            36_028_797_018_963_952, // 16 * (2^51 - 1)
            36_028_797_018_963_952,
            36_028_797_018_963_952,
            36_028_797_018_963_952,
        ];
        let mut out = [0u64; 5];
        for i in 0..5 {
            out[i] = self.0[i] + P_TIMES_16[i] - rhs.0[i];
        }
        Fe(out).weak_reduce()
    }

    fn weak_reduce(self) -> Fe {
        let mut h = self.0;
        let mut carry;
        carry = h[0] >> 51;
        h[0] &= MASK_51;
        h[1] += carry;
        carry = h[1] >> 51;
        h[1] &= MASK_51;
        h[2] += carry;
        carry = h[2] >> 51;
        h[2] &= MASK_51;
        h[3] += carry;
        carry = h[3] >> 51;
        h[3] &= MASK_51;
        h[4] += carry;
        carry = h[4] >> 51;
        h[4] &= MASK_51;
        h[0] += carry * 19;
        Fe(h)
    }

    fn mul(&self, rhs: &Fe) -> Fe {
        let [a0, a1, a2, a3, a4] = self.0.map(u128::from);
        let [b0, b1, b2, b3, b4] = rhs.0.map(u128::from);
        let (b1_19, b2_19, b3_19, b4_19) = (b1 * 19, b2 * 19, b3 * 19, b4 * 19);

        let c0 = a0 * b0 + a1 * b4_19 + a2 * b3_19 + a3 * b2_19 + a4 * b1_19;
        let c1 = a0 * b1 + a1 * b0 + a2 * b4_19 + a3 * b3_19 + a4 * b2_19;
        let c2 = a0 * b2 + a1 * b1 + a2 * b0 + a3 * b4_19 + a4 * b3_19;
        let c3 = a0 * b3 + a1 * b2 + a2 * b1 + a3 * b0 + a4 * b4_19;
        let c4 = a0 * b4 + a1 * b3 + a2 * b2 + a3 * b1 + a4 * b0;

        Fe::carry_wide([c0, c1, c2, c3, c4])
    }

    fn square(&self) -> Fe {
        self.mul(self)
    }

    fn carry_wide(mut c: [u128; 5]) -> Fe {
        let mut out = [0u64; 5];
        c[1] += c[0] >> 51;
        out[0] = (c[0] as u64) & MASK_51;
        c[2] += c[1] >> 51;
        out[1] = (c[1] as u64) & MASK_51;
        c[3] += c[2] >> 51;
        out[2] = (c[2] as u64) & MASK_51;
        c[4] += c[3] >> 51;
        out[3] = (c[3] as u64) & MASK_51;
        let carry = (c[4] >> 51) as u64;
        out[4] = (c[4] as u64) & MASK_51;
        out[0] += carry * 19;
        let carry = out[0] >> 51;
        out[0] &= MASK_51;
        out[1] += carry;
        Fe(out)
    }

    fn mul_small(&self, k: u64) -> Fe {
        let k = u128::from(k);
        Fe::carry_wide(self.0.map(|l| u128::from(l) * k))
    }

    /// Computes self^(p − 2) = self^(-1) via square-and-multiply over the
    /// binary expansion of p − 2 = 2^255 − 21.
    fn invert(&self) -> Fe {
        // p - 2 in binary: 253 high one-bits then 0,1,0,1,1 (LSB last):
        // 2^255 - 21 = 0b111...11101011 (251 ones, then 01011).
        let mut result = Fe::ONE;
        let base = *self;
        // Exponent bits from most significant (bit 254) down to 0.
        for i in (0..255).rev() {
            result = result.square();
            let bit = if i >= 5 {
                1 // bits 254..=5 of (2^255 - 21) are all 1
            } else {
                // Low five bits of -21 mod 32 = 01011.
                [1u8, 1, 0, 1, 0][i] // bit 0 ->1, 1->1, 2->0, 3->1, 4->0
            };
            if bit == 1 {
                result = result.mul(&base);
            }
        }
        result
    }

    /// Constant-time conditional swap of two field elements.
    fn cswap(swap: u64, a: &mut Fe, b: &mut Fe) {
        debug_assert!(swap <= 1);
        let mask = swap.wrapping_neg();
        for i in 0..5 {
            let t = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= t;
            b.0[i] ^= t;
        }
    }
}

/// Clamps a 32-byte scalar per RFC 7748 §5.
fn clamp(scalar: &mut [u8; 32]) {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
}

/// The raw X25519 function: scalar multiplication on the Montgomery curve.
///
/// `scalar` is clamped internally; `u` is a 32-byte u-coordinate.
#[must_use]
pub fn x25519(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let mut k = *scalar;
    clamp(&mut k);
    let x1 = Fe::from_bytes(u);

    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let k_t = u64::from((k[t / 8] >> (t % 8)) & 1);
        swap ^= k_t;
        Fe::cswap(swap, &mut x2, &mut x3);
        Fe::cswap(swap, &mut z2, &mut z3);
        swap = k_t;

        let a = x2.add(&z2);
        let aa = a.square();
        let b = x2.sub(&z2);
        let bb = b.square();
        let e = aa.sub(&bb);
        let c = x3.add(&z3);
        let d = x3.sub(&z3);
        let da = d.mul(&a);
        let cb = c.mul(&b);
        x3 = da.add(&cb).square();
        z3 = x1.mul(&da.sub(&cb).square());
        x2 = aa.mul(&bb);
        z2 = e.mul(&aa.add(&e.mul_small(121_665)));
    }

    Fe::cswap(swap, &mut x2, &mut x3);
    Fe::cswap(swap, &mut z2, &mut z3);

    x2.mul(&z2.invert()).to_bytes()
}

/// The X25519 base point (u = 9).
#[must_use]
pub fn basepoint() -> [u8; 32] {
    let mut bp = [0u8; 32];
    bp[0] = 9;
    bp
}

/// A long-lived X25519 private key.
#[derive(Clone)]
pub struct StaticSecret {
    scalar: [u8; 32],
}

impl std::fmt::Debug for StaticSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticSecret")
            .field("scalar", &"<secret>")
            .finish()
    }
}

impl StaticSecret {
    /// Generates a fresh random secret from the given RNG.
    pub fn random<R: RngCore>(rng: &mut R) -> Self {
        let mut scalar = [0u8; 32];
        rng.fill_bytes(&mut scalar);
        clamp(&mut scalar);
        StaticSecret { scalar }
    }

    /// Builds a secret from raw bytes (clamped internally).
    #[must_use]
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        let mut scalar = bytes;
        clamp(&mut scalar);
        StaticSecret { scalar }
    }

    /// Derives the corresponding public key.
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        PublicKey(x25519(&self.scalar, &basepoint()))
    }

    /// Runs the Diffie-Hellman exchange with a peer public key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::WeakPublicKey`] when the exchange yields the
    /// all-zero shared secret (the peer supplied a low-order point).
    pub fn diffie_hellman(&self, peer: &PublicKey) -> Result<[u8; 32], CryptoError> {
        let shared = x25519(&self.scalar, &peer.0);
        if shared == [0u8; 32] {
            return Err(CryptoError::WeakPublicKey);
        }
        Ok(shared)
    }
}

/// An X25519 public key (a Montgomery u-coordinate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey(pub [u8; 32]);

impl PublicKey {
    /// Returns the raw 32 bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl From<[u8; 32]> for PublicKey {
    fn from(bytes: [u8; 32]) -> Self {
        PublicKey(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arr(s: &str) -> [u8; 32] {
        hex::decode_expect(s).try_into().unwrap()
    }

    #[test]
    fn rfc7748_vector_1() {
        let scalar = arr("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = arr("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        assert_eq!(
            hex::encode(&x25519(&scalar, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    #[test]
    fn rfc7748_vector_2() {
        let scalar = arr("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = arr("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        assert_eq!(
            hex::encode(&x25519(&scalar, &u)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    #[test]
    fn rfc7748_diffie_hellman() {
        let alice = StaticSecret::from_bytes(arr(
            "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a",
        ));
        let bob = StaticSecret::from_bytes(arr(
            "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb",
        ));
        assert_eq!(
            hex::encode(alice.public_key().as_bytes()),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex::encode(bob.public_key().as_bytes()),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let s1 = alice.diffie_hellman(&bob.public_key()).unwrap();
        let s2 = bob.diffie_hellman(&alice.public_key()).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(
            hex::encode(&s1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn rfc7748_iterated_once() {
        // RFC 7748 §5.2: after 1 iteration of k = X25519(k, u); u = old k.
        let mut k = basepoint();
        let mut u = basepoint();
        let result = x25519(&k, &u);
        u = k;
        k = result;
        let _ = u;
        assert_eq!(
            hex::encode(&k),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
    }

    #[test]
    fn low_order_point_is_rejected() {
        let secret = StaticSecret::from_bytes([7u8; 32]);
        let zero_point = PublicKey([0u8; 32]);
        assert_eq!(
            secret.diffie_hellman(&zero_point),
            Err(CryptoError::WeakPublicKey)
        );
    }

    #[test]
    fn field_roundtrip_under_p() {
        // Any value with the top bit clear and below p round-trips.
        let mut bytes = [0u8; 32];
        bytes[0] = 42;
        bytes[20] = 9;
        assert_eq!(Fe::from_bytes(&bytes).to_bytes(), bytes);
    }

    #[test]
    fn invert_one_is_one() {
        assert_eq!(Fe::ONE.invert(), Fe::ONE);
    }

    #[test]
    fn invert_is_inverse() {
        let mut bytes = [0u8; 32];
        bytes[0] = 5;
        let x = Fe::from_bytes(&bytes);
        let prod = x.mul(&x.invert());
        assert_eq!(prod.to_bytes(), Fe::ONE.to_bytes());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn dh_commutes(seed_a: u64, seed_b: u64) {
            let mut rng_a = StdRng::seed_from_u64(seed_a);
            let mut rng_b = StdRng::seed_from_u64(seed_b ^ 0x5a5a);
            let a = StaticSecret::random(&mut rng_a);
            let b = StaticSecret::random(&mut rng_b);
            let s1 = a.diffie_hellman(&b.public_key()).unwrap();
            let s2 = b.diffie_hellman(&a.public_key()).unwrap();
            prop_assert_eq!(s1, s2);
        }

        #[test]
        fn fe_mul_commutes(a_bytes: [u8; 32], b_bytes: [u8; 32]) {
            let a = Fe::from_bytes(&a_bytes);
            let b = Fe::from_bytes(&b_bytes);
            prop_assert_eq!(a.mul(&b).to_bytes(), b.mul(&a).to_bytes());
        }

        #[test]
        fn fe_add_sub_cancels(a_bytes: [u8; 32], b_bytes: [u8; 32]) {
            let a = Fe::from_bytes(&a_bytes);
            let b = Fe::from_bytes(&b_bytes);
            prop_assert_eq!(a.add(&b).sub(&b).to_bytes(), a.weak_reduce().to_bytes());
        }
    }
}
