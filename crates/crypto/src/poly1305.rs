//! The Poly1305 one-time authenticator (RFC 8439), using 44-bit limbs
//! with 128-bit intermediate products (the portable "donna-64"
//! formulation: 9 multiplies per 16-byte block instead of the 25 the
//! 26-bit-limb variant needs).
//!
//! The bulk path additionally batches four blocks per modular step via
//! the Horner identity over precomputed `r²`/`r³`/`r⁴` (see
//! [`Poly1305::update`]), so the serial multiply→carry dependency chain
//! — the authenticator's latency bound — is paid once per 64 bytes.

/// Key size in bytes (r ‖ s).
pub const KEY_LEN: usize = 32;
/// Tag size in bytes.
pub const TAG_LEN: usize = 16;

/// Blocks per batched Horner step in the bulk path.
const BATCH: usize = 4;

/// 44-bit limb mask (limbs 0 and 1).
const MASK44: u64 = 0xfff_ffff_ffff;
/// 42-bit limb mask (limb 2; 44 + 44 + 42 = 130).
const MASK42: u64 = 0x3ff_ffff_ffff;

/// Incremental Poly1305 MAC.
///
/// A Poly1305 key must never authenticate two different messages; the AEAD
/// construction derives a fresh key per nonce.
///
/// # Example
///
/// ```
/// use xsearch_crypto::poly1305::Poly1305;
///
/// let key = [0x42u8; 32];
/// let tag = Poly1305::mac(&key, b"one-time message");
/// assert_eq!(tag.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Poly1305 {
    r: [u64; 3],
    s: [u64; 2],
    h: [u64; 3],
    /// Cached `[r², r³, r⁴]` for the batched bulk path, computed once
    /// on the first long-enough `update` (`None` until then, so short
    /// messages never pay the squarings).
    powers: Option<[[u64; 3]; 3]>,
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Creates a MAC context from a 32-byte one-time key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        // Clamp r per the RFC, then split into three 44/44/42-bit limbs.
        let mut clamped = [0u8; 16];
        clamped.copy_from_slice(&key[..16]);
        for i in [3, 7, 11, 15] {
            clamped[i] &= 0x0f;
        }
        for i in [4, 8, 12] {
            clamped[i] &= 0xfc;
        }
        let t0 = u64::from_le_bytes(clamped[0..8].try_into().expect("8 bytes"));
        let t1 = u64::from_le_bytes(clamped[8..16].try_into().expect("8 bytes"));
        let r = [
            t0 & MASK44,
            ((t0 >> 44) | (t1 << 20)) & MASK44,
            (t1 >> 24) & MASK42,
        ];
        let s = [
            u64::from_le_bytes(key[16..24].try_into().expect("8 bytes")),
            u64::from_le_bytes(key[24..32].try_into().expect("8 bytes")),
        ];
        Poly1305 {
            r,
            s,
            h: [0; 3],
            powers: None,
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// One-shot MAC of `message` under `key`.
    #[must_use]
    pub fn mac(key: &[u8; KEY_LEN], message: &[u8]) -> [u8; TAG_LEN] {
        let mut p = Poly1305::new(key);
        p.update(message);
        p.finalize()
    }

    /// Absorbs message bytes.
    ///
    /// Full blocks are processed by a bulk inner loop that keeps the
    /// accumulator limbs in locals across blocks instead of
    /// round-tripping them through `self` per 16 bytes (see
    /// [`Poly1305::process_blocks`]).
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.process_block(&block, HIBIT);
                self.buf_len = 0;
            }
        }
        let full = data.len() - data.len() % 16;
        if full > 0 {
            self.process_blocks(&data[..full]);
            data = &data[full..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Bulk path: absorbs a whole run of full blocks with `h` and the
    /// `r`-power limbs held in locals for the entire run.
    ///
    /// Runs of at least `2·BATCH` blocks additionally use the Horner
    /// batching identity
    /// `h' = (h + b₀)·r⁴ + b₁·r³ + b₂·r² + b₃·r  (mod 2^130 - 5)`:
    /// the four multiplies carry no data dependencies between each
    /// other, so the serial multiply→carry chain is paid once per 64
    /// bytes instead of once per 16. The `u128` product accumulators
    /// have ample headroom for the 4-way sum (4 · 3 · 2⁴⁵ · 2⁴⁶ < 2⁹⁵),
    /// so one carry propagation at the end of each batch keeps the
    /// limbs within the lazy-reduction invariants.
    fn process_blocks(&mut self, data: &[u8]) {
        debug_assert!(data.len().is_multiple_of(16));
        let r = self.r;
        let mut h = self.h;
        let mut data = data;
        if data.len() >= 2 * BATCH * 16 {
            // One-time per MAC instance: r², r³, r⁴ (short messages
            // never reach this arm, so they never pay the squarings).
            let [r2, r3, r4] = *self.powers.get_or_insert_with(|| {
                let r2 = carry(mul_d(&r, &r));
                let r3 = carry(mul_d(&r2, &r));
                let r4 = carry(mul_d(&r3, &r));
                [r2, r3, r4]
            });
            let mut batches = data.chunks_exact(BATCH * 16);
            for batch in batches.by_ref() {
                let b0: &[u8; 16] = batch[0..16].try_into().expect("16-byte chunk");
                let b1: &[u8; 16] = batch[16..32].try_into().expect("16-byte chunk");
                let b2: &[u8; 16] = batch[32..48].try_into().expect("16-byte chunk");
                let b3: &[u8; 16] = batch[48..64].try_into().expect("16-byte chunk");
                let d0 = mul_d(&add3(h, load(b0, HIBIT)), &r4);
                let d1 = mul_d(&load(b1, HIBIT), &r3);
                let d2 = mul_d(&load(b2, HIBIT), &r2);
                let d3 = mul_d(&load(b3, HIBIT), &r);
                let d = [
                    d0[0] + d1[0] + d2[0] + d3[0],
                    d0[1] + d1[1] + d2[1] + d3[1],
                    d0[2] + d1[2] + d2[2] + d3[2],
                ];
                h = carry(d);
            }
            data = batches.remainder();
        }
        for block in data.chunks_exact(16) {
            let b: &[u8; 16] = block.try_into().expect("16-byte chunk");
            h = accumulate(h, b, HIBIT, &r);
        }
        self.h = h;
    }

    /// Processes one 16-byte block. `hibit` is [`HIBIT`] for full blocks
    /// (the appended 0x01 byte at position 16) and is folded into the
    /// limbs directly for the padded final block.
    fn process_block(&mut self, block: &[u8; 16], hibit: u64) {
        self.h = accumulate(self.h, block, hibit, &self.r);
    }

    /// Completes the MAC and returns the 16-byte tag.
    #[must_use]
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            // Pad the final partial block: append 0x01 then zeros; the high
            // bit for this block is 0.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.process_block(&block, 0);
        }

        let [mut h0, mut h1, mut h2] = self.h;

        // Full carry propagation.
        let mut c = h1 >> 44;
        h1 &= MASK44;
        h2 += c;
        c = h2 >> 42;
        h2 &= MASK42;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= MASK44;
        h1 += c;
        c = h1 >> 44;
        h1 &= MASK44;
        h2 += c;
        c = h2 >> 42;
        h2 &= MASK42;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= MASK44;
        h1 += c;

        // Compute h + -p = h - (2^130 - 5) and select it if non-negative.
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 44;
        g0 &= MASK44;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 44;
        g1 &= MASK44;
        let g2 = h2.wrapping_add(c).wrapping_sub(1 << 42);

        // Select h if h < p, else g (constant time via mask).
        let mask = (g2 >> 63).wrapping_sub(1); // all-ones if g2 did not underflow
        g0 &= mask;
        g1 &= mask;
        let g2 = g2 & mask;
        let not_mask = !mask;
        h0 = (h0 & not_mask) | g0;
        h1 = (h1 & not_mask) | g1;
        h2 = (h2 & not_mask) | g2;

        // Serialize h to 128 bits.
        let f0 = h0 | (h1 << 44);
        let f1 = (h1 >> 20) | (h2 << 24);

        // tag = (h + s) mod 2^128
        let (t0, carry_bit) = f0.overflowing_add(self.s[0]);
        let t1 = f1
            .wrapping_add(self.s[1])
            .wrapping_add(u64::from(carry_bit));

        let mut tag = [0u8; TAG_LEN];
        tag[0..8].copy_from_slice(&t0.to_le_bytes());
        tag[8..16].copy_from_slice(&t1.to_le_bytes());
        tag
    }
}

/// The appended high bit of a full 16-byte block: bit 128, which is
/// bit 40 of the third 44/44/42 limb.
const HIBIT: u64 = 1 << 40;

/// Splits one 16-byte block into three 44/44/42-bit limbs, with
/// `hibit` ([`HIBIT`] for full blocks, `0` for the padded final block)
/// folded into the top limb.
#[inline(always)]
fn load(block: &[u8; 16], hibit: u64) -> [u64; 3] {
    let t0 = u64::from_le_bytes(block[0..8].try_into().expect("8 bytes"));
    let t1 = u64::from_le_bytes(block[8..16].try_into().expect("8 bytes"));
    [
        t0 & MASK44,
        ((t0 >> 44) | (t1 << 20)) & MASK44,
        ((t1 >> 24) & MASK42) | hibit,
    ]
}

/// Limb-wise addition (no carries: both inputs are within the lazy
/// limb invariants, so the sums stay below 2⁴⁶).
#[inline(always)]
fn add3(a: [u64; 3], b: [u64; 3]) -> [u64; 3] {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}

/// Schoolbook multiply `a · r mod 2^130 - 5` into uncarried `u128`
/// product accumulators. The limbs of `r` that overflow 2^130 reduce
/// via `2^132 ≡ 20 (mod 2^130 - 5)`, hence the `20·r` terms.
#[inline(always)]
fn mul_d(a: &[u64; 3], r: &[u64; 3]) -> [u128; 3] {
    let [a0, a1, a2] = *a;
    let [r0, r1, r2] = *r;
    let s1 = r1 * 20;
    let s2 = r2 * 20;
    [
        u128::from(a0) * u128::from(r0)
            + u128::from(a1) * u128::from(s2)
            + u128::from(a2) * u128::from(s1),
        u128::from(a0) * u128::from(r1)
            + u128::from(a1) * u128::from(r0)
            + u128::from(a2) * u128::from(s2),
        u128::from(a0) * u128::from(r2)
            + u128::from(a1) * u128::from(r1)
            + u128::from(a2) * u128::from(r0),
    ]
}

/// Carry propagation: reduces `u128` product accumulators back to the
/// lazy 44/44/42-limb form (top carry folded in via `· 5`).
#[inline(always)]
fn carry(d: [u128; 3]) -> [u64; 3] {
    let mut c = (d[0] >> 44) as u64;
    let mut h0 = (d[0] as u64) & MASK44;
    let d1 = d[1] + u128::from(c);
    c = (d1 >> 44) as u64;
    let h1 = (d1 as u64) & MASK44;
    let d2 = d[2] + u128::from(c);
    c = (d2 >> 42) as u64;
    let h2 = (d2 as u64) & MASK42;
    h0 += c * 5;
    let c = h0 >> 44;
    h0 &= MASK44;
    [h0, h1 + c, h2]
}

/// One Poly1305 step: `h = (h + block) * r mod 2^130 - 5`. Pure over
/// its inputs so the bulk path can keep the accumulator in locals.
#[inline(always)]
fn accumulate(h: [u64; 3], block: &[u8; 16], hibit: u64, r: &[u64; 3]) -> [u64; 3] {
    carry(mul_d(&add3(h, load(block, hibit)), r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use proptest::prelude::*;

    #[test]
    fn rfc8439_tag_vector() {
        // RFC 8439 §2.5.2.
        let key: [u8; 32] =
            hex::decode_expect("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .try_into()
                .unwrap();
        let tag = Poly1305::mac(&key, b"Cryptographic Forum Research Group");
        assert_eq!(hex::encode(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    #[test]
    fn zero_key_gives_zero_tag() {
        // With r = s = 0 the polynomial evaluates to 0 and the tag is 0.
        let tag = Poly1305::mac(&[0u8; 32], b"anything at all");
        assert_eq!(tag, [0u8; 16]);
    }

    #[test]
    fn empty_message() {
        // h stays 0; tag = s.
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&[0xabu8; 16]);
        assert_eq!(Poly1305::mac(&key, b""), [0xabu8; 16]);
    }

    #[test]
    fn exact_block_boundary() {
        let key = [7u8; 32];
        let one = Poly1305::mac(&key, &[0x55u8; 16]);
        let two = Poly1305::mac(&key, &[0x55u8; 32]);
        assert_ne!(one, two);
    }

    #[test]
    fn byte_at_a_time_matches_one_shot_at_every_length() {
        // Sweeps lengths across the batch (64 B) and batch-threshold
        // (128 B) boundaries: the buffered path, the serial tail and the
        // batched bulk path must agree for every split of the input.
        let key = [0x5au8; 32];
        let data: Vec<u8> = (0..300u32).map(|i| (i * 31 + 7) as u8).collect();
        for len in 0..=data.len() {
            let mut incremental = Poly1305::new(&key);
            for byte in &data[..len] {
                incremental.update(std::slice::from_ref(byte));
            }
            assert_eq!(
                incremental.finalize(),
                Poly1305::mac(&key, &data[..len]),
                "length {len}"
            );
        }
    }

    proptest! {
        #[test]
        fn incremental_equals_one_shot(key: [u8; 32], a: Vec<u8>, b: Vec<u8>) {
            let mut p = Poly1305::new(&key);
            p.update(&a);
            p.update(&b);
            let mut joined = a.clone();
            joined.extend_from_slice(&b);
            prop_assert_eq!(p.finalize(), Poly1305::mac(&key, &joined));
        }

        #[test]
        fn messages_of_different_length_differ(key: [u8; 32], msg: Vec<u8>) {
            // Appending the 0x01-distinguisher means a message and the same
            // message plus one zero byte must authenticate differently for a
            // non-degenerate key.
            prop_assume!(key[..16].iter().any(|&b| b != 0));
            let mut longer = msg.clone();
            longer.push(0);
            prop_assert_ne!(Poly1305::mac(&key, &msg), Poly1305::mac(&key, &longer));
        }
    }
}
