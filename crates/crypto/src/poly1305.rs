//! The Poly1305 one-time authenticator (RFC 8439), using 26-bit limbs with
//! 64-bit intermediate products (the portable "donna" formulation).

/// Key size in bytes (r ‖ s).
pub const KEY_LEN: usize = 32;
/// Tag size in bytes.
pub const TAG_LEN: usize = 16;

/// Incremental Poly1305 MAC.
///
/// A Poly1305 key must never authenticate two different messages; the AEAD
/// construction derives a fresh key per nonce.
///
/// # Example
///
/// ```
/// use xsearch_crypto::poly1305::Poly1305;
///
/// let key = [0x42u8; 32];
/// let tag = Poly1305::mac(&key, b"one-time message");
/// assert_eq!(tag.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Poly1305 {
    r: [u32; 5],
    s: [u32; 4],
    h: [u32; 5],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Creates a MAC context from a 32-byte one-time key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let le32 = |b: &[u8]| -> u32 { u32::from_le_bytes([b[0], b[1], b[2], b[3]]) };
        // Clamp r per the RFC and split into five 26-bit limbs.
        let t0 = le32(&key[0..4]);
        let t1 = le32(&key[4..8]);
        let t2 = le32(&key[8..12]);
        let t3 = le32(&key[12..16]);
        let r = [
            t0 & 0x03ff_ffff,
            ((t0 >> 26) | (t1 << 6)) & 0x03ff_ff03,
            ((t1 >> 20) | (t2 << 12)) & 0x03ff_c0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x03f0_3fff,
            (t3 >> 8) & 0x000f_ffff,
        ];
        let s = [
            le32(&key[16..20]),
            le32(&key[20..24]),
            le32(&key[24..28]),
            le32(&key[28..32]),
        ];
        Poly1305 {
            r,
            s,
            h: [0; 5],
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// One-shot MAC of `message` under `key`.
    #[must_use]
    pub fn mac(key: &[u8; KEY_LEN], message: &[u8]) -> [u8; TAG_LEN] {
        let mut p = Poly1305::new(key);
        p.update(message);
        p.finalize()
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.process_block(&block, 1 << 24);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let (block, rest) = data.split_at(16);
            let mut b = [0u8; 16];
            b.copy_from_slice(block);
            self.process_block(&b, 1 << 24);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Processes one 16-byte block. `hibit` is `1 << 24` for full blocks
    /// (the appended 0x01 byte at position 16) and is folded into the limbs
    /// directly for the padded final block.
    fn process_block(&mut self, block: &[u8; 16], hibit: u32) {
        let le32 = |b: &[u8]| -> u32 { u32::from_le_bytes([b[0], b[1], b[2], b[3]]) };
        let t0 = le32(&block[0..4]);
        let t1 = le32(&block[4..8]);
        let t2 = le32(&block[8..12]);
        let t3 = le32(&block[12..16]);

        // h += block (with the high bit appended)
        let mut h0 = self.h[0] + (t0 & 0x03ff_ffff);
        let mut h1 = self.h[1] + (((t0 >> 26) | (t1 << 6)) & 0x03ff_ffff);
        let mut h2 = self.h[2] + (((t1 >> 20) | (t2 << 12)) & 0x03ff_ffff);
        let mut h3 = self.h[3] + (((t2 >> 14) | (t3 << 18)) & 0x03ff_ffff);
        let mut h4 = self.h[4] + ((t3 >> 8) | hibit);

        let [r0, r1, r2, r3, r4] = self.r;
        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;

        // h *= r (mod 2^130 - 5), with lazy carries.
        let d0 = u64::from(h0) * u64::from(r0)
            + u64::from(h1) * u64::from(s4)
            + u64::from(h2) * u64::from(s3)
            + u64::from(h3) * u64::from(s2)
            + u64::from(h4) * u64::from(s1);
        let d1 = u64::from(h0) * u64::from(r1)
            + u64::from(h1) * u64::from(r0)
            + u64::from(h2) * u64::from(s4)
            + u64::from(h3) * u64::from(s3)
            + u64::from(h4) * u64::from(s2);
        let d2 = u64::from(h0) * u64::from(r2)
            + u64::from(h1) * u64::from(r1)
            + u64::from(h2) * u64::from(r0)
            + u64::from(h3) * u64::from(s4)
            + u64::from(h4) * u64::from(s3);
        let d3 = u64::from(h0) * u64::from(r3)
            + u64::from(h1) * u64::from(r2)
            + u64::from(h2) * u64::from(r1)
            + u64::from(h3) * u64::from(r0)
            + u64::from(h4) * u64::from(s4);
        let d4 = u64::from(h0) * u64::from(r4)
            + u64::from(h1) * u64::from(r3)
            + u64::from(h2) * u64::from(r2)
            + u64::from(h3) * u64::from(r1)
            + u64::from(h4) * u64::from(r0);

        let mut carry = (d0 >> 26) as u32;
        h0 = (d0 as u32) & 0x03ff_ffff;
        let d1 = d1 + u64::from(carry);
        carry = (d1 >> 26) as u32;
        h1 = (d1 as u32) & 0x03ff_ffff;
        let d2 = d2 + u64::from(carry);
        carry = (d2 >> 26) as u32;
        h2 = (d2 as u32) & 0x03ff_ffff;
        let d3 = d3 + u64::from(carry);
        carry = (d3 >> 26) as u32;
        h3 = (d3 as u32) & 0x03ff_ffff;
        let d4 = d4 + u64::from(carry);
        carry = (d4 >> 26) as u32;
        h4 = (d4 as u32) & 0x03ff_ffff;
        h0 += carry * 5;
        carry = h0 >> 26;
        h0 &= 0x03ff_ffff;
        h1 += carry;

        self.h = [h0, h1, h2, h3, h4];
    }

    /// Completes the MAC and returns the 16-byte tag.
    #[must_use]
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            // Pad the final partial block: append 0x01 then zeros; the high
            // bit for this block is 0.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.process_block(&block, 0);
        }

        let [mut h0, mut h1, mut h2, mut h3, mut h4] = self.h;

        // Full carry propagation.
        let mut carry = h1 >> 26;
        h1 &= 0x03ff_ffff;
        h2 += carry;
        carry = h2 >> 26;
        h2 &= 0x03ff_ffff;
        h3 += carry;
        carry = h3 >> 26;
        h3 &= 0x03ff_ffff;
        h4 += carry;
        carry = h4 >> 26;
        h4 &= 0x03ff_ffff;
        h0 += carry * 5;
        carry = h0 >> 26;
        h0 &= 0x03ff_ffff;
        h1 += carry;

        // Compute h + -p = h - (2^130 - 5) and select it if non-negative.
        let mut g0 = h0.wrapping_add(5);
        carry = g0 >> 26;
        g0 &= 0x03ff_ffff;
        let mut g1 = h1.wrapping_add(carry);
        carry = g1 >> 26;
        g1 &= 0x03ff_ffff;
        let mut g2 = h2.wrapping_add(carry);
        carry = g2 >> 26;
        g2 &= 0x03ff_ffff;
        let mut g3 = h3.wrapping_add(carry);
        carry = g3 >> 26;
        g3 &= 0x03ff_ffff;
        let g4 = h4.wrapping_add(carry).wrapping_sub(1 << 26);

        // Select h if h < p, else g (constant time via mask).
        let mask = (g4 >> 31).wrapping_sub(1); // all-ones if g4 did not underflow
        g0 &= mask;
        g1 &= mask;
        g2 &= mask;
        g3 &= mask;
        let g4 = g4 & mask;
        let not_mask = !mask;
        h0 = (h0 & not_mask) | g0;
        h1 = (h1 & not_mask) | g1;
        h2 = (h2 & not_mask) | g2;
        h3 = (h3 & not_mask) | g3;
        h4 = (h4 & not_mask) | g4;

        // Serialize h to 128 bits.
        let f0 = h0 | (h1 << 26);
        let f1 = (h1 >> 6) | (h2 << 20);
        let f2 = (h2 >> 12) | (h3 << 14);
        let f3 = (h3 >> 18) | (h4 << 8);

        // tag = (h + s) mod 2^128
        let mut acc = u64::from(f0) + u64::from(self.s[0]);
        let t0 = acc as u32;
        acc = u64::from(f1) + u64::from(self.s[1]) + (acc >> 32);
        let t1 = acc as u32;
        acc = u64::from(f2) + u64::from(self.s[2]) + (acc >> 32);
        let t2 = acc as u32;
        acc = u64::from(f3) + u64::from(self.s[3]) + (acc >> 32);
        let t3 = acc as u32;

        let mut tag = [0u8; TAG_LEN];
        tag[0..4].copy_from_slice(&t0.to_le_bytes());
        tag[4..8].copy_from_slice(&t1.to_le_bytes());
        tag[8..12].copy_from_slice(&t2.to_le_bytes());
        tag[12..16].copy_from_slice(&t3.to_le_bytes());
        tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use proptest::prelude::*;

    #[test]
    fn rfc8439_tag_vector() {
        // RFC 8439 §2.5.2.
        let key: [u8; 32] =
            hex::decode_expect("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .try_into()
                .unwrap();
        let tag = Poly1305::mac(&key, b"Cryptographic Forum Research Group");
        assert_eq!(hex::encode(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    #[test]
    fn zero_key_gives_zero_tag() {
        // With r = s = 0 the polynomial evaluates to 0 and the tag is 0.
        let tag = Poly1305::mac(&[0u8; 32], b"anything at all");
        assert_eq!(tag, [0u8; 16]);
    }

    #[test]
    fn empty_message() {
        // h stays 0; tag = s.
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&[0xabu8; 16]);
        assert_eq!(Poly1305::mac(&key, b""), [0xabu8; 16]);
    }

    #[test]
    fn exact_block_boundary() {
        let key = [7u8; 32];
        let one = Poly1305::mac(&key, &[0x55u8; 16]);
        let two = Poly1305::mac(&key, &[0x55u8; 32]);
        assert_ne!(one, two);
    }

    proptest! {
        #[test]
        fn incremental_equals_one_shot(key: [u8; 32], a: Vec<u8>, b: Vec<u8>) {
            let mut p = Poly1305::new(&key);
            p.update(&a);
            p.update(&b);
            let mut joined = a.clone();
            joined.extend_from_slice(&b);
            prop_assert_eq!(p.finalize(), Poly1305::mac(&key, &joined));
        }

        #[test]
        fn messages_of_different_length_differ(key: [u8; 32], msg: Vec<u8>) {
            // Appending the 0x01-distinguisher means a message and the same
            // message plus one zero byte must authenticate differently for a
            // non-degenerate key.
            prop_assume!(key[..16].iter().any(|&b| b != 0));
            let mut longer = msg.clone();
            longer.push(0);
            prop_assert_ne!(Poly1305::mac(&key, &msg), Poly1305::mac(&key, &longer));
        }
    }
}
