//! HMAC-SHA-256 (RFC 2104), validated against the RFC 4231 test vectors.
//!
//! Used for simulated attestation quotes (the EPID group signature is
//! replaced by a MAC under a key shared with the simulated attestation
//! service — see the sgx-sim crate) and as the PRF inside HKDF.

use crate::constant_time::ct_eq;
use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA-256.
///
/// # Example
///
/// ```
/// use xsearch_crypto::hmac::HmacSha256;
///
/// let tag = HmacSha256::mac(b"key", b"message");
/// assert!(HmacSha256::verify(b"key", b"message", &tag));
/// assert!(!HmacSha256::verify(b"key", b"tampered", &tag));
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a MAC context keyed with `key` (any length; long keys are
    /// hashed first, per RFC 2104).
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            k[..DIGEST_LEN].copy_from_slice(&Sha256::digest(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC and returns the 32-byte tag.
    #[must_use]
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC.
    #[must_use]
    pub fn mac(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = HmacSha256::new(key);
        h.update(message);
        h.finalize()
    }

    /// Verifies a tag in constant time.
    #[must_use]
    pub fn verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
        ct_eq(&HmacSha256::mac(key, message), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use proptest::prelude::*;

    fn check(key_hex: &str, data: &[u8], want_hex: &str) {
        let key = hex::decode_expect(key_hex);
        assert_eq!(hex::encode(&HmacSha256::mac(&key, data)), want_hex);
    }

    #[test]
    fn rfc4231_case_1() {
        check(
            "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b",
            b"Hi There",
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
        );
    }

    #[test]
    fn rfc4231_case_2() {
        check(
            "4a656665", // "Jefe"
            b"what do ya want for nothing?",
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = hex::decode_expect("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
        let data = [0xddu8; 50];
        assert_eq!(
            hex::encode(&HmacSha256::mac(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_4() {
        let key = hex::decode_expect("0102030405060708090a0b0c0d0e0f10111213141516171819");
        let data = [0xcdu8; 50];
        assert_eq!(
            hex::encode(&HmacSha256::mac(&key, &data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex::encode(&HmacSha256::mac(&key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_long_data() {
        let key = [0xaau8; 131];
        let data: &[u8] = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            hex::encode(&HmacSha256::mac(&key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn verify_rejects_truncated_tag() {
        let tag = HmacSha256::mac(b"k", b"m");
        assert!(!HmacSha256::verify(b"k", b"m", &tag[..16]));
    }

    proptest! {
        #[test]
        fn incremental_equals_one_shot(key: Vec<u8>, a: Vec<u8>, b: Vec<u8>) {
            let mut h = HmacSha256::new(&key);
            h.update(&a);
            h.update(&b);
            let mut joined = a.clone();
            joined.extend_from_slice(&b);
            prop_assert_eq!(h.finalize(), HmacSha256::mac(&key, &joined));
        }

        #[test]
        fn different_keys_give_different_tags(k1: Vec<u8>, k2: Vec<u8>, msg: Vec<u8>) {
            prop_assume!(k1 != k2);
            // Keys differing only by zero-padding collide by construction
            // (RFC 2104 pads short keys with zeros); exclude that case.
            let max = k1.len().max(k2.len()).max(1);
            let mut p1 = k1.clone();
            p1.resize(max, 0);
            let mut p2 = k2.clone();
            p2.resize(max, 0);
            prop_assume!(p1 != p2);
            prop_assert_ne!(HmacSha256::mac(&k1, &msg), HmacSha256::mac(&k2, &msg));
        }
    }
}
