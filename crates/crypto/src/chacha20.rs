//! The ChaCha20 stream cipher (RFC 8439).
//!
//! Provides the raw block function (also used to derive the Poly1305
//! one-time key in the AEAD construction) and in-place stream encryption.

/// Key size in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce size in bytes (the IETF 96-bit variant).
pub const NONCE_LEN: usize = 12;
/// Output of one block function invocation.
pub const BLOCK_LEN: usize = 64;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

fn initial_state(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    state[12] = counter;
    for (i, chunk) in nonce.chunks_exact(4).enumerate() {
        state[13 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    state
}

/// Computes one 64-byte keystream block for (`key`, `counter`, `nonce`).
///
/// The 16 state words live in named locals, not an indexed array: every
/// AEAD operation in the system runs through here (this cipher carries
/// the broker↔enclave tunnel, the Tor onion layers and the PEAS hops),
/// and keeping the working state in registers roughly triples block
/// throughput over the indexed formulation.
#[must_use]
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let initial = initial_state(key, counter, nonce);
    let [mut x0, mut x1, mut x2, mut x3, mut x4, mut x5, mut x6, mut x7, mut x8, mut x9, mut x10, mut x11, mut x12, mut x13, mut x14, mut x15] =
        initial;

    macro_rules! quarter_round {
        ($a:ident, $b:ident, $c:ident, $d:ident) => {
            $a = $a.wrapping_add($b);
            $d = ($d ^ $a).rotate_left(16);
            $c = $c.wrapping_add($d);
            $b = ($b ^ $c).rotate_left(12);
            $a = $a.wrapping_add($b);
            $d = ($d ^ $a).rotate_left(8);
            $c = $c.wrapping_add($d);
            $b = ($b ^ $c).rotate_left(7);
        };
    }

    for _ in 0..10 {
        // Column rounds.
        quarter_round!(x0, x4, x8, x12);
        quarter_round!(x1, x5, x9, x13);
        quarter_round!(x2, x6, x10, x14);
        quarter_round!(x3, x7, x11, x15);
        // Diagonal rounds.
        quarter_round!(x0, x5, x10, x15);
        quarter_round!(x1, x6, x11, x12);
        quarter_round!(x2, x7, x8, x13);
        quarter_round!(x3, x4, x9, x14);
    }

    let state = [
        x0, x1, x2, x3, x4, x5, x6, x7, x8, x9, x10, x11, x12, x13, x14, x15,
    ];
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = state[i].wrapping_add(initial[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs the ChaCha20 keystream (starting at `counter`) into `data` in place.
///
/// Applying the function twice with the same parameters restores the
/// original data, so this is both encryption and decryption.
///
/// # Example
///
/// ```
/// use xsearch_crypto::chacha20::xor_stream;
///
/// let key = [1u8; 32];
/// let nonce = [2u8; 12];
/// let mut data = *b"attack at dawn";
/// xor_stream(&key, 1, &nonce, &mut data);
/// assert_ne!(&data, b"attack at dawn");
/// xor_stream(&key, 1, &nonce, &mut data);
/// assert_eq!(&data, b"attack at dawn");
/// ```
pub fn xor_stream(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    for (block_idx, chunk) in data.chunks_mut(BLOCK_LEN).enumerate() {
        let ks = block(key, counter.wrapping_add(block_idx as u32), nonce);
        for (byte, k) in chunk.iter_mut().zip(ks.iter()) {
            *byte ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use proptest::prelude::*;

    #[test]
    fn rfc8439_block_function_vector() {
        // RFC 8439 §2.3.2.
        let key: [u8; 32] =
            hex::decode_expect("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = hex::decode_expect("000000090000004a00000000")
            .try_into()
            .unwrap();
        let ks = block(&key, 1, &nonce);
        assert_eq!(
            hex::encode(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn all_zero_key_first_block() {
        // Widely-reproduced ChaCha20 keystream for the all-zero key/nonce at
        // counter 0 (draft-agl / RFC 8439 A.1 test vector #1).
        let key = [0u8; 32];
        let nonce = [0u8; 12];
        let ks = block(&key, 0, &nonce);
        assert_eq!(
            hex::encode(&ks[..32]),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7"
        );
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2.
        let key: [u8; 32] =
            hex::decode_expect("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = hex::decode_expect("000000000000004a00000000")
            .try_into()
            .unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        xor_stream(&key, 1, &nonce, &mut data);
        assert_eq!(
            hex::encode(&data[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        assert_eq!(data.len(), 114);
        // Round-trips back to the plaintext.
        xor_stream(&key, 1, &nonce, &mut data);
        assert!(data.starts_with(b"Ladies and Gentlemen"));
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        let mut two_blocks = vec![0u8; 128];
        xor_stream(&key, 5, &nonce, &mut two_blocks);
        let b0 = block(&key, 5, &nonce);
        let b1 = block(&key, 6, &nonce);
        assert_eq!(&two_blocks[..64], &b0[..]);
        assert_eq!(&two_blocks[64..], &b1[..]);
    }

    proptest! {
        #[test]
        fn xor_stream_is_an_involution(key: [u8; 32], nonce: [u8; 12], counter: u32, data: Vec<u8>) {
            let mut work = data.clone();
            xor_stream(&key, counter, &nonce, &mut work);
            xor_stream(&key, counter, &nonce, &mut work);
            prop_assert_eq!(work, data);
        }

        #[test]
        fn different_nonces_produce_different_keystream(key: [u8; 32], n1: [u8; 12], n2: [u8; 12]) {
            prop_assume!(n1 != n2);
            prop_assert_ne!(block(&key, 0, &n1), block(&key, 0, &n2));
        }
    }
}
