//! The ChaCha20 stream cipher (RFC 8439).
//!
//! Provides the raw block function (also used to derive the Poly1305
//! one-time key in the AEAD construction) and in-place stream encryption.
//!
//! The hot entry point is [`xor_stream_words`]: it takes the key and
//! nonce already parsed into state words (parsed once per cipher
//! instance by [`crate::aead::ChaCha20Poly1305::new`], not once per
//! block) and generates [`WIDE_BLOCKS`] keystream blocks per pass. The
//! four block computations differ only in their counter word, carry no
//! data dependencies between each other, and are laid out
//! lane-structured so the compiler turns the quarter-round arithmetic
//! into 4-wide vector ops (or at minimum schedules the four independent
//! dependency chains in parallel). The keystream is then XORed into the
//! payload in `u64` word chunks, not byte by byte.

/// Key size in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce size in bytes (the IETF 96-bit variant).
pub const NONCE_LEN: usize = 12;
/// Output of one block function invocation.
pub const BLOCK_LEN: usize = 64;
/// Blocks generated per wide keystream pass.
pub const WIDE_BLOCKS: usize = 4;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Parses a key into the eight little-endian state words it occupies
/// (rows 1–2 of the ChaCha20 state). The AEAD does this once per cipher
/// instance; every block function below consumes the parsed form.
#[must_use]
pub fn key_words(key: &[u8; KEY_LEN]) -> [u32; 8] {
    let mut words = [0u32; 8];
    for (w, chunk) in words.iter_mut().zip(key.chunks_exact(4)) {
        *w = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    words
}

/// Parses a nonce into the three little-endian state words of row 3.
#[must_use]
pub fn nonce_words(nonce: &[u8; NONCE_LEN]) -> [u32; 3] {
    let mut words = [0u32; 3];
    for (w, chunk) in words.iter_mut().zip(nonce.chunks_exact(4)) {
        *w = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    words
}

/// Computes one keystream block for (`key`, `counter`, `nonce`), given
/// pre-parsed state words, returning the 16 output words.
///
/// The 16 working words live in named locals, not an indexed array, and
/// the feed-forward re-adds the inputs directly — no initial-state array
/// is built at all. Used for the single-block needs of the AEAD (the
/// Poly1305 one-time key) and for sub-4-block tails; bulk encryption
/// goes through [`xor_stream_words`]'s wide pass instead.
#[must_use]
#[inline]
pub fn block_words(key: &[u32; 8], counter: u32, nonce: &[u32; 3]) -> [u32; 16] {
    let [mut x0, mut x1, mut x2, mut x3] = SIGMA;
    let [mut x4, mut x5, mut x6, mut x7, mut x8, mut x9, mut x10, mut x11] = *key;
    let mut x12 = counter;
    let [mut x13, mut x14, mut x15] = *nonce;

    macro_rules! quarter_round {
        ($a:ident, $b:ident, $c:ident, $d:ident) => {
            $a = $a.wrapping_add($b);
            $d = ($d ^ $a).rotate_left(16);
            $c = $c.wrapping_add($d);
            $b = ($b ^ $c).rotate_left(12);
            $a = $a.wrapping_add($b);
            $d = ($d ^ $a).rotate_left(8);
            $c = $c.wrapping_add($d);
            $b = ($b ^ $c).rotate_left(7);
        };
    }

    for _ in 0..10 {
        // Column rounds.
        quarter_round!(x0, x4, x8, x12);
        quarter_round!(x1, x5, x9, x13);
        quarter_round!(x2, x6, x10, x14);
        quarter_round!(x3, x7, x11, x15);
        // Diagonal rounds.
        quarter_round!(x0, x5, x10, x15);
        quarter_round!(x1, x6, x11, x12);
        quarter_round!(x2, x7, x8, x13);
        quarter_round!(x3, x4, x9, x14);
    }

    [
        x0.wrapping_add(SIGMA[0]),
        x1.wrapping_add(SIGMA[1]),
        x2.wrapping_add(SIGMA[2]),
        x3.wrapping_add(SIGMA[3]),
        x4.wrapping_add(key[0]),
        x5.wrapping_add(key[1]),
        x6.wrapping_add(key[2]),
        x7.wrapping_add(key[3]),
        x8.wrapping_add(key[4]),
        x9.wrapping_add(key[5]),
        x10.wrapping_add(key[6]),
        x11.wrapping_add(key[7]),
        x12.wrapping_add(counter),
        x13.wrapping_add(nonce[0]),
        x14.wrapping_add(nonce[1]),
        x15.wrapping_add(nonce[2]),
    ]
}

/// One state word across all [`WIDE_BLOCKS`] blocks of a wide pass.
///
/// The element-wise `add`/`xor`/`rotl` combinators below are the shape
/// LLVM's SLP vectorizer reliably turns into 128-bit integer ops (with
/// AVX-512's `vprold` even the rotates are single instructions — build
/// with `target-cpu=native`, which the workspace `.cargo/config.toml`
/// does). On targets where the rotate is not profitable to vectorize
/// the same code compiles to the unrolled scalar form, which is never
/// slower than the one-block path.
#[derive(Copy, Clone)]
struct Lanes([u32; WIDE_BLOCKS]);

impl Lanes {
    #[inline(always)]
    fn splat(v: u32) -> Self {
        Lanes([v; WIDE_BLOCKS])
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        let mut r = self.0;
        let mut i = 0;
        while i < WIDE_BLOCKS {
            r[i] = r[i].wrapping_add(o.0[i]);
            i += 1;
        }
        Lanes(r)
    }

    #[inline(always)]
    fn xor(self, o: Self) -> Self {
        let mut r = self.0;
        let mut i = 0;
        while i < WIDE_BLOCKS {
            r[i] ^= o.0[i];
            i += 1;
        }
        Lanes(r)
    }

    #[inline(always)]
    fn rotl(self, n: u32) -> Self {
        let mut r = self.0;
        let mut i = 0;
        while i < WIDE_BLOCKS {
            r[i] = r[i].rotate_left(n);
            i += 1;
        }
        Lanes(r)
    }
}

/// Generates [`WIDE_BLOCKS`] keystream blocks in one pass — counters
/// `counter..counter+3`, wrapping — and XORs them straight into `span`
/// (exactly `WIDE_BLOCKS * BLOCK_LEN` bytes), eight bytes at a time.
///
/// The four block computations differ only in their counter word and
/// run lane-parallel through every quarter round; fusing the XOR here
/// keeps the finished state in registers instead of materializing a
/// 256-byte keystream buffer.
#[inline]
fn wide_xor(key: &[u32; 8], counter: u32, nonce: &[u32; 3], span: &mut [u8]) {
    debug_assert_eq!(span.len(), WIDE_BLOCKS * BLOCK_LEN);
    let mut counters = [0u32; WIDE_BLOCKS];
    for (i, c) in counters.iter_mut().enumerate() {
        *c = counter.wrapping_add(i as u32);
    }
    let mut x: [Lanes; 16] = [
        Lanes::splat(SIGMA[0]),
        Lanes::splat(SIGMA[1]),
        Lanes::splat(SIGMA[2]),
        Lanes::splat(SIGMA[3]),
        Lanes::splat(key[0]),
        Lanes::splat(key[1]),
        Lanes::splat(key[2]),
        Lanes::splat(key[3]),
        Lanes::splat(key[4]),
        Lanes::splat(key[5]),
        Lanes::splat(key[6]),
        Lanes::splat(key[7]),
        Lanes(counters),
        Lanes::splat(nonce[0]),
        Lanes::splat(nonce[1]),
        Lanes::splat(nonce[2]),
    ];
    let init = x;

    macro_rules! quarter_round {
        ($a:literal, $b:literal, $c:literal, $d:literal) => {
            x[$a] = x[$a].add(x[$b]);
            x[$d] = x[$d].xor(x[$a]).rotl(16);
            x[$c] = x[$c].add(x[$d]);
            x[$b] = x[$b].xor(x[$c]).rotl(12);
            x[$a] = x[$a].add(x[$b]);
            x[$d] = x[$d].xor(x[$a]).rotl(8);
            x[$c] = x[$c].add(x[$d]);
            x[$b] = x[$b].xor(x[$c]).rotl(7);
        };
    }

    for _ in 0..10 {
        // Column rounds.
        quarter_round!(0, 4, 8, 12);
        quarter_round!(1, 5, 9, 13);
        quarter_round!(2, 6, 10, 14);
        quarter_round!(3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round!(0, 5, 10, 15);
        quarter_round!(1, 6, 11, 12);
        quarter_round!(2, 7, 8, 13);
        quarter_round!(3, 4, 9, 14);
    }

    // Feed-forward: re-add the initial state, lane-wise.
    for (x, init) in x.iter_mut().zip(&init) {
        *x = x.add(*init);
    }

    for (lane, block) in span.chunks_exact_mut(BLOCK_LEN).enumerate() {
        for (pair, p) in block.chunks_exact_mut(8).zip(0..8) {
            let ks = u64::from(x[2 * p].0[lane]) | (u64::from(x[2 * p + 1].0[lane]) << 32);
            let bytes: [u8; 8] = pair[..8].try_into().expect("8-byte chunk");
            pair.copy_from_slice(&(u64::from_le_bytes(bytes) ^ ks).to_le_bytes());
        }
    }
}

/// XORs one full 64-byte block of keystream words into `chunk`, eight
/// bytes at a time (two keystream words packed into each `u64` lane).
#[inline]
fn xor_full_block(chunk: &mut [u8], ks: &[u32; 16]) {
    debug_assert_eq!(chunk.len(), BLOCK_LEN);
    for (pair, ks) in chunk.chunks_exact_mut(8).zip(ks.chunks_exact(2)) {
        let lane = u64::from(ks[0]) | (u64::from(ks[1]) << 32);
        let bytes: [u8; 8] = pair[..8].try_into().expect("8-byte chunk");
        pair.copy_from_slice(&(u64::from_le_bytes(bytes) ^ lane).to_le_bytes());
    }
}

/// XORs keystream words into a partial tail block, byte by byte.
#[inline]
fn xor_tail(chunk: &mut [u8], ks: &[u32; 16]) {
    for (i, byte) in chunk.iter_mut().enumerate() {
        *byte ^= (ks[i / 4] >> (8 * (i % 4))) as u8;
    }
}

/// The wide in-place stream XOR over pre-parsed key/nonce words: four
/// blocks of keystream per pass for the bulk of the payload, single
/// blocks for the tail. Block `i` uses counter `counter + i`, wrapping
/// at the `u32` boundary exactly like the one-block-at-a-time path.
pub fn xor_stream_words(key: &[u32; 8], counter: u32, nonce: &[u32; 3], data: &mut [u8]) {
    let mut ctr = counter;
    let mut wide = data.chunks_exact_mut(WIDE_BLOCKS * BLOCK_LEN);
    for span in wide.by_ref() {
        wide_xor(key, ctr, nonce, span);
        ctr = ctr.wrapping_add(WIDE_BLOCKS as u32);
    }
    for chunk in wide.into_remainder().chunks_mut(BLOCK_LEN) {
        let ks = block_words(key, ctr, nonce);
        ctr = ctr.wrapping_add(1);
        if chunk.len() == BLOCK_LEN {
            xor_full_block(chunk, &ks);
        } else {
            xor_tail(chunk, &ks);
        }
    }
}

/// Computes one 64-byte keystream block for (`key`, `counter`, `nonce`).
///
/// Convenience wrapper over [`block_words`] for callers holding raw
/// bytes; the AEAD parses once and uses the word form directly.
#[must_use]
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let words = block_words(&key_words(key), counter, &nonce_words(nonce));
    let mut out = [0u8; BLOCK_LEN];
    for (chunk, word) in out.chunks_exact_mut(4).zip(&words) {
        chunk.copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs the ChaCha20 keystream (starting at `counter`) into `data` in place.
///
/// Applying the function twice with the same parameters restores the
/// original data, so this is both encryption and decryption.
///
/// # Example
///
/// ```
/// use xsearch_crypto::chacha20::xor_stream;
///
/// let key = [1u8; 32];
/// let nonce = [2u8; 12];
/// let mut data = *b"attack at dawn";
/// xor_stream(&key, 1, &nonce, &mut data);
/// assert_ne!(&data, b"attack at dawn");
/// xor_stream(&key, 1, &nonce, &mut data);
/// assert_eq!(&data, b"attack at dawn");
/// ```
pub fn xor_stream(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    xor_stream_words(&key_words(key), counter, &nonce_words(nonce), data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use proptest::prelude::*;

    #[test]
    fn rfc8439_block_function_vector() {
        // RFC 8439 §2.3.2.
        let key: [u8; 32] =
            hex::decode_expect("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = hex::decode_expect("000000090000004a00000000")
            .try_into()
            .unwrap();
        let ks = block(&key, 1, &nonce);
        assert_eq!(
            hex::encode(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn all_zero_key_first_block() {
        // Widely-reproduced ChaCha20 keystream for the all-zero key/nonce at
        // counter 0 (draft-agl / RFC 8439 A.1 test vector #1).
        let key = [0u8; 32];
        let nonce = [0u8; 12];
        let ks = block(&key, 0, &nonce);
        assert_eq!(
            hex::encode(&ks[..32]),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7"
        );
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2.
        let key: [u8; 32] =
            hex::decode_expect("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = hex::decode_expect("000000000000004a00000000")
            .try_into()
            .unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        xor_stream(&key, 1, &nonce, &mut data);
        assert_eq!(
            hex::encode(&data[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        assert_eq!(data.len(), 114);
        // Round-trips back to the plaintext.
        xor_stream(&key, 1, &nonce, &mut data);
        assert!(data.starts_with(b"Ladies and Gentlemen"));
    }

    #[test]
    fn rfc8439_a2_encryption_vector_1() {
        // RFC 8439 A.2 test vector #1: zero key, zero nonce, counter 0,
        // 64 zero bytes — the ciphertext is the raw keystream block.
        let mut data = vec![0u8; 64];
        xor_stream(&[0u8; 32], 0, &[0u8; 12], &mut data);
        assert_eq!(
            hex::encode(&data),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7\
             da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586"
        );
    }

    #[test]
    fn rfc8439_a2_encryption_vector_2() {
        // RFC 8439 A.2 test vector #2: key 00…01, nonce 00…02, counter 1,
        // the 375-byte IETF contribution boilerplate. 375 bytes spans a
        // full wide pass (4 blocks), a full tail block and a partial tail,
        // so this single vector exercises every path of the wide XOR.
        let mut key = [0u8; 32];
        key[31] = 1;
        let mut nonce = [0u8; 12];
        nonce[11] = 2;
        let mut data = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to".to_vec();
        assert_eq!(data.len(), 375);
        xor_stream(&key, 1, &nonce, &mut data);
        assert_eq!(
            hex::encode(&data),
            "a3fbf07df3fa2fde4f376ca23e82737041605d9f4f4f57bd8cff2c1d4b7955ec\
             2a97948bd3722915c8f3d337f7d370050e9e96d647b7c39f56e031ca5eb6250d\
             4042e02785ececfa4b4bb5e8ead0440e20b6e8db09d881a7c6132f420e527950\
             42bdfa7773d8a9051447b3291ce1411c680465552aa6c405b7764d5e87bea85a\
             d00f8449ed8f72d0d662ab052691ca66424bc86d2df80ea41f43abf937d3259d\
             c4b2d0dfb48a6c9139ddd7f76966e928e635553ba76c5c879d7b35d49eb2e62b\
             0871cdac638939e25e8a1e0ef9d5280fa8ca328b351c3c765989cbcf3daa8b6c\
             cc3aaf9f3979c92b3720fc88dc95ed84a1be059c6499b9fda236e7e818b04b0b\
             c39c1e876b193bfe5569753f88128cc08aaa9b63d1a16f80ef2554d7189c411f\
             5869ca52c5b83fa36ff216b9c1d30062bebcfd2dc5bce0911934fda79a86f6e6\
             98ced759c3ff9b6477338f3da4f9cd8514ea9982ccafb341b2384dd902f3d1ab\
             7ac61dd29c6f21ba5b862f3730e37cfdc4fd806c22f221"
        );
    }

    #[test]
    fn rfc8439_a2_encryption_vector_3() {
        // RFC 8439 A.2 test vector #3: the Jabberwocky stanza (127 bytes)
        // at counter 42 — a sub-wide payload with a partial tail block.
        let key: [u8; 32] =
            hex::decode_expect("1c9240a5eb55d38af333888604f6b5f0473917c1402b80099dca5cbc207075c0")
                .try_into()
                .unwrap();
        let mut nonce = [0u8; 12];
        nonce[11] = 2;
        let mut data = b"'Twas brillig, and the slithy toves\nDid gyre and gimble in the wabe:\nAll mimsy were the borogoves,\nAnd the mome raths outgrabe.".to_vec();
        assert_eq!(data.len(), 127);
        xor_stream(&key, 42, &nonce, &mut data);
        assert_eq!(
            hex::encode(&data),
            "62e6347f95ed87a45ffae7426f27a1df5fb69110044c0d73118effa95b01e5cf\
             166d3df2d721caf9b21e5fb14c616871fd84c54f9d65b283196c7fe4f60553eb\
             f39c6402c42234e32a356b3e764312a61a5532055716ead6962568f87d3f3f77\
             04c6a8d1bcd1bf4d50d6154b6da731b187b58dfd728afa36757a797ac188d1"
        );
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        let mut two_blocks = vec![0u8; 128];
        xor_stream(&key, 5, &nonce, &mut two_blocks);
        let b0 = block(&key, 5, &nonce);
        let b1 = block(&key, 6, &nonce);
        assert_eq!(&two_blocks[..64], &b0[..]);
        assert_eq!(&two_blocks[64..], &b1[..]);
    }

    #[test]
    fn counter_wraps_across_the_u32_boundary() {
        // A 6-block payload starting at u32::MAX - 1 spans the counter
        // wrap inside one wide pass: blocks use counters MAX-1, MAX, 0,
        // 1 (wide) then 2, 3 (tail). Pins `wrapping_add` behavior for
        // the 4-block path against the one-block block function.
        let key = [0x42u8; 32];
        let nonce = [7u8; 12];
        let mut data = vec![0u8; 6 * BLOCK_LEN];
        xor_stream(&key, u32::MAX - 1, &nonce, &mut data);
        let expected_counters = [u32::MAX - 1, u32::MAX, 0, 1, 2, 3];
        for (i, counter) in expected_counters.into_iter().enumerate() {
            assert_eq!(
                &data[i * BLOCK_LEN..(i + 1) * BLOCK_LEN],
                &block(&key, counter, &nonce)[..],
                "block {i} must use counter {counter}"
            );
        }
    }

    #[test]
    fn wide_path_matches_single_blocks_at_every_length() {
        // Every payload length mod the wide span, around both span
        // boundaries: the wide path and the per-block reference must
        // agree byte for byte.
        let key = [0x24u8; 32];
        let nonce = [0x99u8; 12];
        for len in 0..=(2 * WIDE_BLOCKS * BLOCK_LEN + 3) {
            let mut wide = vec![0xa5u8; len];
            xor_stream(&key, 7, &nonce, &mut wide);
            let mut scalar = vec![0xa5u8; len];
            crate::reference::xor_stream(&key, 7, &nonce, &mut scalar);
            assert_eq!(wide, scalar, "length {len}");
        }
    }

    proptest! {
        #[test]
        fn xor_stream_is_an_involution(key: [u8; 32], nonce: [u8; 12], counter: u32, data: Vec<u8>) {
            let mut work = data.clone();
            xor_stream(&key, counter, &nonce, &mut work);
            xor_stream(&key, counter, &nonce, &mut work);
            prop_assert_eq!(work, data);
        }

        #[test]
        fn wide_stream_matches_scalar_reference(
            key: [u8; 32],
            nonce: [u8; 12],
            counter: u32,
            data in proptest::collection::vec(any::<u8>(), 0..1200),
        ) {
            let mut wide = data.clone();
            xor_stream(&key, counter, &nonce, &mut wide);
            let mut scalar = data;
            crate::reference::xor_stream(&key, counter, &nonce, &mut scalar);
            prop_assert_eq!(wide, scalar);
        }

        #[test]
        fn different_nonces_produce_different_keystream(key: [u8; 32], n1: [u8; 12], n2: [u8; 12]) {
            prop_assume!(n1 != n2);
            prop_assert_ne!(block(&key, 0, &n1), block(&key, 0, &n2));
        }
    }
}
