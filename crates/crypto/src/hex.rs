//! Minimal hexadecimal encoding/decoding, used pervasively by test vectors
//! and by human-readable identifiers (measurement hashes, quote digests).

/// Lowercase digit per nibble value.
const ENCODE_LUT: &[u8; 16] = b"0123456789abcdef";

/// Nibble value per input byte; `0xff` marks a non-hex byte. Covers
/// both cases; any non-ASCII byte maps to invalid.
const DECODE_LUT: [u8; 256] = {
    let mut lut = [0xffu8; 256];
    let mut b = 0usize;
    while b < 256 {
        lut[b] = match b as u8 {
            c @ b'0'..=b'9' => c - b'0',
            c @ b'a'..=b'f' => c - b'a' + 10,
            c @ b'A'..=b'F' => c - b'A' + 10,
            _ => 0xff,
        };
        b += 1;
    }
    lut
};

/// Encodes bytes as a lowercase hexadecimal string.
///
/// Table-driven, one allocation: two digit bytes per input byte straight
/// into the output buffer.
///
/// # Example
///
/// ```
/// assert_eq!(xsearch_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
#[must_use]
pub fn encode(bytes: &[u8]) -> String {
    let mut out = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(ENCODE_LUT[(b >> 4) as usize]);
        out.push(ENCODE_LUT[(b & 0xf) as usize]);
    }
    String::from_utf8(out).expect("hex digits are ascii")
}

/// Decodes a hexadecimal string (upper or lower case, no separators).
///
/// Returns `None` when the input has odd length or contains a non-hex
/// character. Table-driven, one allocation: each digit pair is assembled
/// directly into the output byte (no intermediate digit vector).
///
/// # Example
///
/// ```
/// assert_eq!(xsearch_crypto::hex::decode("dead"), Some(vec![0xde, 0xad]));
/// assert_eq!(xsearch_crypto::hex::decode("xyz"), None);
/// ```
#[must_use]
pub fn decode(s: &str) -> Option<Vec<u8>> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = DECODE_LUT[pair[0] as usize];
        let lo = DECODE_LUT[pair[1] as usize];
        if hi == 0xff || lo == 0xff {
            return None;
        }
        out.push((hi << 4) | lo);
    }
    Some(out)
}

/// Decodes a hex string that is known to be valid, panicking otherwise.
///
/// Intended for literals in tests and embedded constants.
///
/// # Panics
///
/// Panics if `s` is not valid even-length hex.
#[must_use]
pub fn decode_expect(s: &str) -> Vec<u8> {
    decode(s).unwrap_or_else(|| panic!("invalid hex literal: {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_empty_is_empty() {
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn decode_rejects_odd_length() {
        assert_eq!(decode("abc"), None);
    }

    #[test]
    fn decode_rejects_non_hex() {
        assert_eq!(decode("zz"), None);
    }

    #[test]
    fn decode_accepts_mixed_case() {
        assert_eq!(decode("DeAd"), Some(vec![0xde, 0xad]));
    }

    #[test]
    fn decode_rejects_multibyte_utf8() {
        // Even *byte* length, but not hex digits — the byte-table path
        // must reject exactly what the old char-based path rejected.
        assert_eq!(decode("éé"), None);
    }

    proptest! {
        #[test]
        fn decode_matches_char_based_semantics(s in "[0-9a-fA-F]{0,40}") {
            let expected = if s.len().is_multiple_of(2) {
                Some(
                    s.chars()
                        .map(|c| c.to_digit(16).unwrap() as u8)
                        .collect::<Vec<_>>()
                        .chunks(2)
                        .map(|p| (p[0] << 4) | p[1])
                        .collect::<Vec<u8>>(),
                )
            } else {
                None
            };
            prop_assert_eq!(decode(&s), expected);
        }
    }

    proptest! {
        #[test]
        fn roundtrip(bytes: Vec<u8>) {
            prop_assert_eq!(decode(&encode(&bytes)), Some(bytes));
        }
    }
}
