//! Minimal hexadecimal encoding/decoding, used pervasively by test vectors
//! and by human-readable identifiers (measurement hashes, quote digests).

/// Encodes bytes as a lowercase hexadecimal string.
///
/// # Example
///
/// ```
/// assert_eq!(xsearch_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
#[must_use]
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    out
}

/// Decodes a hexadecimal string (upper or lower case, no separators).
///
/// Returns `None` when the input has odd length or contains a non-hex
/// character.
///
/// # Example
///
/// ```
/// assert_eq!(xsearch_crypto::hex::decode("dead"), Some(vec![0xde, 0xad]));
/// assert_eq!(xsearch_crypto::hex::decode("xyz"), None);
/// ```
#[must_use]
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits: Vec<u8> = s
        .chars()
        .map(|c| c.to_digit(16).map(|d| d as u8))
        .collect::<Option<_>>()?;
    Some(digits.chunks(2).map(|p| (p[0] << 4) | p[1]).collect())
}

/// Decodes a hex string that is known to be valid, panicking otherwise.
///
/// Intended for literals in tests and embedded constants.
///
/// # Panics
///
/// Panics if `s` is not valid even-length hex.
#[must_use]
pub fn decode_expect(s: &str) -> Vec<u8> {
    decode(s).unwrap_or_else(|| panic!("invalid hex literal: {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_empty_is_empty() {
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn decode_rejects_odd_length() {
        assert_eq!(decode("abc"), None);
    }

    #[test]
    fn decode_rejects_non_hex() {
        assert_eq!(decode("zz"), None);
    }

    #[test]
    fn decode_accepts_mixed_case() {
        assert_eq!(decode("DeAd"), Some(vec![0xde, 0xad]));
    }

    proptest! {
        #[test]
        fn roundtrip(bytes: Vec<u8>) {
            prop_assert_eq!(decode(&encode(&bytes)), Some(bytes));
        }
    }
}
