//! Error type for enclave operations.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the SGX model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SgxError {
    /// An EPC allocation would exceed the configured hard limit.
    EpcExhausted {
        /// Bytes requested.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
    /// The enclave was destroyed; no further calls are possible.
    Destroyed,
    /// A quote failed verification at the attestation service.
    QuoteRejected,
    /// The expected and actual measurements differ (wrong code loaded).
    MeasurementMismatch,
    /// A sealed blob could not be opened (wrong enclave or tampering).
    UnsealFailed,
    /// A sealed blob is authentic but older than the newest version this
    /// enclave's monotonic counter has seen — restoring it would roll
    /// protected state back to a superseded snapshot.
    RolledBack {
        /// Version recorded in the rejected blob.
        sealed: u64,
        /// Lowest version the monotonic counter still accepts.
        floor: u64,
    },
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::EpcExhausted {
                requested,
                available,
            } => {
                write!(
                    f,
                    "epc exhausted: requested {requested} bytes, {available} available"
                )
            }
            SgxError::Destroyed => write!(f, "enclave destroyed"),
            SgxError::QuoteRejected => write!(f, "attestation quote rejected"),
            SgxError::MeasurementMismatch => write!(f, "enclave measurement mismatch"),
            SgxError::UnsealFailed => write!(f, "sealed blob could not be opened"),
            SgxError::RolledBack { sealed, floor } => {
                write!(
                    f,
                    "sealed blob version {sealed} is older than monotonic floor {floor}"
                )
            }
        }
    }
}

impl Error for SgxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningfully() {
        let e = SgxError::EpcExhausted {
            requested: 4096,
            available: 100,
        };
        assert!(e.to_string().contains("4096"));
        assert!(SgxError::Destroyed.to_string().contains("destroyed"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SgxError>();
    }
}
