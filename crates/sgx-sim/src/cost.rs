//! The enclave cost model.
//!
//! §5.3.3 of the paper names the two SGX performance effects that shape
//! its design: (i) trusted/untrusted mode transitions and (ii) memory
//! pressure — cache-line crypto when spilling past the LLC and full page
//! encryption + OS swaps when exceeding the EPC. The constants here are
//! taken from the published SGX literature for the paper's Skylake-era
//! hardware (an i7-6700) and drive the *accounted* overhead figures in the
//! benchmarks; real wall-clock costs of the computation come on top.

use std::time::Duration;

/// Cost constants, in nanoseconds, for one enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// One ecall or ocall transition (≈8,000–12,000 cycles on Skylake;
    /// ~2.7 µs at 3.4 GHz).
    pub transition_ns: u64,
    /// Copying one byte across the enclave boundary (marshalling).
    pub per_byte_copy_ns: u64,
    /// Encrypting/decrypting one 4 KiB page on EPC eviction/reload.
    pub page_crypt_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            transition_ns: 2_700,
            per_byte_copy_ns: 0,
            page_crypt_ns: 3_900,
        }
    }
}

impl CostModel {
    /// Modeled cost of one boundary crossing carrying `bytes` of payload.
    #[must_use]
    pub fn crossing(&self, bytes: usize) -> Duration {
        Duration::from_nanos(self.transition_ns + self.per_byte_copy_ns * bytes as u64)
    }

    /// Modeled cost of paging `pages` 4 KiB pages in or out of the EPC.
    #[must_use]
    pub fn paging(&self, pages: usize) -> Duration {
        Duration::from_nanos(self.page_crypt_ns * pages as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_transition_is_microseconds_scale() {
        let c = CostModel::default();
        let d = c.crossing(0);
        assert!(d >= Duration::from_nanos(1_000) && d <= Duration::from_micros(20));
    }

    #[test]
    fn crossing_scales_with_bytes() {
        let c = CostModel {
            per_byte_copy_ns: 2,
            ..Default::default()
        };
        assert_eq!(c.crossing(100) - c.crossing(0), Duration::from_nanos(200));
    }

    #[test]
    fn paging_scales_with_pages() {
        let c = CostModel::default();
        assert_eq!(c.paging(2), Duration::from_nanos(2 * c.page_crypt_ns));
        assert_eq!(c.paging(0), Duration::ZERO);
    }
}
