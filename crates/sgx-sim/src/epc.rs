//! The Enclave Page Cache model.
//!
//! SGX v1 reserves ~128 MiB of physical memory for the EPC of which about
//! 90 MiB is usable by enclave data (§2.3 of the paper). An enclave may
//! allocate beyond it — the OS then swaps encrypted pages — but every page
//! crossing the boundary pays a cryptographic cost. Fig 6's question is
//! whether 1M stored queries stay inside the budget; this model answers it
//! with exact byte accounting and charges the paging cost when exceeded.

use crate::cost::CostModel;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// EPC page size.
pub const PAGE_SIZE: usize = 4096;
/// Usable EPC per enclave, as the paper quotes it ("approximately 90MB").
pub const USABLE_EPC_BYTES: usize = 90 * 1024 * 1024;

/// Shared, thread-safe EPC usage gauge for one enclave.
///
/// In-enclave data structures charge and release bytes as they grow and
/// shrink; usage beyond the usable EPC is tracked as paged-out pages with
/// their modeled crypto cost.
#[derive(Debug, Default)]
pub struct EpcGauge {
    used: AtomicUsize,
    peak: AtomicUsize,
    limit: usize,
    paged_pages: AtomicU64,
    paging_ns: AtomicU64,
}

impl EpcGauge {
    /// Creates a gauge with the standard usable-EPC limit.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Self::with_limit(USABLE_EPC_BYTES)
    }

    /// Creates a gauge with a custom limit (tests, ablations).
    #[must_use]
    pub fn with_limit(limit: usize) -> Arc<Self> {
        Arc::new(EpcGauge {
            limit,
            ..Default::default()
        })
    }

    /// Records an allocation of `bytes`. Returns the modeled paging cost
    /// incurred *by this allocation* (zero while under the limit).
    pub fn charge(&self, bytes: usize, cost: &CostModel) -> Duration {
        let old = self.used.fetch_add(bytes, Ordering::Relaxed);
        let new = old + bytes;
        self.peak.fetch_max(new, Ordering::Relaxed);
        if new <= self.limit {
            return Duration::ZERO;
        }
        // Pages newly pushed past the limit must be evicted (encrypted).
        let over_old = old.saturating_sub(self.limit);
        let over_new = new - self.limit;
        let new_pages = pages(over_new).saturating_sub(pages(over_old));
        if new_pages == 0 {
            return Duration::ZERO;
        }
        self.paged_pages
            .fetch_add(new_pages as u64, Ordering::Relaxed);
        let d = cost.paging(new_pages);
        self.paging_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        d
    }

    /// Records a release of `bytes`.
    pub fn release(&self, bytes: usize) {
        self.used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Current usage in bytes.
    #[must_use]
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark in bytes.
    #[must_use]
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// The usable-EPC limit in bytes.
    #[must_use]
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Whether current usage fits the usable EPC.
    #[must_use]
    pub fn within_limit(&self) -> bool {
        self.used() <= self.limit
    }

    /// Number of page evictions charged so far.
    #[must_use]
    pub fn paged_pages(&self) -> u64 {
        self.paged_pages.load(Ordering::Relaxed)
    }

    /// Total modeled paging cost.
    #[must_use]
    pub fn paging_cost(&self) -> Duration {
        Duration::from_nanos(self.paging_ns.load(Ordering::Relaxed))
    }
}

fn pages(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn usage_tracks_charge_release() {
        let g = EpcGauge::with_limit(1 << 20);
        let cost = CostModel::default();
        assert_eq!(g.charge(1000, &cost), Duration::ZERO);
        g.charge(500, &cost);
        assert_eq!(g.used(), 1500);
        g.release(1000);
        assert_eq!(g.used(), 500);
        assert_eq!(g.peak(), 1500);
    }

    #[test]
    fn within_limit_flips_at_boundary() {
        let g = EpcGauge::with_limit(1000);
        let cost = CostModel::default();
        g.charge(1000, &cost);
        assert!(g.within_limit());
        g.charge(1, &cost);
        assert!(!g.within_limit());
    }

    #[test]
    fn paging_charged_only_beyond_limit() {
        let g = EpcGauge::with_limit(2 * PAGE_SIZE);
        let cost = CostModel::default();
        assert_eq!(g.charge(2 * PAGE_SIZE, &cost), Duration::ZERO);
        let d = g.charge(PAGE_SIZE, &cost);
        assert_eq!(d, cost.paging(1));
        assert_eq!(g.paged_pages(), 1);
        assert!(g.paging_cost() > Duration::ZERO);
    }

    #[test]
    fn partial_page_overflow_rounds_up() {
        let g = EpcGauge::with_limit(0);
        let cost = CostModel::default();
        g.charge(1, &cost);
        assert_eq!(g.paged_pages(), 1, "1 byte beyond the limit costs a page");
    }

    #[test]
    fn default_limit_is_ninety_mib() {
        let g = EpcGauge::new();
        assert_eq!(g.limit(), 90 * 1024 * 1024);
    }

    proptest! {
        #[test]
        fn used_never_negative_and_peak_dominates(ops in proptest::collection::vec((any::<bool>(), 1usize..10_000), 1..50)) {
            let g = EpcGauge::with_limit(1 << 30);
            let cost = CostModel::default();
            let mut shadow: i64 = 0;
            for (is_charge, bytes) in ops {
                if is_charge {
                    g.charge(bytes, &cost);
                    shadow += bytes as i64;
                } else if shadow >= bytes as i64 {
                    g.release(bytes);
                    shadow -= bytes as i64;
                }
            }
            prop_assert_eq!(g.used() as i64, shadow);
            prop_assert!(g.peak() >= g.used());
        }
    }
}
