//! Simulated remote attestation.
//!
//! Real SGX attestation: the quoting enclave signs a report (measurement +
//! report data) with an EPID group key; the verifier submits the quote to
//! Intel's Attestation Service, which vouches for the signature. We keep
//! the protocol shape and replace the group signature with an HMAC under a
//! *provisioning key* known only to the attestation service and to
//! provisioned platforms (DESIGN.md documents this substitution).
//!
//! What the model preserves — and what X-Search's security argument needs:
//!
//! * a quote binds **report data** (the channel public key) to a
//!   **measurement** (the exact proxy code);
//! * only provisioned platforms can produce verifiable quotes;
//! * any tampering with measurement or report data is detected.

use crate::error::SgxError;
use crate::measurement::Measurement;
use rand::RngCore;
use xsearch_crypto::constant_time::ct_eq;
use xsearch_crypto::hmac::HmacSha256;

/// An attestation quote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// Measurement of the quoting enclave.
    pub measurement: Measurement,
    /// Caller-chosen data bound into the quote (e.g. a channel key hash).
    pub report_data: Vec<u8>,
    /// MAC standing in for the EPID group signature.
    pub(crate) mac: [u8; 32],
}

impl Quote {
    /// Serializes the quote for transport.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 8 + self.report_data.len() + 32);
        out.extend_from_slice(&self.measurement.0);
        out.extend_from_slice(&(self.report_data.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.report_data);
        out.extend_from_slice(&self.mac);
        out
    }

    /// Parses a serialized quote.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::QuoteRejected`] for structurally invalid bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, SgxError> {
        if bytes.len() < 32 + 8 + 32 {
            return Err(SgxError::QuoteRejected);
        }
        let mut measurement = [0u8; 32];
        measurement.copy_from_slice(&bytes[..32]);
        let len = u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes")) as usize;
        if bytes.len() != 40 + len + 32 {
            return Err(SgxError::QuoteRejected);
        }
        let report_data = bytes[40..40 + len].to_vec();
        let mut mac = [0u8; 32];
        mac.copy_from_slice(&bytes[40 + len..]);
        Ok(Quote {
            measurement: Measurement(measurement),
            report_data,
            mac,
        })
    }
}

/// The simulated attestation authority (IAS analogue).
#[derive(Debug, Clone)]
pub struct AttestationService {
    provisioning_key: [u8; 32],
}

impl AttestationService {
    /// Creates a service with a fresh provisioning key.
    pub fn new<R: RngCore>(rng: &mut R) -> Self {
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        AttestationService {
            provisioning_key: key,
        }
    }

    /// Deterministic construction for reproducible experiments.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&seed.to_le_bytes());
        key[8..16].copy_from_slice(b"xsrchIAS");
        AttestationService {
            provisioning_key: xsearch_crypto::sha256::Sha256::digest(&key),
        }
    }

    /// The key handed to genuine platforms at provisioning time.
    #[must_use]
    pub fn provisioning_key(&self) -> [u8; 32] {
        self.provisioning_key
    }

    /// Verifies a quote's authenticity (the IAS round trip).
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::QuoteRejected`] when the MAC does not verify.
    pub fn verify(&self, quote: &Quote) -> Result<(), SgxError> {
        let mut mac = HmacSha256::new(&self.provisioning_key);
        mac.update(&quote.measurement.0);
        mac.update(&(quote.report_data.len() as u64).to_le_bytes());
        mac.update(&quote.report_data);
        if ct_eq(&mac.finalize(), &quote.mac) {
            Ok(())
        } else {
            Err(SgxError::QuoteRejected)
        }
    }

    /// Verifies authenticity *and* that the quote comes from the expected
    /// code — the check the X-Search broker performs before trusting a
    /// proxy.
    ///
    /// # Errors
    ///
    /// [`SgxError::QuoteRejected`] for an inauthentic quote,
    /// [`SgxError::MeasurementMismatch`] for authentic-but-wrong code.
    pub fn verify_expecting(&self, quote: &Quote, expected: Measurement) -> Result<(), SgxError> {
        self.verify(quote)?;
        if quote.measurement != expected {
            return Err(SgxError::MeasurementMismatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::EnclaveBuilder;

    fn provisioned_enclave(
        service: &AttestationService,
        code: &[u8],
    ) -> crate::enclave::Enclave<()> {
        EnclaveBuilder::new("q")
            .with_code(code)
            .with_provisioning_key(service.provisioning_key())
            .build(())
    }

    #[test]
    fn genuine_quote_verifies() {
        let service = AttestationService::from_seed(1);
        let enclave = provisioned_enclave(&service, b"proxy-v1");
        let quote = enclave.quote(b"channel-key-hash").unwrap();
        assert!(service.verify(&quote).is_ok());
        assert!(service
            .verify_expecting(&quote, enclave.measurement())
            .is_ok());
    }

    #[test]
    fn forged_mac_is_rejected() {
        let service = AttestationService::from_seed(1);
        let enclave = provisioned_enclave(&service, b"proxy-v1");
        let mut quote = enclave.quote(b"rd").unwrap();
        quote.mac[0] ^= 1;
        assert_eq!(service.verify(&quote), Err(SgxError::QuoteRejected));
    }

    #[test]
    fn tampered_report_data_is_rejected() {
        let service = AttestationService::from_seed(1);
        let enclave = provisioned_enclave(&service, b"proxy-v1");
        let mut quote = enclave.quote(b"real-key").unwrap();
        quote.report_data = b"evil-key".to_vec();
        assert_eq!(service.verify(&quote), Err(SgxError::QuoteRejected));
    }

    #[test]
    fn wrong_code_fails_expectation() {
        let service = AttestationService::from_seed(1);
        let good = provisioned_enclave(&service, b"proxy-v1");
        let evil = provisioned_enclave(&service, b"proxy-evil");
        let quote = evil.quote(b"rd").unwrap();
        assert_eq!(
            service.verify_expecting(&quote, good.measurement()),
            Err(SgxError::MeasurementMismatch)
        );
    }

    #[test]
    fn unprovisioned_platform_cannot_quote() {
        let enclave = EnclaveBuilder::new("u").with_code(b"c").build(());
        assert_eq!(enclave.quote(b"rd").unwrap_err(), SgxError::QuoteRejected);
    }

    #[test]
    fn different_service_rejects_foreign_quotes() {
        let service_a = AttestationService::from_seed(1);
        let service_b = AttestationService::from_seed(2);
        let enclave = provisioned_enclave(&service_a, b"c");
        let quote = enclave.quote(b"rd").unwrap();
        assert_eq!(service_b.verify(&quote), Err(SgxError::QuoteRejected));
    }

    #[test]
    fn quote_roundtrips_encoding() {
        let service = AttestationService::from_seed(3);
        let enclave = provisioned_enclave(&service, b"c");
        let quote = enclave.quote(b"some report data").unwrap();
        let decoded = Quote::decode(&quote.encode()).unwrap();
        assert_eq!(decoded, quote);
        assert!(service.verify(&decoded).is_ok());
    }

    #[test]
    fn truncated_quote_rejected() {
        assert_eq!(Quote::decode(&[0u8; 10]), Err(SgxError::QuoteRejected));
    }
}
