//! Enclave measurement (MRENCLAVE analogue).
//!
//! Real SGX extends a running hash as each page is added to the enclave
//! before initialization; the measurement then identifies exactly the code
//! and initial data that were loaded. We reproduce that: a measurement is
//! the SHA-256 over (offset, content-hash) pairs of the added regions.

use std::fmt;
use xsearch_crypto::sha256::Sha256;

/// A 256-bit enclave measurement.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Measurement(pub [u8; 32]);

impl fmt::Debug for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Measurement({})", self.short_hex())
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", xsearch_crypto::hex::encode(&self.0))
    }
}

impl Measurement {
    /// First 8 hex digits, for logs.
    #[must_use]
    pub fn short_hex(&self) -> String {
        xsearch_crypto::hex::encode(&self.0[..4])
    }
}

/// Incremental measurement builder mirroring the pre-initialization page
/// loading phase.
#[derive(Debug, Clone)]
pub struct MeasurementBuilder {
    hasher: Sha256,
    offset: u64,
}

impl Default for MeasurementBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MeasurementBuilder {
    /// Starts an empty measurement.
    #[must_use]
    pub fn new() -> Self {
        let mut hasher = Sha256::new();
        hasher.update(b"xsearch-sgx-sim-mrenclave-v1");
        MeasurementBuilder { hasher, offset: 0 }
    }

    /// Extends the measurement with a loaded region (code or initial data).
    pub fn add_region(&mut self, content: &[u8]) {
        self.hasher.update(&self.offset.to_le_bytes());
        self.hasher.update(&(content.len() as u64).to_le_bytes());
        self.hasher.update(content);
        self.offset += content.len() as u64;
    }

    /// Finalizes at initialization time (EINIT).
    #[must_use]
    pub fn finalize(self) -> Measurement {
        Measurement(self.hasher.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn measure(regions: &[&[u8]]) -> Measurement {
        let mut b = MeasurementBuilder::new();
        for r in regions {
            b.add_region(r);
        }
        b.finalize()
    }

    #[test]
    fn same_regions_same_measurement() {
        assert_eq!(measure(&[b"code", b"data"]), measure(&[b"code", b"data"]));
    }

    #[test]
    fn different_code_different_measurement() {
        assert_ne!(measure(&[b"code-v1"]), measure(&[b"code-v2"]));
    }

    #[test]
    fn region_boundaries_matter() {
        // Loading "ab" then "c" differs from "a" then "bc" (offsets and
        // lengths are measured, as in real MRENCLAVE).
        assert_ne!(measure(&[b"ab", b"c"]), measure(&[b"a", b"bc"]));
    }

    #[test]
    fn order_matters() {
        assert_ne!(
            measure(&[b"first", b"second"]),
            measure(&[b"second", b"first"])
        );
    }

    #[test]
    fn display_is_full_hex() {
        let m = measure(&[b"x"]);
        assert_eq!(m.to_string().len(), 64);
        assert_eq!(m.short_hex().len(), 8);
    }

    proptest! {
        #[test]
        fn measurement_is_deterministic(regions in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..8)) {
            let r1: Vec<&[u8]> = regions.iter().map(Vec::as_slice).collect();
            prop_assert_eq!(measure(&r1), measure(&r1));
        }
    }
}
