//! Ecall/ocall boundary accounting.
//!
//! The paper limits its enclave interface to two ecalls (`init`,
//! `request`) and four ocalls (`sock_connect`, `send`, `recv`, `close`)
//! precisely because transitions are expensive (§5.3.3). This module
//! counts every crossing and accumulates the modeled transition cost so
//! benchmarks can report both real and accounted overhead.

use crate::cost::CostModel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared counters for one enclave's boundary.
#[derive(Debug, Default)]
pub struct BoundaryStats {
    ecalls: AtomicU64,
    ocalls: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    overhead_ns: AtomicU64,
}

impl BoundaryStats {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Number of ecalls so far.
    #[must_use]
    pub fn ecalls(&self) -> u64 {
        self.ecalls.load(Ordering::Relaxed)
    }

    /// Number of ocalls so far.
    #[must_use]
    pub fn ocalls(&self) -> u64 {
        self.ocalls.load(Ordering::Relaxed)
    }

    /// Bytes copied into the enclave.
    #[must_use]
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    /// Bytes copied out of the enclave.
    #[must_use]
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// Total modeled transition overhead.
    #[must_use]
    pub fn modeled_overhead(&self) -> Duration {
        Duration::from_nanos(self.overhead_ns.load(Ordering::Relaxed))
    }

    pub(crate) fn record_ecall(&self, bytes_in: usize, bytes_out: usize, cost: &CostModel) {
        self.ecalls.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes_in as u64, Ordering::Relaxed);
        self.bytes_out
            .fetch_add(bytes_out as u64, Ordering::Relaxed);
        // An ecall is two crossings: enter with input, exit with output.
        let d = cost.crossing(bytes_in) + cost.crossing(bytes_out);
        self.overhead_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_ocall(&self, bytes_out: usize, bytes_in: usize, cost: &CostModel) {
        self.ocalls.fetch_add(1, Ordering::Relaxed);
        self.bytes_out
            .fetch_add(bytes_out as u64, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes_in as u64, Ordering::Relaxed);
        let d = cost.crossing(bytes_out) + cost.crossing(bytes_in);
        self.overhead_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Handle given to in-enclave code for making ocalls.
///
/// Mirrors the paper's untrusted-services interface: the enclave calls out
/// for socket operations; each call is counted and costed.
#[derive(Debug, Clone)]
pub struct OcallPort {
    stats: Arc<BoundaryStats>,
    cost: CostModel,
}

impl OcallPort {
    /// Creates a port that records to `stats` with the given cost model.
    #[must_use]
    pub fn new(stats: Arc<BoundaryStats>, cost: CostModel) -> Self {
        OcallPort { stats, cost }
    }

    /// Performs an ocall: `request` bytes leave the enclave, the untrusted
    /// function `f` runs outside, and its response bytes re-enter.
    pub fn ocall<F>(&self, request: &[u8], f: F) -> Vec<u8>
    where
        F: FnOnce(&[u8]) -> Vec<u8>,
    {
        let response = f(request);
        self.stats
            .record_ocall(request.len(), response.len(), &self.cost);
        response
    }

    /// Like [`OcallPort::ocall`], but the untrusted function returns a
    /// typed value plus the exact number of response bytes it stands for.
    /// This keeps the byte accounting honest on paths where serializing
    /// the response only to measure it would be pure overhead (the
    /// enclave's `recv` ocall hands back a typed result list; the bytes
    /// that *would* cross the boundary are still charged).
    pub fn ocall_sized<F, R>(&self, request: &[u8], f: F) -> R
    where
        F: FnOnce(&[u8]) -> (R, usize),
    {
        let (response, response_len) = f(request);
        self.stats
            .record_ocall(request.len(), response_len, &self.cost);
        response
    }

    /// The shared counters.
    #[must_use]
    pub fn stats(&self) -> &Arc<BoundaryStats> {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecall_recording_counts_both_directions() {
        let stats = BoundaryStats::new();
        let cost = CostModel::default();
        stats.record_ecall(100, 50, &cost);
        assert_eq!(stats.ecalls(), 1);
        assert_eq!(stats.bytes_in(), 100);
        assert_eq!(stats.bytes_out(), 50);
        assert_eq!(
            stats.modeled_overhead(),
            cost.crossing(100) + cost.crossing(50)
        );
    }

    #[test]
    fn ocall_port_runs_untrusted_function() {
        let stats = BoundaryStats::new();
        let port = OcallPort::new(stats.clone(), CostModel::default());
        let reply = port.ocall(b"dns lookup", |req| {
            assert_eq!(req, b"dns lookup");
            b"1.2.3.4".to_vec()
        });
        assert_eq!(reply, b"1.2.3.4");
        assert_eq!(stats.ocalls(), 1);
        assert_eq!(stats.bytes_out(), 10);
        assert_eq!(stats.bytes_in(), 7);
    }

    #[test]
    fn ocall_sized_charges_reported_bytes() {
        let stats = BoundaryStats::new();
        let port = OcallPort::new(stats.clone(), CostModel::default());
        let value = port.ocall_sized(b"recv", |req| {
            assert_eq!(req, b"recv");
            (vec![1u32, 2, 3], 4096)
        });
        assert_eq!(value, vec![1, 2, 3]);
        assert_eq!(stats.ocalls(), 1);
        assert_eq!(stats.bytes_out(), 4);
        assert_eq!(stats.bytes_in(), 4096, "reported size, not Vec length");
    }

    #[test]
    fn overhead_accumulates_across_calls() {
        let stats = BoundaryStats::new();
        let cost = CostModel::default();
        stats.record_ecall(0, 0, &cost);
        stats.record_ecall(0, 0, &cost);
        assert_eq!(stats.modeled_overhead(), cost.crossing(0) * 4);
    }
}
