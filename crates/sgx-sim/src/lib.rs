//! A software model of Intel SGX for the X-Search reproduction.
//!
//! No SGX hardware is available in this environment, so the enclave
//! behaviour the paper's systems analysis depends on is modeled explicitly
//! (DESIGN.md documents the substitution):
//!
//! * [`epc`] — the Enclave Page Cache: ~90 MiB of usable protected memory;
//!   allocations beyond the limit trigger costed paging, the effect Fig 6
//!   measures against;
//! * [`measurement`] — MRENCLAVE-style measurement hashes over the
//!   enclave's initial pages;
//! * [`enclave`] — lifecycle (build → initialize → ecall → destroy) with a
//!   typed in-enclave application state;
//! * [`boundary`] — ecall/ocall transition counting and cost accounting
//!   (the paper's §5.3.3 identifies transitions as the main bottleneck);
//! * [`attestation`] — quote generation and a simulated attestation
//!   service (EPID group signatures replaced by MACs under a provisioning
//!   key, preserving the protocol shape);
//! * [`sealed`] — sealing keyed by the enclave measurement.
//!
//! # Example
//!
//! ```
//! use xsearch_sgx_sim::enclave::EnclaveBuilder;
//!
//! let mut enclave = EnclaveBuilder::new("demo")
//!     .with_code(b"demo enclave logic v1")
//!     .build(0u64); // app state: a counter
//! let out = enclave.ecall("bump", &[5], |state, input| {
//!     *state += u64::from(input[0]);
//!     *state
//! }).unwrap();
//! assert_eq!(out, 5);
//! assert_eq!(enclave.boundary().ecalls(), 1);
//!
//! // Typed entries whose output carries heap data report the real
//! // serialized size, so the boundary counters stay honest:
//! let report = enclave.ecall_counted("report", &[], |state, _| {
//!     let line = format!("count={state}");
//!     let bytes = line.len();
//!     (line, bytes)
//! }).unwrap();
//! assert_eq!(enclave.boundary().bytes_out(), report.len() as u64 + 8);
//! ```

#![deny(missing_docs)]

pub mod attestation;
pub mod boundary;
pub mod cost;
pub mod enclave;
pub mod epc;
pub mod error;
pub mod measurement;
pub mod sealed;

pub use enclave::{Enclave, EnclaveBuilder};
pub use error::SgxError;
pub use measurement::Measurement;
