//! Sealed storage: encryption keyed by platform and measurement.
//!
//! Real SGX derives sealing keys from a fused platform secret and the
//! enclave identity; data sealed by one enclave version on one platform
//! only opens there. The X-Search proxy could seal its query history
//! across restarts; the model exists so that behaviour (and its failure
//! modes) can be exercised.

use crate::error::SgxError;
use crate::measurement::Measurement;
use rand::RngCore;
use xsearch_crypto::aead::ChaCha20Poly1305;
use xsearch_crypto::hkdf;

/// A platform holding a sealing master secret (fuse-derived in real SGX).
#[derive(Clone)]
pub struct SealingPlatform {
    master: [u8; 32],
}

impl std::fmt::Debug for SealingPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SealingPlatform")
            .field("master", &"<secret>")
            .finish()
    }
}

/// A sealed blob: nonce, monotonic version, and AEAD ciphertext.
///
/// The version rides in the clear (untrusted storage must be able to
/// keep only the newest blob) but is authenticated: it is bound into the
/// AEAD's associated data, so tampering with it fails the open. Blobs
/// sealed through the legacy [`SealingPlatform::seal`] carry version 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    nonce: [u8; 12],
    version: u64,
    ciphertext: Vec<u8>,
}

impl SealedBlob {
    /// The monotonic version bound into this blob.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Serializes the blob for untrusted storage or migration transport
    /// (`nonce ‖ version ‖ ciphertext`; nothing here is secret).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + 8 + self.ciphertext.len());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Parses a serialized blob.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::UnsealFailed`] for structurally invalid bytes.
    /// (Authenticity is only established by a later unseal: the encoding
    /// itself is untrusted.)
    pub fn decode(bytes: &[u8]) -> Result<Self, SgxError> {
        if bytes.len() < 12 + 8 {
            return Err(SgxError::UnsealFailed);
        }
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&bytes[..12]);
        let version = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        Ok(SealedBlob {
            nonce,
            version,
            ciphertext: bytes[20..].to_vec(),
        })
    }
}

/// Associated data binding a sealed blob to (measurement, version).
fn sealing_aad(measurement: &Measurement, version: u64) -> [u8; 40] {
    let mut aad = [0u8; 40];
    aad[..32].copy_from_slice(&measurement.0);
    aad[32..].copy_from_slice(&version.to_le_bytes());
    aad
}

impl SealingPlatform {
    /// A platform with a random master secret.
    pub fn new<R: RngCore>(rng: &mut R) -> Self {
        let mut master = [0u8; 32];
        rng.fill_bytes(&mut master);
        SealingPlatform { master }
    }

    /// Deterministic platform for reproducible tests.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut buf = [0u8; 32];
        buf[..8].copy_from_slice(&seed.to_le_bytes());
        SealingPlatform {
            master: xsearch_crypto::sha256::Sha256::digest(&buf),
        }
    }

    fn key_for(&self, measurement: &Measurement) -> [u8; 32] {
        hkdf::derive(&measurement.0, &self.master, b"xsearch-sealing-v1", 32)
            .try_into()
            .expect("exactly 32 bytes requested")
    }

    /// Seals `plaintext` to (this platform, `measurement`) at version 0
    /// (no rollback protection; see [`SealingPlatform::seal_versioned`]).
    pub fn seal<R: RngCore>(
        &self,
        measurement: &Measurement,
        plaintext: &[u8],
        rng: &mut R,
    ) -> SealedBlob {
        self.seal_versioned(measurement, 0, plaintext, rng)
    }

    /// Seals `plaintext` to (this platform, `measurement`) and binds the
    /// caller-supplied monotonic `version` into the AEAD's associated
    /// data. In real SGX the version would come from a hardware monotonic
    /// counter; callers are expected to hand out strictly increasing
    /// versions and check them on unseal
    /// ([`SealingPlatform::unseal_monotonic`]).
    pub fn seal_versioned<R: RngCore>(
        &self,
        measurement: &Measurement,
        version: u64,
        plaintext: &[u8],
        rng: &mut R,
    ) -> SealedBlob {
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut nonce);
        let aead = ChaCha20Poly1305::new(&self.key_for(measurement));
        SealedBlob {
            nonce,
            version,
            ciphertext: aead.seal(&nonce, &sealing_aad(measurement, version), plaintext),
        }
    }

    /// Opens a blob sealed by the same platform and measurement.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::UnsealFailed`] for a different platform, a
    /// different enclave measurement, or tampered data (including a
    /// tampered version field).
    pub fn unseal(
        &self,
        measurement: &Measurement,
        blob: &SealedBlob,
    ) -> Result<Vec<u8>, SgxError> {
        let aead = ChaCha20Poly1305::new(&self.key_for(measurement));
        aead.open(
            &blob.nonce,
            &sealing_aad(measurement, blob.version),
            &blob.ciphertext,
        )
        .map_err(|_| SgxError::UnsealFailed)
    }

    /// Opens a blob only if its authenticated version is at least
    /// `floor` — the anti-rollback check: an operator re-offering an old
    /// (authentic) snapshot is detected, not silently accepted.
    ///
    /// # Errors
    ///
    /// [`SgxError::RolledBack`] when `blob.version() < floor`;
    /// [`SgxError::UnsealFailed`] as for [`SealingPlatform::unseal`].
    pub fn unseal_monotonic(
        &self,
        measurement: &Measurement,
        blob: &SealedBlob,
        floor: u64,
    ) -> Result<Vec<u8>, SgxError> {
        if blob.version < floor {
            return Err(SgxError::RolledBack {
                sealed: blob.version,
                floor,
            });
        }
        self.unseal(measurement, blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn m(tag: &[u8]) -> Measurement {
        let mut b = crate::measurement::MeasurementBuilder::new();
        b.add_region(tag);
        b.finalize()
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let platform = SealingPlatform::from_seed(1);
        let mut rng = StdRng::seed_from_u64(2);
        let blob = platform.seal(&m(b"proxy"), b"query history", &mut rng);
        assert_eq!(
            platform.unseal(&m(b"proxy"), &blob).unwrap(),
            b"query history"
        );
    }

    #[test]
    fn different_measurement_cannot_unseal() {
        let platform = SealingPlatform::from_seed(1);
        let mut rng = StdRng::seed_from_u64(2);
        let blob = platform.seal(&m(b"proxy-v1"), b"secret", &mut rng);
        assert_eq!(
            platform.unseal(&m(b"proxy-v2"), &blob),
            Err(SgxError::UnsealFailed)
        );
    }

    #[test]
    fn different_platform_cannot_unseal() {
        let p1 = SealingPlatform::from_seed(1);
        let p2 = SealingPlatform::from_seed(2);
        let mut rng = StdRng::seed_from_u64(3);
        let blob = p1.seal(&m(b"proxy"), b"secret", &mut rng);
        assert_eq!(p2.unseal(&m(b"proxy"), &blob), Err(SgxError::UnsealFailed));
    }

    #[test]
    fn tampered_blob_fails() {
        let platform = SealingPlatform::from_seed(1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut blob = platform.seal(&m(b"proxy"), b"secret", &mut rng);
        blob.ciphertext[0] ^= 1;
        assert_eq!(
            platform.unseal(&m(b"proxy"), &blob),
            Err(SgxError::UnsealFailed)
        );
    }

    #[test]
    fn sealing_is_randomized() {
        let platform = SealingPlatform::from_seed(1);
        let mut rng = StdRng::seed_from_u64(2);
        let a = platform.seal(&m(b"proxy"), b"same", &mut rng);
        let b = platform.seal(&m(b"proxy"), b"same", &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn versioned_seal_roundtrips_and_reports_version() {
        let platform = SealingPlatform::from_seed(1);
        let mut rng = StdRng::seed_from_u64(2);
        let blob = platform.seal_versioned(&m(b"proxy"), 7, b"history", &mut rng);
        assert_eq!(blob.version(), 7);
        assert_eq!(platform.unseal(&m(b"proxy"), &blob).unwrap(), b"history");
        assert_eq!(
            platform.unseal_monotonic(&m(b"proxy"), &blob, 7).unwrap(),
            b"history"
        );
    }

    #[test]
    fn stale_version_is_rejected_below_floor() {
        let platform = SealingPlatform::from_seed(1);
        let mut rng = StdRng::seed_from_u64(2);
        let blob = platform.seal_versioned(&m(b"proxy"), 3, b"old window", &mut rng);
        assert_eq!(
            platform.unseal_monotonic(&m(b"proxy"), &blob, 4),
            Err(SgxError::RolledBack {
                sealed: 3,
                floor: 4
            })
        );
    }

    #[test]
    fn tampered_version_fails_authentication() {
        let platform = SealingPlatform::from_seed(1);
        let mut rng = StdRng::seed_from_u64(2);
        let blob = platform.seal_versioned(&m(b"proxy"), 3, b"window", &mut rng);
        // An operator rewriting the cleartext version field (to sneak a
        // stale blob past the floor) must break the AEAD.
        let mut bytes = blob.encode();
        bytes[12..20].copy_from_slice(&9u64.to_le_bytes());
        let forged = SealedBlob::decode(&bytes).unwrap();
        assert_eq!(forged.version(), 9);
        assert_eq!(
            platform.unseal_monotonic(&m(b"proxy"), &forged, 4),
            Err(SgxError::UnsealFailed)
        );
    }

    #[test]
    fn blob_encoding_roundtrips() {
        let platform = SealingPlatform::from_seed(1);
        let mut rng = StdRng::seed_from_u64(2);
        let blob = platform.seal_versioned(&m(b"proxy"), 42, b"payload", &mut rng);
        let decoded = SealedBlob::decode(&blob.encode()).unwrap();
        assert_eq!(decoded, blob);
        assert_eq!(platform.unseal(&m(b"proxy"), &decoded).unwrap(), b"payload");
        assert_eq!(SealedBlob::decode(&[0u8; 5]), Err(SgxError::UnsealFailed));
    }
}
