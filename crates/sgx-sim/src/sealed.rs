//! Sealed storage: encryption keyed by platform and measurement.
//!
//! Real SGX derives sealing keys from a fused platform secret and the
//! enclave identity; data sealed by one enclave version on one platform
//! only opens there. The X-Search proxy could seal its query history
//! across restarts; the model exists so that behaviour (and its failure
//! modes) can be exercised.

use crate::error::SgxError;
use crate::measurement::Measurement;
use rand::RngCore;
use xsearch_crypto::aead::ChaCha20Poly1305;
use xsearch_crypto::hkdf;

/// A platform holding a sealing master secret (fuse-derived in real SGX).
#[derive(Clone)]
pub struct SealingPlatform {
    master: [u8; 32],
}

impl std::fmt::Debug for SealingPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SealingPlatform")
            .field("master", &"<secret>")
            .finish()
    }
}

/// A sealed blob: nonce plus AEAD ciphertext.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    nonce: [u8; 12],
    ciphertext: Vec<u8>,
}

impl SealingPlatform {
    /// A platform with a random master secret.
    pub fn new<R: RngCore>(rng: &mut R) -> Self {
        let mut master = [0u8; 32];
        rng.fill_bytes(&mut master);
        SealingPlatform { master }
    }

    /// Deterministic platform for reproducible tests.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut buf = [0u8; 32];
        buf[..8].copy_from_slice(&seed.to_le_bytes());
        SealingPlatform {
            master: xsearch_crypto::sha256::Sha256::digest(&buf),
        }
    }

    fn key_for(&self, measurement: &Measurement) -> [u8; 32] {
        hkdf::derive(&measurement.0, &self.master, b"xsearch-sealing-v1", 32)
            .try_into()
            .expect("exactly 32 bytes requested")
    }

    /// Seals `plaintext` to (this platform, `measurement`).
    pub fn seal<R: RngCore>(
        &self,
        measurement: &Measurement,
        plaintext: &[u8],
        rng: &mut R,
    ) -> SealedBlob {
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut nonce);
        let aead = ChaCha20Poly1305::new(&self.key_for(measurement));
        SealedBlob {
            nonce,
            ciphertext: aead.seal(&nonce, &measurement.0, plaintext),
        }
    }

    /// Opens a blob sealed by the same platform and measurement.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::UnsealFailed`] for a different platform, a
    /// different enclave measurement, or tampered data.
    pub fn unseal(
        &self,
        measurement: &Measurement,
        blob: &SealedBlob,
    ) -> Result<Vec<u8>, SgxError> {
        let aead = ChaCha20Poly1305::new(&self.key_for(measurement));
        aead.open(&blob.nonce, &measurement.0, &blob.ciphertext)
            .map_err(|_| SgxError::UnsealFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn m(tag: &[u8]) -> Measurement {
        let mut b = crate::measurement::MeasurementBuilder::new();
        b.add_region(tag);
        b.finalize()
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let platform = SealingPlatform::from_seed(1);
        let mut rng = StdRng::seed_from_u64(2);
        let blob = platform.seal(&m(b"proxy"), b"query history", &mut rng);
        assert_eq!(
            platform.unseal(&m(b"proxy"), &blob).unwrap(),
            b"query history"
        );
    }

    #[test]
    fn different_measurement_cannot_unseal() {
        let platform = SealingPlatform::from_seed(1);
        let mut rng = StdRng::seed_from_u64(2);
        let blob = platform.seal(&m(b"proxy-v1"), b"secret", &mut rng);
        assert_eq!(
            platform.unseal(&m(b"proxy-v2"), &blob),
            Err(SgxError::UnsealFailed)
        );
    }

    #[test]
    fn different_platform_cannot_unseal() {
        let p1 = SealingPlatform::from_seed(1);
        let p2 = SealingPlatform::from_seed(2);
        let mut rng = StdRng::seed_from_u64(3);
        let blob = p1.seal(&m(b"proxy"), b"secret", &mut rng);
        assert_eq!(p2.unseal(&m(b"proxy"), &blob), Err(SgxError::UnsealFailed));
    }

    #[test]
    fn tampered_blob_fails() {
        let platform = SealingPlatform::from_seed(1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut blob = platform.seal(&m(b"proxy"), b"secret", &mut rng);
        blob.ciphertext[0] ^= 1;
        assert_eq!(
            platform.unseal(&m(b"proxy"), &blob),
            Err(SgxError::UnsealFailed)
        );
    }

    #[test]
    fn sealing_is_randomized() {
        let platform = SealingPlatform::from_seed(1);
        let mut rng = StdRng::seed_from_u64(2);
        let a = platform.seal(&m(b"proxy"), b"same", &mut rng);
        let b = platform.seal(&m(b"proxy"), b"same", &mut rng);
        assert_ne!(a, b);
    }
}
