//! Enclave lifecycle: build → measure → initialize → ecall → destroy.
//!
//! An [`Enclave<T>`] hosts a typed application state `T` that is only
//! reachable through [`Enclave::ecall`]-style entry points, mirroring how
//! enclave memory is unreachable from untrusted code. Every entry records
//! a boundary crossing with its modeled cost.

use crate::attestation::Quote;
use crate::boundary::{BoundaryStats, OcallPort};
use crate::cost::CostModel;
use crate::epc::{EpcGauge, USABLE_EPC_BYTES};
use crate::error::SgxError;
use crate::measurement::{Measurement, MeasurementBuilder};
use std::sync::Arc;
use xsearch_crypto::hmac::HmacSha256;

/// Builder for an enclave: load regions, configure, then `build`.
#[derive(Debug)]
pub struct EnclaveBuilder {
    name: String,
    measurement: MeasurementBuilder,
    cost: CostModel,
    epc_limit: usize,
    provisioning_key: Option<[u8; 32]>,
}

impl EnclaveBuilder {
    /// Starts building an enclave named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        EnclaveBuilder {
            name: name.into(),
            measurement: MeasurementBuilder::new(),
            cost: CostModel::default(),
            epc_limit: USABLE_EPC_BYTES,
            provisioning_key: None,
        }
    }

    /// Loads a code/data region, extending the measurement (like adding
    /// pages before EINIT).
    #[must_use]
    pub fn with_code(mut self, region: &[u8]) -> Self {
        self.measurement.add_region(region);
        self
    }

    /// Overrides the cost model.
    #[must_use]
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Overrides the usable-EPC limit (ablations and tests).
    #[must_use]
    pub fn with_epc_limit(mut self, bytes: usize) -> Self {
        self.epc_limit = bytes;
        self
    }

    /// Provisions the platform's quoting key (obtained from the
    /// attestation service); required for [`Enclave::quote`].
    #[must_use]
    pub fn with_provisioning_key(mut self, key: [u8; 32]) -> Self {
        self.provisioning_key = Some(key);
        self
    }

    /// Initializes the enclave with its application state (EINIT: the
    /// measurement is final from here on).
    #[must_use]
    pub fn build<T>(self, state: T) -> Enclave<T> {
        self.build_with(|_, _| state)
    }

    /// Like [`EnclaveBuilder::build`], but the state constructor receives
    /// the enclave's EPC gauge and cost model — for application states
    /// whose data structures charge their memory to the enclave (the
    /// X-Search history table does).
    #[must_use]
    pub fn build_with<T>(
        self,
        make_state: impl FnOnce(&Arc<EpcGauge>, &CostModel) -> T,
    ) -> Enclave<T> {
        let epc = EpcGauge::with_limit(self.epc_limit);
        let state = make_state(&epc, &self.cost);
        Enclave {
            name: self.name,
            measurement: self.measurement.finalize(),
            state,
            boundary: BoundaryStats::new(),
            epc,
            cost: self.cost,
            provisioning_key: self.provisioning_key,
        }
    }
}

/// An initialized enclave hosting application state `T`.
#[derive(Debug)]
pub struct Enclave<T> {
    name: String,
    measurement: Measurement,
    state: T,
    boundary: Arc<BoundaryStats>,
    epc: Arc<EpcGauge>,
    cost: CostModel,
    provisioning_key: Option<[u8; 32]>,
}

impl<T> Enclave<T> {
    /// The enclave's label.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The enclave measurement (identifies the loaded code).
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Boundary-crossing counters.
    #[must_use]
    pub fn boundary(&self) -> Arc<BoundaryStats> {
        self.boundary.clone()
    }

    /// The enclave's EPC gauge (shared with in-enclave data structures).
    #[must_use]
    pub fn epc(&self) -> Arc<EpcGauge> {
        self.epc.clone()
    }

    /// The configured cost model.
    #[must_use]
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Enters the enclave with a typed result.
    ///
    /// **Byte accounting is approximate on this path**: the output copy
    /// is charged as `size_of::<R>()` — the size of the out-struct the
    /// SGX edge routine would copy — which under-counts any heap data
    /// `R` owns. Callers that know the real serialized size of their
    /// output must use [`Enclave::ecall_counted`]; callers moving raw
    /// bytes must use [`Enclave::ecall_bytes`] / [`Enclave::ecall_shared`]
    /// (both exact). This typed path remains for control-plane entries
    /// where the out-struct *is* the whole payload.
    ///
    /// # Errors
    ///
    /// This model's ecalls always succeed; the `Result` mirrors the SGX
    /// SDK's fallible `sgx_ecall` signature so call sites stay realistic.
    pub fn ecall<R>(
        &mut self,
        _name: &str,
        input: &[u8],
        f: impl FnOnce(&mut T, &[u8]) -> R,
    ) -> Result<R, SgxError> {
        let out = f(&mut self.state, input);
        self.boundary
            .record_ecall(input.len(), std::mem::size_of::<R>(), &self.cost);
        Ok(out)
    }

    /// Like [`Enclave::ecall`], but the entry point reports the real
    /// serialized size of its output alongside the typed value, so the
    /// boundary counters charge what would actually cross the boundary
    /// instead of the `size_of::<R>()` approximation.
    ///
    /// # Errors
    ///
    /// Always `Ok` in this model; see [`Enclave::ecall`].
    pub fn ecall_counted<R>(
        &mut self,
        _name: &str,
        input: &[u8],
        f: impl FnOnce(&mut T, &[u8]) -> (R, usize),
    ) -> Result<R, SgxError> {
        let (out, out_bytes) = f(&mut self.state, input);
        self.boundary
            .record_ecall(input.len(), out_bytes, &self.cost);
        Ok(out)
    }

    /// Enters the enclave on the byte-oriented data path: input bytes are
    /// copied in, the entry point may make ocalls through the provided
    /// [`OcallPort`], and the returned bytes are copied out. This is the
    /// shape of the paper's `request(sock, buff, len)` ecall.
    ///
    /// # Errors
    ///
    /// Always `Ok` in this model; see [`Enclave::ecall`].
    pub fn ecall_bytes(
        &mut self,
        _name: &str,
        input: &[u8],
        f: impl FnOnce(&mut T, &[u8], &OcallPort) -> Vec<u8>,
    ) -> Result<Vec<u8>, SgxError> {
        let port = OcallPort::new(self.boundary.clone(), self.cost);
        let out = f(&mut self.state, input, &port);
        self.boundary
            .record_ecall(input.len(), out.len(), &self.cost);
        Ok(out)
    }

    /// Concurrent enclave entry (real SGX provides multiple TCS slots so
    /// several threads can be inside an enclave at once). The application
    /// state is accessed through a shared reference and must manage its
    /// own interior mutability — exactly like the paper's proxy, whose
    /// query table "is kept in memory and shared among all threads".
    ///
    /// # Errors
    ///
    /// Always `Ok` in this model; see [`Enclave::ecall`].
    pub fn ecall_shared(
        &self,
        _name: &str,
        input: &[u8],
        f: impl FnOnce(&T, &[u8], &OcallPort) -> Vec<u8>,
    ) -> Result<Vec<u8>, SgxError> {
        let port = OcallPort::new(self.boundary.clone(), self.cost);
        let out = f(&self.state, input, &port);
        self.boundary
            .record_ecall(input.len(), out.len(), &self.cost);
        Ok(out)
    }

    /// Produces an attestation quote binding `report_data` (typically a
    /// hash of a channel public key) to this enclave's measurement.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::QuoteRejected`] when the platform was never
    /// provisioned with a quoting key.
    pub fn quote(&self, report_data: &[u8]) -> Result<Quote, SgxError> {
        let key = self.provisioning_key.ok_or(SgxError::QuoteRejected)?;
        let mut mac = HmacSha256::new(&key);
        mac.update(&self.measurement.0);
        mac.update(&(report_data.len() as u64).to_le_bytes());
        mac.update(report_data);
        Ok(Quote {
            measurement: self.measurement,
            report_data: report_data.to_vec(),
            mac: mac.finalize(),
        })
    }

    /// Tears the enclave down, dropping its protected state.
    pub fn destroy(self) {
        drop(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecall_mutates_protected_state() {
        let mut e = EnclaveBuilder::new("t")
            .with_code(b"code")
            .build(Vec::<u32>::new());
        e.ecall("push", &[1], |state, input| state.push(u32::from(input[0])))
            .unwrap();
        e.ecall("push", &[2], |state, input| state.push(u32::from(input[0])))
            .unwrap();
        let len = e.ecall("len", &[], |state, _| state.len()).unwrap();
        assert_eq!(len, 2);
        assert_eq!(e.boundary().ecalls(), 3);
    }

    #[test]
    fn ecall_counted_charges_reported_output_size() {
        let mut e = EnclaveBuilder::new("t")
            .with_code(b"code")
            .build(vec!["alpha".to_owned(), "beta".to_owned()]);
        // The typed result is a Vec header; the real payload is the
        // serialized strings — the caller knows and reports that size.
        let out = e
            .ecall_counted("snapshot", b"rq", |state, _| {
                let bytes: usize = state.iter().map(String::len).sum();
                (state.clone(), bytes)
            })
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(e.boundary().bytes_in(), 2);
        assert_eq!(e.boundary().bytes_out(), 9, "alpha + beta payload bytes");
    }

    #[test]
    fn ecall_bytes_counts_exact_sizes() {
        let mut e = EnclaveBuilder::new("t").with_code(b"code").build(());
        let out = e
            .ecall_bytes("echo", b"12345", |_, input, _| input.to_vec())
            .unwrap();
        assert_eq!(out, b"12345");
        assert_eq!(e.boundary().bytes_in(), 5);
        assert_eq!(e.boundary().bytes_out(), 5);
    }

    #[test]
    fn ocalls_from_inside_ecall_are_counted() {
        let mut e = EnclaveBuilder::new("t").with_code(b"code").build(());
        e.ecall_bytes("request", b"q", |_, _, port| {
            let dns = port.ocall(b"connect engine", |_| b"sock:1".to_vec());
            assert_eq!(dns, b"sock:1");
            port.ocall(b"send query", |_| Vec::new());
            port.ocall(b"recv results", |_| b"results".to_vec())
        })
        .unwrap();
        assert_eq!(e.boundary().ecalls(), 1);
        assert_eq!(e.boundary().ocalls(), 3);
    }

    #[test]
    fn same_code_same_measurement_different_code_different() {
        let a = EnclaveBuilder::new("a").with_code(b"v1").build(());
        let b = EnclaveBuilder::new("b").with_code(b"v1").build(());
        let c = EnclaveBuilder::new("c").with_code(b"v2").build(());
        assert_eq!(a.measurement(), b.measurement());
        assert_ne!(a.measurement(), c.measurement());
    }

    #[test]
    fn quote_requires_provisioning() {
        let e = EnclaveBuilder::new("t").with_code(b"code").build(());
        assert_eq!(e.quote(b"rd").unwrap_err(), SgxError::QuoteRejected);
    }

    #[test]
    fn epc_gauge_is_shared() {
        let e = EnclaveBuilder::new("t")
            .with_code(b"c")
            .with_epc_limit(1024)
            .build(());
        let gauge = e.epc();
        gauge.charge(100, &e.cost_model());
        assert_eq!(e.epc().used(), 100);
    }

    #[test]
    fn modeled_overhead_grows_with_traffic() {
        let mut e = EnclaveBuilder::new("t").with_code(b"c").build(());
        let before = e.boundary().modeled_overhead();
        e.ecall_bytes("x", &[0u8; 1024], |_, _, _| vec![0u8; 2048])
            .unwrap();
        assert!(e.boundary().modeled_overhead() > before);
    }
}
