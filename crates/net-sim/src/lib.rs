//! Network substrate for the X-Search reproduction.
//!
//! The paper's measurements involve three kinds of network behaviour:
//! WAN latency between client, proxies and search engine (Fig 7), relay
//! capacity limits (Tor's Fig 5 saturation), and plain HTTP framing (the
//! X-Search proxy speaks HTTP so stock clients work). This crate models
//! each one:
//!
//! * [`delay`] — latency distributions (constant, uniform, log-normal) with
//!   deterministic sampling;
//! * [`link`] — one-way/RTT delay sampling for a named link, *accounted*
//!   rather than slept, so end-to-end latency experiments run in
//!   microseconds of wall time;
//! * [`station`] — a worker-pool service station with a bounded queue,
//!   modelling capacity-limited relays;
//! * [`transport`] — in-process duplex byte pipes for wiring components;
//! * [`http`] — a minimal HTTP/1.1 request/response codec;
//! * [`fault`] — seeded, deterministic, replayable fault injection at
//!   the link and ecall boundaries (loss, spikes, stalls, gray
//!   failures, corruption, partitions, crash schedules).

#![deny(missing_docs)]

pub mod delay;
pub mod fault;
pub mod http;
pub mod link;
pub mod station;
pub mod transport;

pub use delay::DelayModel;
pub use fault::{EcallFault, FaultInjector, FaultPlan, FaultSpec, LinkFault};
pub use link::Link;
