//! Network substrate for the X-Search reproduction.
//!
//! The paper's measurements involve three kinds of network behaviour:
//! WAN latency between client, proxies and search engine (Fig 7), relay
//! capacity limits (Tor's Fig 5 saturation), and plain HTTP framing (the
//! X-Search proxy speaks HTTP so stock clients work). This crate models
//! each one:
//!
//! * [`delay`] — latency distributions (constant, uniform, log-normal) with
//!   deterministic sampling;
//! * [`link`] — one-way/RTT delay sampling for a named link, *accounted*
//!   rather than slept, so end-to-end latency experiments run in
//!   microseconds of wall time;
//! * [`station`] — a worker-pool service station with a bounded queue,
//!   modelling capacity-limited relays;
//! * [`transport`] — in-process duplex message pipes for wiring
//!   components;
//! * [`stream`] — simulated duplex *byte* streams with partial
//!   reads/writes, bounded buffers and backpressure;
//! * [`reactor`] — an epoll-style readiness poller over byte streams,
//!   deterministic under the modeled clock;
//! * [`frame`] — incremental length-prefixed framing (zero-copy payload
//!   hand-off, tolerant of arbitrary read boundaries);
//! * [`http`] — a minimal HTTP/1.1 request/response codec, with an
//!   incremental `decode_partial` for byte-stream fronts;
//! * [`fault`] — seeded, deterministic, replayable fault injection at
//!   the link, ecall, and socket boundaries (loss, spikes, stalls, gray
//!   failures, corruption, partitions, crash schedules, and
//!   per-connection socket afflictions: resets, torn writes, stream
//!   corruption, stuck and half-open peers).

#![deny(missing_docs)]

pub mod delay;
pub mod fault;
pub mod frame;
pub mod http;
pub mod link;
pub mod reactor;
pub mod station;
pub mod stream;
pub mod transport;

pub use delay::DelayModel;
pub use fault::{
    EcallFault, FaultInjector, FaultPlan, FaultSpec, LinkFault, SocketFault, SocketSpec,
};
pub use frame::{encode_frame_into, FrameDecoder, FrameEncoder, FrameError};
pub use link::Link;
pub use reactor::{Event, Interest, Reactor, Registration, Token};
pub use stream::{stream_pair, ByteStream, StreamError};
