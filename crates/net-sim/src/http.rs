//! A minimal HTTP/1.1 codec.
//!
//! The paper notes that X-Search "can be used with third-party clients
//! issuing regular HTTP requests, such as wget or curl" (§6.3, footnote 3);
//! the proxy therefore frames its client traffic as HTTP. This codec
//! supports exactly what the system needs: request line + headers + body
//! with `Content-Length` framing.

use std::collections::BTreeMap;
use std::fmt;

/// Ceiling on the request/status line + header section of a message.
///
/// Without a bound, a peer that sends headers forever (never the blank
/// line) makes every incremental parser buffer its bytes without limit —
/// a memory DoS on `http_front`. 16 KiB matches common server defaults
/// (nginx `large_client_header_buffers`, Apache `LimitRequestFieldSize`
/// aggregate) with room to spare for this codec's tiny routes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Errors from parsing HTTP messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The start line was malformed.
    BadStartLine,
    /// A header line was malformed.
    BadHeader,
    /// The blank line terminating the headers never arrived.
    UnterminatedHeaders,
    /// The head section exceeds [`MAX_HEAD_BYTES`] — a 431-style
    /// rejection (Request Header Fields Too Large), not a retryable
    /// truncation.
    HeadersTooLarge,
    /// `Content-Length` disagrees with the available body bytes.
    BadBody,
    /// The message is not valid UTF-8 where text is required.
    BadEncoding,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            HttpError::BadStartLine => "malformed start line",
            HttpError::BadHeader => "malformed header",
            HttpError::UnterminatedHeaders => "headers not terminated",
            HttpError::HeadersTooLarge => "header section exceeds the size ceiling",
            HttpError::BadBody => "body length mismatch",
            HttpError::BadEncoding => "invalid utf-8 in message head",
        };
        write!(f, "{msg}")
    }
}

impl std::error::Error for HttpError {}

/// Outcome of an incremental parse over a growing byte prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partial<T> {
    /// A complete message was parsed from `bytes[..consumed]`; bytes
    /// beyond `consumed` belong to the next pipelined message.
    Complete {
        /// The parsed message.
        value: T,
        /// How many input bytes the message occupied.
        consumed: usize,
    },
    /// The prefix is valid so far but incomplete: at least this many
    /// more bytes are needed (a lower bound — `1` while the header
    /// terminator has not arrived, exact once `Content-Length` is known).
    NeedMore(usize),
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method (GET, POST, ...). Uppercase by convention; not enforced.
    pub method: String,
    /// Request target, e.g. `/search?q=foo`.
    pub target: String,
    /// Headers with case-insensitive names (stored lowercase).
    pub headers: BTreeMap<String, String>,
    /// Message body.
    pub body: Vec<u8>,
}

impl Request {
    /// Builds a GET request for `target`.
    #[must_use]
    pub fn get(target: impl Into<String>) -> Self {
        Request {
            method: "GET".into(),
            target: target.into(),
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// Builds a POST with a body.
    #[must_use]
    pub fn post(target: impl Into<String>, body: Vec<u8>) -> Self {
        Request {
            method: "POST".into(),
            target: target.into(),
            headers: BTreeMap::new(),
            body,
        }
    }

    /// Sets a header (name lowercased), returning `self` for chaining.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers
            .insert(name.to_ascii_lowercase(), value.to_owned());
        self
    }

    /// Gets a header by case-insensitive name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Extracts the query parameter `key` from the target, fully
    /// percent-decoded (`/search?q=cheap+flights` → `q` = `cheap
    /// flights`; `%20` and `+` both decode to a space, and the parameter
    /// *name* is decoded before matching too).
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<String> {
        let (_, qs) = self.target.split_once('?')?;
        for pair in qs.split('&') {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            if percent_decode(k) == key {
                return Some(percent_decode(v));
            }
        }
        None
    }

    /// Serializes to wire bytes (adds `Content-Length`).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = format!("{} {} HTTP/1.1\r\n", self.method, self.target).into_bytes();
        encode_headers(&mut out, &self.headers, self.body.len());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses wire bytes — a one-shot wrapper over
    /// [`decode_partial`](Self::decode_partial) that treats the input as
    /// the whole message (and, absent `Content-Length`, the remainder as
    /// the body, as one-frame transports delivered it historically).
    ///
    /// # Errors
    ///
    /// Any [`HttpError`] variant, depending on what is malformed.
    pub fn decode(bytes: &[u8]) -> Result<Self, HttpError> {
        match Self::decode_partial(bytes)? {
            Partial::Complete {
                mut value,
                consumed,
            } => {
                if !value.headers.contains_key("content-length") {
                    value.body = bytes[consumed..].to_vec();
                }
                Ok(value)
            }
            Partial::NeedMore(_) => Err(if find_head_end(bytes).is_some() {
                HttpError::BadBody
            } else {
                HttpError::UnterminatedHeaders
            }),
        }
    }

    /// Incrementally parses a growing byte prefix, as delivered by a
    /// byte stream: returns [`Partial::NeedMore`] while the message is
    /// incomplete instead of misreporting truncation as malformation.
    ///
    /// Without a `Content-Length` header the body is empty (a stream
    /// never sees "end of input"); extra bytes past the message are left
    /// for the next pipelined request via `consumed`.
    ///
    /// # Errors
    ///
    /// Any [`HttpError`] variant for actually-malformed input.
    pub fn decode_partial(bytes: &[u8]) -> Result<Partial<Self>, HttpError> {
        let Some(head_end) = bounded_head_end(bytes)? else {
            return Ok(Partial::NeedMore(1));
        };
        let head = std::str::from_utf8(&bytes[..head_end]).map_err(|_| HttpError::BadEncoding)?;
        let mut lines = head.lines();
        let start = lines.next().ok_or(HttpError::BadStartLine)?;
        let mut parts = start.split(' ');
        let method = parts.next().ok_or(HttpError::BadStartLine)?.to_owned();
        let target = parts.next().ok_or(HttpError::BadStartLine)?.to_owned();
        let version = parts.next().ok_or(HttpError::BadStartLine)?;
        if !version.starts_with("HTTP/") || parts.next().is_some() || method.is_empty() {
            return Err(HttpError::BadStartLine);
        }
        let headers = parse_headers(lines)?;
        let body_len = content_length(&headers)?;
        let consumed = head_end + 4 + body_len;
        if bytes.len() < consumed {
            return Ok(Partial::NeedMore(consumed - bytes.len()));
        }
        Ok(Partial::Complete {
            value: Request {
                method,
                target,
                headers,
                body: bytes[head_end + 4..consumed].to_vec(),
            },
            consumed,
        })
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 404, ...).
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Headers (lowercase names).
    pub headers: BTreeMap<String, String>,
    /// Message body.
    pub body: Vec<u8>,
}

impl Response {
    /// A 200 response with a body.
    #[must_use]
    pub fn ok(body: Vec<u8>) -> Self {
        Response {
            status: 200,
            reason: "OK".into(),
            headers: BTreeMap::new(),
            body,
        }
    }

    /// A response with the given status and empty body.
    #[must_use]
    pub fn status(status: u16, reason: &str) -> Self {
        Response {
            status,
            reason: reason.to_owned(),
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// Sets a header (name lowercased).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers
            .insert(name.to_ascii_lowercase(), value.to_owned());
        self
    }

    /// Serializes to wire bytes (adds `Content-Length`).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).into_bytes();
        encode_headers(&mut out, &self.headers, self.body.len());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses wire bytes — a one-shot wrapper over
    /// [`decode_partial`](Self::decode_partial), with the same
    /// remainder-as-body fallback as [`Request::decode`].
    ///
    /// # Errors
    ///
    /// Any [`HttpError`] variant, depending on what is malformed.
    pub fn decode(bytes: &[u8]) -> Result<Self, HttpError> {
        match Self::decode_partial(bytes)? {
            Partial::Complete {
                mut value,
                consumed,
            } => {
                if !value.headers.contains_key("content-length") {
                    value.body = bytes[consumed..].to_vec();
                }
                Ok(value)
            }
            Partial::NeedMore(_) => Err(if find_head_end(bytes).is_some() {
                HttpError::BadBody
            } else {
                HttpError::UnterminatedHeaders
            }),
        }
    }

    /// Incrementally parses a growing byte prefix; see
    /// [`Request::decode_partial`] for the streaming contract.
    ///
    /// # Errors
    ///
    /// Any [`HttpError`] variant for actually-malformed input.
    pub fn decode_partial(bytes: &[u8]) -> Result<Partial<Self>, HttpError> {
        let Some(head_end) = bounded_head_end(bytes)? else {
            return Ok(Partial::NeedMore(1));
        };
        let head = std::str::from_utf8(&bytes[..head_end]).map_err(|_| HttpError::BadEncoding)?;
        let mut lines = head.lines();
        let start = lines.next().ok_or(HttpError::BadStartLine)?;
        let mut parts = start.splitn(3, ' ');
        let version = parts.next().ok_or(HttpError::BadStartLine)?;
        if !version.starts_with("HTTP/") {
            return Err(HttpError::BadStartLine);
        }
        let status: u16 = parts
            .next()
            .ok_or(HttpError::BadStartLine)?
            .parse()
            .map_err(|_| HttpError::BadStartLine)?;
        let reason = parts.next().unwrap_or("").to_owned();
        let headers = parse_headers(lines)?;
        let body_len = content_length(&headers)?;
        let consumed = head_end + 4 + body_len;
        if bytes.len() < consumed {
            return Ok(Partial::NeedMore(consumed - bytes.len()));
        }
        Ok(Partial::Complete {
            value: Response {
                status,
                reason,
                headers,
                body: bytes[head_end + 4..consumed].to_vec(),
            },
            consumed,
        })
    }
}

fn encode_headers(out: &mut Vec<u8>, headers: &BTreeMap<String, String>, body_len: usize) {
    for (k, v) in headers {
        if k != "content-length" {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
    }
    out.extend_from_slice(format!("content-length: {body_len}\r\n\r\n").as_bytes());
}

/// Offset of the `\r\n\r\n` header terminator, if it has arrived.
fn find_head_end(bytes: &[u8]) -> Option<usize> {
    let sep = b"\r\n\r\n";
    bytes.windows(sep.len()).position(|w| w == sep)
}

/// [`find_head_end`] with the [`MAX_HEAD_BYTES`] ceiling enforced: a
/// head that ends past the ceiling — or an unterminated prefix already
/// too long for any acceptable terminator to appear — is rejected
/// instead of buffered further.
fn bounded_head_end(bytes: &[u8]) -> Result<Option<usize>, HttpError> {
    match find_head_end(bytes) {
        Some(end) if end > MAX_HEAD_BYTES => Err(HttpError::HeadersTooLarge),
        Some(end) => Ok(Some(end)),
        // The terminator is 4 bytes and must *start* at or before the
        // ceiling; once the unterminated prefix is past ceiling + 4 no
        // future byte can produce an acceptable head.
        None if bytes.len() >= MAX_HEAD_BYTES + 4 => Err(HttpError::HeadersTooLarge),
        None => Ok(None),
    }
}

fn parse_headers<'a, I: Iterator<Item = &'a str>>(
    lines: I,
) -> Result<BTreeMap<String, String>, HttpError> {
    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadHeader);
        }
        headers.insert(name.to_ascii_lowercase(), value.trim().to_owned());
    }
    Ok(headers)
}

/// Declared body length; zero when no `Content-Length` header is
/// present (a stream cannot use end-of-input as a delimiter).
fn content_length(headers: &BTreeMap<String, String>) -> Result<usize, HttpError> {
    match headers.get("content-length") {
        Some(len) => len.parse().map_err(|_| HttpError::BadBody),
        None => Ok(0),
    }
}

/// Percent-decodes a URL query component (`+` → space, `%xx` → byte).
///
/// An escape is only an escape when **both** of the two following bytes
/// are ASCII hex digits; anything else (truncated `%4`, or `%+5` — which
/// a `u8::from_str_radix`-based parser would accept because the parser
/// tolerates a leading `+` sign) passes the `%` through literally and
/// keeps decoding from the next byte.
#[must_use]
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 3 <= bytes.len()
                && bytes[i + 1].is_ascii_hexdigit()
                && bytes[i + 2].is_ascii_hexdigit() =>
            {
                let hi = (bytes[i + 1] as char).to_digit(16).expect("checked hex");
                let lo = (bytes[i + 2] as char).to_digit(16).expect("checked hex");
                out.push((hi as u8) << 4 | lo as u8);
                i += 3;
                continue;
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encodes a string for use in a query component.
#[must_use]
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::post("/search", b"payload".to_vec()).with_header("Host", "proxy");
        let decoded = Request::decode(&req.encode()).unwrap();
        assert_eq!(decoded.method, "POST");
        assert_eq!(decoded.target, "/search");
        assert_eq!(decoded.header("host"), Some("proxy"));
        assert_eq!(decoded.body, b"payload");
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok(b"results".to_vec()).with_header("X-Proxy", "xsearch");
        let decoded = Response::decode(&resp.encode()).unwrap();
        assert_eq!(decoded.status, 200);
        assert_eq!(decoded.reason, "OK");
        assert_eq!(decoded.body, b"results");
    }

    #[test]
    fn query_param_extraction() {
        let req = Request::get("/search?q=cheap+flights&k=3");
        assert_eq!(req.query_param("q").as_deref(), Some("cheap flights"));
        assert_eq!(req.query_param("k").as_deref(), Some("3"));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn query_param_decodes_percent20_and_encoded_keys() {
        let req = Request::get("/search?q=cheap%20flights%2Bhotels");
        assert_eq!(
            req.query_param("q").as_deref(),
            Some("cheap flights+hotels")
        );
        // An encoded parameter *name* still matches.
        let req = Request::get("/search?%71=space%20here");
        assert_eq!(req.query_param("q").as_deref(), Some("space here"));
    }

    #[test]
    fn percent_roundtrip_on_query_text() {
        for s in ["cheap flights", "c++ tutorial", "100% cotton", "a&b=c"] {
            assert_eq!(percent_decode(&percent_encode(s)), s, "{s}");
        }
    }

    #[test]
    fn signed_hex_is_not_an_escape() {
        // Regression: `u8::from_str_radix("+5", 16)` parses to 5, so a
        // lenient decoder turned `%+5` into the control byte 0x05. The
        // `%` must pass through; the `+` still decodes to a space by the
        // normal query rules.
        assert_eq!(percent_decode("%+5"), "% 5");
        assert_eq!(percent_decode("% 5"), "% 5");
        assert_eq!(percent_decode("%-5"), "%-5");
    }

    #[test]
    fn truncated_escapes_pass_through() {
        assert_eq!(percent_decode("%"), "%");
        assert_eq!(percent_decode("%4"), "%4");
        assert_eq!(percent_decode("abc%"), "abc%");
    }

    #[test]
    fn non_hex_escapes_pass_through() {
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%4g"), "%4g");
        // ...and decoding resumes immediately after the literal `%`:
        // the next byte may itself start a valid escape.
        assert_eq!(percent_decode("%%41"), "%A");
    }

    #[test]
    fn hex_case_is_accepted_both_ways() {
        assert_eq!(percent_decode("%2b%2B"), "++");
    }

    #[test]
    fn oversized_terminated_head_rejected() {
        let mut raw = b"GET / HTTP/1.1\r\nx-filler: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES));
        raw.extend_from_slice(b"\r\n\r\n");
        assert_eq!(Request::decode(&raw), Err(HttpError::HeadersTooLarge));
        assert_eq!(
            Request::decode_partial(&raw),
            Err(HttpError::HeadersTooLarge)
        );
    }

    #[test]
    fn unterminated_head_rejected_once_past_ceiling() {
        // The slowloris shape: headers dribble in forever, the blank
        // line never arrives. The parser must stop asking for more
        // instead of buffering without bound.
        let mut raw = b"GET / HTTP/1.1\r\nx-filler: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 4));
        assert_eq!(
            Request::decode_partial(&raw),
            Err(HttpError::HeadersTooLarge)
        );
        assert_eq!(
            Response::decode_partial(&raw),
            Err(HttpError::HeadersTooLarge)
        );
    }

    #[test]
    fn head_just_under_ceiling_still_parses() {
        let filler = "a".repeat(MAX_HEAD_BYTES - 64);
        let raw = format!("GET / HTTP/1.1\r\nx-filler: {filler}\r\n\r\n");
        let req = Request::decode(raw.as_bytes()).unwrap();
        assert_eq!(req.header("x-filler").map(str::len), Some(filler.len()));
    }

    #[test]
    fn missing_header_terminator_rejected() {
        assert_eq!(
            Request::decode(b"GET / HTTP/1.1\r\nhost: x\r\n"),
            Err(HttpError::UnterminatedHeaders)
        );
    }

    #[test]
    fn malformed_start_line_rejected() {
        assert_eq!(
            Request::decode(b"GARBAGE\r\n\r\n"),
            Err(HttpError::BadStartLine)
        );
    }

    #[test]
    fn short_body_rejected() {
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc";
        assert_eq!(Request::decode(raw), Err(HttpError::BadBody));
    }

    #[test]
    fn extra_body_bytes_are_truncated_to_content_length() {
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 3\r\n\r\nabcdef";
        assert_eq!(Request::decode(raw).unwrap().body, b"abc");
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let raw = b"GET / HTTP/1.1\r\nHOST: example\r\n\r\n";
        let req = Request::decode(raw).unwrap();
        assert_eq!(req.header("Host"), Some("example"));
    }

    #[test]
    fn partial_head_wants_more() {
        let wire = Request::post("/search", b"payload".to_vec()).encode();
        for cut in 1..wire.len() {
            if find_head_end(&wire[..cut]).is_none() {
                assert_eq!(
                    Request::decode_partial(&wire[..cut]),
                    Ok(Partial::NeedMore(1)),
                    "cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn partial_body_reports_exact_shortfall() {
        let wire = Request::post("/search", b"0123456789".to_vec()).encode();
        let cut = wire.len() - 4;
        assert_eq!(
            Request::decode_partial(&wire[..cut]),
            Ok(Partial::NeedMore(4))
        );
    }

    #[test]
    fn complete_reports_consumed_and_leaves_pipeline_bytes() {
        let mut wire = Request::get("/a").encode();
        let first_len = wire.len();
        wire.extend_from_slice(&Request::get("/b").encode());
        match Request::decode_partial(&wire).unwrap() {
            Partial::Complete { value, consumed } => {
                assert_eq!(value.target, "/a");
                assert_eq!(consumed, first_len);
                match Request::decode_partial(&wire[consumed..]).unwrap() {
                    Partial::Complete { value, .. } => assert_eq!(value.target, "/b"),
                    other => panic!("second request should parse: {other:?}"),
                }
            }
            other => panic!("first request should parse: {other:?}"),
        }
    }

    #[test]
    fn streaming_response_matches_one_shot() {
        let wire = Response::ok(b"results".to_vec()).encode();
        match Response::decode_partial(&wire).unwrap() {
            Partial::Complete { value, consumed } => {
                assert_eq!(consumed, wire.len());
                assert_eq!(value, Response::decode(&wire).unwrap());
            }
            other => panic!("should be complete: {other:?}"),
        }
    }

    #[test]
    fn status_parse() {
        let resp = Response::decode(b"HTTP/1.1 404 Not Found\r\n\r\n").unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.reason, "Not Found");
    }

    proptest! {
        #[test]
        fn request_roundtrips_any_body(body: Vec<u8>, target in "/[a-z0-9/]{0,20}") {
            let req = Request::post(target, body.clone());
            let dec = Request::decode(&req.encode()).unwrap();
            prop_assert_eq!(dec.body, body);
        }

        #[test]
        fn decode_never_panics(bytes: Vec<u8>) {
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
        }

        #[test]
        fn percent_encode_decode_roundtrip(s in "[ -~]{0,50}") {
            prop_assert_eq!(percent_decode(&percent_encode(&s)), s);
        }

        /// Feeding any prefix of a valid message never errors and never
        /// yields a different message than the one-shot decode.
        #[test]
        fn incremental_prefixes_agree_with_one_shot(
            body: Vec<u8>,
            target in "/[a-z0-9/]{0,20}",
            cut in 0usize..200,
        ) {
            let req = Request::post(target, body);
            let wire = req.encode();
            let cut = cut.min(wire.len());
            match Request::decode_partial(&wire[..cut]).unwrap() {
                Partial::Complete { value, consumed } => {
                    prop_assert_eq!(consumed, wire.len());
                    prop_assert_eq!(value, Request::decode(&wire).unwrap());
                }
                Partial::NeedMore(n) => {
                    prop_assert!(n >= 1);
                    prop_assert!(cut + n <= wire.len());
                }
            }
        }
    }
}
