//! Latency distributions.
//!
//! DESIGN.md §6 calibrates the WAN model with these distributions:
//! client↔proxy and proxy↔engine links use log-normal one-way delays
//! (heavy right tail, like real WAN paths), relay processing uses
//! constants.

use rand::Rng;
use std::time::Duration;

/// A sampleable delay distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum DelayModel {
    /// Always exactly this long.
    Constant(Duration),
    /// Uniform between the two bounds (inclusive lower, exclusive upper).
    Uniform(Duration, Duration),
    /// Log-normal parameterized by its *median* and the σ of the
    /// underlying normal — the natural way to quote WAN latency
    /// ("median 40 ms, long tail").
    LogNormal {
        /// Median delay.
        median: Duration,
        /// Shape: σ of ln(X). 0.3–0.6 matches observed WAN jitter.
        sigma: f64,
    },
}

impl DelayModel {
    /// Convenience constructor from milliseconds.
    #[must_use]
    pub fn constant_ms(ms: u64) -> Self {
        DelayModel::Constant(Duration::from_millis(ms))
    }

    /// Log-normal with median in milliseconds.
    #[must_use]
    pub fn lognormal_ms(median_ms: u64, sigma: f64) -> Self {
        DelayModel::LogNormal {
            median: Duration::from_millis(median_ms),
            sigma,
        }
    }

    /// Log-normal with median in microseconds — intra-data-center hops
    /// (e.g. a fleet router to its replicas) live at this scale.
    #[must_use]
    pub fn lognormal_us(median_us: u64, sigma: f64) -> Self {
        DelayModel::LogNormal {
            median: Duration::from_micros(median_us),
            sigma,
        }
    }

    /// Draws one delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        match self {
            DelayModel::Constant(d) => *d,
            DelayModel::Uniform(lo, hi) => {
                let (lo_n, hi_n) = (lo.as_nanos() as u64, hi.as_nanos() as u64);
                if hi_n <= lo_n {
                    return *lo;
                }
                Duration::from_nanos(rng.gen_range(lo_n..hi_n))
            }
            DelayModel::LogNormal { median, sigma } => {
                let z = standard_normal(rng);
                let ln_median = (median.as_nanos() as f64).max(1.0).ln();
                let nanos = (ln_median + sigma * z).exp();
                Duration::from_nanos(nanos.clamp(0.0, 1e18) as u64)
            }
        }
    }

    /// The distribution's median (exact for all variants).
    #[must_use]
    pub fn median(&self) -> Duration {
        match self {
            DelayModel::Constant(d) => *d,
            DelayModel::Uniform(lo, hi) => (*lo + *hi) / 2,
            DelayModel::LogNormal { median, .. } => *median,
        }
    }
}

/// One draw from N(0, 1) via Box-Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let m = DelayModel::constant_ms(25);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), Duration::from_millis(25));
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let lo = Duration::from_millis(10);
        let hi = Duration::from_millis(20);
        let m = DelayModel::Uniform(lo, hi);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= lo && d < hi);
        }
    }

    #[test]
    fn uniform_degenerate_bounds() {
        let d = Duration::from_millis(5);
        let m = DelayModel::Uniform(d, d);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(m.sample(&mut rng), d);
    }

    #[test]
    fn lognormal_median_is_close() {
        let m = DelayModel::lognormal_ms(100, 0.5);
        let mut rng = StdRng::seed_from_u64(4);
        let mut samples: Vec<u128> = (0..4001).map(|_| m.sample(&mut rng).as_nanos()).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64 / 1e6;
        assert!((median - 100.0).abs() < 8.0, "median {median} ms");
    }

    #[test]
    fn lognormal_has_right_tail() {
        let m = DelayModel::lognormal_ms(100, 0.5);
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..4000)
            .map(|_| m.sample(&mut rng).as_secs_f64() * 1e3)
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // Log-normal mean exceeds median: e^{σ²/2} ≈ 1.13.
        assert!(mean > 105.0, "mean {mean}");
    }

    #[test]
    fn median_accessor_matches_variants() {
        assert_eq!(
            DelayModel::constant_ms(7).median(),
            Duration::from_millis(7)
        );
        assert_eq!(
            DelayModel::Uniform(Duration::from_millis(10), Duration::from_millis(20)).median(),
            Duration::from_millis(15)
        );
        assert_eq!(
            DelayModel::lognormal_ms(40, 0.4).median(),
            Duration::from_millis(40)
        );
    }

    proptest! {
        #[test]
        fn samples_never_negative_or_huge(median_ms in 1u64..10_000, sigma in 0.0f64..2.0, seed: u64) {
            let m = DelayModel::lognormal_ms(median_ms, sigma);
            let mut rng = StdRng::seed_from_u64(seed);
            let d = m.sample(&mut rng);
            prop_assert!(d <= Duration::from_secs(3600), "sample {d:?}");
        }
    }
}
