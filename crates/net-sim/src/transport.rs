//! In-process duplex byte pipes.
//!
//! Components (broker, proxy, relays, engine front-end) talk over message
//! pipes; a pipe carries whole frames (`Vec<u8>`) like one TCP segment
//! carrying one length-prefixed message would.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// One end of a duplex pipe.
#[derive(Debug, Clone)]
pub struct Endpoint {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Error from [`Endpoint::recv_timeout`] / closed pipes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint was dropped.
    Disconnected,
    /// No frame arrived within the timeout.
    TimedOut,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::TimedOut => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for TransportError {}

impl Endpoint {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] if the peer is gone.
    pub fn send(&self, frame: Vec<u8>) -> Result<(), TransportError> {
        self.tx
            .send(frame)
            .map_err(|_| TransportError::Disconnected)
    }

    /// Blocks until a frame arrives.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] if the peer is gone.
    pub fn recv(&self) -> Result<Vec<u8>, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }

    /// Waits up to `timeout` for a frame.
    ///
    /// # Errors
    ///
    /// [`TransportError::TimedOut`] on timeout, `Disconnected` if the peer
    /// endpoint was dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::TimedOut,
            RecvTimeoutError::Disconnected => TransportError::Disconnected,
        })
    }
}

/// Creates a connected pair of endpoints.
///
/// # Example
///
/// ```
/// let (a, b) = xsearch_net_sim::transport::duplex();
/// a.send(b"ping".to_vec()).unwrap();
/// assert_eq!(b.recv().unwrap(), b"ping");
/// b.send(b"pong".to_vec()).unwrap();
/// assert_eq!(a.recv().unwrap(), b"pong");
/// ```
#[must_use]
pub fn duplex() -> (Endpoint, Endpoint) {
    let (tx_ab, rx_ab) = unbounded();
    let (tx_ba, rx_ba) = unbounded();
    (
        Endpoint {
            tx: tx_ab,
            rx: rx_ba,
        },
        Endpoint {
            tx: tx_ba,
            rx: rx_ab,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_preserve_order() {
        let (a, b) = duplex();
        for i in 0..10u8 {
            a.send(vec![i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(b.recv().unwrap(), vec![i]);
        }
    }

    #[test]
    fn both_directions_work_concurrently() {
        let (a, b) = duplex();
        let t = std::thread::spawn(move || {
            let frame = b.recv().unwrap();
            b.send(frame.iter().rev().copied().collect()).unwrap();
        });
        a.send(vec![1, 2, 3]).unwrap();
        assert_eq!(a.recv().unwrap(), vec![3, 2, 1]);
        t.join().unwrap();
    }

    #[test]
    fn dropped_peer_reports_disconnect() {
        let (a, b) = duplex();
        drop(b);
        assert_eq!(a.send(vec![0]), Err(TransportError::Disconnected));
        assert_eq!(a.recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (a, _b) = duplex();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)),
            Err(TransportError::TimedOut)
        );
    }
}
