//! In-process duplex message pipes.
//!
//! Components (broker, proxy, relays, engine front-end) talk over message
//! pipes; a pipe carries whole frames (`Vec<u8>`) like one TCP segment
//! carrying one length-prefixed message would. For byte-level transport
//! with partial reads and readiness polling, see [`crate::stream`].
//!
//! Frames queued before a peer drops remain receivable: `recv`/`try_recv`
//! drain the queue first and only then report the disconnect. A `send`
//! to a dropped peer hands the frame back in the error instead of
//! silently discarding it, so the caller can retry on another path.

use crossbeam::channel::{
    bounded, unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError as ChanTryRecvError,
    TrySendError as ChanTrySendError,
};
use std::time::Duration;

/// One end of a duplex pipe.
#[derive(Debug, Clone)]
pub struct Endpoint {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Error from [`Endpoint::recv_timeout`] / closed pipes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint was dropped.
    Disconnected,
    /// No frame arrived within the timeout.
    TimedOut,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::TimedOut => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A send failed because the peer endpoint was dropped; the undelivered
/// frame is handed back so it is never silently lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError(pub Vec<u8>);

impl SendError {
    /// Recovers the undelivered frame.
    #[must_use]
    pub fn into_frame(self) -> Vec<u8> {
        self.0
    }
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "peer disconnected ({} byte frame returned)",
            self.0.len()
        )
    }
}

impl std::error::Error for SendError {}

impl From<SendError> for TransportError {
    fn from(_: SendError) -> Self {
        TransportError::Disconnected
    }
}

/// Error from [`Endpoint::try_send`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrySendError {
    /// The pipe is at capacity (bounded pipes only); the frame is handed
    /// back for retry on writability.
    Full(Vec<u8>),
    /// The peer endpoint was dropped; the frame is handed back.
    Disconnected(Vec<u8>),
}

impl TrySendError {
    /// Recovers the unsent frame.
    #[must_use]
    pub fn into_frame(self) -> Vec<u8> {
        match self {
            TrySendError::Full(f) | TrySendError::Disconnected(f) => f,
        }
    }
}

impl std::fmt::Display for TrySendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "pipe full"),
            TrySendError::Disconnected(_) => write!(f, "peer disconnected"),
        }
    }
}

impl std::error::Error for TrySendError {}

/// Error from [`Endpoint::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No frame is queued right now (would-block).
    Empty,
    /// The queue is drained **and** the peer endpoint was dropped.
    Disconnected,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "no frame queued"),
            TryRecvError::Disconnected => write!(f, "peer disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

impl Endpoint {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] carrying the frame back if the peer is gone.
    pub fn send(&self, frame: Vec<u8>) -> Result<(), SendError> {
        self.tx.send(frame).map_err(|e| SendError(e.0))
    }

    /// Non-blocking send (would-block semantics on bounded pipes).
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when a bounded pipe is at capacity,
    /// [`TrySendError::Disconnected`] when the peer is gone — both carry
    /// the frame back.
    pub fn try_send(&self, frame: Vec<u8>) -> Result<(), TrySendError> {
        self.tx.try_send(frame).map_err(|e| match e {
            ChanTrySendError::Full(f) => TrySendError::Full(f),
            ChanTrySendError::Disconnected(f) => TrySendError::Disconnected(f),
        })
    }

    /// Blocks until a frame arrives. Frames queued before a disconnect
    /// are still delivered, in order, before the error.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] if the peer is gone.
    pub fn recv(&self) -> Result<Vec<u8>, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }

    /// Non-blocking receive: drains queued frames first, then
    /// distinguishes "nothing yet" from "peer gone".
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] once drained and the peer is gone.
    pub fn try_recv(&self) -> Result<Vec<u8>, TryRecvError> {
        self.rx.try_recv().map_err(|e| match e {
            ChanTryRecvError::Empty => TryRecvError::Empty,
            ChanTryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Waits up to `timeout` for a frame.
    ///
    /// # Errors
    ///
    /// [`TransportError::TimedOut`] on timeout, `Disconnected` if the peer
    /// endpoint was dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::TimedOut,
            RecvTimeoutError::Disconnected => TransportError::Disconnected,
        })
    }
}

/// Creates a connected pair of endpoints with unbounded queues.
///
/// # Example
///
/// ```
/// let (a, b) = xsearch_net_sim::transport::duplex();
/// a.send(b"ping".to_vec()).unwrap();
/// assert_eq!(b.recv().unwrap(), b"ping");
/// b.send(b"pong".to_vec()).unwrap();
/// assert_eq!(a.recv().unwrap(), b"pong");
/// ```
#[must_use]
pub fn duplex() -> (Endpoint, Endpoint) {
    let (tx_ab, rx_ab) = unbounded();
    let (tx_ba, rx_ba) = unbounded();
    (
        Endpoint {
            tx: tx_ab,
            rx: rx_ba,
        },
        Endpoint {
            tx: tx_ba,
            rx: rx_ab,
        },
    )
}

/// Creates a connected pair whose queues hold at most `capacity` frames
/// per direction — [`Endpoint::try_send`] reports
/// [`TrySendError::Full`] past that, modelling transport backpressure.
#[must_use]
pub fn duplex_bounded(capacity: usize) -> (Endpoint, Endpoint) {
    let (tx_ab, rx_ab) = bounded(capacity);
    let (tx_ba, rx_ba) = bounded(capacity);
    (
        Endpoint {
            tx: tx_ab,
            rx: rx_ba,
        },
        Endpoint {
            tx: tx_ba,
            rx: rx_ab,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_preserve_order() {
        let (a, b) = duplex();
        for i in 0..10u8 {
            a.send(vec![i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(b.recv().unwrap(), vec![i]);
        }
    }

    #[test]
    fn both_directions_work_concurrently() {
        let (a, b) = duplex();
        let t = std::thread::spawn(move || {
            let frame = b.recv().unwrap();
            b.send(frame.iter().rev().copied().collect()).unwrap();
        });
        a.send(vec![1, 2, 3]).unwrap();
        assert_eq!(a.recv().unwrap(), vec![3, 2, 1]);
        t.join().unwrap();
    }

    #[test]
    fn dropped_peer_returns_the_frame() {
        let (a, b) = duplex();
        drop(b);
        assert_eq!(a.send(vec![7, 8]), Err(SendError(vec![7, 8])));
        assert_eq!(
            a.try_send(vec![9]),
            Err(TrySendError::Disconnected(vec![9]))
        );
        assert_eq!(a.recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn disconnect_mid_stream_drains_queued_frames() {
        // The regression this pins: frames already in flight when the
        // peer drops must still be delivered, in order, before the
        // disconnect surfaces — a disconnect tears the pipe, not the
        // bytes that were already on it.
        let (a, b) = duplex();
        a.send(b"first".to_vec()).unwrap();
        a.send(b"second".to_vec()).unwrap();
        drop(a);
        assert_eq!(b.recv().unwrap(), b"first");
        assert_eq!(b.try_recv().unwrap(), b"second");
        assert_eq!(b.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(b.recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn try_recv_would_block_on_empty_pipe() {
        let (a, b) = duplex();
        assert_eq!(b.try_recv(), Err(TryRecvError::Empty));
        a.send(vec![1]).unwrap();
        assert_eq!(b.try_recv().unwrap(), vec![1]);
        assert_eq!(b.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_pipe_reports_full_with_frame_returned() {
        let (a, b) = duplex_bounded(2);
        a.try_send(vec![1]).unwrap();
        a.try_send(vec![2]).unwrap();
        assert_eq!(a.try_send(vec![3]), Err(TrySendError::Full(vec![3])));
        assert_eq!(b.try_recv().unwrap(), vec![1]);
        a.try_send(vec![3]).unwrap();
        assert_eq!(b.try_recv().unwrap(), vec![2]);
        assert_eq!(b.try_recv().unwrap(), vec![3]);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (a, _b) = duplex();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)),
            Err(TransportError::TimedOut)
        );
    }
}
