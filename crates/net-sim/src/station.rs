//! A capacity-limited service station: a fixed worker pool draining a
//! bounded queue.
//!
//! Fig 5's Tor curve saturates around 100 req/s not because onion crypto is
//! slow but because relays have bounded capacity; this station models that:
//! jobs queue, `workers` threads serve them with the job's own service
//! time, and when the queue is full the submission fails (load shedding),
//! which the workload generator records as saturation.

use crossbeam::channel::{bounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Statistics counters for a station.
#[derive(Debug, Default)]
pub struct StationStats {
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
}

impl StationStats {
    /// Jobs accepted into the queue.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }
    /// Jobs rejected because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
    /// Jobs fully served.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }
}

/// A worker pool with a bounded queue.
///
/// # Example
///
/// ```
/// use xsearch_net_sim::station::ServiceStation;
/// use std::sync::Arc;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let station = ServiceStation::new("relay", 2, 16);
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..8 {
///     let hits = hits.clone();
///     station.submit(move || { hits.fetch_add(1, Ordering::SeqCst); }).unwrap();
/// }
/// station.shutdown();
/// assert_eq!(hits.load(Ordering::SeqCst), 8);
/// ```
#[derive(Debug)]
pub struct ServiceStation {
    name: String,
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<StationStats>,
}

/// Error returned when the station's queue is full (the station is
/// saturated) or the station is shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Saturated;

impl std::fmt::Display for Saturated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "service station saturated")
    }
}

impl std::error::Error for Saturated {}

impl ServiceStation {
    /// Spawns `workers` threads serving a queue of capacity `queue_depth`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is 0.
    #[must_use]
    pub fn new(name: impl Into<String>, workers: usize, queue_depth: usize) -> Self {
        assert!(workers > 0, "station needs at least one worker");
        let name = name.into();
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = bounded(queue_depth);
        let stats = Arc::new(StationStats::default());
        let handles = (0..workers)
            .map(|i| {
                let rx = receiver.clone();
                let stats = stats.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                            stats.completed.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn station worker")
            })
            .collect();
        ServiceStation {
            name,
            sender: Some(sender),
            workers: handles,
            stats,
        }
    }

    /// The station's label.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Enqueues a job without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`Saturated`] when the queue is full or the station has been
    /// shut down — the signal the Fig 5 harness interprets as overload.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), Saturated> {
        let Some(sender) = &self.sender else {
            return Err(Saturated);
        };
        match sender.try_send(Box::new(job)) {
            Ok(()) => {
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(_) => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Err(Saturated)
            }
        }
    }

    /// Shared statistics handle.
    #[must_use]
    pub fn stats(&self) -> Arc<StationStats> {
        self.stats.clone()
    }

    /// Drains the queue and joins all workers.
    pub fn shutdown(mut self) {
        self.sender = None; // closing the channel stops the workers
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServiceStation {
    fn drop(&mut self) {
        self.sender = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Busy-spins for `d` — models CPU-bound service time without yielding the
/// core (as a relay's crypto would).
pub fn busy_wait(d: Duration) {
    let start = std::time::Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn all_jobs_run_once() {
        let s = ServiceStation::new("s", 4, 64);
        let n = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let n = n.clone();
            s.submit(move || {
                n.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        s.shutdown();
        assert_eq!(n.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn saturation_rejects_jobs() {
        let s = ServiceStation::new("slow", 1, 2);
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = gate.clone();
        // Block the single worker.
        s.submit(move || {
            g.wait();
        })
        .unwrap();
        // Fill the queue (depth 2) and overflow it.
        let mut rejected = 0;
        for _ in 0..10 {
            if s.submit(|| {}).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected >= 8, "rejected {rejected}");
        assert!(s.stats().rejected() >= 8);
        gate.wait();
        s.shutdown();
    }

    #[test]
    fn stats_track_completion() {
        let s = ServiceStation::new("s", 2, 16);
        for _ in 0..10 {
            s.submit(|| {}).unwrap();
        }
        let stats = s.stats();
        s.shutdown();
        assert_eq!(stats.accepted(), 10);
        assert_eq!(stats.completed(), 10);
    }

    #[test]
    fn drop_joins_workers() {
        let n = Arc::new(AtomicUsize::new(0));
        {
            let s = ServiceStation::new("d", 2, 8);
            for _ in 0..8 {
                let n = n.clone();
                s.submit(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
            }
            // Dropped here without explicit shutdown.
        }
        assert_eq!(n.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn busy_wait_lasts_at_least_requested() {
        let start = std::time::Instant::now();
        busy_wait(Duration::from_millis(5));
        assert!(start.elapsed() >= Duration::from_millis(5));
    }
}
