//! Deterministic fault injection for the simulated network and the
//! enclave call boundary.
//!
//! A [`FaultPlan`] is a seeded, replayable schedule of failures: given
//! the same seed, the same fault specification, and the same order of
//! decision points, it produces exactly the same faults. Each decision
//! is a pure function of `(seed, site, replica, sequence-number)` where
//! the sequence number comes from a per-site atomic counter — no wall
//! clock, no global RNG, no thread identity. That is what makes chaos
//! scenarios replayable: the `chaos_drill` bench runs the same plan
//! twice and asserts byte-identical transcripts.
//!
//! Two boundaries are covered:
//!
//! * **Link faults** ([`FaultPlan::link_fault`]) — decided by the
//!   cluster router *before* a request is sealed: packet loss (the
//!   request never reaches the replica, and crucially was never
//!   encrypted, so the AEAD channel stays in sync), delay spikes, and
//!   whole-replica stalls (the answer arrives, arbitrarily late).
//! * **Ecall faults** ([`FaultPlan::ecall_fault`], surfaced to
//!   `xsearch-core` through the [`FaultInjector`] trait) — decided at
//!   the enclave boundary *after* execution: gray failures (the enclave
//!   did the work but the response is lost — the client must assume the
//!   worst and re-attest) and ciphertext corruption on the wire (the
//!   client's AEAD open fails authentication).
//!
//! Fleet-wide events live on a logical *operation clock* the cluster
//! advances once per data-plane request: partition windows
//! ([`FaultPlan::in_partition`]) and crash/restart schedules
//! ([`FaultPlan::events_due`]) trigger at fixed op indices, not at wall
//! times, so they replay exactly.
//!
//! Everything here compiles to nothing when no plan is installed: the
//! cluster holds an `Option<Arc<FaultPlan>>` and the fault path is a
//! single branch on `None`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What goes wrong, and how often. All probabilities are in `[0, 1]`;
/// the default spec injects nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultSpec {
    /// Per-request probability that the request is dropped on the link
    /// before reaching the replica (never sealed, safely retryable).
    pub loss: f64,
    /// Per-request probability of a latency spike on the link.
    pub spike_prob: f64,
    /// Extra round-trip delay charged when a spike fires.
    pub spike: Duration,
    /// Replicas (by index) whose link is stalled: every request to them
    /// completes, but only after [`FaultSpec::stall`] extra delay. This
    /// models a browning-out enclave — alive, attested, and useless.
    pub stalled: Vec<usize>,
    /// Extra round-trip delay for requests to a stalled replica.
    pub stall: Duration,
    /// Gray failure rates: `(replica index, per-request probability)`
    /// that the enclave executes the request but the response is lost
    /// at the ecall boundary.
    pub gray: Vec<(usize, f64)>,
    /// Per-request probability that the sealed response is corrupted in
    /// flight (one flipped byte; the client's AEAD open rejects it).
    pub corrupt: f64,
    /// Fleet-wide partition windows `[start_op, end_op)` on the logical
    /// operation clock: every data-plane request inside a window is
    /// dropped at the link.
    pub partitions: Vec<(u64, u64)>,
    /// Scheduled crash (and optional restart) events on the op clock.
    pub crashes: Vec<CrashEvent>,
    /// Socket-layer connection afflictions (resets, torn writes, byte
    /// corruption, stuck and half-open peers), decided per connection.
    pub socket: SocketSpec,
}

/// How often connections misbehave at the socket layer, and how. Each
/// probability selects one *affliction per connection* — decided once,
/// deterministically, from the connection id (see
/// [`FaultPlan::socket_fault`]) — mirroring reality, where a given peer
/// is broken in one particular way. Probabilities are cumulative; their
/// sum must stay ≤ 1.
#[derive(Debug, Clone, Default)]
pub struct SocketSpec {
    /// Probability the connection is hard-reset: after a drawn number of
    /// writes, both directions close abruptly (mid-frame or not).
    pub reset: f64,
    /// Probability of a torn write: one drawn write delivers only a
    /// byte-prefix and then the connection closes — the classic
    /// mid-frame tear.
    pub torn: f64,
    /// Probability of stream corruption: one byte of a drawn write is
    /// XOR-flipped in flight (framing survives or dies on its own).
    pub corrupt: f64,
    /// Probability the peer wedges *stuck*: it keeps writing but never
    /// reads again, so the reverse ring fills and the victim's writes
    /// stall forever (write-stall deadline material).
    pub stuck: f64,
    /// Probability the peer goes *half-open*: it vanishes without ever
    /// closing — writes disappear, reads never complete, EOF never
    /// arrives (idle-deadline material).
    pub half_open: f64,
    /// The afflicted write index is drawn uniformly from
    /// `[0, write_window)`; `0` is treated as `1`.
    pub write_window: u64,
}

impl SocketSpec {
    /// True when no socket affliction can ever fire.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.reset <= 0.0
            && self.torn <= 0.0
            && self.corrupt <= 0.0
            && self.stuck <= 0.0
            && self.half_open <= 0.0
    }
}

/// One connection's socket-layer affliction, decided at accept time.
/// Installed on a [`crate::stream::ByteStream`] endpoint via
/// [`crate::stream::ByteStream::sabotage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketFault {
    /// Close both directions abruptly after `after_writes` successful
    /// write calls from the afflicted endpoint.
    Reset {
        /// Write calls that complete normally before the reset.
        after_writes: u64,
    },
    /// On write call `after_writes`, deliver only `keep` bytes of the
    /// chunk and then close both directions.
    Torn {
        /// Write calls that complete normally before the tear.
        after_writes: u64,
        /// Prefix bytes of the final chunk that still arrive.
        keep: usize,
    },
    /// On write call `after_writes`, XOR the first byte of the chunk
    /// with `xor` (never zero, so the byte genuinely flips).
    Corrupt {
        /// Write calls that complete normally before the flip.
        after_writes: u64,
        /// The non-zero XOR mask applied to one byte.
        xor: u8,
    },
    /// The endpoint never reads again: buffered bytes stay buffered,
    /// the reverse ring fills, and the peer's writes stall.
    Stuck,
    /// The endpoint vanishes without closing: its writes are silently
    /// discarded, its reads never complete, and dropping it does *not*
    /// close the stream — the peer never sees EOF.
    HalfOpen,
}

/// A scheduled replica crash, with an optional later restart.
#[derive(Debug, Clone, Copy)]
pub struct CrashEvent {
    /// Operation index at which the replica is hard-killed.
    pub at_op: u64,
    /// Replica index to kill.
    pub replica: usize,
    /// Operation index at which the replica is relaunched, if any.
    pub restart_at: Option<u64>,
}

/// The outcome of a link-boundary fault decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFault {
    /// The request is dropped before reaching the replica.
    pub drop: bool,
    /// Extra round-trip delay charged to the request (stall or spike).
    pub delay: Duration,
}

/// The outcome of an ecall-boundary fault decision for one response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcallFault {
    /// The enclave executed the request but the response is lost
    /// (gray failure): the caller sees an error after the work was done.
    pub fail: bool,
    /// One byte of the sealed response is flipped in flight.
    pub corrupt: bool,
}

impl EcallFault {
    /// A fault decision that changes nothing.
    pub const NONE: EcallFault = EcallFault {
        fail: false,
        corrupt: false,
    };
}

/// A fleet-wide fault event that became due on the operation clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Hard-kill the replica with this index.
    Crash(usize),
    /// Relaunch the replica with this index.
    Restart(usize),
}

/// Hook through which `xsearch-core`'s proxy asks for ecall-boundary
/// fault decisions without depending on the cluster layer. Compiled to
/// a no-op when absent (the proxy holds an `Option<Arc<dyn
/// FaultInjector>>`).
pub trait FaultInjector: Send + Sync + std::fmt::Debug {
    /// Decide the fate of the next enclave response.
    fn ecall_fault(&self) -> EcallFault;
}

/// One scheduled event with a claim flag so concurrent observers apply
/// it exactly once.
#[derive(Debug)]
struct Scheduled {
    at: u64,
    event: FaultEvent,
    claimed: AtomicBool,
}

/// A seeded, deterministic, replayable fault schedule. See the module
/// docs for the determinism contract.
pub struct FaultPlan {
    seed: u64,
    spec: FaultSpec,
    /// Per-replica link decision counters.
    link_seq: Vec<AtomicU64>,
    /// Per-replica ecall decision counters.
    ecall_seq: Vec<AtomicU64>,
    events: Vec<Scheduled>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("spec", &self.spec)
            .field("events", &self.events.len())
            .finish()
    }
}

/// Domain separators for the per-site hash streams.
const SITE_LOSS: u64 = 1;
const SITE_SPIKE: u64 = 2;
const SITE_GRAY: u64 = 3;
const SITE_CORRUPT: u64 = 4;
const SITE_SOCKET_KIND: u64 = 5;
const SITE_SOCKET_OP: u64 = 6;
const SITE_SOCKET_BYTE: u64 = 7;

/// `splitmix64` finalizer: a fast, well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform `[0, 1)` draw from the hash of one decision point.
fn draw(seed: u64, site: u64, replica: u64, n: u64) -> f64 {
    let h = splitmix64(
        seed ^ site.wrapping_mul(0xA076_1D64_78BD_642F)
            ^ replica.wrapping_mul(0xE703_7ED1_A0B4_28DB)
            ^ n.wrapping_mul(0x8EBC_6AF0_9C88_C6E3),
    );
    // 53 high bits -> an exactly representable f64 in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// Build a plan for a fleet of `replicas` replicas.
    pub fn new(spec: FaultSpec, seed: u64, replicas: usize) -> Self {
        let n = replicas.max(1);
        let mut events = Vec::new();
        for c in &spec.crashes {
            events.push(Scheduled {
                at: c.at_op,
                event: FaultEvent::Crash(c.replica),
                claimed: AtomicBool::new(false),
            });
            if let Some(at) = c.restart_at {
                events.push(Scheduled {
                    at,
                    event: FaultEvent::Restart(c.replica),
                    claimed: AtomicBool::new(false),
                });
            }
        }
        FaultPlan {
            seed,
            spec,
            link_seq: (0..n).map(|_| AtomicU64::new(0)).collect(),
            ecall_seq: (0..n).map(|_| AtomicU64::new(0)).collect(),
            events,
        }
    }

    /// The spec this plan was built from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Decide the link-boundary fate of the next request to `replica`.
    /// Consumes one per-replica sequence number; deterministic for a
    /// fixed decision order.
    pub fn link_fault(&self, replica: usize) -> LinkFault {
        let idx = replica % self.link_seq.len();
        let n = self.link_seq[idx].fetch_add(1, Ordering::Relaxed);
        let r = replica as u64;
        let drop = draw(self.seed, SITE_LOSS, r, n) < self.spec.loss;
        let delay = if self.spec.stalled.contains(&replica) {
            self.spec.stall
        } else if draw(self.seed, SITE_SPIKE, r, n) < self.spec.spike_prob {
            self.spec.spike
        } else {
            Duration::ZERO
        };
        LinkFault { drop, delay }
    }

    /// Decide the ecall-boundary fate of the next response from
    /// `replica`. Consumes one per-replica sequence number.
    pub fn ecall_fault(&self, replica: usize) -> EcallFault {
        let idx = replica % self.ecall_seq.len();
        let n = self.ecall_seq[idx].fetch_add(1, Ordering::Relaxed);
        let r = replica as u64;
        let gray_p = self
            .spec
            .gray
            .iter()
            .find(|&&(who, _)| who == replica)
            .map_or(0.0, |&(_, p)| p);
        EcallFault {
            fail: draw(self.seed, SITE_GRAY, r, n) < gray_p,
            corrupt: draw(self.seed, SITE_CORRUPT, r, n) < self.spec.corrupt,
        }
    }

    /// Decide connection `conn`'s socket-layer affliction, if any.
    ///
    /// Unlike the link/ecall sites this consumes **no** sequence
    /// counter: the decision is a pure function of `(seed, conn)`, so it
    /// does not depend on accept order or thread timing — a replay that
    /// reuses connection ids reproduces the same afflictions exactly.
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn socket_fault(&self, conn: u64) -> Option<SocketFault> {
        let s = &self.spec.socket;
        if s.is_quiet() {
            return None;
        }
        let kind = draw(self.seed, SITE_SOCKET_KIND, conn, 0);
        let window = s.write_window.max(1);
        let after_writes = (draw(self.seed, SITE_SOCKET_OP, conn, 0) * window as f64) as u64;
        let byte_draw = draw(self.seed, SITE_SOCKET_BYTE, conn, 0);
        let mut acc = s.reset;
        if kind < acc {
            return Some(SocketFault::Reset { after_writes });
        }
        acc += s.torn;
        if kind < acc {
            // Keep 0–2 bytes of the final chunk: enough to tear inside
            // a frame header, never enough to complete one.
            return Some(SocketFault::Torn {
                after_writes,
                keep: (byte_draw * 3.0) as usize,
            });
        }
        acc += s.corrupt;
        if kind < acc {
            // 1..=255: the mask is never zero, so one byte truly flips.
            return Some(SocketFault::Corrupt {
                after_writes,
                xor: ((byte_draw * 255.0) as u8).wrapping_add(1),
            });
        }
        acc += s.stuck;
        if kind < acc {
            return Some(SocketFault::Stuck);
        }
        acc += s.half_open;
        if kind < acc {
            return Some(SocketFault::HalfOpen);
        }
        None
    }

    /// Is the fleet partitioned at operation index `op`?
    pub fn in_partition(&self, op: u64) -> bool {
        self.spec
            .partitions
            .iter()
            .any(|&(start, end)| op >= start && op < end)
    }

    /// Crash/restart events due at or before `op` that no caller has
    /// claimed yet. Each event is returned exactly once across all
    /// threads.
    pub fn events_due(&self, op: u64) -> Vec<FaultEvent> {
        self.events
            .iter()
            .filter(|e| {
                op >= e.at
                    && e.claimed
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
            })
            .map(|e| e.event)
            .collect()
    }

    /// True if any event schedule or partition window exists — lets the
    /// hot path skip the event scan entirely for pure link-noise plans.
    pub fn has_timeline(&self) -> bool {
        !self.events.is_empty() || !self.spec.partitions.is_empty()
    }

    /// A [`FaultInjector`] view of this plan pinned to one replica, for
    /// installation at that replica's enclave boundary.
    pub fn injector(self: &Arc<Self>, replica: usize) -> Arc<dyn FaultInjector> {
        Arc::new(ReplicaFaultInjector {
            plan: Arc::clone(self),
            replica,
        })
    }
}

/// [`FaultInjector`] adapter: one replica's view of a shared plan.
#[derive(Debug)]
struct ReplicaFaultInjector {
    plan: Arc<FaultPlan>,
    replica: usize,
}

impl FaultInjector for ReplicaFaultInjector {
    fn ecall_fault(&self) -> EcallFault {
        self.plan.ecall_fault(self.replica)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(loss: f64) -> FaultSpec {
        FaultSpec {
            loss,
            ..Default::default()
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let spec = FaultSpec {
            loss: 0.2,
            spike_prob: 0.3,
            spike: Duration::from_millis(5),
            gray: vec![(1, 0.4)],
            corrupt: 0.1,
            ..Default::default()
        };
        let a = FaultPlan::new(spec.clone(), 42, 4);
        let b = FaultPlan::new(spec, 42, 4);
        for i in 0..500 {
            let r = i % 4;
            assert_eq!(a.link_fault(r), b.link_fault(r));
            assert_eq!(a.ecall_fault(r), b.ecall_fault(r));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::new(lossy(0.5), 1, 1);
        let b = FaultPlan::new(lossy(0.5), 2, 1);
        let diverged = (0..64).any(|_| a.link_fault(0).drop != b.link_fault(0).drop);
        assert!(diverged, "two seeds should not produce identical streams");
    }

    #[test]
    fn loss_rate_is_approximately_honoured() {
        let plan = FaultPlan::new(lossy(0.1), 7, 1);
        let n = 20_000;
        let drops = (0..n).filter(|_| plan.link_fault(0).drop).count();
        let rate = drops as f64 / f64::from(n);
        assert!(
            (0.08..0.12).contains(&rate),
            "observed loss {rate} should be near 0.1"
        );
    }

    #[test]
    fn stalled_replica_always_delays_and_others_do_not() {
        let spec = FaultSpec {
            stalled: vec![2],
            stall: Duration::from_secs(5),
            ..Default::default()
        };
        let plan = FaultPlan::new(spec, 9, 4);
        for _ in 0..100 {
            assert_eq!(plan.link_fault(2).delay, Duration::from_secs(5));
            assert_eq!(plan.link_fault(0).delay, Duration::ZERO);
        }
    }

    #[test]
    fn gray_failure_targets_only_the_configured_replica() {
        let spec = FaultSpec {
            gray: vec![(1, 1.0)],
            ..Default::default()
        };
        let plan = FaultPlan::new(spec, 3, 2);
        for _ in 0..50 {
            assert!(plan.ecall_fault(1).fail);
            assert!(!plan.ecall_fault(0).fail);
        }
    }

    #[test]
    fn partition_windows_are_half_open() {
        let spec = FaultSpec {
            partitions: vec![(10, 20), (30, 31)],
            ..Default::default()
        };
        let plan = FaultPlan::new(spec, 0, 1);
        assert!(!plan.in_partition(9));
        assert!(plan.in_partition(10));
        assert!(plan.in_partition(19));
        assert!(!plan.in_partition(20));
        assert!(plan.in_partition(30));
        assert!(!plan.in_partition(31));
    }

    #[test]
    fn crash_events_fire_exactly_once() {
        let spec = FaultSpec {
            crashes: vec![CrashEvent {
                at_op: 5,
                replica: 1,
                restart_at: Some(10),
            }],
            ..Default::default()
        };
        let plan = FaultPlan::new(spec, 0, 2);
        assert!(plan.events_due(4).is_empty());
        assert_eq!(plan.events_due(5), vec![FaultEvent::Crash(1)]);
        assert!(plan.events_due(6).is_empty(), "crash must not repeat");
        assert_eq!(plan.events_due(12), vec![FaultEvent::Restart(1)]);
        assert!(plan.events_due(13).is_empty());
    }

    #[test]
    fn socket_faults_are_pure_in_the_conn_id() {
        let spec = FaultSpec {
            socket: SocketSpec {
                reset: 0.2,
                torn: 0.2,
                corrupt: 0.2,
                stuck: 0.2,
                half_open: 0.2,
                write_window: 8,
            },
            ..Default::default()
        };
        let a = FaultPlan::new(spec.clone(), 77, 1);
        let b = FaultPlan::new(spec, 77, 1);
        for conn in 0..512 {
            // No sequence counter: re-asking is idempotent, and a fresh
            // plan with the same seed agrees on every conn id.
            assert_eq!(a.socket_fault(conn), a.socket_fault(conn));
            assert_eq!(a.socket_fault(conn), b.socket_fault(conn));
        }
    }

    #[test]
    fn socket_fault_mix_covers_every_shape() {
        let spec = FaultSpec {
            socket: SocketSpec {
                reset: 0.15,
                torn: 0.15,
                corrupt: 0.15,
                stuck: 0.15,
                half_open: 0.15,
                write_window: 16,
            },
            ..Default::default()
        };
        let plan = FaultPlan::new(spec, 5, 1);
        let (mut reset, mut torn, mut corrupt, mut stuck, mut half, mut clean) = (0, 0, 0, 0, 0, 0);
        for conn in 0..2000 {
            match plan.socket_fault(conn) {
                Some(SocketFault::Reset { after_writes }) => {
                    assert!(after_writes < 16);
                    reset += 1;
                }
                Some(SocketFault::Torn { keep, .. }) => {
                    assert!(keep < 3);
                    torn += 1;
                }
                Some(SocketFault::Corrupt { xor, .. }) => {
                    assert_ne!(xor, 0);
                    corrupt += 1;
                }
                Some(SocketFault::Stuck) => stuck += 1,
                Some(SocketFault::HalfOpen) => half += 1,
                None => clean += 1,
            }
        }
        for (name, count) in [
            ("reset", reset),
            ("torn", torn),
            ("corrupt", corrupt),
            ("stuck", stuck),
            ("half_open", half),
        ] {
            assert!(
                (150..=450).contains(&count),
                "{name} drawn {count} times out of 2000 at p=0.15"
            );
        }
        assert!(
            (350..=650).contains(&clean),
            "clean drawn {clean} times out of 2000 at p=0.25"
        );
    }

    #[test]
    fn quiet_socket_spec_never_afflicts() {
        let plan = FaultPlan::new(FaultSpec::default(), 1, 1);
        assert!((0..100).all(|c| plan.socket_fault(c).is_none()));
    }

    #[test]
    fn injector_draws_from_the_pinned_replica_stream() {
        let spec = FaultSpec {
            gray: vec![(0, 1.0)],
            ..Default::default()
        };
        let plan = Arc::new(FaultPlan::new(spec, 11, 2));
        let inj0 = plan.injector(0);
        let inj1 = plan.injector(1);
        assert!(inj0.ecall_fault().fail);
        assert!(!inj1.ecall_fault().fail);
    }
}
