//! Simulated duplex byte streams with readiness semantics.
//!
//! [`transport`](crate::transport) pipes carry whole frames; a real front
//! tier sees *bytes* — partial reads, short writes, and backpressure when
//! the peer stops draining. [`stream_pair`] models one TCP connection as
//! two bounded byte rings. Every operation is non-blocking: when it
//! cannot make progress it returns [`StreamError::WouldBlock`] and the
//! caller is expected to wait for readiness through a
//! [`Reactor`](crate::reactor::Reactor).
//!
//! Determinism: streams never touch the wall clock or any RNG. Readiness
//! notifications fire synchronously, in operation order, from the thread
//! that made the state change — so a single-threaded driver observes a
//! fully reproducible event sequence.
//!
//! # Socket-level fault injection
//!
//! A [`SocketFault`](crate::fault::SocketFault) drawn from a
//! [`FaultPlan`](crate::fault::FaultPlan) can be installed on one
//! endpoint with [`ByteStream::sabotage`]: seeded resets, torn mid-frame
//! writes, single-byte corruption, stuck peers (write-never-read) and
//! half-open vanishing peers then play out *inside* the stream
//! operations, so the victim end — typically the front tier — observes
//! them exactly as it would from a real broken TCP peer. The clean path
//! costs one relaxed atomic load.

use crate::fault::SocketFault;
use crate::reactor::{RegInner, READABLE, WRITABLE};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Errors from non-blocking stream operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The operation cannot make progress right now (nothing buffered to
    /// read, or no free space to write). Wait for readiness and retry.
    WouldBlock,
    /// The connection is closed in this direction; writes can never
    /// succeed. (Reads drain buffered bytes first, then report EOF as
    /// `Ok(0)` instead of an error.)
    Closed,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::WouldBlock => write!(f, "operation would block"),
            StreamError::Closed => write!(f, "stream closed"),
        }
    }
}

impl std::error::Error for StreamError {}

/// One direction of the duplex pair: a bounded byte ring plus the
/// registrations watching each side of it.
struct DirState {
    buf: VecDeque<u8>,
    closed: bool,
    /// Registration of the end that *reads* from this direction.
    reader: Option<Arc<RegInner>>,
    /// Registration of the end that *writes* into this direction.
    writer: Option<Arc<RegInner>>,
}

impl DirState {
    fn new() -> Self {
        DirState {
            // Capacity 0 until first use: an idle session must cost
            // bytes, not kilobytes (the conn_scaling bench gates this).
            buf: VecDeque::new(),
            closed: false,
            reader: None,
            writer: None,
        }
    }

    /// Recomputes and publishes both readiness bits for this direction.
    fn sync_readiness(&self, capacity: usize) {
        if let Some(reader) = &self.reader {
            let readable = !self.buf.is_empty() || self.closed;
            reader.update_ready(READABLE, readable);
        }
        if let Some(writer) = &self.writer {
            let writable = self.buf.len() < capacity || self.closed;
            writer.update_ready(WRITABLE, writable);
        }
    }
}

/// Live state of one endpoint's installed socket affliction.
#[derive(Default)]
struct FaultState {
    fault: Option<SocketFault>,
    /// Write calls this endpoint has issued since the fault was armed.
    writes: u64,
}

struct StreamCore {
    capacity: usize,
    /// Bytes flowing from end A to end B.
    ab: Mutex<DirState>,
    /// Bytes flowing from end B to end A.
    ba: Mutex<DirState>,
    /// Fast-path guard: true once any endpoint was sabotaged.
    any_faults: AtomicBool,
    /// Per-endpoint affliction state, indexed by [`Side::idx`].
    faults: [Mutex<FaultState>; 2],
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Side {
    A,
    B,
}

impl Side {
    fn idx(self) -> usize {
        match self {
            Side::A => 0,
            Side::B => 1,
        }
    }
}

/// What a sabotaged `write` call must do, decided under the fault lock
/// and executed after it is released (close takes both direction locks).
enum WriteAction {
    Normal,
    CorruptFirstByte(u8),
    Discard,
    TearThenClose(usize),
    ResetNow,
}

/// One end of a simulated duplex byte stream.
///
/// Created in pairs by [`stream_pair`]; dropping an end closes the
/// connection (the peer drains buffered bytes, then sees EOF).
pub struct ByteStream {
    side: Side,
    core: Arc<StreamCore>,
}

/// Creates a connected pair of byte streams, each direction buffering at
/// most `capacity` bytes before writes return
/// [`StreamError::WouldBlock`].
///
/// # Example
///
/// ```
/// use xsearch_net_sim::stream::stream_pair;
/// let (a, b) = stream_pair(8);
/// assert_eq!(a.write(b"hello").unwrap(), 5);
/// let mut buf = [0u8; 8];
/// assert_eq!(b.read(&mut buf).unwrap(), 5);
/// assert_eq!(&buf[..5], b"hello");
/// ```
#[must_use]
pub fn stream_pair(capacity: usize) -> (ByteStream, ByteStream) {
    let core = Arc::new(StreamCore {
        capacity: capacity.max(1),
        ab: Mutex::new(DirState::new()),
        ba: Mutex::new(DirState::new()),
        any_faults: AtomicBool::new(false),
        faults: [
            Mutex::new(FaultState::default()),
            Mutex::new(FaultState::default()),
        ],
    });
    (
        ByteStream {
            side: Side::A,
            core: Arc::clone(&core),
        },
        ByteStream {
            side: Side::B,
            core,
        },
    )
}

impl ByteStream {
    /// The direction this end reads from.
    fn incoming(&self) -> &Mutex<DirState> {
        match self.side {
            Side::A => &self.core.ba,
            Side::B => &self.core.ab,
        }
    }

    /// The direction this end writes into.
    fn outgoing(&self) -> &Mutex<DirState> {
        match self.side {
            Side::A => &self.core.ab,
            Side::B => &self.core.ba,
        }
    }

    /// Reads up to `out.len()` buffered bytes.
    ///
    /// Returns `Ok(0)` **only** at EOF (peer closed and the buffer is
    /// drained) or when `out` is empty.
    ///
    /// # Errors
    ///
    /// [`StreamError::WouldBlock`] when nothing is buffered and the peer
    /// is still connected.
    pub fn read(&self, out: &mut [u8]) -> Result<usize, StreamError> {
        if out.is_empty() {
            return Ok(0);
        }
        if self.core.any_faults.load(Ordering::Relaxed) {
            let state = self.core.faults[self.side.idx()]
                .lock()
                .expect("fault lock");
            if matches!(
                state.fault,
                Some(SocketFault::Stuck | SocketFault::HalfOpen)
            ) {
                // This endpoint never drains its ring again: the peer's
                // writes back up until its write-stall defenses fire.
                return Err(StreamError::WouldBlock);
            }
        }
        let mut dir = self.incoming().lock().expect("stream lock");
        if dir.buf.is_empty() {
            return if dir.closed {
                Ok(0)
            } else {
                Err(StreamError::WouldBlock)
            };
        }
        let n = dir.buf.len().min(out.len());
        for slot in out.iter_mut().take(n) {
            *slot = dir.buf.pop_front().expect("length checked");
        }
        dir.sync_readiness(self.core.capacity);
        Ok(n)
    }

    /// Writes up to `data.len()` bytes, bounded by the peer buffer's free
    /// space. Returns how many bytes were accepted (possibly fewer than
    /// `data.len()` — the caller must retry the remainder on writability).
    ///
    /// # Errors
    ///
    /// [`StreamError::WouldBlock`] when the peer buffer is full;
    /// [`StreamError::Closed`] when the connection is closed.
    pub fn write(&self, data: &[u8]) -> Result<usize, StreamError> {
        if data.is_empty() {
            return Ok(0);
        }
        let action = if self.core.any_faults.load(Ordering::Relaxed) {
            self.fault_write_action()
        } else {
            WriteAction::Normal
        };
        match action {
            WriteAction::Normal => self.write_clean(data),
            WriteAction::Discard => {
                // Half-open peer: the bytes go nowhere, successfully.
                Ok(data.len())
            }
            WriteAction::CorruptFirstByte(xor) => {
                let mut copy = data.to_vec();
                copy[0] ^= xor;
                self.write_clean(&copy)
            }
            WriteAction::TearThenClose(keep) => {
                let kept = if keep > 0 {
                    self.write_clean(&data[..keep.min(data.len())]).unwrap_or(0)
                } else {
                    0
                };
                self.close();
                if kept > 0 {
                    Ok(kept)
                } else {
                    Err(StreamError::Closed)
                }
            }
            WriteAction::ResetNow => {
                self.close();
                Err(StreamError::Closed)
            }
        }
    }

    /// The un-sabotaged write path.
    fn write_clean(&self, data: &[u8]) -> Result<usize, StreamError> {
        let mut dir = self.outgoing().lock().expect("stream lock");
        if dir.closed {
            return Err(StreamError::Closed);
        }
        let free = self.core.capacity - dir.buf.len();
        if free == 0 {
            return Err(StreamError::WouldBlock);
        }
        let n = free.min(data.len());
        dir.buf.extend(&data[..n]);
        dir.sync_readiness(self.core.capacity);
        Ok(n)
    }

    /// Consults (and advances) this endpoint's affliction for one write
    /// call. Runs under the fault lock only — the chosen action is
    /// executed afterwards, since closing takes both direction locks.
    fn fault_write_action(&self) -> WriteAction {
        let mut state = self.core.faults[self.side.idx()]
            .lock()
            .expect("fault lock");
        let Some(fault) = state.fault else {
            return WriteAction::Normal;
        };
        let n = state.writes;
        state.writes += 1;
        match fault {
            SocketFault::Reset { after_writes } if n >= after_writes => WriteAction::ResetNow,
            SocketFault::Torn { after_writes, keep } if n >= after_writes => {
                WriteAction::TearThenClose(keep)
            }
            SocketFault::Corrupt { after_writes, xor } if n == after_writes => {
                WriteAction::CorruptFirstByte(xor)
            }
            SocketFault::HalfOpen => WriteAction::Discard,
            _ => WriteAction::Normal,
        }
    }

    /// Installs a seeded socket affliction on **this** endpoint — see
    /// [`SocketFault`] for the shapes. The peer end observes the effects
    /// through the normal stream API, exactly as it would from a real
    /// broken TCP peer. Installing replaces any previous affliction and
    /// restarts its write counter.
    pub fn sabotage(&self, fault: SocketFault) {
        {
            let mut state = self.core.faults[self.side.idx()]
                .lock()
                .expect("fault lock");
            state.fault = Some(fault);
            state.writes = 0;
        }
        self.core.any_faults.store(true, Ordering::Relaxed);
    }

    /// Closes the connection in both directions. Buffered bytes remain
    /// readable; once drained the peer sees EOF. Idempotent.
    ///
    /// A half-open-sabotaged endpoint cannot close: it vanished without
    /// a FIN, so the peer never observes EOF — only deadlines save it.
    pub fn close(&self) {
        if self.core.any_faults.load(Ordering::Relaxed) {
            let state = self.core.faults[self.side.idx()]
                .lock()
                .expect("fault lock");
            if matches!(state.fault, Some(SocketFault::HalfOpen)) {
                return;
            }
        }
        for dir in [&self.core.ab, &self.core.ba] {
            let mut dir = dir.lock().expect("stream lock");
            if !dir.closed {
                dir.closed = true;
                dir.sync_readiness(self.core.capacity);
            }
        }
    }

    /// True once either end has closed (or been dropped).
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.incoming().lock().expect("stream lock").closed
    }

    /// Bytes currently buffered and readable by this end.
    #[must_use]
    pub fn readable_bytes(&self) -> usize {
        self.incoming().lock().expect("stream lock").buf.len()
    }

    /// Free space in the outgoing buffer (how much [`write`](Self::write)
    /// would accept right now).
    #[must_use]
    pub fn write_space(&self) -> usize {
        let dir = self.outgoing().lock().expect("stream lock");
        if dir.closed {
            0
        } else {
            self.core.capacity - dir.buf.len()
        }
    }

    /// Releases ring capacity held by *empty* buffers. Idle sessions call
    /// this to fall back to their floor cost.
    pub fn shrink(&self) {
        for dir in [&self.core.ab, &self.core.ba] {
            let mut dir = dir.lock().expect("stream lock");
            if dir.buf.is_empty() {
                dir.buf = VecDeque::new();
            }
        }
    }

    /// Accounted heap footprint of the whole pair (core struct plus both
    /// ring allocations). Deterministic — this is the figure the
    /// conn_scaling bench gates, not an RSS sample.
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        let ab = self.core.ab.lock().expect("stream lock").buf.capacity();
        let ba = self.core.ba.lock().expect("stream lock").buf.capacity();
        std::mem::size_of::<StreamCore>() + ab + ba
    }

    /// Installs (or clears, with `None`) the readiness registration for
    /// this end: it reads from the incoming direction and writes to the
    /// outgoing one. Current readiness is published immediately.
    pub(crate) fn set_registration(&self, reg: Option<Arc<RegInner>>) {
        {
            let mut dir = self.incoming().lock().expect("stream lock");
            dir.reader = reg.clone();
            dir.sync_readiness(self.core.capacity);
        }
        let mut dir = self.outgoing().lock().expect("stream lock");
        dir.writer = reg;
        dir.sync_readiness(self.core.capacity);
    }
}

impl Drop for ByteStream {
    fn drop(&mut self) {
        self.close();
        // Detach this end's registration so the peer's state can't keep
        // publishing readiness to a dead connection slot.
        self.set_registration(None);
    }
}

impl fmt::Debug for ByteStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ByteStream")
            .field(
                "side",
                match self.side {
                    Side::A => &"A",
                    Side::B => &"B",
                },
            )
            .field("readable", &self.readable_bytes())
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_both_directions() {
        let (a, b) = stream_pair(64);
        assert_eq!(a.write(b"ping").unwrap(), 4);
        let mut buf = [0u8; 16];
        assert_eq!(b.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
        assert_eq!(b.write(b"pong").unwrap(), 4);
        assert_eq!(a.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"pong");
    }

    #[test]
    fn empty_read_would_block() {
        let (a, _b) = stream_pair(64);
        let mut buf = [0u8; 4];
        assert_eq!(a.read(&mut buf), Err(StreamError::WouldBlock));
    }

    #[test]
    fn write_is_partial_when_nearly_full() {
        let (a, _b) = stream_pair(4);
        assert_eq!(a.write(b"abcdef").unwrap(), 4);
        assert_eq!(a.write(b"gh"), Err(StreamError::WouldBlock));
    }

    #[test]
    fn backpressure_releases_as_peer_drains() {
        let (a, b) = stream_pair(4);
        assert_eq!(a.write(b"abcd").unwrap(), 4);
        assert_eq!(a.write(b"e"), Err(StreamError::WouldBlock));
        let mut buf = [0u8; 2];
        assert_eq!(b.read(&mut buf).unwrap(), 2);
        assert_eq!(&buf, b"ab");
        assert_eq!(a.write(b"ef").unwrap(), 2);
        let mut rest = [0u8; 8];
        assert_eq!(b.read(&mut rest).unwrap(), 4);
        assert_eq!(&rest[..4], b"cdef");
    }

    #[test]
    fn close_drains_then_eof() {
        let (a, b) = stream_pair(64);
        a.write(b"tail").unwrap();
        a.close();
        assert_eq!(a.write(b"x"), Err(StreamError::Closed));
        let mut buf = [0u8; 16];
        assert_eq!(b.read(&mut buf).unwrap(), 4);
        assert_eq!(b.read(&mut buf).unwrap(), 0, "EOF after drain");
        assert_eq!(b.write(b"y"), Err(StreamError::Closed));
    }

    #[test]
    fn drop_closes_the_peer() {
        let (a, b) = stream_pair(64);
        a.write(b"zz").unwrap();
        drop(a);
        let mut buf = [0u8; 4];
        assert_eq!(b.read(&mut buf).unwrap(), 2);
        assert_eq!(b.read(&mut buf).unwrap(), 0);
        assert!(b.is_closed());
    }

    #[test]
    fn shrink_releases_idle_buffers() {
        let (a, b) = stream_pair(4096);
        a.write(&[0u8; 1024]).unwrap();
        let mut buf = [0u8; 2048];
        b.read(&mut buf).unwrap();
        let before = a.mem_bytes();
        a.shrink();
        let after = a.mem_bytes();
        assert!(
            after < before,
            "shrink freed ring memory: {before} -> {after}"
        );
        assert_eq!(after, std::mem::size_of::<StreamCore>());
    }

    #[test]
    fn reset_fault_closes_after_the_drawn_write() {
        let (a, b) = stream_pair(64);
        a.sabotage(SocketFault::Reset { after_writes: 2 });
        assert_eq!(a.write(b"one").unwrap(), 3);
        assert_eq!(a.write(b"two").unwrap(), 3);
        assert_eq!(a.write(b"three"), Err(StreamError::Closed));
        let mut buf = [0u8; 16];
        assert_eq!(b.read(&mut buf).unwrap(), 6, "pre-reset bytes arrive");
        assert_eq!(b.read(&mut buf).unwrap(), 0, "then EOF");
        assert_eq!(b.write(b"x"), Err(StreamError::Closed));
    }

    #[test]
    fn torn_fault_delivers_a_prefix_then_closes() {
        let (a, b) = stream_pair(64);
        a.sabotage(SocketFault::Torn {
            after_writes: 0,
            keep: 2,
        });
        assert_eq!(a.write(b"abcdef"), Ok(2), "only the torn prefix lands");
        let mut buf = [0u8; 16];
        assert_eq!(b.read(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"ab");
        assert_eq!(b.read(&mut buf).unwrap(), 0, "EOF mid-frame");
    }

    #[test]
    fn corrupt_fault_flips_exactly_one_byte_once() {
        let (a, b) = stream_pair(64);
        a.sabotage(SocketFault::Corrupt {
            after_writes: 1,
            xor: 0x40,
        });
        a.write(b"clean").unwrap();
        a.write(b"dirty").unwrap();
        a.write(b"clean").unwrap();
        let mut buf = [0u8; 32];
        let n = b.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"clean\x24irtyclean");
    }

    #[test]
    fn stuck_fault_never_drains_so_the_peer_backs_up() {
        let (a, b) = stream_pair(4);
        a.sabotage(SocketFault::Stuck);
        // The stuck peer can still write...
        assert_eq!(a.write(b"hi").unwrap(), 2);
        // ...but never reads, so the victim's ring fills and stays full.
        assert_eq!(b.write(b"abcd").unwrap(), 4);
        assert_eq!(b.write(b"e"), Err(StreamError::WouldBlock));
        let mut buf = [0u8; 8];
        assert_eq!(a.read(&mut buf), Err(StreamError::WouldBlock));
        assert_eq!(b.write(b"e"), Err(StreamError::WouldBlock));
    }

    #[test]
    fn half_open_fault_discards_writes_and_suppresses_eof() {
        let (a, b) = stream_pair(64);
        a.sabotage(SocketFault::HalfOpen);
        assert_eq!(a.write(b"ghost").unwrap(), 5, "writes pretend to land");
        let mut buf = [0u8; 8];
        assert_eq!(
            b.read(&mut buf),
            Err(StreamError::WouldBlock),
            "nothing actually arrived"
        );
        a.close();
        drop(a);
        // The peer never learns: no EOF, no Closed — just silence.
        assert_eq!(b.read(&mut buf), Err(StreamError::WouldBlock));
        assert!(!b.is_closed());
        assert_eq!(b.write(b"hello?").unwrap(), 6);
    }

    #[test]
    fn partial_reads_reassemble() {
        let (a, b) = stream_pair(1024);
        a.write(b"the quick brown fox").unwrap();
        let mut got = Vec::new();
        let mut one = [0u8; 1];
        while let Ok(n) = b.read(&mut one) {
            if n == 0 {
                break;
            }
            got.extend_from_slice(&one[..n]);
            if got.len() == 19 {
                break;
            }
        }
        assert_eq!(got, b"the quick brown fox");
    }
}
