//! Incremental length-prefixed framing over byte streams.
//!
//! The framed front tier speaks `len(u32 LE) ‖ payload` on top of
//! [`ByteStream`]s, with the payload bytes produced by the zero-copy
//! wire codec in `xsearch-core`. Both directions are incremental and
//! copy-free at the framing layer:
//!
//! * [`FrameDecoder`] reassembles frames split across arbitrary read
//!   boundaries (1-byte reads, split length prefixes, coalesced frames)
//!   and yields each payload as a **borrowed slice** into its buffer —
//!   the one unavoidable copy is stream → buffer; the payload is never
//!   copied again to be returned.
//! * [`FrameEncoder`] writes the 4-byte header and then the payload
//!   **directly from the caller's slice**, surviving partial writes, so
//!   an outbound frame is never staged in an intermediate buffer.

use crate::stream::{ByteStream, StreamError};
use std::fmt;

/// Frame header size: a little-endian `u32` payload length.
pub const HEADER_LEN: usize = 4;

/// Default ceiling on a single frame's payload, matching the proxy's
/// largest sealed response well within an order of magnitude.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Errors from the framing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The peer announced a frame larger than the configured ceiling —
    /// either corruption or an attempted memory-exhaustion attack.
    TooLarge {
        /// Announced payload length.
        len: usize,
        /// Configured ceiling.
        max: usize,
    },
    /// The connection ended mid-frame: a typed error, never a partial
    /// payload.
    Torn {
        /// Bytes of the unfinished frame that did arrive.
        buffered: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds ceiling of {max}")
            }
            FrameError::Torn { buffered } => {
                write!(f, "connection torn mid-frame ({buffered} bytes buffered)")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends `len ‖ payload` to `out` — the one-shot path for callers
/// that already own an output buffer (tests, blocking clients).
///
/// # Panics
///
/// Panics if `payload` exceeds `u32::MAX` bytes.
pub fn encode_frame_into(payload: &[u8], out: &mut Vec<u8>) {
    let len = u32::try_from(payload.len()).expect("frame fits in u32");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Incremental frame reassembly with zero-copy payload hand-off.
///
/// A decoder that has reported [`FrameError::TooLarge`] is **poisoned**:
/// the stream position is inside a frame that will never be buffered, so
/// no later byte can be framed. Every subsequent call keeps failing the
/// same way ([`next_frame`](Self::next_frame) and
/// [`finish`](Self::finish) return the original error, reads report EOF)
/// — the connection must be closed, and the terminal state is
/// deterministic rather than dependent on what the caller does next.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily.
    start: usize,
    max_frame: usize,
    /// Set on the first `TooLarge`; makes the failure sticky.
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    /// A decoder with the [`DEFAULT_MAX_FRAME`] payload ceiling.
    #[must_use]
    pub fn new() -> Self {
        Self::with_max_frame(DEFAULT_MAX_FRAME)
    }

    /// A decoder rejecting payloads larger than `max_frame`.
    #[must_use]
    pub fn with_max_frame(max_frame: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
            max_frame,
            poisoned: None,
        }
    }

    /// True once the decoder has reported an oversized frame: the stream
    /// can never be framed again and the connection should be closed.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Reclaims the consumed prefix. Cheap when fully drained (the
    /// common case: `clear`); otherwise only compacts once the dead
    /// prefix dominates, keeping push cost amortized O(1).
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Feeds a chunk of stream bytes into the decoder. A poisoned
    /// decoder drops the bytes: they belong to a frame that was already
    /// rejected as oversized.
    pub fn push(&mut self, chunk: &[u8]) {
        if self.poisoned.is_some() {
            return;
        }
        self.compact();
        self.buf.extend_from_slice(chunk);
    }

    /// Reads up to `budget` bytes from `stream` straight into the
    /// decoder's buffer (no intermediate copy). Returns the byte count;
    /// `Ok(0)` means EOF.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamError`] from the read (`WouldBlock` when
    /// nothing is buffered).
    pub fn read_from(&mut self, stream: &ByteStream, budget: usize) -> Result<usize, StreamError> {
        if self.poisoned.is_some() {
            // The stream is unframeable; report EOF so the caller tears
            // the connection down instead of buffering attacker bytes.
            return Ok(0);
        }
        self.compact();
        let old = self.buf.len();
        self.buf.resize(old + budget, 0);
        match stream.read(&mut self.buf[old..]) {
            Ok(n) => {
                self.buf.truncate(old + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(old);
                Err(e)
            }
        }
    }

    /// Yields the next complete payload as a slice borrowed from the
    /// internal buffer, or `None` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`FrameError::TooLarge`] when the announced length exceeds the
    /// ceiling — the decoder is poisoned (every later call fails the
    /// same way), the connection must be torn down, and the stream can
    /// no longer be framed.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, FrameError> {
        if let Some(err) = self.poisoned {
            return Err(err);
        }
        let avail = self.buf.len() - self.start;
        if avail < HEADER_LEN {
            return Ok(None);
        }
        let header: [u8; HEADER_LEN] = self.buf[self.start..self.start + HEADER_LEN]
            .try_into()
            .expect("header length checked");
        let len = u32::from_le_bytes(header) as usize;
        if len > self.max_frame {
            let err = FrameError::TooLarge {
                len,
                max: self.max_frame,
            };
            self.poisoned = Some(err);
            // Release what was buffered: none of it will ever be framed.
            self.buf = Vec::new();
            self.start = 0;
            return Err(err);
        }
        if avail - HEADER_LEN < len {
            return Ok(None);
        }
        let begin = self.start + HEADER_LEN;
        self.start = begin + len;
        Ok(Some(&self.buf[begin..begin + len]))
    }

    /// True when a frame has started arriving but is not yet complete.
    #[must_use]
    pub fn is_mid_frame(&self) -> bool {
        self.buf.len() > self.start
    }

    /// Declares end-of-stream: returns the typed [`FrameError::Torn`]
    /// when the peer disconnected mid-frame, never a partial payload.
    ///
    /// # Errors
    ///
    /// [`FrameError::Torn`] if buffered bytes form an unfinished frame;
    /// the original [`FrameError::TooLarge`] if the decoder is poisoned.
    pub fn finish(&self) -> Result<(), FrameError> {
        if let Some(err) = self.poisoned {
            return Err(err);
        }
        let buffered = self.buf.len() - self.start;
        if buffered == 0 {
            Ok(())
        } else {
            Err(FrameError::Torn { buffered })
        }
    }

    /// Releases buffer capacity when the decoder is drained — idle
    /// sessions call this so a burst does not pin its high-water mark.
    pub fn shrink(&mut self) {
        if self.start == self.buf.len() {
            self.buf = Vec::new();
            self.start = 0;
        }
    }

    /// Accounted heap footprint of the reassembly buffer.
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        self.buf.capacity()
    }
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

/// Incremental, copy-free frame writer: survives partial writes by
/// tracking how far through `header ‖ payload` the stream has accepted.
#[derive(Debug)]
pub struct FrameEncoder {
    header: [u8; HEADER_LEN],
    sent: usize,
    total: usize,
}

impl FrameEncoder {
    /// Starts a frame for a payload of `payload_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `payload_len` exceeds `u32::MAX`.
    #[must_use]
    pub fn new(payload_len: usize) -> Self {
        let len = u32::try_from(payload_len).expect("frame fits in u32");
        FrameEncoder {
            header: len.to_le_bytes(),
            sent: 0,
            total: HEADER_LEN + payload_len,
        }
    }

    /// Pushes as much of the frame as the stream will take, writing the
    /// payload portion directly from `payload` (which must be the same
    /// slice on every call for this frame). Returns `Ok(true)` once the
    /// frame is fully written; `Ok(false)` means backpressure — retry on
    /// writability.
    ///
    /// # Errors
    ///
    /// [`StreamError::Closed`] if the connection died; `WouldBlock` is
    /// absorbed into `Ok(false)`.
    pub fn write_to(&mut self, stream: &ByteStream, payload: &[u8]) -> Result<bool, StreamError> {
        debug_assert_eq!(payload.len() + HEADER_LEN, self.total, "same payload");
        while self.sent < self.total {
            let chunk = if self.sent < HEADER_LEN {
                &self.header[self.sent..]
            } else {
                &payload[self.sent - HEADER_LEN..]
            };
            match stream.write(chunk) {
                Ok(n) => self.sent += n,
                Err(StreamError::WouldBlock) => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// True once the whole frame has been accepted by the stream.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.sent == self.total
    }

    /// Bytes still unwritten (header + payload remainder).
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.total - self.sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::stream_pair;
    use proptest::prelude::*;

    fn decode_all(decoder: &mut FrameDecoder) -> Vec<Vec<u8>> {
        let mut frames = Vec::new();
        while let Some(frame) = decoder.next_frame().expect("valid frames") {
            frames.push(frame.to_vec());
        }
        frames
    }

    #[test]
    fn single_frame_roundtrip() {
        let mut wire = Vec::new();
        encode_frame_into(b"hello", &mut wire);
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert_eq!(decode_all(&mut dec), vec![b"hello".to_vec()]);
        assert!(dec.finish().is_ok());
    }

    #[test]
    fn empty_payload_is_a_frame() {
        let mut wire = Vec::new();
        encode_frame_into(b"", &mut wire);
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert_eq!(decode_all(&mut dec), vec![Vec::<u8>::new()]);
    }

    #[test]
    fn one_byte_reads_reassemble() {
        let mut wire = Vec::new();
        encode_frame_into(b"split across reads", &mut wire);
        let mut dec = FrameDecoder::new();
        for byte in &wire {
            dec.push(std::slice::from_ref(byte));
        }
        assert_eq!(decode_all(&mut dec), vec![b"split across reads".to_vec()]);
    }

    #[test]
    fn coalesced_frames_all_emerge() {
        let mut wire = Vec::new();
        for payload in [&b"one"[..], b"two", b"three"] {
            encode_frame_into(payload, &mut wire);
        }
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert_eq!(
            decode_all(&mut dec),
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut dec = FrameDecoder::with_max_frame(8);
        dec.push(&9u32.to_le_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::TooLarge { len: 9, max: 8 })
        );
    }

    #[test]
    fn oversized_frame_poisons_the_decoder() {
        // Regression: the decoder used to leave the rejected header in
        // the buffer, so the post-`TooLarge` state depended on what the
        // caller did next (re-polling could loop on the same error while
        // new reads kept buffering attacker bytes). The failure must be
        // terminal and sticky.
        let mut dec = FrameDecoder::with_max_frame(8);
        dec.push(&100u32.to_le_bytes());
        let err = FrameError::TooLarge { len: 100, max: 8 };
        assert_eq!(dec.next_frame(), Err(err));
        assert!(dec.is_poisoned());
        assert_eq!(dec.mem_bytes(), 0, "rejected bytes are released");

        // A perfectly valid frame pushed afterwards changes nothing.
        let mut wire = Vec::new();
        encode_frame_into(b"ok", &mut wire);
        dec.push(&wire);
        assert_eq!(dec.next_frame(), Err(err));
        assert_eq!(dec.finish(), Err(err));
        assert!(!dec.is_mid_frame());

        // Stream reads report EOF so the connection tears down instead
        // of draining the peer forever.
        let (a, b) = stream_pair(64);
        a.write(&wire).unwrap();
        assert_eq!(dec.read_from(&b, 64), Ok(0));
    }

    #[test]
    fn torn_mid_payload_is_typed() {
        let mut wire = Vec::new();
        encode_frame_into(b"abcdef", &mut wire);
        let mut dec = FrameDecoder::new();
        dec.push(&wire[..7]); // header + 3 of 6 payload bytes
        assert_eq!(dec.next_frame(), Ok(None));
        assert!(dec.is_mid_frame());
        assert_eq!(dec.finish(), Err(FrameError::Torn { buffered: 7 }));
    }

    #[test]
    fn torn_mid_header_is_typed() {
        let mut dec = FrameDecoder::new();
        dec.push(&[3, 0]);
        assert_eq!(dec.next_frame(), Ok(None));
        assert_eq!(dec.finish(), Err(FrameError::Torn { buffered: 2 }));
    }

    #[test]
    fn encoder_survives_tiny_peer_buffer() {
        let (a, b) = stream_pair(3);
        let payload = b"a payload well beyond three bytes";
        let mut enc = FrameEncoder::new(payload.len());
        let mut dec = FrameDecoder::new();
        loop {
            let done = enc.write_to(&a, payload).unwrap();
            while dec.read_from(&b, 64).unwrap_or(0) > 0 {}
            if done {
                break;
            }
        }
        assert_eq!(decode_all(&mut dec), vec![payload.to_vec()]);
    }

    #[test]
    fn encoder_reports_closed_peer() {
        let (a, b) = stream_pair(4);
        drop(b);
        let mut enc = FrameEncoder::new(10);
        assert_eq!(enc.write_to(&a, &[0u8; 10]), Err(StreamError::Closed));
    }

    #[test]
    fn shrink_releases_drained_buffer() {
        let mut wire = Vec::new();
        encode_frame_into(&[0u8; 4096], &mut wire);
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        let _ = decode_all(&mut dec);
        assert!(dec.mem_bytes() >= 4096);
        dec.shrink();
        assert_eq!(dec.mem_bytes(), 0);
    }

    proptest! {
        /// Any chunking of any frame sequence decodes byte-identically
        /// to the whole-buffer decode.
        #[test]
        fn arbitrary_chunking_matches_whole_decode(
            payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..8),
            cuts in proptest::collection::vec(1usize..16, 0..64),
        ) {
            let mut wire = Vec::new();
            for p in &payloads {
                encode_frame_into(p, &mut wire);
            }

            let mut whole = FrameDecoder::new();
            whole.push(&wire);
            let expected = decode_all(&mut whole);
            prop_assert_eq!(&expected, &payloads);

            let mut chunked = FrameDecoder::new();
            let mut got = Vec::new();
            let mut pos = 0;
            for cut in &cuts {
                let end = (pos + cut).min(wire.len());
                chunked.push(&wire[pos..end]);
                got.extend(decode_all(&mut chunked));
                pos = end;
            }
            chunked.push(&wire[pos..]);
            got.extend(decode_all(&mut chunked));
            prop_assert_eq!(got, expected);
            prop_assert!(chunked.finish().is_ok());
        }

        /// Truncating the wire anywhere inside a frame yields a typed
        /// torn error at EOF — never a partial payload.
        #[test]
        fn truncation_never_yields_partial_frames(
            payload in proptest::collection::vec(any::<u8>(), 1..128),
            frac in 0.0f64..1.0,
        ) {
            let mut wire = Vec::new();
            encode_frame_into(&payload, &mut wire);
            #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let cut = ((wire.len() - 1) as f64 * frac) as usize + 1; // 1..len
            let torn = &wire[..cut.min(wire.len() - 1)];

            let mut dec = FrameDecoder::new();
            dec.push(torn);
            prop_assert_eq!(dec.next_frame(), Ok(None));
            prop_assert!(matches!(dec.finish(), Err(FrameError::Torn { .. })));
        }

        /// Arbitrary hostile bytes never panic the decoder, and once any
        /// chunking of them produces `TooLarge` the decoder stays in that
        /// terminal state no matter what arrives afterwards.
        #[test]
        fn hostile_bytes_never_panic_and_toolarge_is_sticky(
            chunks in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..32), 0..16),
            max_frame in 1usize..64,
        ) {
            let mut dec = FrameDecoder::with_max_frame(max_frame);
            let mut poison: Option<FrameError> = None;
            for chunk in &chunks {
                dec.push(chunk);
                loop {
                    match dec.next_frame() {
                        Ok(Some(frame)) => {
                            prop_assert!(poison.is_none());
                            prop_assert!(frame.len() <= max_frame);
                        }
                        Ok(None) => break,
                        Err(e) => {
                            match poison {
                                None => poison = Some(e),
                                // The first error is the error forever.
                                Some(first) => prop_assert_eq!(e, first),
                            }
                            prop_assert!(dec.is_poisoned());
                            break;
                        }
                    }
                }
            }
            if let Some(first) = poison {
                prop_assert_eq!(dec.finish(), Err(first));
            }
        }
    }
}
