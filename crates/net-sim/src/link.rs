//! A named network link with a one-way delay model.
//!
//! Delays are *accounted*, not slept: an experiment asks a link for a
//! sampled one-way or round-trip delay and adds it to its latency budget.
//! This keeps the Fig 7 end-to-end experiment deterministic and fast while
//! preserving the distributional shape.

use crate::delay::DelayModel;
use rand::Rng;
use std::time::Duration;

/// A point-to-point link.
#[derive(Debug, Clone)]
pub struct Link {
    name: String,
    delay: DelayModel,
}

impl Link {
    /// Creates a link with a one-way delay model.
    ///
    /// # Example
    ///
    /// ```
    /// use xsearch_net_sim::{Link, DelayModel};
    /// use rand::SeedableRng;
    ///
    /// let link = Link::new("client-proxy", DelayModel::constant_ms(20));
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    /// assert_eq!(link.rtt(&mut rng).as_millis(), 40);
    /// ```
    #[must_use]
    pub fn new(name: impl Into<String>, delay: DelayModel) -> Self {
        Link {
            name: name.into(),
            delay,
        }
    }

    /// The link's label (for reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Samples a one-way traversal delay.
    pub fn one_way<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        self.delay.sample(rng)
    }

    /// Samples a round trip: two independent one-way traversals.
    pub fn rtt<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        self.one_way(rng) + self.one_way(rng)
    }

    /// The underlying delay model.
    #[must_use]
    pub fn delay_model(&self) -> &DelayModel {
        &self.delay
    }
}

/// The WAN topology of the paper's deployment, calibrated per DESIGN.md §6.
#[derive(Debug, Clone)]
pub struct WanModel {
    /// Client (broker) ↔ X-Search/PEAS proxy in a public cloud.
    pub client_proxy: Link,
    /// Proxy ↔ search engine.
    pub proxy_engine: Link,
    /// Client ↔ search engine directly (the Direct baseline).
    pub client_engine: Link,
    /// One Tor relay hop (client→guard, relay→relay, exit→engine all use
    /// independent samples of this link).
    pub tor_hop: Link,
    /// Search-engine service time (query evaluation at Bing).
    pub engine_service: DelayModel,
}

impl Default for WanModel {
    fn default() -> Self {
        WanModel {
            client_proxy: Link::new("client-proxy", DelayModel::lognormal_ms(20, 0.35)),
            proxy_engine: Link::new("proxy-engine", DelayModel::lognormal_ms(15, 0.35)),
            client_engine: Link::new("client-engine", DelayModel::lognormal_ms(18, 0.35)),
            tor_hop: Link::new("tor-hop", DelayModel::lognormal_ms(110, 0.55)),
            engine_service: DelayModel::lognormal_ms(380, 0.25),
        }
    }
}

/// Per-replica front-tier links for a multi-enclave proxy fleet: the
/// router sits in the same data center as the replicas, but racks are
/// heterogeneous, so each replica gets its own (deterministically varied)
/// one-way delay model. Like everything in this crate, delays are
/// *accounted*, not slept.
#[derive(Debug, Clone)]
pub struct FleetModel {
    /// Router ↔ replica `i` (index into the fleet).
    pub router_replica: Vec<Link>,
}

impl FleetModel {
    /// Base median one-way delay between router and a replica, in µs.
    pub const BASE_HOP_US: u64 = 250;

    /// Builds links for `replicas` nodes: replica `i` gets a log-normal
    /// one-way delay whose median is the base hop plus a per-replica
    /// skew of `i % 4` × 50 µs — enough spread that placement policies
    /// see a heterogeneous fleet, small enough that the hop never
    /// dominates the enclave service time.
    #[must_use]
    pub fn new(replicas: usize) -> Self {
        FleetModel {
            router_replica: (0..replicas)
                .map(|i| {
                    let median_us = Self::BASE_HOP_US + 50 * (i as u64 % 4);
                    Link::new(
                        format!("router-replica{i}"),
                        DelayModel::lognormal_us(median_us, 0.25),
                    )
                })
                .collect(),
        }
    }

    /// The link to replica `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range for the fleet.
    #[must_use]
    pub fn link(&self, i: usize) -> &Link {
        &self.router_replica[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rtt_is_sum_of_two_one_ways_for_constant() {
        let link = Link::new("l", DelayModel::constant_ms(30));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(link.rtt(&mut rng), Duration::from_millis(60));
    }

    #[test]
    fn name_is_preserved() {
        assert_eq!(
            Link::new("alpha", DelayModel::constant_ms(1)).name(),
            "alpha"
        );
    }

    #[test]
    fn default_wan_orders_paths_sensibly() {
        // A Tor hop is slower than the direct paths; the engine dominates.
        let wan = WanModel::default();
        assert!(wan.tor_hop.delay_model().median() > wan.client_proxy.delay_model().median());
        assert!(wan.engine_service.median() > wan.tor_hop.delay_model().median());
    }

    #[test]
    fn fleet_links_are_per_replica_and_heterogeneous() {
        let fleet = FleetModel::new(8);
        assert_eq!(fleet.router_replica.len(), 8);
        assert_eq!(fleet.link(0).name(), "router-replica0");
        // Replicas 0 and 1 sit on different racks: different medians.
        assert!(fleet.link(1).delay_model().median() > fleet.link(0).delay_model().median());
        // The hop stays intra-DC: well under a WAN client-proxy hop.
        let wan = WanModel::default();
        assert!(
            fleet.link(3).delay_model().median() * 10 < wan.client_proxy.delay_model().median()
        );
    }

    #[test]
    fn direct_median_rtt_lands_near_paper_scale() {
        // Direct search: client-engine RTT + engine service ≈ 0.42 s median,
        // matching Fig 7's Direct curve being comfortably under X-Search's
        // 0.577 s median.
        let wan = WanModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut samples: Vec<f64> = (0..2001)
            .map(|_| {
                (wan.client_engine.rtt(&mut rng) + wan.engine_service.sample(&mut rng))
                    .as_secs_f64()
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((0.30..0.60).contains(&median), "median {median}");
    }
}
