//! An epoll-style readiness reactor for simulated byte streams.
//!
//! The front tier multiplexes hundreds of thousands of mostly-idle
//! sessions onto a few threads: each connection registers its
//! [`ByteStream`] with a token and an interest set, and
//! [`Reactor::poll`] reports which registered streams are ready. The
//! model is **level-triggered**: a stream that stays readable keeps
//! being reported until the condition clears, so a handler that reads
//! less than everything is woken again on the next poll.
//!
//! Determinism: the reactor holds no clock and no RNG. Readiness events
//! enter a FIFO queue in the order the state changes happened, and
//! [`Reactor::poll`] drains that queue in order — a single-threaded
//! driver (stream ops and polls interleaved on one thread) produces an
//! exactly reproducible event sequence, which is what keeps the chaos
//! replay gate byte-identical over the framed front.

use crate::stream::ByteStream;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Duration;

/// Readable readiness / interest bit.
pub(crate) const READABLE: u8 = 0b01;
/// Writable readiness / interest bit.
pub(crate) const WRITABLE: u8 = 0b10;

/// A caller-chosen identifier for one registration, echoed back in
/// every [`Event`] — typically an index into a connection slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// Which readiness kinds a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Wake when the stream has bytes to read (or has hit EOF).
    pub const READABLE: Interest = Interest(READABLE);
    /// Wake when the stream can accept more bytes (or is closed, so the
    /// write error can be observed promptly).
    pub const WRITABLE: Interest = Interest(WRITABLE);
    /// No wakeups — parks the registration without tearing it down.
    /// This is the backpressure lever: a connection whose request is in
    /// flight drops to `NONE` so the reactor stops reading from it.
    pub const NONE: Interest = Interest(0);

    /// Combines two interest sets.
    #[must_use]
    pub fn and(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// True if this set includes readable interest.
    #[must_use]
    pub fn is_readable(self) -> bool {
        self.0 & READABLE != 0
    }

    /// True if this set includes writable interest.
    #[must_use]
    pub fn is_writable(self) -> bool {
        self.0 & WRITABLE != 0
    }
}

/// One readiness report from [`Reactor::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the stream was registered with.
    pub token: Token,
    /// The stream has buffered bytes (or EOF) to read.
    pub readable: bool,
    /// The stream can accept writes (or is closed).
    pub writable: bool,
}

/// Shared state between a registration and its reactor's ready queue.
#[derive(Debug)]
pub(crate) struct RegInner {
    token: u64,
    interest: AtomicU8,
    ready: AtomicU8,
    queued: AtomicBool,
    queue: Weak<ReadyQueue>,
}

impl RegInner {
    /// Sets or clears one readiness bit, enqueueing a wakeup when a bit
    /// of current interest turns on. Called by the stream under its
    /// direction lock; only atomics and the (separate) queue lock are
    /// touched here, so lock order is always stream → queue.
    pub(crate) fn update_ready(self: &Arc<Self>, bit: u8, on: bool) {
        if on {
            self.ready.fetch_or(bit, Ordering::Release);
            if self.interest.load(Ordering::Acquire) & bit != 0 {
                self.enqueue();
            }
        } else {
            self.ready.fetch_and(!bit, Ordering::Release);
        }
    }

    fn enqueue(self: &Arc<Self>) {
        if self.queued.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(queue) = self.queue.upgrade() {
            queue.push(Arc::clone(self));
        } else {
            self.queued.store(false, Ordering::Release);
        }
    }
}

pub(crate) struct ReadyQueue {
    entries: Mutex<VecDeque<Arc<RegInner>>>,
    wakeup: Condvar,
}

impl ReadyQueue {
    fn push(&self, reg: Arc<RegInner>) {
        self.entries.lock().expect("reactor lock").push_back(reg);
        self.wakeup.notify_one();
    }
}

/// A live registration handle returned by [`Reactor::register`].
///
/// The connection owner keeps this alongside its stream; dropping it
/// does **not** deregister — call [`Reactor::deregister`] so the stream
/// stops publishing readiness into a dead slot.
#[derive(Debug)]
pub struct Registration {
    inner: Arc<RegInner>,
}

impl Registration {
    /// Replaces the interest set. Newly-interesting readiness that is
    /// already pending is reported on the next poll (level-triggered).
    pub fn set_interest(&self, interest: Interest) {
        self.inner.interest.store(interest.0, Ordering::Release);
        if self.inner.ready.load(Ordering::Acquire) & interest.0 != 0 {
            self.inner.enqueue();
        }
    }

    /// The current interest set.
    #[must_use]
    pub fn interest(&self) -> Interest {
        Interest(self.inner.interest.load(Ordering::Acquire))
    }

    /// Accounted heap footprint of this registration.
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<RegInner>()
    }
}

/// An epoll-style readiness poller over [`ByteStream`]s.
pub struct Reactor {
    queue: Arc<ReadyQueue>,
    registered: AtomicU64,
}

impl Default for Reactor {
    fn default() -> Self {
        Self::new()
    }
}

impl Reactor {
    /// Creates an empty reactor.
    #[must_use]
    pub fn new() -> Self {
        Reactor {
            queue: Arc::new(ReadyQueue {
                entries: Mutex::new(VecDeque::new()),
                wakeup: Condvar::new(),
            }),
            registered: AtomicU64::new(0),
        }
    }

    /// Registers a stream end. Readiness already present (buffered
    /// bytes, EOF, free write space) is reported on the first poll.
    #[must_use]
    pub fn register(&self, stream: &ByteStream, token: Token, interest: Interest) -> Registration {
        let inner = Arc::new(RegInner {
            token: token.0,
            interest: AtomicU8::new(interest.0),
            ready: AtomicU8::new(0),
            queued: AtomicBool::new(false),
            queue: Arc::downgrade(&self.queue),
        });
        stream.set_registration(Some(Arc::clone(&inner)));
        self.registered.fetch_add(1, Ordering::Relaxed);
        Registration { inner }
    }

    /// Detaches a registration from its stream. Stale queue entries are
    /// skipped lazily by later polls.
    pub fn deregister(&self, stream: &ByteStream, reg: &Registration) {
        reg.set_interest(Interest::NONE);
        stream.set_registration(None);
        self.registered.fetch_sub(1, Ordering::Relaxed);
    }

    /// Number of live registrations.
    #[must_use]
    pub fn registered(&self) -> usize {
        usize::try_from(self.registered.load(Ordering::Relaxed)).unwrap_or(usize::MAX)
    }

    /// Drains currently-pending readiness into `events` (cleared first)
    /// without blocking. Returns the number of events delivered.
    ///
    /// Level-triggered: a registration whose readiness still intersects
    /// its interest after being reported is re-queued for the next poll.
    /// Each registration is examined at most once per call, so a handler
    /// that never drains its stream cannot livelock a single poll.
    pub fn poll(&self, events: &mut Vec<Event>) -> usize {
        events.clear();
        let budget = self.queue.entries.lock().expect("reactor lock").len();
        for _ in 0..budget {
            let Some(reg) = self.queue.entries.lock().expect("reactor lock").pop_front() else {
                break;
            };
            reg.queued.store(false, Ordering::Release);
            let interest = reg.interest.load(Ordering::Acquire);
            let ready = reg.ready.load(Ordering::Acquire) & interest;
            if ready == 0 {
                continue; // stale: interest dropped or condition cleared
            }
            events.push(Event {
                token: Token(reg.token),
                readable: ready & READABLE != 0,
                writable: ready & WRITABLE != 0,
            });
            // Level-triggered re-arm: if the handler leaves the
            // condition standing, the next poll reports it again.
            reg.enqueue();
        }
        events.len()
    }

    /// Like [`poll`](Self::poll), but blocks up to `timeout` for the
    /// first event when the queue is empty.
    pub fn poll_wait(&self, events: &mut Vec<Event>, timeout: Duration) -> usize {
        if self.poll(events) > 0 {
            return events.len();
        }
        {
            let entries = self.queue.entries.lock().expect("reactor lock");
            if entries.is_empty() {
                let _unused = self
                    .queue
                    .wakeup
                    .wait_timeout(entries, timeout)
                    .expect("reactor lock");
            }
        }
        self.poll(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::stream_pair;

    fn poll_tokens(reactor: &Reactor) -> Vec<(Token, bool, bool)> {
        let mut events = Vec::new();
        reactor.poll(&mut events);
        events
            .iter()
            .map(|e| (e.token, e.readable, e.writable))
            .collect()
    }

    #[test]
    fn fresh_stream_is_writable_not_readable() {
        let reactor = Reactor::new();
        let (a, _b) = stream_pair(64);
        let _reg = reactor.register(&a, Token(7), Interest::READABLE.and(Interest::WRITABLE));
        assert_eq!(poll_tokens(&reactor), vec![(Token(7), false, true)]);
    }

    #[test]
    fn write_wakes_reader() {
        let reactor = Reactor::new();
        let (a, b) = stream_pair(64);
        let _reg = reactor.register(&b, Token(1), Interest::READABLE);
        let mut events = Vec::new();
        assert_eq!(reactor.poll(&mut events), 0);
        a.write(b"hi").unwrap();
        assert_eq!(poll_tokens(&reactor), vec![(Token(1), true, false)]);
    }

    #[test]
    fn level_triggered_until_drained() {
        let reactor = Reactor::new();
        let (a, b) = stream_pair(64);
        let _reg = reactor.register(&b, Token(2), Interest::READABLE);
        a.write(b"abcd").unwrap();
        // Not draining: reported again on every poll.
        assert_eq!(poll_tokens(&reactor).len(), 1);
        assert_eq!(poll_tokens(&reactor).len(), 1);
        let mut buf = [0u8; 16];
        b.read(&mut buf).unwrap();
        assert_eq!(poll_tokens(&reactor).len(), 0);
    }

    #[test]
    fn interest_none_parks_the_connection() {
        let reactor = Reactor::new();
        let (a, b) = stream_pair(64);
        let reg = reactor.register(&b, Token(3), Interest::READABLE);
        reg.set_interest(Interest::NONE);
        a.write(b"backpressure").unwrap();
        assert_eq!(poll_tokens(&reactor).len(), 0, "parked: no wakeups");
        // Re-arming reports the still-pending readiness (level semantics).
        reg.set_interest(Interest::READABLE);
        assert_eq!(poll_tokens(&reactor), vec![(Token(3), true, false)]);
    }

    #[test]
    fn full_peer_buffer_clears_writable_until_drained() {
        let reactor = Reactor::new();
        let (a, b) = stream_pair(4);
        let _reg = reactor.register(&a, Token(4), Interest::WRITABLE);
        a.write(b"abcd").unwrap();
        assert_eq!(poll_tokens(&reactor).len(), 0, "peer full: not writable");
        let mut buf = [0u8; 2];
        b.read(&mut buf).unwrap();
        assert_eq!(poll_tokens(&reactor), vec![(Token(4), false, true)]);
    }

    #[test]
    fn eof_is_readable() {
        let reactor = Reactor::new();
        let (a, b) = stream_pair(64);
        let _reg = reactor.register(&b, Token(5), Interest::READABLE);
        drop(a);
        assert_eq!(poll_tokens(&reactor), vec![(Token(5), true, false)]);
        let mut buf = [0u8; 4];
        assert_eq!(b.read(&mut buf).unwrap(), 0, "EOF");
    }

    #[test]
    fn deregister_stops_wakeups() {
        let reactor = Reactor::new();
        let (a, b) = stream_pair(64);
        let reg = reactor.register(&b, Token(6), Interest::READABLE);
        assert_eq!(reactor.registered(), 1);
        reactor.deregister(&b, &reg);
        assert_eq!(reactor.registered(), 0);
        a.write(b"late").unwrap();
        assert_eq!(poll_tokens(&reactor).len(), 0);
    }

    #[test]
    fn events_arrive_in_operation_order() {
        let reactor = Reactor::new();
        let streams: Vec<_> = (0..8).map(|_| stream_pair(64)).collect();
        let _regs: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(i, (_, b))| reactor.register(b, Token(i as u64), Interest::READABLE))
            .collect();
        // Writes in reverse token order arrive in reverse token order.
        for (i, (a, _)) in streams.iter().enumerate().rev() {
            a.write(&[i as u8]).unwrap();
        }
        let tokens: Vec<u64> = poll_tokens(&reactor).iter().map(|(t, _, _)| t.0).collect();
        assert_eq!(tokens, vec![7, 6, 5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn poll_wait_times_out_when_idle() {
        let reactor = Reactor::new();
        let (_a, b) = stream_pair(64);
        let _reg = reactor.register(&b, Token(8), Interest::READABLE);
        let mut events = Vec::new();
        assert_eq!(reactor.poll_wait(&mut events, Duration::from_millis(5)), 0);
    }

    #[test]
    fn poll_wait_wakes_on_cross_thread_write() {
        let reactor = Reactor::new();
        let (a, b) = stream_pair(64);
        let _reg = reactor.register(&b, Token(9), Interest::READABLE);
        let writer = std::thread::spawn(move || {
            a.write(b"wake").unwrap();
            a // keep the peer alive until the poll returns
        });
        let mut events = Vec::new();
        let n = reactor.poll_wait(&mut events, Duration::from_secs(5));
        assert_eq!(n, 1);
        assert_eq!(events[0].token, Token(9));
        drop(writer.join().unwrap());
    }
}
