//! Shared session machinery for the experiment harnesses.
//!
//! Two front paths exist: the original in-process broker↔proxy calls
//! (what fig5/obs_overhead measure) and the event-driven framed path
//! through [`FrontTier`] (what `conn_scaling` measures). Both pools
//! live here so the harness loops can't drift apart — one warmed-proxy
//! recipe, one attach recipe, one round-robin driver each.

use crate::EXPERIMENT_SEED;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use xsearch_cluster::{Cluster, ClusterError, FramedClient, FrontTier};
use xsearch_core::broker::Broker;
use xsearch_core::config::XSearchConfig;
use xsearch_core::proxy::XSearchProxy;
use xsearch_engine::corpus::CorpusConfig;
use xsearch_engine::engine::SearchEngine;
use xsearch_sgx_sim::attestation::AttestationService;

/// One warmed single-proxy deployment plus a pool of attested broker
/// sessions, shared round-robin by the generator threads. This is the
/// thread-per-request harness core fig5 and obs_overhead both drive.
pub struct BrokerPool {
    proxy: XSearchProxy,
    brokers: Vec<Mutex<Broker>>,
    counter: AtomicUsize,
}

impl BrokerPool {
    /// Launches a proxy (tiny corpus — echo mode keeps the engine out
    /// of the measured path), warms its history, and attests
    /// `sessions` brokers.
    ///
    /// # Panics
    ///
    /// Panics when attestation fails — that is broken setup, not data.
    #[must_use]
    pub fn warmed(k: usize, sessions: usize, warm: &[String]) -> Self {
        let ias = AttestationService::from_seed(EXPERIMENT_SEED);
        let engine = Arc::new(SearchEngine::build(&CorpusConfig {
            docs_per_topic: 5,
            ..Default::default()
        }));
        let proxy = XSearchProxy::launch(
            XSearchConfig {
                k,
                history_capacity: 1_000_000,
                ..Default::default()
            },
            engine,
            &ias,
        );
        proxy.seed_history(warm.iter().take(10_000).map(String::as_str));
        let brokers = (0..sessions)
            .map(|i| {
                Mutex::new(
                    Broker::attach(&proxy, &ias, proxy.expected_measurement(), i as u64).unwrap(),
                )
            })
            .collect();
        BrokerPool {
            proxy,
            brokers,
            counter: AtomicUsize::new(0),
        }
    }

    /// The warmed proxy.
    #[must_use]
    pub fn proxy(&self) -> &XSearchProxy {
        &self.proxy
    }

    /// One echo-mode request on the next session round-robin; `true` on
    /// success. This is the service closure the open-loop runner calls.
    pub fn echo(&self, query: &str) -> bool {
        let idx = self.counter.fetch_add(1, Ordering::Relaxed) % self.brokers.len();
        self.brokers[idx]
            .lock()
            .search_echo(&self.proxy, query)
            .is_ok()
    }

    /// Dissolves the pool into its proxy and unshared brokers, for
    /// harnesses that pin one session per generator thread.
    #[must_use]
    pub fn into_parts(self) -> (XSearchProxy, Vec<Broker>) {
        (
            self.proxy,
            self.brokers.into_iter().map(Mutex::into_inner).collect(),
        )
    }
}

/// A pool of framed sessions over the event-driven front tier — the
/// reactor-driven counterpart of [`BrokerPool`]. Drive the front in
/// threaded mode ([`FrontTier::spawn`]); the pump is a yield.
pub struct FrontSessions {
    clients: Vec<Mutex<FramedClient>>,
    counter: AtomicUsize,
}

impl FrontSessions {
    /// Attests `sessions` framed clients (seeds `seed_base..`), each
    /// with its own connection to the front.
    ///
    /// # Panics
    ///
    /// Panics when routing or attestation fails.
    #[must_use]
    pub fn attach(cluster: &Cluster, front: &FrontTier, sessions: usize, seed_base: u64) -> Self {
        let clients = (0..sessions)
            .map(|i| {
                Mutex::new(FramedClient::connect(cluster, front, seed_base + i as u64).unwrap())
            })
            .collect();
        FrontSessions {
            clients,
            counter: AtomicUsize::new(0),
        }
    }

    /// Sessions in the pool.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// True when the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// One echo request on the next framed session round-robin; `true`
    /// on success. A shed request ([`ClusterError::Overloaded`])
    /// re-attests the session — its send counter advanced past what the
    /// enclave saw — and counts as a failure, mirroring how the
    /// synchronous harnesses count sheds.
    pub fn echo(&self, cluster: &Cluster, query: &str) -> bool {
        let idx = self.counter.fetch_add(1, Ordering::Relaxed) % self.clients.len();
        let mut client = self.clients[idx].lock();
        match client.search_with(query, true, std::thread::yield_now) {
            Ok(_) => true,
            Err(ClusterError::Overloaded(_)) => {
                let _ = client.reattach(cluster);
                false
            }
            Err(_) => false,
        }
    }
}
