//! **End-to-end k-sweep**: user-perceived X-Search latency vs the
//! obfuscation degree k, with the engine fan-out executed for real.
//!
//! The seed modeled merged-mode engine time as the max of k+1 independent
//! draws while the engine evaluated the sub-queries strictly serially —
//! the figure-7-style numbers rested on concurrency that did not exist.
//! This harness runs both truths end to end through the full attested
//! pipeline (broker → enclave → engine uplink):
//!
//! * **serial** — the seed's evaluator: sub-queries one after another on
//!   the proxy thread, engine leg = Σ (service draw + compute). Latency
//!   grows linearly in k.
//! * **parallel** — the worker-pool uplink: sub-queries dispatched
//!   concurrently, engine leg = the per-lane makespan of the executions
//!   that actually ran. With the pool at least k+1 wide, latency is
//!   dominated by one service time regardless of k.
//!
//! Env knobs: `E2E_QUERIES` (default 60) bounds the per-point query
//! count; `BENCH_E2E_JSON` overrides the summary path.
//!
//! Run: `cargo run -p xsearch-bench --release --bin e2e_ksweep`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::Arc;
use xsearch_bench::summary::write_summary;
use xsearch_bench::{standard_engine, timed_attested_search, Dataset, EXPERIMENT_SEED};
use xsearch_core::broker::Broker;
use xsearch_core::config::XSearchConfig;
use xsearch_core::proxy::XSearchProxy;
use xsearch_engine::engine::SearchEngine;
use xsearch_engine::service::EngineService;
use xsearch_metrics::distribution::Empirical;
use xsearch_metrics::series::Table;
use xsearch_net_sim::link::WanModel;
use xsearch_query_log::record::QueryRecord;

/// Obfuscation degrees swept (k + 1 sub-queries hit the engine).
const K_SWEEP: &[usize] = &[1, 3, 7, 15];

fn query_count() -> usize {
    std::env::var("E2E_QUERIES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(60, |n| n.max(1))
}

/// One mode's per-query end-to-end samples at a fixed k.
struct ModePoint {
    total_s: Empirical,
    engine_s: Empirical,
    compute_s: Empirical,
}

/// Drives `queries` through a freshly launched proxy whose engine uplink
/// is `service`, measuring each request's wall compute and reading its
/// modeled engine leg from the pipeline's own accounting (no external
/// draws — the delay comes from the executions that ran).
fn run_mode(
    k: usize,
    service: EngineService,
    warm: &[String],
    queries: &[QueryRecord],
    wan: &WanModel,
    rng: &mut StdRng,
) -> ModePoint {
    let ias = xsearch_sgx_sim::attestation::AttestationService::from_seed(EXPERIMENT_SEED);
    let proxy = XSearchProxy::launch_with_service(
        XSearchConfig {
            k,
            history_capacity: 1 << 20,
            ..Default::default()
        },
        service,
        &ias,
    );
    proxy.seed_history(warm.iter().map(String::as_str));
    let mut broker = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 1).unwrap();

    let mut total = Vec::with_capacity(queries.len());
    let mut engine = Vec::with_capacity(queries.len());
    let mut compute = Vec::with_capacity(queries.len());
    for record in queries {
        let (engine_leg, proxy_compute) = timed_attested_search(&proxy, &mut broker, &record.query);
        let e2e =
            wan.client_proxy.rtt(rng) + wan.proxy_engine.rtt(rng) + engine_leg + proxy_compute;
        total.push(e2e.as_secs_f64());
        engine.push(engine_leg.as_secs_f64());
        compute.push(proxy_compute.as_secs_f64());
    }
    ModePoint {
        total_s: Empirical::from_samples(total),
        engine_s: Empirical::from_samples(engine),
        compute_s: Empirical::from_samples(compute),
    }
}

fn json_mode(out: &mut String, point: &ModePoint) {
    let _ = write!(
        out,
        "{{\"median_s\": {:.4}, \"p99_s\": {:.4}, \"engine_median_s\": {:.4}, \"compute_median_s\": {:.6}}}",
        point.total_s.median(),
        point.total_s.quantile(0.99),
        point.engine_s.median(),
        point.compute_s.median(),
    );
}

fn main() {
    let queries = query_count();
    let dataset = Dataset::with_users(60);
    let warm = dataset.train_queries();
    let test = dataset.sample_test(queries, 7);
    let engine: Arc<SearchEngine> = Arc::new(standard_engine());
    let wan = WanModel::default();
    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);

    let mut table = Table::new(
        "e2e-ksweep: end-to-end latency vs k, serial baseline vs real parallel fan-out (seconds)",
        &[
            "k",
            "serial_median",
            "serial_p99",
            "parallel_median",
            "parallel_p99",
            "speedup_median",
        ],
    );
    table.note(&format!(
        "{queries} queries per point; engine service {:?}; pool {} lanes",
        wan.engine_service,
        xsearch_engine::pool::MAX_WORKERS
    ));
    table.note("serial = seed behavior (sub-queries back to back, delays summed)");
    table.note("parallel = worker-pool fan-out (delay = per-lane makespan of real executions)");

    let mut sweep = Vec::new();
    for &k in K_SWEEP {
        eprintln!("running k = {k} ({} sub-queries)...", k + 1);
        let serial = run_mode(
            k,
            EngineService::serial(engine.clone(), wan.engine_service.clone(), EXPERIMENT_SEED),
            &warm,
            &test,
            &wan,
            &mut rng,
        );
        let parallel = run_mode(
            k,
            EngineService::new(engine.clone(), wan.engine_service.clone(), EXPERIMENT_SEED),
            &warm,
            &test,
            &wan,
            &mut rng,
        );
        table.row(&[
            k as f64,
            serial.total_s.median(),
            serial.total_s.quantile(0.99),
            parallel.total_s.median(),
            parallel.total_s.quantile(0.99),
            serial.total_s.median() / parallel.total_s.median(),
        ]);
        sweep.push((k, serial, parallel));
    }
    table.print();

    // Growth from k = first to k = last of the sweep: the serial column
    // reproduces the linear-in-k seed behavior; the parallel column must
    // stay sublinear (the whole point of the real fan-out).
    let (first, last) = (&sweep[0], &sweep[sweep.len() - 1]);
    let serial_growth = last.1.total_s.median() / first.1.total_s.median();
    let parallel_growth = last.2.total_s.median() / first.2.total_s.median();
    let k_growth = (last.0 + 1) as f64 / (first.0 + 1) as f64;

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"queries\": {queries},");
    let _ = writeln!(
        out,
        "  \"engine_service\": \"{:?}\", \"pool_workers\": {},",
        wan.engine_service,
        xsearch_engine::pool::MAX_WORKERS
    );
    out.push_str("  \"k_sweep\": [\n");
    for (i, (k, serial, parallel)) in sweep.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"k\": {k}, \"subqueries\": {}, \"serial\": ",
            k + 1
        );
        json_mode(&mut out, serial);
        out.push_str(", \"parallel\": ");
        json_mode(&mut out, parallel);
        let _ = write!(
            out,
            ", \"speedup_median\": {:.2}}}",
            serial.total_s.median() / parallel.total_s.median()
        );
        if i + 1 < sweep.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"growth_k{}_to_k{}\": {{\"subquery_factor\": {k_growth:.2}, \"serial_median_factor\": {serial_growth:.2}, \"parallel_median_factor\": {parallel_growth:.2}}}",
        first.0, last.0
    );
    out.push_str("}\n");

    write_summary("BENCH_E2E_JSON", "BENCH_e2e.json", &out);

    println!();
    println!("# summary (median end-to-end seconds)");
    for (k, serial, parallel) in &sweep {
        println!(
            "k={k} serial={:.3} parallel={:.3} speedup={:.2}x",
            serial.total_s.median(),
            parallel.total_s.median(),
            serial.total_s.median() / parallel.total_s.median()
        );
    }
    println!(
        "growth x{k_growth:.1} sub-queries: serial x{serial_growth:.2}, parallel x{parallel_growth:.2}"
    );
}
