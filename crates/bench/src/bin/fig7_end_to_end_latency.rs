//! **Figure 7**: CDF of the user-perceived web search round-trip time for
//! 100 queries — Direct, X-Search (k = 3) and Tor.
//!
//! Paper claims to reproduce in shape: X-Search median ≈ 0.577 s with
//! p99 ≈ 0.873 s; Tor median ≈ 1.06 s with p99 ≈ 3 s; Direct fastest.
//!
//! Method: each query's end-to-end time is the *measured* compute of the
//! full protocol stack (attested tunnel, obfuscation, onion layers, ...)
//! plus the *accounted* WAN and engine-service delays from the calibrated
//! model in `xsearch-net-sim` (DESIGN.md §6 — the authors measured a live
//! WAN; we model one, deterministically).
//!
//! Run: `cargo run -p xsearch-bench --release --bin fig7_end_to_end_latency`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xsearch_baselines::tor::network::TorNetwork;
use xsearch_bench::{standard_engine, timed_attested_search, Dataset, EXPERIMENT_SEED};
use xsearch_core::broker::Broker;
use xsearch_core::config::XSearchConfig;
use xsearch_core::proxy::XSearchProxy;
use xsearch_engine::service::EngineService;
use xsearch_metrics::distribution::Empirical;
use xsearch_metrics::series::Table;
use xsearch_net_sim::link::{Link, WanModel};
use xsearch_net_sim::DelayModel;
use xsearch_sgx_sim::attestation::AttestationService;

const QUERIES: usize = 100;
const K: usize = 3;

fn main() {
    let dataset = Dataset::standard();
    let warm = dataset.train_queries();
    let test = dataset.sample_test(QUERIES, 7);
    let engine = Arc::new(standard_engine());

    // WAN calibration: Tor hops get a heavier tail (σ = 0.95) to match
    // the paper's observed medians (≈1.06 s) and p99 (≈3 s) over the
    // live Tor network of May 2017.
    let wan = WanModel {
        tor_hop: Link::new("tor-hop", DelayModel::lognormal_ms(88, 0.95)),
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);

    // --- Direct ---
    let mut direct = Vec::with_capacity(QUERIES);
    for record in &test {
        let start = Instant::now();
        let _ = engine.search(&record.query, 20);
        let compute = start.elapsed();
        let total = wan.client_engine.rtt(&mut rng) + wan.engine_service.sample(&mut rng) + compute;
        direct.push(total.as_secs_f64());
    }

    // --- X-Search (k = 3) ---
    let ias = AttestationService::from_seed(EXPERIMENT_SEED);
    // The engine uplink carries the WAN service-time model: the k+1
    // sub-queries really fan out over the proxy's worker pool, and the
    // engine leg below is read back from the delays the pipeline attached
    // to those actual executions (no external "as if concurrent" draws).
    let service = EngineService::new(engine.clone(), wan.engine_service.clone(), EXPERIMENT_SEED);
    let proxy = XSearchProxy::launch_with_service(
        XSearchConfig {
            k: K,
            history_capacity: 1_000_000,
            ..Default::default()
        },
        service,
        &ias,
    );
    proxy.seed_history(warm.iter().map(String::as_str));
    let mut broker = Broker::attach(&proxy, &ias, proxy.expected_measurement(), 1).unwrap();
    let mut xsearch = Vec::with_capacity(QUERIES);
    for record in &test {
        let (engine_time, compute) = timed_attested_search(&proxy, &mut broker, &record.query);
        let total =
            wan.client_proxy.rtt(&mut rng) + wan.proxy_engine.rtt(&mut rng) + engine_time + compute;
        xsearch.push(total.as_secs_f64());
    }

    // --- Tor ---
    let network = TorNetwork::new(9, Duration::ZERO, &mut rng);
    let mut circuit = network.build_circuit(&mut rng);
    let mut tor = Vec::with_capacity(QUERIES);
    for record in &test {
        let start = Instant::now();
        let _ = network
            .round_trip(&mut circuit, record.query.as_bytes(), |req| {
                let q = String::from_utf8_lossy(req);
                xsearch_core::wire::encode_results(&engine.search(&q, 20))
            })
            .expect("tor round trip");
        let compute = start.elapsed();
        // 3 onion hops each way + exit↔engine + engine service.
        let mut wan_time = Duration::ZERO;
        for _ in 0..3 {
            wan_time += wan.tor_hop.rtt(&mut rng);
        }
        wan_time += wan.proxy_engine.rtt(&mut rng) + wan.engine_service.sample(&mut rng);
        tor.push((wan_time + compute).as_secs_f64());
    }

    let d_direct = Empirical::from_samples(direct);
    let d_xsearch = Empirical::from_samples(xsearch);
    let d_tor = Empirical::from_samples(tor);

    let mut table = Table::new(
        "fig7: CDF of end-to-end search round-trip time (seconds)",
        &["seconds", "cdf_direct", "cdf_xsearch_k3", "cdf_tor"],
    );
    table.note(&format!(
        "{QUERIES} queries; measured compute + calibrated WAN model"
    ));
    table.note("paper: xsearch median 0.577 s / p99 0.873 s; tor median 1.06 s / p99 ~3 s");
    for i in 0..=35 {
        let x = i as f64 * 0.1;
        table.row(&[x, d_direct.cdf(x), d_xsearch.cdf(x), d_tor.cdf(x)]);
    }
    table.print();

    println!();
    println!("# summary (seconds)");
    println!(
        "direct:  median={:.3} p99={:.3}",
        d_direct.median(),
        d_direct.quantile(0.99)
    );
    println!(
        "xsearch: median={:.3} p99={:.3}",
        d_xsearch.median(),
        d_xsearch.quantile(0.99)
    );
    println!(
        "tor:     median={:.3} p99={:.3}",
        d_tor.median(),
        d_tor.quantile(0.99)
    );
}
