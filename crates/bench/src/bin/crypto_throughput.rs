//! Crypto hot-path throughput: seal/open GiB/s for the wide multi-block
//! ChaCha20-Poly1305 against the pre-rewrite scalar baseline.
//!
//! Every request in the reproduction — the attested broker↔enclave
//! tunnel, each Tor onion layer, every PEAS hop — runs through this one
//! AEAD, so its byte throughput is the single largest lever on the
//! Fig 5 saturation points. This harness measures both implementations
//! on the same box and commits the ratio, so "the crypto got faster" is
//! a number in `BENCH_crypto.json`, not a claim:
//!
//! * **wide** — the live [`ChaCha20Poly1305`] hot path: precomputed key
//!   schedule, 4-block lane-structured keystream, `u64` XOR, one-pass
//!   seal via the detached in-place APIs (`seal_in_place` on a reused
//!   buffer, exactly how `SecureChannel` drives it);
//! * **scalar** — [`ScalarChaCha20Poly1305`], the verbatim pre-rewrite
//!   implementation (per-block state rebuild, byte XOR, per-16-byte
//!   accumulator round-trip, allocating `seal`/`open`).
//!
//! Payload sizes: 64 B (a sealed query), 1 KiB (a typical sealed result
//! page), 16 KiB (a large result payload / sealed history blob). Set
//! `CRYPTO_POINT_MS` to shorten each measured point (CI smoke uses
//! this); `BENCH_CRYPTO_JSON` overrides the summary path.
//!
//! Run: `cargo run -p xsearch-bench --release --bin crypto_throughput`

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use xsearch_crypto::aead::{ChaCha20Poly1305, TAG_LEN};
use xsearch_crypto::reference::ScalarChaCha20Poly1305;
use xsearch_metrics::series::Table;

/// A sealed query, a result page, a large payload.
const SIZES: &[usize] = &[64, 1024, 16384];
/// Payload the acceptance ratio is tracked at.
const TRACKED: usize = 1024;

const KEY: [u8; 32] = [7u8; 32];
const NONCE: [u8; 12] = [3u8; 12];
const AAD: &[u8] = b"results";

/// Per-point measurement duration; `CRYPTO_POINT_MS` overrides the
/// default so CI can smoke-run the harness in seconds.
fn point_duration() -> Duration {
    std::env::var("CRYPTO_POINT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(Duration::from_millis(400), Duration::from_millis)
}

/// Runs `op` for at least the point duration and returns GiB/s of
/// payload processed. Iterations are batched so the clock is read once
/// per batch, not once per 64-byte seal.
fn throughput(payload_len: usize, mut op: impl FnMut()) -> f64 {
    for _ in 0..64 {
        op();
    }
    let point = point_duration();
    let mut iters: u64 = 0;
    let start = Instant::now();
    let elapsed = loop {
        for _ in 0..64 {
            op();
        }
        iters += 64;
        let elapsed = start.elapsed();
        if elapsed >= point {
            break elapsed;
        }
    };
    (iters as f64 * payload_len as f64) / elapsed.as_secs_f64() / f64::from(1u32 << 30)
}

/// seal/open GiB/s of one implementation at one payload size.
struct OpRates {
    seal: f64,
    open: f64,
}

impl OpRates {
    /// Harmonic combination: bytes per second through a seal *plus* an
    /// open (what one proxied request costs end to end).
    fn seal_open(&self) -> f64 {
        1.0 / (1.0 / self.seal + 1.0 / self.open)
    }
}

fn wide_rates(size: usize) -> OpRates {
    let aead = ChaCha20Poly1305::new(&KEY);
    let payload = vec![0xabu8; size];

    // The live hot path: reused buffer, detached tag (seal_into shape).
    let mut buf: Vec<u8> = Vec::with_capacity(size);
    let seal = throughput(size, || {
        buf.clear();
        buf.extend_from_slice(&payload);
        let tag = aead.seal_in_place(&NONCE, AAD, &mut buf);
        std::hint::black_box(&tag);
    });

    let mut ct = payload.clone();
    let tag = aead.seal_in_place(&NONCE, AAD, &mut ct);
    let open = throughput(size, || {
        buf.clear();
        buf.extend_from_slice(&ct);
        aead.open_in_place(&NONCE, AAD, &mut buf, &tag)
            .expect("authentic");
        std::hint::black_box(&buf);
    });
    OpRates { seal, open }
}

fn scalar_rates(size: usize) -> OpRates {
    let aead = ScalarChaCha20Poly1305::new(&KEY);
    let payload = vec![0xabu8; size];
    let seal = throughput(size, || {
        std::hint::black_box(aead.seal(&NONCE, AAD, &payload));
    });
    let sealed = aead.seal(&NONCE, AAD, &payload);
    assert_eq!(sealed.len(), size + TAG_LEN);
    let open = throughput(size, || {
        std::hint::black_box(aead.open(&NONCE, AAD, &sealed).expect("authentic"));
    });
    OpRates { seal, open }
}

fn main() {
    let mut table = Table::new(
        "crypto_throughput: AEAD GiB/s, wide multi-block vs pre-rewrite scalar",
        &[
            "payload_b",
            "wide_seal",
            "wide_open",
            "scalar_seal",
            "scalar_open",
            "seal_open_speedup",
        ],
    );
    table.note(&format!(
        "{:?} per point; wide = live hot path (in-place, detached tag), scalar = pre-PR baseline",
        point_duration()
    ));

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"point_ms\": {},", point_duration().as_millis());
    json.push_str("  \"payloads\": [\n");
    let mut tracked_speedup = 0.0;
    for (i, &size) in SIZES.iter().enumerate() {
        eprintln!("measuring {size} B payloads...");
        let wide = wide_rates(size);
        let scalar = scalar_rates(size);
        let speedup = wide.seal_open() / scalar.seal_open();
        if size == TRACKED {
            tracked_speedup = speedup;
        }
        table.row(&[
            size as f64,
            wide.seal,
            wide.open,
            scalar.seal,
            scalar.open,
            speedup,
        ]);
        let _ = write!(
            json,
            "    {{\"bytes\": {size}, \
             \"wide\": {{\"seal_gib_s\": {:.3}, \"open_gib_s\": {:.3}}}, \
             \"scalar\": {{\"seal_gib_s\": {:.3}, \"open_gib_s\": {:.3}}}, \
             \"seal_open_speedup\": {:.2}}}",
            wide.seal, wide.open, scalar.seal, scalar.open, speedup
        );
        if i + 1 < SIZES.len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"seal_open_speedup_at_{TRACKED}B\": {tracked_speedup:.2}"
    );
    json.push_str("}\n");

    table.print();
    println!();
    println!("# summary");
    println!("seal+open speedup at {TRACKED} B payloads: {tracked_speedup:.2}x");

    let path =
        std::env::var("BENCH_CRYPTO_JSON").unwrap_or_else(|_| "BENCH_crypto.json".to_owned());
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote summary to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
