//! **Cluster scaling**: echo-mode capacity of the attested enclave fleet
//! vs replica count, under the open-loop `workload` runner.
//!
//! The paper evaluates one SGX proxy; the ROADMAP north-star is serving
//! millions of users, which means scaling *across enclaves*. This
//! harness sweeps a 1/2/4/8-replica fleet (consistent-hash session
//! affinity, untrusted router forwarding already-encrypted frames,
//! per-replica data-center links accounted) and records the
//! max-sustained-rate series in `BENCH_cluster.json` — the fleet-level
//! counterpart of `BENCH_fig5.json`'s threads sweep.
//!
//! The fleet serves one fixed user population whose last-x history
//! (`FLEET_WINDOW` queries fleet-wide) is **split** across replicas:
//! each holds its consistent-hash share as a bounded window at steady
//! state. The recurring cost that scales with fleet size is therefore
//! the sealing burden — every `SEAL_EVERY` requests a replica re-seals
//! *its share* of the window — which is exactly the recovery-guarantee
//! work a bigger fleet genuinely distributes.
//!
//! A **churn drill** rides along: a 4-replica fleet under open-loop load
//! has one replica hard-killed and later restarted mid-run; the summary
//! records how many requests failed (target: zero — clients drain the
//! dead replica, the sealed window migrates to the ring successor, and
//! in-flight requests retry) and how many history entries the migration
//! carried.
//!
//! Env knobs: `CLUSTER_POINT_MS` shortens each measured point (CI smoke);
//! `BENCH_CLUSTER_JSON` overrides the summary path.
//!
//! Run: `cargo run -p xsearch-bench --release --bin cluster_scaling`

use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xsearch_bench::summary::{capacity, json_points, write_summary};
use xsearch_bench::{Dataset, EXPERIMENT_SEED};
use xsearch_cluster::{Cluster, ClusterClient, ClusterConfig, LaneStats, PlacementPolicy};
use xsearch_core::config::XSearchConfig;
use xsearch_engine::corpus::CorpusConfig;
use xsearch_engine::engine::SearchEngine;
use xsearch_metrics::series::Table;
use xsearch_workload::runner::{run_open_loop, sweep_rates};
use xsearch_workload::{LoadSpec, RunReport};

const K: usize = 3;
/// Attested client sessions spread over the fleet.
const SESSIONS: usize = 32;
/// Open-loop generator threads.
const THREADS: usize = 4;
/// Replica counts swept.
const REPLICAS: &[usize] = &[1, 2, 4, 8];
/// Fleet-total last-x window, in queries. The window is a property of
/// the **user population** — their recent history — not of the fleet
/// size, so N replicas split it (consistent-hash affinity: each holds
/// its own clients' share). Per-replica history capacity is set to the
/// share, which keeps the window at steady state during the sweep
/// (bounded last-x, oldest evicted) instead of growing without bound —
/// measured capacity no longer depends on how many rate points ran
/// before.
const FLEET_WINDOW: usize = 32_768;
/// Seal cadence during the sweep: snapshot each replica's window every
/// N requests — the recovery-point/throughput trade (the churn tests use
/// 1; a fleet at full throttle amortizes).
const SEAL_EVERY: usize = 64;

const QUERY: &str = "cheap flights paris";

const RATES: &[f64] = &[
    5_000.0, 10_000.0, 17_500.0, 25_000.0, 32_500.0, 40_000.0, 50_000.0, 65_000.0, 80_000.0,
    100_000.0, 130_000.0, 170_000.0, 220_000.0, 300_000.0, 400_000.0,
];

fn point_duration() -> Duration {
    xsearch_bench::summary::point_duration("CLUSTER_POINT_MS", 1_000)
}

fn engine() -> Arc<SearchEngine> {
    // Tiny corpus: echo mode keeps the engine out of the measured path.
    Arc::new(SearchEngine::build(&CorpusConfig {
        docs_per_topic: 5,
        ..Default::default()
    }))
}

fn launch_fleet(
    replicas: usize,
    seal_every: usize,
    history_capacity: usize,
    warm_per_replica: usize,
    warm: &[String],
) -> Cluster {
    let cluster = Cluster::launch(
        engine(),
        ClusterConfig {
            replicas,
            placement: PlacementPolicy::ConsistentHash,
            seal_every,
            proxy: XSearchConfig {
                k: K,
                history_capacity,
                ..Default::default()
            },
            seed: EXPERIMENT_SEED,
            ..Default::default()
        },
    );
    for (i, id) in cluster.replica_ids().into_iter().enumerate() {
        // Each replica warms with its own distinct slice of the
        // population's history (wrapping when the trace is shorter).
        cluster
            .with_replica(id, |proxy| {
                proxy.seed_history(
                    warm.iter()
                        .cycle()
                        .skip(i * warm_per_replica)
                        .take(warm_per_replica)
                        .map(String::as_str),
                );
            })
            .expect("fresh fleet must accept warm-up");
    }
    cluster
}

fn attach_clients(cluster: &Cluster) -> Vec<Mutex<ClusterClient>> {
    (0..SESSIONS)
        .map(|i| Mutex::new(ClusterClient::attach(cluster, i as u64).expect("attach")))
        .collect()
}

/// One replica-count point of the sweep.
fn fleet_reports(replicas: usize, warm: &[String]) -> (Vec<RunReport>, f64, LaneStats) {
    let share = FLEET_WINDOW / replicas;
    let cluster = launch_fleet(replicas, SEAL_EVERY, share, share, warm);
    let clients = attach_clients(&cluster);
    let counter = AtomicUsize::new(0);
    let served = AtomicU64::new(0);
    let reports = sweep_rates(RATES, point_duration(), THREADS, &|| {
        let idx = counter.fetch_add(1, Ordering::Relaxed) % clients.len();
        let ok = clients[idx].lock().search_echo(&cluster, QUERY).is_ok();
        served.fetch_add(1, Ordering::Relaxed);
        ok
    });
    let served = served.load(Ordering::Relaxed).max(1);
    let hop_us_mean = cluster.accounted_network_delay().as_secs_f64() * 1e6 / served as f64;
    (reports, hop_us_mean, cluster.batch_stats())
}

/// The churn drill: open-loop load on a 4-replica fleet with one
/// kill/restart mid-run. Returns (completed, failed, surviving
/// fleet-wide window size).
fn churn_drill(warm: &[String]) -> (u64, u64, usize) {
    // Ample capacity: the drill checks that nothing is *lost*, so
    // nothing may be evicted either.
    let cluster = Arc::new(launch_fleet(4, 1, 1 << 20, 2_000, warm));
    let clients = attach_clients(&cluster);
    let victim = clients[0].lock().replica();
    let total: u64 = 2_000;
    let rate = 4_000.0;
    let ticket = AtomicU64::new(0);
    let report = run_open_loop(
        &LoadSpec {
            rate_per_sec: rate,
            duration: Duration::from_secs_f64(total as f64 / rate),
            threads: THREADS,
        },
        &|| {
            let n = ticket.fetch_add(1, Ordering::Relaxed);
            if n == total / 3 {
                cluster.kill(victim).expect("victim exists");
            }
            if n == 2 * total / 3 {
                cluster.restart(victim).expect("restart");
            }
            let idx = n as usize % clients.len();
            clients[idx].lock().search_echo(&cluster, QUERY).is_ok()
        },
    );
    // What survived: the failover's sweep runs inside client retries, so
    // read the surviving fleet windows rather than a side channel.
    let fleet_window: usize = cluster
        .replica_ids()
        .into_iter()
        .filter_map(|id| {
            cluster
                .with_replica(id, xsearch_core::proxy::XSearchProxy::history_len)
                .ok()
        })
        .sum();
    (report.completed, report.failed, fleet_window)
}

fn render_summary(
    sweep: &[(usize, Vec<RunReport>, f64, LaneStats)],
    churn: (u64, u64, usize),
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"point_ms\": {},", point_duration().as_millis());
    let _ = writeln!(
        out,
        "  \"placement\": \"consistent_hash\", \"sessions\": {SESSIONS}, \"threads\": {THREADS}, \"seal_every\": {SEAL_EVERY}, \"fleet_window\": {FLEET_WINDOW},"
    );
    out.push_str("  \"replica_sweep\": [\n");
    for (i, (replicas, reports, hop_us, lanes)) in sweep.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"replicas\": {replicas}, \"max_sustained_rps\": {:.1}, \"hop_us_mean\": {hop_us:.1}, \"ecall_batches\": {}, \"mean_batch\": {:.2}, \"max_batch\": {}, \"points\": ",
            capacity(reports),
            lanes.batches,
            lanes.mean_batch(),
            lanes.max_batch
        );
        json_points(&mut out, reports);
        out.push('}');
        if i + 1 < sweep.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    let (completed, failed, fleet_window) = churn;
    let _ = writeln!(
        out,
        "  \"churn_drill\": {{\"replicas\": 4, \"completed\": {completed}, \"failed\": {failed}, \"fleet_window_after\": {fleet_window}}}"
    );
    out.push_str("}\n");
    out
}

fn main() {
    let dataset = Dataset::with_users(60);
    let warm = dataset.train_queries();

    let mut table = Table::new(
        "cluster-scaling: fleet echo capacity vs replica count",
        &[
            "replicas",
            "offered_rps",
            "achieved_rps",
            "median_ms",
            "p99_ms",
            "kept_up",
        ],
    );
    table.note(&format!(
        "open loop, {THREADS} generator threads, {SESSIONS} attested sessions, {:?} per point, k={K}, consistent-hash affinity",
        point_duration()
    ));
    table
        .note("router is untrusted: it forwards encrypted frames and accounts per-replica DC hops");

    let mut sweep = Vec::new();
    for &replicas in REPLICAS {
        eprintln!("running fleet sweep: {replicas} replica(s)...");
        let (reports, hop_us, lanes) = fleet_reports(replicas, &warm);
        for r in &reports {
            table.row(&[
                replicas as f64,
                r.offered_rate,
                r.achieved_rate(),
                r.median_latency_ms(),
                r.p99_latency_ms(),
                f64::from(u8::from(r.kept_up())),
            ]);
        }
        sweep.push((replicas, reports, hop_us, lanes));
    }
    table.print();

    eprintln!("running churn drill (kill + restart under load)...");
    let churn = churn_drill(&warm);

    let summary = render_summary(&sweep, churn);
    write_summary("BENCH_CLUSTER_JSON", "BENCH_cluster.json", &summary);

    println!();
    println!("# summary (max sustained rate, req/s)");
    for (replicas, reports, hop_us, lanes) in &sweep {
        println!(
            "cluster replicas={replicas} rate={:.0} hop_us_mean={hop_us:.1} mean_batch={:.2} max_batch={}",
            capacity(reports),
            lanes.mean_batch(),
            lanes.max_batch
        );
    }
    let (completed, failed, window) = churn;
    println!("churn_drill completed={completed} failed={failed} fleet_window_after={window}");
}
