//! **Ablation**: where should fake queries come from?
//!
//! The paper's central design choice (§4.3) is to draw fakes from the
//! table of *real past queries* instead of synthesizing them. This
//! ablation isolates that choice: same adversary, same test traffic,
//! same k — only the fake source varies:
//!
//! * `history`      — X-Search: verbatim past queries;
//! * `cooccurrence` — PEAS-style: random walks over the term graph;
//! * `dictionary`   — GooPIR-style: uniform keyword picks;
//! * `rss`          — TrackMeNot-style: headline-flavoured phrases.
//!
//! Run: `cargo run -p xsearch-bench --release --bin ablation_fake_source`

use xsearch_attack::eval::reidentification_rate;
use xsearch_attack::profile::ProfileSet;
use xsearch_attack::simattack::SimAttack;
use xsearch_baselines::goopir::GooPir;
use xsearch_baselines::peas::PeasSystem;
use xsearch_baselines::system::PrivateSearchSystem;
use xsearch_baselines::tmn::TrackMeNot;
use xsearch_baselines::xsearch_system::XSearchSystem;
use xsearch_bench::{Dataset, EXPERIMENT_SEED};
use xsearch_metrics::series::Table;
use xsearch_query_log::record::QueryRecord;

const TEST_QUERIES: usize = 800;
const K: usize = 3;

fn rate_for<S, F>(profiles: &ProfileSet, test: &[QueryRecord], mut system: S, extract: F) -> f64
where
    S: PrivateSearchSystem,
    F: Fn(&mut S, &QueryRecord) -> Vec<String>,
{
    let attack = SimAttack::default();
    reidentification_rate(profiles, &attack, test, |r| extract(&mut system, r))
}

fn main() {
    let dataset = Dataset::standard();
    let train = dataset.train_queries();
    let profiles = ProfileSet::build(&dataset.split.train);
    let test = dataset.sample_test(TEST_QUERIES, 13);

    let mut table = Table::new(
        "ablation: fake-query source vs re-identification rate (k=3)",
        &["source", "reid_rate"],
    );
    table.note("source ids: 0=history(x-search) 1=cooccurrence(peas) 2=dictionary(goopir) 3=rss(tmn) 4=none");
    table.note(&format!(
        "users={} attacked={}",
        profiles.user_count(),
        test.len()
    ));

    // 0: history (the paper's choice).
    let xsearch = {
        let s = XSearchSystem::new(K, 1_000_000, EXPERIMENT_SEED);
        s.warm(train.iter().map(String::as_str));
        s
    };
    let r_history = rate_for(&profiles, &test, xsearch, |s, r| {
        s.protect(r.user, &r.query).subqueries
    });
    table.row(&[0.0, r_history]);

    // 1: co-occurrence walks.
    let peas = PeasSystem::new(&train, K, EXPERIMENT_SEED);
    let r_cooc = rate_for(&profiles, &test, peas, |s, r| {
        s.protect(r.user, &r.query).subqueries
    });
    table.row(&[1.0, r_cooc]);

    // 2: dictionary picks (GooPIR exposes identity; for a fair fake-source
    // comparison only the sub-queries are used).
    let goopir = GooPir::new(K, EXPERIMENT_SEED);
    let r_dict = rate_for(&profiles, &test, goopir, |s, r| {
        s.protect(r.user, &r.query).subqueries
    });
    table.row(&[2.0, r_dict]);

    // 3: RSS phrases (TMN interleaves rather than ORs; same treatment).
    let tmn = TrackMeNot::new(EXPERIMENT_SEED);
    let r_rss = rate_for(&profiles, &test, tmn, |s, r| {
        let mut subs = vec![r.query.clone()];
        for _ in 0..K {
            subs.push(s.fake_query());
        }
        subs
    });
    table.row(&[3.0, r_rss]);

    // 4: no fakes at all (the k=0 anchor).
    let r_none = {
        let attack = SimAttack::default();
        reidentification_rate(&profiles, &attack, &test, |r| vec![r.query.clone()])
    };
    table.row(&[4.0, r_none]);

    table.print();

    println!();
    println!("# summary");
    println!("history(x-search)={r_history:.3} cooccurrence={r_cooc:.3} dictionary={r_dict:.3} rss={r_rss:.3} none={r_none:.3}");
    println!(
        "claim check: history fakes give the lowest re-identification → {}",
        if r_history <= r_cooc && r_history <= r_dict && r_history <= r_rss {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}
