//! **Front-tier survival under a hostile population**: does a defended
//! front keep serving its good clients while slowloris dribblers,
//! garbage flooders, strike-earning fuzzers, and socket-level chaos
//! (resets, torn writes, corruption, stuck and half-open peers) share
//! the same shard?
//!
//! Four phases, all on a manually-stepped single-shard front running the
//! [`SurvivalConfig::hardened`] profile:
//!
//! 1. **Baseline** — good clients only, no adversaries, no faults:
//!    their availability (acked requests / attempts) anchors the gate.
//! 2. **Chaos** — the same good population interleaved with the hostile
//!    one, plus modest link chaos (loss + a stalled replica). Gates:
//!    good-client availability ≥ 90 % of baseline, **zero** lost acked
//!    requests (a reply framed `Ok` must always open), and the defense
//!    counters actually engaged (timeouts *and* strikes fired — a bench
//!    where the adversaries never tripped a defense proves nothing).
//! 3. **Session bound** — after the population disconnects and the TTL
//!    reaper sweeps, the enclave session count must return to zero:
//!    the disconnect-close plus reaper backstop leaks nothing.
//! 4. **Replay** — a fixed transcript run twice clean and twice under a
//!    deterministic socket [`FaultPlan`] (every connection afflicted);
//!    both pairs must be byte-identical, closed conns included.
//!
//! Env knobs: `FRONTCHAOS_ROUNDS` (default 30) and `FRONTCHAOS_GOOD`
//! (default 8) shrink the population for CI smoke;
//! `BENCH_FRONTCHAOS_JSON` overrides the summary path.
//!
//! Run: `cargo run -p xsearch-bench --release --bin front_chaos`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;
use xsearch_bench::summary::write_summary;
use xsearch_cluster::{
    Cluster, ClusterConfig, FaultPlan, FaultSpec, FrontConfig, FrontTier, SocketSpec,
    SurvivalConfig,
};
use xsearch_core::config::XSearchConfig;
use xsearch_core::wire::{decode_conn_reply, encode_conn_request_into, ConnStatus};
use xsearch_core::Broker;
use xsearch_engine::corpus::CorpusConfig;
use xsearch_engine::engine::SearchEngine;
use xsearch_net_sim::{encode_frame_into, ByteStream, FrameDecoder, StreamError};

/// Slowloris dribblers kept alive (respawned when reaped).
const SLOWLORIS: usize = 4;
/// Garbage flooders kept alive (respawned when closed).
const FLOODERS: usize = 4;
/// Strike-earning fuzzer identities (valid request, then junk).
const FUZZERS: usize = 2;
/// Socket-chaos churn connections alive at a time.
const CHURN: usize = 8;
/// Handshake-and-vanish sessions the TTL reaper must clear.
const LEAKERS: usize = 4;
/// Step budget for one reply.
const RECV_STEPS: usize = 2_000;

fn rounds() -> usize {
    std::env::var("FRONTCHAOS_ROUNDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(30, |n| n.max(6))
}

fn good_clients() -> usize {
    std::env::var("FRONTCHAOS_GOOD")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(8, |n| n.max(2))
}

fn fleet(faults: Option<Arc<FaultPlan>>) -> Arc<Cluster> {
    let engine = Arc::new(SearchEngine::build(&CorpusConfig {
        docs_per_topic: 5,
        ..Default::default()
    }));
    Arc::new(Cluster::launch(
        engine,
        ClusterConfig {
            replicas: 4,
            proxy: XSearchConfig {
                k: 2,
                history_capacity: 1_000_000,
                ..Default::default()
            },
            faults,
            ..Default::default()
        },
    ))
}

fn hardened_front(cluster: &Arc<Cluster>) -> FrontTier {
    FrontTier::new(
        cluster,
        FrontConfig {
            survival: SurvivalConfig::hardened(),
            ..FrontConfig::default()
        },
    )
}

/// Modest link chaos for the population phase: enough loss and stall to
/// exercise the error statuses without drowning the availability signal.
fn link_chaos() -> Arc<FaultPlan> {
    Arc::new(FaultPlan::new(
        FaultSpec {
            loss: 0.05,
            stalled: vec![1],
            stall: Duration::from_millis(1),
            ..Default::default()
        },
        13,
        4,
    ))
}

/// Every replay connection afflicted somehow: the transcript must still
/// be byte-identical across runs.
fn socket_chaos() -> Arc<FaultPlan> {
    Arc::new(FaultPlan::new(
        FaultSpec {
            socket: SocketSpec {
                reset: 0.25,
                torn: 0.25,
                corrupt: 0.2,
                stuck: 0.15,
                half_open: 0.15,
                write_window: 4,
            },
            ..Default::default()
        },
        21,
        4,
    ))
}

/// What one bounded receive attempt produced.
enum Recv {
    Frame(Vec<u8>),
    Closed,
    Timeout,
}

/// A raw framed session that tolerates the front (or a socket fault)
/// killing the connection mid-exchange.
struct ChaosSession {
    broker: Broker,
    stream: ByteStream,
    decoder: FrameDecoder,
}

impl ChaosSession {
    fn open(cluster: &Cluster, front: &FrontTier, seed: u64) -> ChaosSession {
        let client_pub = Broker::client_pub_for_seed(seed);
        let replica = cluster.route(client_pub.as_bytes()).unwrap();
        let broker = cluster
            .with_replica(replica, |proxy| {
                Broker::attach(proxy, cluster.ias(), cluster.expected_measurement(), seed)
            })
            .unwrap()
            .unwrap();
        ChaosSession {
            broker,
            stream: front.accept(),
            decoder: FrameDecoder::new(),
        }
    }

    /// Write one sealed request; `false` if the connection died first.
    fn send(&mut self, front: &FrontTier, query: &str) -> bool {
        let ciphertext = self.broker.seal_query(query);
        let mut payload = Vec::new();
        encode_conn_request_into(
            self.broker.client_pub().as_bytes(),
            &ciphertext,
            true,
            &mut payload,
        );
        let mut framed = Vec::new();
        encode_frame_into(&payload, &mut framed);
        let mut written = 0;
        let mut stalls = 0usize;
        while written < framed.len() {
            match self.stream.write(&framed[written..]) {
                Ok(n) => written += n,
                Err(StreamError::WouldBlock) => {
                    front.step();
                    stalls += 1;
                    if stalls > RECV_STEPS {
                        return false;
                    }
                }
                Err(StreamError::Closed) => return false,
            }
        }
        true
    }

    fn recv(&mut self, front: &FrontTier, steps: usize) -> Recv {
        for _ in 0..steps {
            front.step();
            match self.decoder.read_from(&self.stream, 4096) {
                Ok(_) => {}
                Err(StreamError::WouldBlock) => {}
                Err(StreamError::Closed) => return Recv::Closed,
            }
            match self.decoder.next_frame() {
                Ok(Some(frame)) => return Recv::Frame(frame.to_vec()),
                Ok(None) => {}
                Err(_) => return Recv::Closed,
            }
        }
        Recv::Timeout
    }
}

/// One well-behaved client: sealed echo searches, re-attest + reconnect
/// after any typed error or dead connection.
struct GoodClient {
    id: u64,
    session: Option<ChaosSession>,
    next_seed: u64,
    attempts: u64,
    acks: u64,
    lost_acked: u64,
    reattaches: u64,
}

impl GoodClient {
    fn new(id: u64) -> GoodClient {
        GoodClient {
            id,
            session: None,
            next_seed: 10_000 + id * 1_000,
            attempts: 0,
            acks: 0,
            lost_acked: 0,
            reattaches: 0,
        }
    }

    fn round(&mut self, cluster: &Cluster, front: &FrontTier, round: usize) {
        if self.session.is_none() {
            self.next_seed += 1;
            self.session = Some(ChaosSession::open(cluster, front, self.next_seed));
            self.reattaches += 1;
        }
        let session = self.session.as_mut().expect("just opened");
        self.attempts += 1;
        let query = format!("good client {} round {round}", self.id);
        if !session.send(front, &query) {
            self.session = None;
            return;
        }
        match session.recv(front, RECV_STEPS) {
            Recv::Frame(frame) => match decode_conn_reply(&frame) {
                Ok((ConnStatus::Ok, payload)) => {
                    // An acked reply that does not open is a *lost* ack:
                    // the wire said success but the answer is gone.
                    if session.broker.open_results(payload).is_ok() {
                        self.acks += 1;
                    } else {
                        self.lost_acked += 1;
                        self.session = None;
                    }
                }
                // Any typed error: conservatively re-attest.
                Ok((_, _)) | Err(_) => self.session = None,
            },
            Recv::Closed | Recv::Timeout => self.session = None,
        }
    }
}

/// Aggregate outcome of one population phase.
struct PhaseOutcome {
    attempts: u64,
    acks: u64,
    lost_acked: u64,
    reattaches: u64,
}

impl PhaseOutcome {
    fn availability(&self) -> f64 {
        self.acks as f64 / self.attempts.max(1) as f64
    }
}

fn tally(goods: &[GoodClient]) -> PhaseOutcome {
    PhaseOutcome {
        attempts: goods.iter().map(|g| g.attempts).sum(),
        acks: goods.iter().map(|g| g.acks).sum(),
        lost_acked: goods.iter().map(|g| g.lost_acked).sum(),
        reattaches: goods.iter().map(|g| g.reattaches).sum(),
    }
}

/// Phase 1: good clients alone on a clean fleet.
fn baseline(rounds: usize, good: usize) -> PhaseOutcome {
    let cluster = fleet(None);
    let front = hardened_front(&cluster);
    let mut goods: Vec<GoodClient> = (0..good as u64).map(GoodClient::new).collect();
    for round in 0..rounds {
        for client in &mut goods {
            client.round(&cluster, &front, round);
        }
    }
    tally(&goods)
}

/// The hostile population sharing the shard with the good clients.
struct Adversaries {
    dribblers: Vec<ByteStream>,
    flooders: Vec<ByteStream>,
    fuzzers: Vec<u64>,
    fuzzer_rejects: u64,
    churn: Vec<ChaosSession>,
    churn_seed: u64,
    spawned: u64,
}

impl Adversaries {
    fn new(cluster: &Cluster, front: &FrontTier, plan: &FaultPlan) -> Adversaries {
        let mut adv = Adversaries {
            dribblers: Vec::new(),
            flooders: Vec::new(),
            fuzzers: (0..FUZZERS as u64).map(|i| 90_000 + i).collect(),
            fuzzer_rejects: 0,
            churn: Vec::new(),
            churn_seed: 80_000,
            spawned: 0,
        };
        adv.replenish(cluster, front, plan);
        adv
    }

    /// Keep the hostile population at strength; the front keeps killing
    /// it, the attacker keeps coming back.
    fn replenish(&mut self, cluster: &Cluster, front: &FrontTier, plan: &FaultPlan) {
        while self.dribblers.len() < SLOWLORIS {
            self.dribblers.push(front.accept());
            self.spawned += 1;
        }
        while self.flooders.len() < FLOODERS {
            self.flooders.push(front.accept());
            self.spawned += 1;
        }
        while self.churn.len() < CHURN {
            self.churn_seed += 1;
            let session = ChaosSession::open(cluster, front, self.churn_seed);
            // The attacker's socket is broken in one drawn way; the
            // draw is a pure function of (seed, conn id), so the same
            // population is afflicted identically every run.
            if let Some(fault) = plan.socket_fault(self.churn_seed) {
                session.stream.sabotage(fault);
            }
            self.churn.push(session);
            self.spawned += 1;
        }
    }

    fn round(&mut self, cluster: &Cluster, front: &FrontTier, plan: &FaultPlan, round: usize) {
        // Slowloris: one byte per round — mid-frame forever, always
        // under the minimum-progress floor.
        self.dribblers.retain(|s| s.write(&[0x7F]).is_ok());
        // Flooders: a junk frame per round; the front answers Protocol
        // and closes.
        self.flooders.retain(|s| {
            let mut framed = Vec::new();
            encode_frame_into(&[0xAA; 48], &mut framed);
            s.write(&framed).is_ok()
        });
        // Fuzzers: a valid request (teaching the front their channel
        // key), then junk on the same connection — a strike each time,
        // until the key is quarantined and requests bounce.
        for &seed in &self.fuzzers {
            let mut session = ChaosSession::open(cluster, front, seed);
            self.spawned += 1;
            if !session.send(front, &format!("fuzz {round}")) {
                continue;
            }
            match session.recv(front, RECV_STEPS) {
                Recv::Frame(frame) => {
                    if matches!(decode_conn_reply(&frame), Ok((ConnStatus::Unavailable, _))) {
                        self.fuzzer_rejects += 1;
                        continue;
                    }
                }
                Recv::Closed | Recv::Timeout => continue,
            }
            let mut framed = Vec::new();
            encode_frame_into(b"not a request", &mut framed);
            let _ = session.stream.write(&framed);
            for _ in 0..4 {
                front.step();
            }
        }
        // Churn: afflicted sockets pushing real traffic; each one dies
        // the way its fault dictates (reset, tear, corruption strike,
        // stuck write-stall, half-open handshake timeout).
        self.churn.retain_mut(|session| {
            if !session.send(front, &format!("churn {round}")) {
                return false;
            }
            !matches!(session.recv(front, 50), Recv::Closed)
        });
        for _ in 0..4 {
            front.step();
        }
        self.replenish(cluster, front, plan);
    }
}

/// Phase 2 + 3: the mixed population, then the session-bound check.
struct ChaosOutcome {
    good: PhaseOutcome,
    adversaries_spawned: u64,
    fuzzer_rejects: u64,
    timeouts: u64,
    slowloris_closed: u64,
    strikes: u64,
    quarantined_keys: u64,
    quota_closed: u64,
    sheds: u64,
    sessions_closed: u64,
    sessions_before_reap: usize,
    sessions_reaped: usize,
    sessions_after_reap: usize,
}

fn chaos(rounds: usize, good: usize) -> ChaosOutcome {
    let plan = link_chaos();
    let socket_plan = socket_chaos();
    let cluster = fleet(Some(Arc::clone(&plan)));
    let front = hardened_front(&cluster);
    // Handshake-and-vanish leakers: sessions the front never learns a
    // key for — only the TTL reaper can clear them.
    let leakers: Vec<Broker> = (0..LEAKERS as u64)
        .map(|i| {
            let seed = 70_000 + i;
            let client_pub = Broker::client_pub_for_seed(seed);
            let replica = cluster.route(client_pub.as_bytes()).unwrap();
            cluster
                .with_replica(replica, |proxy| {
                    Broker::attach(proxy, cluster.ias(), cluster.expected_measurement(), seed)
                })
                .unwrap()
                .unwrap()
        })
        .collect();
    let mut goods: Vec<GoodClient> = (0..good as u64).map(GoodClient::new).collect();
    let mut adversaries = Adversaries::new(&cluster, &front, &socket_plan);
    for round in 0..rounds {
        adversaries.round(&cluster, &front, &socket_plan, round);
        for client in &mut goods {
            client.round(&cluster, &front, round);
        }
    }
    let adversaries_spawned = adversaries.spawned;
    let fuzzer_rejects = adversaries.fuzzer_rejects;
    // Phase 3: everyone hangs up; the reaper clears what disconnects
    // could not attribute.
    drop(adversaries);
    for client in &mut goods {
        client.session = None;
    }
    for _ in 0..600 {
        front.step();
    }
    drop(leakers);
    let sessions_before_reap = cluster.session_count();
    let mut sessions_reaped = 0;
    for _ in 0..3 {
        sessions_reaped += cluster.reap_sessions(0);
    }
    let sessions_after_reap = cluster.session_count();
    let stats = front.survival_stats();
    ChaosOutcome {
        good: tally(&goods),
        adversaries_spawned,
        fuzzer_rejects,
        timeouts: stats.timeouts_handshake
            + stats.timeouts_read
            + stats.timeouts_write
            + stats.timeouts_idle,
        slowloris_closed: stats.slowloris_closed,
        strikes: stats.strikes,
        quarantined_keys: stats.quarantined_keys,
        quota_closed: stats.quota_closed,
        sheds: stats.shed_misbehaving + stats.shed_unattested + stats.shed_established,
        sessions_closed: stats.sessions_closed,
        sessions_before_reap,
        sessions_reaped,
        sessions_after_reap,
    }
}

/// Phase 4: fixed transcript, closed conns recorded as markers so a
/// fault-killed connection must die identically every run.
fn transcript(faults: Option<Arc<FaultPlan>>, sabotage: bool) -> Vec<Vec<u8>> {
    let plan = faults.clone().unwrap_or_else(socket_chaos);
    let cluster = fleet(faults);
    let front = hardened_front(&cluster);
    let mut sessions: Vec<ChaosSession> = (0..6u64)
        .map(|i| {
            let session = ChaosSession::open(&cluster, &front, 2_000 + i);
            if sabotage {
                if let Some(fault) = plan.socket_fault(i) {
                    session.stream.sabotage(fault);
                }
            }
            session
        })
        .collect();
    let mut replies = Vec::new();
    for round in 0..3 {
        for (i, session) in sessions.iter_mut().enumerate() {
            if !session.send(&front, &format!("replay client {i} round {round}")) {
                replies.push(b"[send-closed]".to_vec());
                continue;
            }
            match session.recv(&front, 300) {
                Recv::Frame(frame) => replies.push(frame),
                Recv::Closed => replies.push(b"[closed]".to_vec()),
                Recv::Timeout => replies.push(b"[timeout]".to_vec()),
            }
        }
    }
    replies
}

fn main() {
    let rounds = rounds();
    let good = good_clients();

    eprintln!("baseline: {good} good clients x {rounds} rounds, no adversaries...");
    let base = baseline(rounds, good);
    eprintln!(
        "  availability {:.4} ({} / {} attempts)",
        base.availability(),
        base.acks,
        base.attempts
    );

    eprintln!("chaos: same good population + hostile shardmates...");
    let chaos = chaos(rounds, good);
    eprintln!(
        "  availability {:.4} ({} / {}), reattaches {}, lost acked {}",
        chaos.good.availability(),
        chaos.good.acks,
        chaos.good.attempts,
        chaos.good.reattaches,
        chaos.good.lost_acked,
    );
    eprintln!(
        "  defenses: timeouts {} (slowloris {}), strikes {} (quarantined {}), quota {}, sheds {}, sessions closed {}",
        chaos.timeouts,
        chaos.slowloris_closed,
        chaos.strikes,
        chaos.quarantined_keys,
        chaos.quota_closed,
        chaos.sheds,
        chaos.sessions_closed,
    );
    eprintln!(
        "  sessions: {} before reap, {} reaped, {} after",
        chaos.sessions_before_reap, chaos.sessions_reaped, chaos.sessions_after_reap
    );

    eprintln!("replay gate: clean...");
    let clean_identical = transcript(None, false) == transcript(None, false);
    eprintln!("replay gate: socket chaos...");
    let chaos_a = transcript(Some(socket_chaos()), true);
    let chaos_b = transcript(Some(socket_chaos()), true);
    let socket_identical = chaos_a == chaos_b;
    eprintln!("  clean identical={clean_identical}, socket identical={socket_identical}");

    let availability_floor = 0.9 * base.availability();
    let pass_availability = chaos.good.availability() >= availability_floor;
    let pass_lost = chaos.good.lost_acked == 0;
    let pass_sessions = chaos.sessions_after_reap == 0;
    let defenses_engaged = chaos.timeouts >= 1 && chaos.strikes >= 1 && chaos.quarantined_keys >= 1;
    let pass = pass_availability
        && pass_lost
        && pass_sessions
        && defenses_engaged
        && clean_identical
        && socket_identical;

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"rounds\": {rounds}, \"good_clients\": {good},");
    let _ = writeln!(
        out,
        "  \"baseline\": {{\"attempts\": {}, \"acks\": {}, \"availability\": {:.4}}},",
        base.attempts,
        base.acks,
        base.availability()
    );
    let _ = writeln!(
        out,
        "  \"chaos\": {{\"attempts\": {}, \"acks\": {}, \"availability\": {:.4}, \"reattaches\": {}, \"lost_acked\": {},",
        chaos.good.attempts,
        chaos.good.acks,
        chaos.good.availability(),
        chaos.good.reattaches,
        chaos.good.lost_acked
    );
    let _ = writeln!(
        out,
        "    \"timeouts\": {}, \"slowloris_closed\": {}, \"strikes\": {}, \"quarantined_keys\": {}, \"quota_closed\": {}, \"sheds\": {}, \"sessions_closed\": {},",
        chaos.timeouts,
        chaos.slowloris_closed,
        chaos.strikes,
        chaos.quarantined_keys,
        chaos.quota_closed,
        chaos.sheds,
        chaos.sessions_closed
    );
    let _ = writeln!(
        out,
        "    \"adversaries_spawned\": {}, \"fuzzer_quarantine_rejects\": {},",
        chaos.adversaries_spawned, chaos.fuzzer_rejects
    );
    let _ = writeln!(
        out,
        "    \"sessions_before_reap\": {}, \"sessions_reaped\": {}, \"sessions_after_reap\": {}}},",
        chaos.sessions_before_reap, chaos.sessions_reaped, chaos.sessions_after_reap
    );
    let _ = writeln!(
        out,
        "  \"replay\": {{\"clean_identical\": {clean_identical}, \"socket_identical\": {socket_identical}}},"
    );
    let _ = writeln!(
        out,
        "  \"gates\": {{\"availability_floor\": {availability_floor:.4}, \"availability\": {pass_availability}, \"lost_acked_zero\": {pass_lost}, \"sessions_bounded\": {pass_sessions}, \"defenses_engaged\": {defenses_engaged}}},"
    );
    let _ = writeln!(out, "  \"pass\": {pass}");
    out.push_str("}\n");
    write_summary("BENCH_FRONTCHAOS_JSON", "BENCH_frontchaos.json", &out);

    println!();
    println!("# front chaos");
    println!(
        "availability baseline={:.4} chaos={:.4} floor={availability_floor:.4} ok={pass_availability}",
        base.availability(),
        chaos.good.availability()
    );
    println!(
        "lost_acked={} sessions_after_reap={} defenses_engaged={defenses_engaged}",
        chaos.good.lost_acked, chaos.sessions_after_reap
    );
    println!("replay clean={clean_identical} socket={socket_identical}");
    if !pass {
        eprintln!("FAIL: a survival gate was violated");
        std::process::exit(1);
    }
}
