//! **Figure 5**: latency vs offered throughput for the X-Search proxy,
//! PEAS and Tor (log-log in the paper).
//!
//! Paper claims to reproduce in shape: X-Search sustains ~25,000 req/s
//! with sub-second latency; PEAS collapses around 1,000 req/s; Tor
//! handles on the order of 100 req/s — order-of-magnitude gaps between
//! the three systems.
//!
//! Method (§6.3): a wrk2-style open-loop generator drives each system at
//! increasing rates *without hitting the web search engine* ("to better
//! understand the saturation point of the proxy"): X-Search and PEAS run
//! in echo mode (full crypto + obfuscation + filtering, no engine);
//! Tor performs full 3-hop onion round trips with a modeled per-relay
//! service time (see DESIGN.md on the relay-capacity substitution).
//!
//! Run: `cargo run -p xsearch-bench --release --bin fig5_throughput_latency`

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xsearch_baselines::peas::{
    CooccurrenceMatrix, PeasClient, PeasFakeGenerator, PeasIssuer, PeasReceiver,
};
use xsearch_baselines::tor::network::TorNetwork;
use xsearch_bench::{Dataset, EXPERIMENT_SEED};
use xsearch_core::broker::Broker;
use xsearch_core::config::XSearchConfig;
use xsearch_core::proxy::XSearchProxy;
use xsearch_engine::corpus::CorpusConfig;
use xsearch_engine::engine::SearchEngine;
use xsearch_metrics::series::Table;
use xsearch_query_log::record::UserId;
use xsearch_sgx_sim::attestation::AttestationService;
use xsearch_workload::runner::sweep_rates;

const K: usize = 3;
const SESSIONS: usize = 32;
const THREADS: usize = 2;
const POINT_DURATION: Duration = Duration::from_millis(1_500);
/// Modeled CPU service per relay per message: the capacity term standing
/// in for shared, bandwidth-limited Tor relays.
const TOR_RELAY_SERVICE: Duration = Duration::from_millis(2);

/// The SGX boundary cost paid in wall time per request: the paper's
/// request path crosses the boundary 10 times (1 ecall + 4 ocalls, two
/// crossings each) at ≈2.7 µs per crossing on Skylake. The simulator
/// *accounts* this cost; here the proxy must also *pay* it so the
/// saturation point reflects enclave hardware, not just raw crypto.
const SGX_TRANSITION_PAY: Duration = Duration::from_micros(27);

const QUERY: &str = "cheap flights paris";

fn round_robin<T>(pool: &[Mutex<T>], counter: &AtomicUsize) -> usize {
    counter.fetch_add(1, Ordering::Relaxed) % pool.len()
}

fn xsearch_reports(warm: &[String]) -> Vec<xsearch_workload::RunReport> {
    let ias = AttestationService::from_seed(EXPERIMENT_SEED);
    // Tiny corpus: the engine is out of the measured path (echo mode).
    let engine = Arc::new(SearchEngine::build(&CorpusConfig {
        docs_per_topic: 5,
        ..Default::default()
    }));
    let proxy = XSearchProxy::launch(
        XSearchConfig {
            k: K,
            history_capacity: 1_000_000,
            ..Default::default()
        },
        engine,
        &ias,
    );
    proxy.seed_history(warm.iter().take(10_000).map(String::as_str));
    let brokers: Vec<Mutex<Broker>> = (0..SESSIONS)
        .map(|i| {
            Mutex::new(
                Broker::attach(&proxy, &ias, proxy.expected_measurement(), i as u64).unwrap(),
            )
        })
        .collect();
    let counter = AtomicUsize::new(0);
    let rates = [
        1_000.0, 2_500.0, 5_000.0, 10_000.0, 17_500.0, 25_000.0, 40_000.0, 60_000.0, 90_000.0,
    ];
    sweep_rates(&rates, POINT_DURATION, THREADS, &|| {
        let idx = round_robin(&brokers, &counter);
        let ok = brokers[idx].lock().search_echo(&proxy, QUERY).is_ok();
        xsearch_net_sim::station::busy_wait(SGX_TRANSITION_PAY);
        ok
    })
}

fn peas_reports(warm: &[String]) -> Vec<xsearch_workload::RunReport> {
    let matrix = CooccurrenceMatrix::build(warm);
    let mut issuer = PeasIssuer::new(
        PeasFakeGenerator::new(matrix, EXPERIMENT_SEED),
        EXPERIMENT_SEED,
    );
    issuer.set_k(K);
    let issuer = Arc::new(issuer);
    let receiver = Arc::new(PeasReceiver::new());
    let clients: Vec<Mutex<PeasClient>> = (0..SESSIONS)
        .map(|i| {
            Mutex::new(PeasClient::new(
                UserId(i as u32),
                issuer.public_key(),
                i as u64,
            ))
        })
        .collect();
    let counter = AtomicUsize::new(0);
    let rates = [
        100.0, 250.0, 500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0,
    ];
    sweep_rates(&rates, POINT_DURATION, THREADS, &|| {
        let idx = round_robin(&clients, &counter);
        clients[idx]
            .lock()
            .search(&receiver, &issuer, QUERY, |_, _| Vec::new())
            .is_ok()
    })
}

fn tor_reports() -> Vec<xsearch_workload::RunReport> {
    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);
    let network = Arc::new(TorNetwork::new(12, TOR_RELAY_SERVICE, &mut rng));
    let circuits: Vec<Mutex<_>> = (0..SESSIONS)
        .map(|_| Mutex::new(network.build_circuit(&mut rng)))
        .collect();
    let counter = AtomicUsize::new(0);
    let rates = [25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1_600.0];
    sweep_rates(&rates, POINT_DURATION, THREADS, &|| {
        let idx = round_robin(&circuits, &counter);
        let mut circuit = circuits[idx].lock();
        network
            .round_trip(&mut circuit, QUERY.as_bytes(), |req| req.to_vec())
            .is_ok()
    })
}

fn emit(table: &mut Table, system: f64, reports: &[xsearch_workload::RunReport]) {
    for r in reports {
        table.row(&[
            system,
            r.offered_rate,
            r.achieved_rate(),
            r.median_latency_ms(),
            r.p99_latency_ms(),
            r.error_rate(),
            f64::from(u8::from(r.kept_up())),
        ]);
    }
}

fn main() {
    let dataset = Dataset::with_users(60);
    let warm = dataset.train_queries();

    let mut table = Table::new(
        "fig5: latency vs offered throughput (system: 0=xsearch 1=peas 2=tor)",
        &[
            "system",
            "offered_rps",
            "achieved_rps",
            "median_ms",
            "p99_ms",
            "error_rate",
            "kept_up",
        ],
    );
    table.note(&format!(
        "open loop, {THREADS} generator threads, {SESSIONS} sessions, {:?} per point, k={K}",
        POINT_DURATION
    ));
    table.note("paper shape: xsearch ~25k req/s, peas ~1k, tor ~100 (orders of magnitude apart)");

    eprintln!("running x-search sweep...");
    let xs = xsearch_reports(&warm);
    emit(&mut table, 0.0, &xs);
    eprintln!("running peas sweep...");
    let peas = peas_reports(&warm);
    emit(&mut table, 1.0, &peas);
    eprintln!("running tor sweep...");
    let tor = tor_reports();
    emit(&mut table, 2.0, &tor);
    table.print();

    let capacity = |reports: &[xsearch_workload::RunReport]| {
        reports
            .iter()
            .filter(|r| r.kept_up())
            .map(|r| r.achieved_rate())
            .fold(0.0, f64::max)
    };
    println!();
    println!("# summary (max sustained rate, req/s)");
    println!(
        "xsearch={:.0} peas={:.0} tor={:.0}",
        capacity(&xs),
        capacity(&peas),
        capacity(&tor)
    );
}
