//! **Figure 5**: latency vs offered throughput for the X-Search proxy,
//! PEAS and Tor (log-log in the paper).
//!
//! Paper claims to reproduce in shape: X-Search sustains ~25,000 req/s
//! with sub-second latency; PEAS collapses around 1,000 req/s; Tor
//! handles on the order of 100 req/s — order-of-magnitude gaps between
//! the three systems.
//!
//! Method (§6.3): a wrk2-style open-loop generator drives each system at
//! increasing rates *without hitting the web search engine* ("to better
//! understand the saturation point of the proxy"): X-Search and PEAS run
//! in echo mode (full crypto + obfuscation + filtering, no engine);
//! Tor performs full 3-hop onion round trips with a modeled per-relay
//! service time (see DESIGN.md on the relay-capacity substitution).
//!
//! On top of the paper's three-system comparison this harness runs a
//! **threads-scaling sweep** (1/2/4/8 generator threads against one
//! shared proxy) — the paper's claim that the proxy "uses multiple
//! threads" over shared enclave state is only meaningful if added
//! threads buy throughput, so the sweep tracks exactly that from PR to
//! PR. The summary is written to `BENCH_fig5.json` (override the path
//! with `BENCH_FIG5_JSON`). Set `FIG5_POINT_MS` to shorten each
//! measured point (CI smoke uses this).
//!
//! Run: `cargo run -p xsearch-bench --release --bin fig5_throughput_latency`

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xsearch_baselines::peas::{
    CooccurrenceMatrix, PeasClient, PeasFakeGenerator, PeasIssuer, PeasReceiver,
};
use xsearch_baselines::tor::network::TorNetwork;
use xsearch_bench::sessions::BrokerPool;
use xsearch_bench::summary::{capacity, json_points, write_summary};
use xsearch_bench::{Dataset, EXPERIMENT_SEED};
use xsearch_metrics::series::Table;
use xsearch_query_log::record::UserId;
use xsearch_workload::runner::sweep_rates;
use xsearch_workload::RunReport;

const K: usize = 3;
const SESSIONS: usize = 32;
/// Generator threads for the paper's three-system comparison.
const THREADS: usize = 2;
/// Thread counts for the scaling sweep over one shared proxy.
const SCALING_THREADS: &[usize] = &[1, 2, 4, 8];
/// Modeled CPU service per relay per message: the capacity term standing
/// in for shared, bandwidth-limited Tor relays.
const TOR_RELAY_SERVICE: Duration = Duration::from_millis(2);

/// The SGX boundary cost paid in wall time per request: the paper's
/// request path crosses the boundary 10 times (1 ecall + 4 ocalls, two
/// crossings each) at ≈2.7 µs per crossing on Skylake. The simulator
/// *accounts* this cost; here the proxy must also *pay* it so the
/// saturation point reflects enclave hardware, not just raw crypto.
const SGX_TRANSITION_PAY: Duration = Duration::from_micros(27);

const QUERY: &str = "cheap flights paris";

const XSEARCH_RATES: &[f64] = &[
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 17_500.0, 25_000.0, 40_000.0, 60_000.0, 90_000.0,
    130_000.0, 200_000.0,
];

/// Rate ladder for the scaling sweep. Denser than the Fig 5 ladder and
/// extended upward: without the per-request transition pay the software
/// hot path saturates much later.
const SCALING_RATES: &[f64] = &[
    5_000.0, 10_000.0, 17_500.0, 25_000.0, 32_500.0, 40_000.0, 50_000.0, 65_000.0, 80_000.0,
    100_000.0, 130_000.0, 170_000.0, 220_000.0, 300_000.0, 400_000.0, 550_000.0, 700_000.0,
];

/// Per-point measurement duration; `FIG5_POINT_MS` overrides the default
/// so CI can smoke-run the full harness in seconds.
fn point_duration() -> Duration {
    xsearch_bench::summary::point_duration("FIG5_POINT_MS", 1_500)
}

fn round_robin<T>(pool: &[Mutex<T>], counter: &AtomicUsize) -> usize {
    counter.fetch_add(1, Ordering::Relaxed) % pool.len()
}

fn xsearch_reports(warm: &[String]) -> Vec<RunReport> {
    let pool = BrokerPool::warmed(K, SESSIONS, warm);
    sweep_rates(XSEARCH_RATES, point_duration(), THREADS, &|| {
        let ok = pool.echo(QUERY);
        xsearch_net_sim::station::busy_wait(SGX_TRANSITION_PAY);
        ok
    })
}

/// The threads-scaling sweep: same proxy, same session pool, increasing
/// generator-thread counts. The per-thread-count capacity is the series
/// `BENCH_fig5.json` tracks across PRs.
///
/// Unlike the Fig 5 comparison above, the scaling sweep does **not** pay
/// the wall-clock SGX transition cost per request: that cost is constant
/// per request and paid in parallel on real multi-core enclave hardware,
/// but on a small CI box a 27 µs serial busy-wait saturates the machine
/// at ~37 k req/s and would mask exactly the lock-contention signal this
/// sweep exists to expose. Transition costs remain *accounted* in the
/// proxy's [`xsearch_sgx_sim::boundary::BoundaryStats`] either way.
fn scaling_reports(warm: &[String]) -> Vec<(usize, Vec<RunReport>)> {
    let pool = BrokerPool::warmed(K, SESSIONS, warm);
    SCALING_THREADS
        .iter()
        .map(|&threads| {
            eprintln!("  scaling: {threads} generator thread(s)...");
            let reports = sweep_rates(SCALING_RATES, point_duration(), threads, &|| {
                pool.echo(QUERY)
            });
            (threads, reports)
        })
        .collect()
}

fn peas_reports(warm: &[String]) -> Vec<RunReport> {
    let matrix = CooccurrenceMatrix::build(warm);
    let mut issuer = PeasIssuer::new(
        PeasFakeGenerator::new(matrix, EXPERIMENT_SEED),
        EXPERIMENT_SEED,
    );
    issuer.set_k(K);
    let issuer = Arc::new(issuer);
    let receiver = Arc::new(PeasReceiver::new());
    let clients: Vec<Mutex<PeasClient>> = (0..SESSIONS)
        .map(|i| {
            Mutex::new(PeasClient::new(
                UserId(i as u32),
                issuer.public_key(),
                i as u64,
            ))
        })
        .collect();
    let counter = AtomicUsize::new(0);
    let rates = [
        100.0, 250.0, 500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0,
    ];
    sweep_rates(&rates, point_duration(), THREADS, &|| {
        let idx = round_robin(&clients, &counter);
        clients[idx]
            .lock()
            .search(&receiver, &issuer, QUERY, |_, _| Vec::new())
            .is_ok()
    })
}

fn tor_reports() -> Vec<RunReport> {
    let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED);
    let network = Arc::new(TorNetwork::new(12, TOR_RELAY_SERVICE, &mut rng));
    let circuits: Vec<Mutex<_>> = (0..SESSIONS)
        .map(|_| Mutex::new(network.build_circuit(&mut rng)))
        .collect();
    let counter = AtomicUsize::new(0);
    let rates = [25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1_600.0];
    sweep_rates(&rates, point_duration(), THREADS, &|| {
        let idx = round_robin(&circuits, &counter);
        let mut circuit = circuits[idx].lock();
        network
            .round_trip(&mut circuit, QUERY.as_bytes(), |req| req.to_vec())
            .is_ok()
    })
}

fn emit(table: &mut Table, system: f64, reports: &[RunReport]) {
    for r in reports {
        table.row(&[
            system,
            r.offered_rate,
            r.achieved_rate(),
            r.median_latency_ms(),
            r.p99_latency_ms(),
            r.error_rate(),
            f64::from(u8::from(r.kept_up())),
        ]);
    }
}

/// Renders the machine-readable summary the perf trajectory is tracked
/// with (one file per run, overwritten).
fn render_summary(
    scaling: &[(usize, Vec<RunReport>)],
    xs: &[RunReport],
    peas: &[RunReport],
    tor: &[RunReport],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"point_ms\": {},", point_duration().as_millis());
    out.push_str("  \"threads_sweep\": [\n");
    for (i, (threads, reports)) in scaling.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"threads\": {threads}, \"max_sustained_rps\": {:.1}, \"points\": ",
            capacity(reports)
        );
        json_points(&mut out, reports);
        out.push('}');
        if i + 1 < scaling.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    out.push_str("  \"systems\": {\n");
    let _ = writeln!(
        out,
        "    \"xsearch_{THREADS}threads_rps\": {:.1},",
        capacity(xs)
    );
    let _ = writeln!(out, "    \"peas_rps\": {:.1},", capacity(peas));
    let _ = writeln!(out, "    \"tor_rps\": {:.1}", capacity(tor));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

fn main() {
    let dataset = Dataset::with_users(60);
    let warm = dataset.train_queries();

    let mut table = Table::new(
        "fig5: latency vs offered throughput (system: 0=xsearch 1=peas 2=tor)",
        &[
            "system",
            "offered_rps",
            "achieved_rps",
            "median_ms",
            "p99_ms",
            "error_rate",
            "kept_up",
        ],
    );
    table.note(&format!(
        "open loop, {THREADS} generator threads, {SESSIONS} sessions, {:?} per point, k={K}",
        point_duration()
    ));
    table.note("paper shape: xsearch ~25k req/s, peas ~1k, tor ~100 (orders of magnitude apart)");

    eprintln!("running x-search sweep...");
    let xs = xsearch_reports(&warm);
    emit(&mut table, 0.0, &xs);
    eprintln!("running peas sweep...");
    let peas = peas_reports(&warm);
    emit(&mut table, 1.0, &peas);
    eprintln!("running tor sweep...");
    let tor = tor_reports();
    emit(&mut table, 2.0, &tor);
    table.print();

    eprintln!("running x-search threads-scaling sweep...");
    let scaling = scaling_reports(&warm);
    let mut scaling_table = Table::new(
        "fig5-scaling: x-search echo capacity vs generator threads",
        &["threads", "max_sustained_rps", "p99_ms_at_capacity"],
    );
    scaling_table.note("one shared proxy; enclave state is lock-striped, so threads add capacity");
    for (threads, reports) in &scaling {
        let best = reports
            .iter()
            .filter(|r| r.kept_up())
            .max_by(|a, b| a.achieved_rate().total_cmp(&b.achieved_rate()));
        scaling_table.row(&[
            *threads as f64,
            capacity(reports),
            best.map_or(f64::NAN, RunReport::p99_latency_ms),
        ]);
    }
    println!();
    scaling_table.print();

    let summary = render_summary(&scaling, &xs, &peas, &tor);
    write_summary("BENCH_FIG5_JSON", "BENCH_fig5.json", &summary);

    println!();
    println!("# summary (max sustained rate, req/s)");
    println!(
        "xsearch={:.0} peas={:.0} tor={:.0}",
        capacity(&xs),
        capacity(&peas),
        capacity(&tor)
    );
    for (threads, reports) in &scaling {
        println!(
            "xsearch_scaling threads={threads} rate={:.0}",
            capacity(reports)
        );
    }
}
