//! **Chaos drill**: availability of the enclave fleet under seeded,
//! deterministic fault scenarios, with and without the resilience
//! policy stack.
//!
//! Every scenario drives the same closed-loop workload — `SESSIONS`
//! attested clients, one driver thread, unique tagged queries — against
//! an 8-replica fleet wired to a [`FaultPlan`]. All delays (hops,
//! stalls, backoff) are **accounted on the modeled clock, never
//! slept**, so a scenario with 5-second stalls finishes in wall-clock
//! seconds and, because every fault decision hashes a seed instead of
//! sampling wall-clock randomness, the same seed replays to an
//! identical per-request transcript — which this binary verifies and
//! CI gates on.
//!
//! Scenarios: baseline, 10% link loss, one stalled replica, the
//! acceptance pair (one stalled replica + 10% loss, policies ON and
//! OFF), rolling crash/restarts, and a fleet-wide partition window.
//!
//! Per scenario the summary records **goodput** (in-deadline completions
//! per modeled second, sessions progressing in parallel),
//! **availability** (fraction of requests answered within the deadline
//! budget), p99 modeled cost, policy counters, and the **zero-lost
//! check**: every acknowledged query must be present in the fleet's
//! merged history windows — an answer the client decrypted can never
//! belong to a request the fleet later dropped.
//!
//! Env knobs: `CHAOS_REQUESTS` scales the per-scenario request count
//! (CI smoke uses a few hundred); `BENCH_CHAOS_JSON` overrides the
//! summary path.
//!
//! Run: `cargo run -p xsearch-bench --release --bin chaos_drill`

use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;
use xsearch_bench::summary::{registry_json, write_summary};
use xsearch_bench::EXPERIMENT_SEED;
use xsearch_cluster::resilience::ResilienceConfig;
use xsearch_cluster::{
    Cluster, ClusterClient, ClusterConfig, CrashEvent, FaultPlan, FaultSpec, PlacementPolicy,
};
use xsearch_core::config::XSearchConfig;
use xsearch_engine::corpus::CorpusConfig;
use xsearch_engine::engine::SearchEngine;
use xsearch_metrics::LatencyHistogram;

const REPLICAS: usize = 8;
const SESSIONS: usize = 32;
const K: usize = 3;
/// The per-request deadline budget on the modeled clock. Hops are
/// ~0.5–1 ms, so a healthy request fits with two orders of margin while
/// a 5 s stall misses unambiguously.
const DEADLINE: Duration = Duration::from_millis(50);
const STALL: Duration = Duration::from_secs(5);

fn requests() -> u64 {
    std::env::var("CHAOS_REQUESTS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(2_000)
}

fn engine() -> Arc<SearchEngine> {
    Arc::new(SearchEngine::build(&CorpusConfig {
        docs_per_topic: 5,
        ..Default::default()
    }))
}

fn policies_on() -> ResilienceConfig {
    ResilienceConfig {
        enabled: true,
        deadline: DEADLINE,
        backoff_base: Duration::from_micros(500),
        backoff_cap: Duration::from_millis(10),
        breaker_threshold: 3,
        breaker_cooldown_ops: 512,
        hedge: true,
        hedge_after: None,
        degrade: true,
    }
}

fn launch(engine: &Arc<SearchEngine>, spec: FaultSpec, rcfg: ResilienceConfig) -> Cluster {
    Cluster::launch(
        Arc::clone(engine),
        ClusterConfig {
            replicas: REPLICAS,
            placement: PlacementPolicy::ConsistentHash,
            // Seal after every request: an acknowledged answer is always
            // covered by a snapshot, which is what the zero-lost check
            // leans on across crashes.
            seal_every: 1,
            proxy: XSearchConfig {
                k: K,
                history_capacity: 1 << 20,
                ..Default::default()
            },
            seed: EXPERIMENT_SEED,
            resilience: rcfg,
            faults: Some(Arc::new(FaultPlan::new(
                spec,
                EXPERIMENT_SEED ^ 0xC4A0,
                REPLICAS,
            ))),
            ..Default::default()
        },
    )
}

/// Per-scenario results.
struct ScenarioResult {
    name: &'static str,
    policies: bool,
    ok: u64,
    failed: u64,
    available: u64,
    total_cost: Duration,
    p99_us: u64,
    mean_cost_us: f64,
    retries: u64,
    reattaches: u64,
    hedges_fired: u64,
    hedges_won: u64,
    deadline_misses: u64,
    link_losses: u64,
    breaker_trips: u64,
    sweeps_run: u64,
    sweeps_coalesced: u64,
    degraded_served: u64,
    sheds: u64,
    acked: usize,
    lost: usize,
    transcript: Vec<String>,
    /// The fleet's flight-recorder dump (breaker transitions, hedges,
    /// failovers, injected faults, degrade steps), kept past the
    /// cluster's teardown so failures can print the run's last events.
    flight: Vec<String>,
    /// The fleet's telemetry registry snapshot as JSON, embedded in the
    /// summary for the acceptance scenario.
    telemetry: String,
}

impl ScenarioResult {
    fn availability(&self) -> f64 {
        self.available as f64 / (self.ok + self.failed).max(1) as f64
    }

    /// In-deadline completions per modeled second, with `SESSIONS`
    /// sessions progressing in parallel: the mean session spends
    /// `total_cost / SESSIONS` modeled seconds on its share.
    fn goodput_rps(&self) -> f64 {
        let span = self.total_cost.as_secs_f64() / SESSIONS as f64;
        self.available as f64 / span.max(1e-9)
    }
}

fn run_scenario(
    name: &'static str,
    engine: &Arc<SearchEngine>,
    spec: FaultSpec,
    policies: bool,
) -> ScenarioResult {
    let rcfg = if policies {
        policies_on()
    } else {
        ResilienceConfig::disabled()
    };
    let cluster = launch(engine, spec, rcfg);
    let mut clients: Vec<ClusterClient> = (0..SESSIONS)
        .map(|i| ClusterClient::attach(&cluster, i as u64).expect("attach"))
        .collect();
    let total = requests();
    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut available = 0u64;
    let mut total_cost = Duration::ZERO;
    let mut hist = LatencyHistogram::new();
    let mut acked: HashSet<String> = HashSet::new();
    let mut transcript = Vec::with_capacity(total as usize);
    for i in 0..total {
        let s = (i as usize) % SESSIONS;
        let query = format!("s{s} q{i}");
        let client = &mut clients[s];
        match client.search_echo_outcome(&cluster, &query) {
            Ok(outcome) => {
                ok += 1;
                if outcome.cost <= DEADLINE {
                    available += 1;
                }
                total_cost += outcome.cost;
                hist.record(outcome.cost.as_micros() as u64);
                acked.insert(query);
                transcript.push(format!(
                    "{i}:ok:{}:{}:{}",
                    outcome.cost.as_micros(),
                    outcome.attempts,
                    u8::from(outcome.hedged)
                ));
            }
            Err(e) => {
                failed += 1;
                let cost = client.last_cost();
                total_cost += cost;
                hist.record(cost.as_micros() as u64);
                transcript.push(format!("{i}:err={e}:{}", cost.as_micros()));
            }
        }
    }
    // Zero-lost check: drain anything dead, resurrect what is down, and
    // verify every acknowledged query survives in some replica's window
    // (migrated, restored, or still live).
    cluster.health_sweep();
    let mut merged: HashSet<String> = HashSet::new();
    for id in cluster.replica_ids() {
        if !cluster.node(id).expect("known replica").is_up() {
            let _ = cluster.restart(id);
        }
        if let Ok(window) =
            cluster.with_replica(id, xsearch_core::proxy::XSearchProxy::history_snapshot)
        {
            merged.extend(window);
        }
    }
    let lost = acked.iter().filter(|q| !merged.contains(*q)).count();
    let stats = clients
        .iter()
        .fold(xsearch_cluster::ClientStats::default(), |mut acc, c| {
            let s = c.stats();
            acc.retries += s.retries;
            acc.reattaches += s.reattaches;
            acc.hedges_fired += s.hedges_fired;
            acc.hedges_won += s.hedges_won;
            acc.deadline_misses += s.deadline_misses;
            acc.link_losses += s.link_losses;
            acc
        });
    let (sweeps_run, sweeps_coalesced) = cluster.sweep_stats();
    let mut telemetry = String::new();
    registry_json(&mut telemetry, cluster.telemetry());
    ScenarioResult {
        name,
        policies,
        ok,
        failed,
        available,
        total_cost,
        p99_us: hist.quantile(0.99),
        mean_cost_us: hist.mean(),
        retries: stats.retries,
        reattaches: stats.reattaches,
        hedges_fired: stats.hedges_fired,
        hedges_won: stats.hedges_won,
        deadline_misses: stats.deadline_misses,
        link_losses: stats.link_losses,
        breaker_trips: cluster.breaker_trips(),
        sweeps_run,
        sweeps_coalesced,
        degraded_served: cluster.degraded_served(),
        sheds: cluster.queue_stats().iter().map(|s| s.shed).sum(),
        acked: acked.len(),
        lost,
        transcript,
        flight: cluster.flight().dump(),
        telemetry,
    }
}

/// Prints a scenario's flight-recorder dump to stderr — the forensic
/// trail a failing gate leaves behind instead of a bare exit code.
fn dump_flight(label: &str, events: &[String]) {
    eprintln!("flight recorder ({label}): {} event(s)", events.len());
    for line in events {
        eprintln!("  {line}");
    }
}

/// Which replica session 0 homes on — the stall/crash victim, found on
/// a probe fleet so the faulted fleets can name it in their specs.
fn probe_victim(engine: &Arc<SearchEngine>) -> usize {
    let cluster = launch(engine, FaultSpec::default(), policies_on());
    ClusterClient::attach(&cluster, 0)
        .expect("probe attach")
        .replica()
        .0
}

fn render_summary(results: &[ScenarioResult], replayed: bool) -> String {
    let baseline = results
        .iter()
        .find(|r| r.name == "baseline")
        .expect("baseline ran");
    let degraded = results
        .iter()
        .find(|r| r.name == "stall_one_loss10")
        .expect("acceptance scenario ran");
    let nopolicy = results
        .iter()
        .find(|r| r.name == "stall_one_loss10_nopolicy")
        .expect("collapse scenario ran");
    let ratio = degraded.goodput_rps() / baseline.goodput_rps().max(1e-9);
    let collapse = nopolicy.goodput_rps() / baseline.goodput_rps().max(1e-9);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"requests\": {}, \"sessions\": {SESSIONS}, \"replicas\": {REPLICAS}, \"deadline_ms\": {}, \"stall_ms\": {},",
        requests(),
        DEADLINE.as_millis(),
        STALL.as_millis()
    );
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"policies\": {}, \"ok\": {}, \"failed\": {}, \"available\": {}, \"availability\": {:.4}, \"goodput_rps\": {:.1}, \"p99_us\": {}, \"mean_cost_us\": {:.1}, \"retries\": {}, \"reattaches\": {}, \"hedges_fired\": {}, \"hedges_won\": {}, \"deadline_misses\": {}, \"link_losses\": {}, \"breaker_trips\": {}, \"sweeps_run\": {}, \"sweeps_coalesced\": {}, \"degraded_served\": {}, \"sheds\": {}, \"acked\": {}, \"lost\": {}}}",
            r.name,
            r.policies,
            r.ok,
            r.failed,
            r.available,
            r.availability(),
            r.goodput_rps(),
            r.p99_us,
            r.mean_cost_us,
            r.retries,
            r.reattaches,
            r.hedges_fired,
            r.hedges_won,
            r.deadline_misses,
            r.link_losses,
            r.breaker_trips,
            r.sweeps_run,
            r.sweeps_coalesced,
            r.degraded_served,
            r.sheds,
            r.acked,
            r.lost
        );
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"acceptance\": {{\"baseline_goodput_rps\": {:.1}, \"degraded_goodput_rps\": {:.1}, \"ratio\": {:.4}, \"threshold\": 0.7, \"pass\": {}, \"degraded_lost\": {}, \"nopolicy_goodput_rps\": {:.1}, \"collapse_ratio\": {:.6}}},",
        baseline.goodput_rps(),
        degraded.goodput_rps(),
        ratio,
        ratio >= 0.7 && degraded.lost == 0,
        degraded.lost,
        nopolicy.goodput_rps(),
        collapse
    );
    let _ = writeln!(
        out,
        "  \"acceptance_flight_events\": {},",
        degraded.flight.len()
    );
    let _ = writeln!(
        out,
        "  \"acceptance_telemetry\": {},",
        degraded.telemetry.trim_end()
    );
    let _ = writeln!(out, "  \"replay\": {{\"deterministic\": {replayed}}}");
    out.push_str("}\n");
    out
}

fn main() {
    let engine = engine();
    let victim = probe_victim(&engine);
    let total = requests();
    eprintln!("chaos drill: {total} requests/scenario, victim replica {victim}");

    let stall_spec = |loss: f64| FaultSpec {
        loss,
        stalled: vec![victim],
        stall: STALL,
        ..Default::default()
    };
    // Rolling restarts: three replicas (skipping the probe victim so
    // scenario effects stay separable) crash and come back on a
    // staggered op schedule.
    let rolling = FaultSpec {
        crashes: (1..=3u64)
            .map(|n| CrashEvent {
                at_op: total * n / 4,
                replica: (victim + n as usize) % REPLICAS,
                restart_at: Some(total * n / 4 + total / 10),
            })
            .collect(),
        ..Default::default()
    };
    let partition = FaultSpec {
        partitions: vec![(2 * total / 5, 2 * total / 5 + total / 5)],
        ..Default::default()
    };

    let mut results = Vec::new();
    for (name, spec, policies) in [
        ("baseline", FaultSpec::default(), true),
        (
            "loss10",
            FaultSpec {
                loss: 0.10,
                ..Default::default()
            },
            true,
        ),
        ("stall_one", stall_spec(0.0), true),
        ("stall_one_loss10", stall_spec(0.10), true),
        ("stall_one_loss10_nopolicy", stall_spec(0.10), false),
        ("rolling_restart", rolling, true),
        ("partition", partition, true),
    ] {
        eprintln!(
            "scenario {name} (policies {})...",
            if policies { "on" } else { "off" }
        );
        results.push(run_scenario(name, &engine, spec, policies));
    }

    // Deterministic-replay gate: the acceptance scenario, re-run on a
    // fresh fleet with the same fault seed, must produce a byte-identical
    // per-request transcript.
    eprintln!("replaying stall_one_loss10 for the determinism gate...");
    let replay = run_scenario("stall_one_loss10", &engine, stall_spec(0.10), true);
    let original = &results
        .iter()
        .find(|r| r.name == "stall_one_loss10")
        .expect("ran")
        .transcript;
    if *original != replay.transcript {
        let first_diff = original
            .iter()
            .zip(&replay.transcript)
            .position(|(a, b)| a != b);
        eprintln!(
            "FAIL: chaos transcript diverged between identical seeds (first diff at {first_diff:?})"
        );
        let first = results
            .iter()
            .find(|r| r.name == "stall_one_loss10")
            .expect("ran");
        dump_flight("original run", &first.flight);
        dump_flight("replay run", &replay.flight);
        std::process::exit(1);
    }

    let summary = render_summary(&results, true);
    write_summary("BENCH_CHAOS_JSON", "BENCH_chaos.json", &summary);

    println!();
    println!("# chaos drill (availability = completed within {DEADLINE:?} on the modeled clock)");
    for r in &results {
        println!(
            "{:<28} policies={} goodput={:>10.1} rps availability={:.3} p99={:>9}us lost={} hedges={}/{} trips={}",
            r.name,
            u8::from(r.policies),
            r.goodput_rps(),
            r.availability(),
            r.p99_us,
            r.lost,
            r.hedges_won,
            r.hedges_fired,
            r.breaker_trips
        );
    }
    let baseline = results.iter().find(|r| r.name == "baseline").unwrap();
    let degraded = results
        .iter()
        .find(|r| r.name == "stall_one_loss10")
        .unwrap();
    let nopolicy = results
        .iter()
        .find(|r| r.name == "stall_one_loss10_nopolicy")
        .unwrap();
    let ratio = degraded.goodput_rps() / baseline.goodput_rps().max(1e-9);
    println!();
    println!(
        "acceptance: stalled+lossy fleet sustains {:.1}% of baseline goodput with {} lost requests (threshold: >=70%, zero lost)",
        ratio * 100.0,
        degraded.lost
    );
    println!(
        "collapse:   the same scenario without policies reaches {:.2}% of baseline goodput",
        (nopolicy.goodput_rps() / baseline.goodput_rps().max(1e-9)) * 100.0
    );
    if degraded.lost > 0 {
        eprintln!(
            "FAIL: {} acknowledged requests missing from the fleet windows",
            degraded.lost
        );
        dump_flight(degraded.name, &degraded.flight);
        std::process::exit(1);
    }
}
