//! **Connection scaling**: how many simulated sessions the event-driven
//! front tier holds, and what each idle one costs.
//!
//! The thread-per-request harnesses measure the enclave hot path; this
//! harness measures the *front*: the readiness reactor, the framed
//! per-connection state machines, and the idle-memory discipline that
//! makes a six-figure connection count affordable. Three phases:
//!
//! 1. **Idle sweep** — 10 k → 1 M accepted sessions (mostly idle, as a
//!    search front's population is), single shard, manual stepping. The
//!    gate is the *accounted* per-session footprint
//!    ([`ByteStream::mem_bytes`] and friends, not an RSS sample — the
//!    figure is deterministic) against the documented
//!    [`IDLE_SESSION_BYTE_BUDGET`].
//! 2. **Active subset under churn** — a threaded front carrying idle
//!    ballast plus a small active session pool driven by the open-loop
//!    generator (a fixed-rate approximation of the Poisson-active
//!    subset), while a churn thread connects, attests, echoes, and
//!    disconnects ephemeral framed clients the whole time. Reported:
//!    sustained req/s and p99 under that churn.
//! 3. **Replay gate** — a fixed interleaved transcript on one shard,
//!    run twice clean and twice under a deterministic
//!    [`FaultPlan`]; both pairs must be byte-identical (raw reply
//!    frames compared directly — no hashing).
//!
//! Env knobs: `CONN_MAX_SESSIONS` caps the idle tiers (CI smoke uses
//! 10 000); `CONN_POINT_MS` shortens each active measured point;
//! `BENCH_CONN_JSON` overrides the summary path.
//!
//! Run: `cargo run -p xsearch-bench --release --bin conn_scaling`

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xsearch_bench::sessions::FrontSessions;
use xsearch_bench::summary::{capacity, json_points, write_summary};
use xsearch_cluster::{
    Cluster, ClusterConfig, FaultPlan, FaultSpec, FramedClient, FrontConfig, FrontTier,
    IDLE_SESSION_BYTE_BUDGET,
};
use xsearch_core::config::XSearchConfig;
use xsearch_core::wire::encode_conn_request_into;
use xsearch_core::Broker;
use xsearch_engine::corpus::CorpusConfig;
use xsearch_engine::engine::SearchEngine;
use xsearch_net_sim::{encode_frame_into, ByteStream, FrameDecoder, StreamError};
use xsearch_workload::runner::sweep_rates;
use xsearch_workload::RunReport;

/// Idle-sweep tiers; `CONN_MAX_SESSIONS` drops the ones above the cap.
const IDLE_TIERS: &[usize] = &[10_000, 100_000, 1_000_000];
/// Idle ballast carried through the active phase.
const BALLAST: usize = 2_000;
/// Attested framed sessions in the active pool.
const ACTIVE_SESSIONS: usize = 32;
/// Generator threads for the active sweep.
const THREADS: usize = 4;
/// Offered-rate ladder for the active subset.
const ACTIVE_RATES: &[f64] = &[
    500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0, 32_000.0, 64_000.0,
];

const QUERY: &str = "cheap flights paris";

fn point_duration() -> Duration {
    xsearch_bench::summary::point_duration("CONN_POINT_MS", 800)
}

fn max_sessions() -> usize {
    std::env::var("CONN_MAX_SESSIONS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(1_000_000, |n| n.max(1_000))
}

/// A small fleet: the front is the subject; the enclave tier behind it
/// only needs to exist.
fn fleet(faults: Option<Arc<FaultPlan>>) -> Arc<Cluster> {
    let engine = Arc::new(SearchEngine::build(&CorpusConfig {
        docs_per_topic: 5,
        ..Default::default()
    }));
    Arc::new(Cluster::launch(
        engine,
        ClusterConfig {
            replicas: 4,
            proxy: XSearchConfig {
                k: 2,
                history_capacity: 1_000_000,
                ..Default::default()
            },
            faults,
            ..Default::default()
        },
    ))
}

/// One idle tier's result.
struct IdleTier {
    sessions: usize,
    accounted_bytes: usize,
    accept_ms: f64,
    account_ms: f64,
}

impl IdleTier {
    fn bytes_per_session(&self) -> f64 {
        self.accounted_bytes as f64 / self.sessions.max(1) as f64
    }

    fn within_budget(&self) -> bool {
        self.bytes_per_session() <= IDLE_SESSION_BYTE_BUDGET as f64
    }
}

/// Phase 1: accept `n` sessions that never send a byte, adopt them onto
/// one manually-stepped shard, and account their footprint.
fn idle_tier(n: usize) -> IdleTier {
    let cluster = fleet(None);
    let front = FrontTier::new(&cluster, FrontConfig::default());
    let start = Instant::now();
    // Client ends must stay alive: dropping one closes the pair and the
    // front reaps the session.
    let mut held: Vec<ByteStream> = Vec::with_capacity(n);
    for _ in 0..n {
        held.push(front.accept());
    }
    // One step adopts everything queued on the shard's accept list.
    front.step();
    let accept_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(front.connections(), n, "adoption lost sessions");
    let start = Instant::now();
    let (sessions, accounted_bytes) = front.account_idle();
    let account_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(sessions, n, "idle accounting missed sessions");
    drop(held);
    IdleTier {
        sessions: n,
        accounted_bytes,
        accept_ms,
        account_ms,
    }
}

/// Phase 2 result.
struct ActiveRun {
    reports: Vec<RunReport>,
    churn_cycles: u64,
    churn_failures: u64,
    idle_bytes_per_session_after: f64,
}

/// Phase 2: threaded front, idle ballast, open-loop load over the active
/// pool, ephemeral connect/attest/echo/disconnect churn throughout.
fn active_run() -> ActiveRun {
    let cluster = fleet(None);
    let front = Arc::new(FrontTier::new(
        &cluster,
        FrontConfig {
            shards: 2,
            ..FrontConfig::default()
        },
    ));
    front.spawn();
    let _ballast: Vec<ByteStream> = (0..BALLAST).map(|_| front.accept()).collect();
    let active = FrontSessions::attach(&cluster, &front, ACTIVE_SESSIONS, 500_000);

    let stop = Arc::new(AtomicBool::new(false));
    let cycles = Arc::new(AtomicU64::new(0));
    let failures = Arc::new(AtomicU64::new(0));
    let churn = {
        let cluster = Arc::clone(&cluster);
        let front = Arc::clone(&front);
        let stop = Arc::clone(&stop);
        let cycles = Arc::clone(&cycles);
        let failures = Arc::clone(&failures);
        std::thread::spawn(move || {
            let mut seed = 900_000u64;
            while !stop.load(Ordering::Relaxed) {
                seed += 1;
                let ok = FramedClient::connect(&cluster, &front, seed).is_ok_and(|mut client| {
                    let ok = client
                        .search_with(QUERY, true, std::thread::yield_now)
                        .is_ok();
                    client.close();
                    ok
                });
                cycles.fetch_add(1, Ordering::Relaxed);
                if !ok {
                    failures.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    let reports = sweep_rates(ACTIVE_RATES, point_duration(), THREADS, &|| {
        active.echo(&cluster, QUERY)
    });

    stop.store(true, Ordering::Relaxed);
    churn.join().expect("churn thread");
    // Post-load idle hygiene: the ballast must have fallen back to its
    // floor cost even after the front carried real traffic.
    let (sessions, bytes) = front.account_idle();
    let idle_bytes_per_session_after = bytes as f64 / sessions.max(1) as f64;
    front.shutdown();
    ActiveRun {
        reports,
        churn_cycles: cycles.load(Ordering::Relaxed),
        churn_failures: failures.load(Ordering::Relaxed),
        idle_bytes_per_session_after,
    }
}

/// A hand-rolled raw framed session exposing exact reply bytes.
struct RawSession {
    broker: Broker,
    stream: ByteStream,
    decoder: FrameDecoder,
}

impl RawSession {
    fn open(cluster: &Cluster, front: &FrontTier, seed: u64) -> RawSession {
        let client_pub = Broker::client_pub_for_seed(seed);
        let replica = cluster.route(client_pub.as_bytes()).unwrap();
        let broker = cluster
            .with_replica(replica, |proxy| {
                Broker::attach(proxy, cluster.ias(), cluster.expected_measurement(), seed)
            })
            .unwrap()
            .unwrap();
        RawSession {
            broker,
            stream: front.accept(),
            decoder: FrameDecoder::new(),
        }
    }

    fn send(&mut self, front: &FrontTier, query: &str) {
        let ciphertext = self.broker.seal_query(query);
        let mut payload = Vec::new();
        encode_conn_request_into(
            self.broker.client_pub().as_bytes(),
            &ciphertext,
            true,
            &mut payload,
        );
        let mut framed = Vec::new();
        encode_frame_into(&payload, &mut framed);
        let mut written = 0;
        while written < framed.len() {
            match self.stream.write(&framed[written..]) {
                Ok(n) => written += n,
                Err(StreamError::WouldBlock) => {
                    front.step();
                }
                Err(StreamError::Closed) => panic!("front closed the connection"),
            }
        }
    }

    fn recv(&mut self, front: &FrontTier) -> Vec<u8> {
        for _ in 0..10_000 {
            front.step();
            self.decoder.read_from(&self.stream, 4096).ok();
            if let Some(frame) = self.decoder.next_frame().unwrap() {
                return frame.to_vec();
            }
        }
        panic!("no reply within the step budget");
    }
}

/// The deterministic chaos plan the replay gate runs under: link loss,
/// latency spikes, one stalled replica — enough to exercise the error
/// paths without making the transcript all noise.
fn chaos_plan() -> Arc<FaultPlan> {
    Arc::new(FaultPlan::new(
        FaultSpec {
            loss: 0.1,
            spike_prob: 0.2,
            spike: Duration::from_millis(5),
            stalled: vec![1],
            stall: Duration::from_millis(2),
            ..Default::default()
        },
        7,
        4,
    ))
}

/// Phase 3: a fixed interleaved workload on one manually-stepped shard.
/// Returns every reply frame's raw bytes in arrival order.
fn transcript(faults: Option<Arc<FaultPlan>>) -> Vec<Vec<u8>> {
    let cluster = fleet(faults);
    let front = FrontTier::new(&cluster, FrontConfig::default());
    let mut sessions: Vec<RawSession> = (0..4)
        .map(|i| RawSession::open(&cluster, &front, 1000 + i))
        .collect();
    let mut replies = Vec::new();
    for round in 0..3 {
        for (i, session) in sessions.iter_mut().enumerate() {
            session.send(&front, &format!("client{i} round{round}"));
        }
        for session in &mut sessions {
            replies.push(session.recv(&front));
        }
    }
    replies
}

fn main() {
    let cap = max_sessions();
    let point = point_duration();

    // Phase 1: idle sweep.
    let mut tiers = Vec::new();
    for &n in IDLE_TIERS.iter().filter(|&&n| n <= cap) {
        eprintln!("idle tier: {n} sessions...");
        let tier = idle_tier(n);
        eprintln!(
            "  {} sessions: {:.1} B/session (budget {IDLE_SESSION_BYTE_BUDGET}), accept+adopt {:.0} ms, account {:.0} ms",
            tier.sessions,
            tier.bytes_per_session(),
            tier.accept_ms,
            tier.account_ms,
        );
        tiers.push(tier);
    }

    // Phase 2: active subset under churn.
    eprintln!("active subset: {ACTIVE_SESSIONS} sessions over {BALLAST} idle, churn alongside...");
    let active = active_run();
    let best = active
        .reports
        .iter()
        .filter(|r| r.kept_up())
        .max_by(|a, b| a.achieved_rate().total_cmp(&b.achieved_rate()));
    let p99_at_capacity = best.map_or(f64::NAN, RunReport::p99_latency_ms);
    eprintln!(
        "  sustained {:.0} req/s, p99 {:.2} ms, churn cycles {} ({} failed)",
        capacity(&active.reports),
        p99_at_capacity,
        active.churn_cycles,
        active.churn_failures,
    );

    // Phase 3: replay gates.
    eprintln!("replay gate: clean...");
    let clean_a = transcript(None);
    let clean_b = transcript(None);
    eprintln!("replay gate: chaos...");
    let chaos_a = transcript(Some(chaos_plan()));
    let chaos_b = transcript(Some(chaos_plan()));
    let clean_identical = clean_a == clean_b;
    let chaos_identical = chaos_a == chaos_b;
    eprintln!(
        "  clean identical={clean_identical} ({} frames), chaos identical={chaos_identical} ({} frames)",
        clean_a.len(),
        chaos_a.len(),
    );

    let budget_ok = tiers.iter().all(IdleTier::within_budget);
    let pass = budget_ok && clean_identical && chaos_identical;

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"point_ms\": {}, \"max_sessions\": {cap}, \"idle_budget_bytes\": {IDLE_SESSION_BYTE_BUDGET},",
        point.as_millis()
    );
    out.push_str("  \"idle\": [\n");
    for (i, t) in tiers.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"sessions\": {}, \"accounted_bytes\": {}, \"bytes_per_session\": {:.1}, \"accept_ms\": {:.1}, \"account_ms\": {:.1}, \"within_budget\": {}}}",
            t.sessions,
            t.accounted_bytes,
            t.bytes_per_session(),
            t.accept_ms,
            t.account_ms,
            t.within_budget(),
        );
        if i + 1 < tiers.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    out.push_str("  \"active\": {\n");
    let _ = writeln!(
        out,
        "    \"idle_ballast\": {BALLAST}, \"sessions\": {ACTIVE_SESSIONS}, \"threads\": {THREADS},"
    );
    let _ = writeln!(
        out,
        "    \"max_sustained_rps\": {:.1}, \"p99_ms_at_capacity\": {p99_at_capacity:.3},",
        capacity(&active.reports)
    );
    let _ = writeln!(
        out,
        "    \"churn_cycles\": {}, \"churn_failures\": {}, \"idle_bytes_per_session_after\": {:.1},",
        active.churn_cycles, active.churn_failures, active.idle_bytes_per_session_after
    );
    out.push_str("    \"points\": ");
    json_points(&mut out, &active.reports);
    out.push_str("\n  },\n");
    let _ = writeln!(
        out,
        "  \"replay\": {{\"frames\": {}, \"clean_identical\": {clean_identical}, \"chaos_frames\": {}, \"chaos_identical\": {chaos_identical}}},",
        clean_a.len(),
        chaos_a.len()
    );
    let _ = writeln!(out, "  \"pass\": {pass}");
    out.push_str("}\n");
    write_summary("BENCH_CONN_JSON", "BENCH_conn.json", &out);

    println!();
    println!("# conn scaling");
    for t in &tiers {
        println!(
            "idle sessions={} bytes_per_session={:.1} budget={IDLE_SESSION_BYTE_BUDGET} ok={}",
            t.sessions,
            t.bytes_per_session(),
            t.within_budget()
        );
    }
    println!(
        "active sustained={:.0} req/s p99={p99_at_capacity:.2} ms churn={} cycles",
        capacity(&active.reports),
        active.churn_cycles
    );
    println!("replay clean={clean_identical} chaos={chaos_identical}");
    if !pass {
        eprintln!("FAIL: idle budget or replay gate violated");
        std::process::exit(1);
    }
}
