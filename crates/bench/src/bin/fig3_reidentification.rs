//! **Figure 3**: re-identification rate vs number of fake queries k.
//!
//! Paper claims to reproduce in shape:
//! * k = 0 (unlinkability only, e.g. Tor): ≈ 40% of queries re-identified;
//! * one fake query drops the rate to ≈ 16% (X-Search) vs ≈ 20% (PEAS);
//! * the rate keeps decreasing with k and X-Search stays below PEAS by
//!   roughly 23–35%.
//!
//! Run: `cargo run -p xsearch-bench --release --bin fig3_reidentification`

use xsearch_attack::eval::reidentification_rate;
use xsearch_attack::profile::ProfileSet;
use xsearch_attack::simattack::SimAttack;
use xsearch_baselines::peas::PeasSystem;
use xsearch_baselines::system::PrivateSearchSystem;
use xsearch_baselines::xsearch_system::XSearchSystem;
use xsearch_bench::{Dataset, EXPERIMENT_SEED};
use xsearch_metrics::series::Table;

/// Test queries attacked per k (subsampled for runtime; deterministic).
const TEST_QUERIES: usize = 1_200;

fn main() {
    let dataset = Dataset::standard();
    let train = dataset.train_queries();
    let profiles = ProfileSet::build(&dataset.split.train);
    let attack = SimAttack::default();
    let test = dataset.sample_test(TEST_QUERIES, 3);

    let mut table = Table::new(
        "fig3: re-identification rate vs k",
        &["k", "xsearch", "peas"],
    );
    table.note(&format!(
        "users={} train={} attacked={} smoothing=0.5",
        profiles.user_count(),
        profiles.query_count(),
        test.len()
    ));
    table.note("paper: k=0 ≈ 0.40; k=1: xsearch ≈ 0.16, peas ≈ 0.20; decreasing in k");

    for k in 0..=7 {
        // Fresh systems per k, warmed with the same training traffic.
        let mut xsearch = XSearchSystem::new(k, 1_000_000, EXPERIMENT_SEED ^ k as u64);
        xsearch.warm(train.iter().map(String::as_str));
        let mut peas = PeasSystem::new(&train, k, EXPERIMENT_SEED ^ (k as u64) << 8);

        let xs_rate = reidentification_rate(&profiles, &attack, &test, |r| {
            xsearch.protect(r.user, &r.query).subqueries
        });
        let peas_rate = reidentification_rate(&profiles, &attack, &test, |r| {
            peas.protect(r.user, &r.query).subqueries
        });
        table.row(&[k as f64, xs_rate, peas_rate]);
    }
    table.print();
}
