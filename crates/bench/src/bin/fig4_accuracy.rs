//! **Figure 4**: precision and recall of X-Search's filtered results vs k.
//!
//! Paper claims to reproduce in shape: precision and recall start at 1.0
//! for k = 0 and degrade slowly; at k = 2 both remain above 0.8.
//!
//! Method (§5.3.2): for each test query, compare the engine's first 20
//! results for the query alone against what X-Search returns after
//! obfuscating, executing each sub-query independently (the Bing
//! single-word-OR workaround), merging, and filtering with Algorithm 2.
//!
//! Run: `cargo run -p xsearch-bench --release --bin fig4_accuracy`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use xsearch_bench::{standard_engine, Dataset, EXPERIMENT_SEED};
use xsearch_core::filter::filter_results;
use xsearch_core::history::QueryHistory;
use xsearch_core::obfuscate::obfuscate;
use xsearch_engine::document::DocId;
use xsearch_metrics::accuracy::PrecisionRecall;
use xsearch_metrics::series::Table;
use xsearch_sgx_sim::epc::EpcGauge;

/// Queries evaluated per k (the paper uses 100 due to Bing rate limits).
const QUERIES_PER_K: usize = 100;
/// Results considered per query (paper: "the first 20 results").
const TOP_K_RESULTS: usize = 20;

fn main() {
    let dataset = Dataset::standard();
    let train = dataset.train_queries();
    let engine = Arc::new(standard_engine());

    let mut table = Table::new(
        "fig4: precision/recall of filtered results vs k",
        &["k", "precision", "recall"],
    );
    table.note(&format!(
        "queries per k = {QUERIES_PER_K}; top {TOP_K_RESULTS} results; merged sub-query execution"
    ));
    table.note("paper: both ≈1.0 at k=0, recall > 0.8 at k=2");

    for k in 0..=7 {
        let mut rng = StdRng::seed_from_u64(EXPERIMENT_SEED ^ (k as u64) << 16);
        // A warm proxy history, fresh per k.
        let history = QueryHistory::new(1_000_000, EpcGauge::new());
        for q in &train {
            history.push(q);
        }
        let test = dataset.sample_test(QUERIES_PER_K, 4 + k as u64);
        let mut measurements = Vec::with_capacity(test.len());
        for record in &test {
            let reference: Vec<DocId> = engine
                .search(&record.query, TOP_K_RESULTS)
                .into_iter()
                .map(|r| r.doc)
                .collect();
            let obfuscated = obfuscate(&record.query, &history, k, &mut rng);
            let merged = engine.search_merged(&obfuscated.subqueries, TOP_K_RESULTS);
            let returned: Vec<DocId> = filter_results(&record.query, &obfuscated.fakes(), merged)
                .into_iter()
                .map(|r| r.doc)
                .collect();
            // Queries with no reference results tell us nothing.
            if reference.is_empty() {
                continue;
            }
            measurements.push(PrecisionRecall::of(&reference, &returned));
        }
        let mean = PrecisionRecall::mean(measurements);
        table.row(&[k as f64, mean.precision, mean.recall]);
    }
    table.print();
}
